//! Kernel bench: the SOI convolution, naive vs optimized (the §6b
//! ablation — loop interchange + chunked coefficient reuse + FMA).
//!
//! The paper reports the optimized convolution reaching ~40% of machine
//! peak vs ~10% for FFTs; the measurable claim here is the *ratio* of the
//! optimized kernel over the pseudo-code loop nest, and conv throughput
//! comfortably above FFT throughput per flop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soi_bench::workload::tone_mix;
use soi_core::conv::{convolve, convolve_naive};
use soi_core::{SoiFft, SoiParams};
use soi_num::Complex64;
use soi_window::AccuracyPreset;

fn bench_conv(c: &mut Criterion) {
    let n = 1usize << 16;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Full).expect("params");
    let soi = SoiFft::new(&params).expect("plan");
    let cfg = *soi.config();
    let x = tone_mix(n + cfg.halo_len());
    let mut out = vec![Complex64::ZERO; cfg.n_prime];
    let flops = soi_fft::flops::conv_flops(cfg.n_prime, cfg.b) as u64;

    let mut g = c.benchmark_group("conv_kernel");
    g.throughput(Throughput::Elements(flops));
    g.bench_with_input(BenchmarkId::new("optimized", cfg.b), &cfg.b, |b, _| {
        b.iter(|| convolve(soi.shape(), soi.coefficients(), &x, &mut out));
    });
    g.bench_with_input(BenchmarkId::new("naive", cfg.b), &cfg.b, |b, _| {
        b.iter(|| convolve_naive(soi.shape(), soi.coefficients(), &x, &mut out));
    });
    g.finish();
}

fn bench_conv_vs_b(c: &mut Criterion) {
    // Fig 7's lever: smaller B → proportionally cheaper convolution.
    let n = 1usize << 16;
    let p = 8;
    let mut g = c.benchmark_group("conv_vs_accuracy");
    for preset in [AccuracyPreset::Full, AccuracyPreset::Digits12, AccuracyPreset::Digits10] {
        let params = SoiParams::with_preset(n, p, preset).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        let cfg = *soi.config();
        let x = tone_mix(n + cfg.halo_len());
        let mut out = vec![Complex64::ZERO; cfg.n_prime];
        g.throughput(Throughput::Elements(cfg.n_prime as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("B={}", cfg.b)),
            &cfg.b,
            |b, _| b.iter(|| convolve(soi.shape(), soi.coefficients(), &x, &mut out)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_conv, bench_conv_vs_b
}
criterion_main!(benches);
