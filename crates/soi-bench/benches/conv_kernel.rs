//! Kernel bench: the SOI convolution, naive vs optimized (the §6b
//! ablation — loop interchange + chunked coefficient reuse + FMA).
//!
//! The paper reports the optimized convolution reaching ~40% of machine
//! peak vs ~10% for FFTs; the measurable claim here is the *ratio* of the
//! optimized kernel over the pseudo-code loop nest, and conv throughput
//! comfortably above FFT throughput per flop.
//!
//! Harness-free binary on the soi-testkit timer (see fft_kernels.rs for
//! the env knobs).

use soi_bench::workload::tone_mix;
use soi_core::conv::{convolve, convolve_naive, convolve_portable, kernel_name};
use soi_core::{SoiFft, SoiParams};
use soi_num::Complex64;
use soi_testkit::Bencher;
use soi_window::AccuracyPreset;

fn bench_conv() {
    let n = 1usize << 16;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Full).expect("params");
    let soi = SoiFft::new(&params).expect("plan");
    let cfg = *soi.config();
    let x = tone_mix(n + cfg.halo_len());
    let mut out = vec![Complex64::ZERO; cfg.n_prime];
    let flops = soi_fft::flops::conv_flops(cfg.n_prime, cfg.b) as u64;

    let mut g = Bencher::new("conv_kernel").samples(15);
    g.throughput_elements(flops);
    g.bench(&format!("optimized[{}]/B={}", kernel_name(), cfg.b), || {
        convolve(soi.shape(), soi.coefficients(), &x, &mut out)
    });
    if kernel_name() != "portable" {
        g.bench(&format!("optimized[portable]/B={}", cfg.b), || {
            convolve_portable(soi.shape(), soi.coefficients(), &x, &mut out)
        });
    }
    g.bench(&format!("naive/B={}", cfg.b), || {
        convolve_naive(soi.shape(), soi.coefficients(), &x, &mut out)
    });
}

fn bench_conv_vs_b() {
    // Fig 7's lever: smaller B → proportionally cheaper convolution.
    let n = 1usize << 16;
    let p = 8;
    let mut g = Bencher::new("conv_vs_accuracy").samples(15);
    for preset in [
        AccuracyPreset::Full,
        AccuracyPreset::Digits12,
        AccuracyPreset::Digits10,
    ] {
        let params = SoiParams::with_preset(n, p, preset).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        let cfg = *soi.config();
        let x = tone_mix(n + cfg.halo_len());
        let mut out = vec![Complex64::ZERO; cfg.n_prime];
        g.throughput_elements(cfg.n_prime as u64);
        g.bench(&format!("B={}", cfg.b), || {
            convolve(soi.shape(), soi.coefficients(), &x, &mut out)
        });
    }
}

fn main() {
    bench_conv();
    bench_conv_vs_b();
}
