//! What does surviving a rank death cost?
//!
//! For every phase boundary k of the distributed SOI pipeline, run a
//! 4-rank wire (localhost TCP) job in which rank 1 dies at boundary k,
//! drive the full recovery protocol — detection, survivor reconnect into
//! epoch 1, a respawned rank claiming the dead slot, checkpoint reload,
//! replay — and record the end-to-end wall time next to an undisturbed
//! run through the same recoverable driver. The difference is the price
//! of the fault: detection + rollback + replay.
//!
//! Recorded to `BENCH_faults.json` at the repo root. Knobs:
//!
//! * `SOI_BENCH_FAULT_N`       — transform size (default 2^14).
//! * `SOI_BENCH_FAULT_SAMPLES` — samples per point, median kept (default 3).
//! * `SOI_BENCH_FAULTS_OUT`    — output path override; CI smoke runs point
//!   this at a scratch file so the committed baseline survives.

use soi_core::SoiParams;
use soi_dist::{
    run_wire_recoverable, ChargePolicy, CheckpointStore, DistSoiFft, FaultPlan, MemStore,
    LAST_BOUNDARY,
};
use soi_num::Complex64;
use soi_pool::ThreadPool;
use soi_window::AccuracyPreset;
use soi_wire::{Bootstrap, Rendezvous, WireComm, WireConfig};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const RANKS: usize = 4;
const VICTIM: usize = 1;
const P: usize = 8;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn cfg() -> WireConfig {
    WireConfig {
        op_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(15),
        ..WireConfig::default()
    }
}

/// One undisturbed job through the recoverable driver (checkpoints armed,
/// completion barrier included — the honest baseline for the fault path).
fn undisturbed_ns(dist: &DistSoiFft, x: &[Complex64]) -> f64 {
    let cfg = cfg();
    let rv = Rendezvous::bind("127.0.0.1:0", cfg).expect("bind rendezvous");
    let addr = rv.local_addr().unwrap();
    let store = MemStore::new(RANKS);
    let m = x.len() / RANKS;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let rv_ref = &rv;
        let driver = s.spawn(move || rv_ref.serve(RANKS).unwrap());
        let handles: Vec<_> = (0..RANKS)
            .map(|_| {
                let (addr, st) = (addr.clone(), &store);
                s.spawn(move || {
                    let boot = Bootstrap::join(&addr, cfg).unwrap();
                    let (mut comm, _control) = WireComm::from_bootstrap(boot);
                    let local = &x[comm.rank() * m..(comm.rank() + 1) * m];
                    run_wire_recoverable(
                        dist,
                        &mut comm,
                        local,
                        ChargePolicy::WallClock,
                        &ThreadPool::serial(),
                        st,
                        None,
                    )
                    .expect("undisturbed run")
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(driver.join().unwrap());
    });
    t0.elapsed().as_nanos() as f64
}

/// One faulted job: rank `VICTIM` dies at `boundary`, everyone recovers.
/// Mirrors the launcher protocol: survivors reconnect on their own, the
/// victim's death releases a "respawn" that rejoins the dead slot and
/// replays from the checkpoint store.
fn recovered_ns(dist: &DistSoiFft, x: &[Complex64], boundary: usize) -> f64 {
    let cfg = cfg();
    let rv = Rendezvous::bind("127.0.0.1:0", cfg).expect("bind rendezvous");
    let addr = rv.local_addr().unwrap();
    let store = MemStore::new(RANKS);
    let m = x.len() / RANKS;
    let (dead_tx, dead_rx) = mpsc::channel::<()>();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let rv_ref = &rv;
        let driver = s.spawn(move || {
            let initial = rv_ref.serve(RANKS).unwrap();
            let recovery = rv_ref.reserve(RANKS, 1).unwrap();
            (initial, recovery)
        });
        let mut workers = Vec::new();
        for _ in 0..RANKS {
            let (addr, st) = (addr.clone(), &store);
            let dead_tx = dead_tx.clone();
            workers.push(s.spawn(move || {
                let boot = Bootstrap::join(&addr, cfg).unwrap();
                let (mut comm, _control) = WireComm::from_bootstrap(boot);
                let rank = comm.rank();
                let local = &x[rank * m..(rank + 1) * m];
                let fault = (rank == VICTIM).then(|| FaultPlan::fail_comm(VICTIM, boundary));
                let res = run_wire_recoverable(
                    dist,
                    &mut comm,
                    local,
                    ChargePolicy::WallClock,
                    &ThreadPool::serial(),
                    st,
                    fault,
                );
                if rank == VICTIM {
                    assert!(res.is_err(), "victim must die");
                    dead_tx.send(()).unwrap();
                } else {
                    res.unwrap_or_else(|e| panic!("survivor rank {rank}: {e}"));
                }
            }));
        }
        drop(dead_tx);
        let st = &store;
        let respawn = s.spawn(move || {
            dead_rx.recv().expect("victim signals its death");
            let boot = Bootstrap::rejoin(&addr, VICTIM, 1, cfg).unwrap();
            let (mut comm, _control) = WireComm::from_bootstrap(boot);
            let ckpt = st.load(VICTIM).unwrap().expect("victim checkpoint");
            run_wire_recoverable(
                dist,
                &mut comm,
                &ckpt.x_local,
                ChargePolicy::WallClock,
                &ThreadPool::serial(),
                st,
                None,
            )
            .expect("respawned rank replays clean");
        });
        for w in workers {
            w.join().unwrap();
        }
        respawn.join().unwrap();
        drop(driver.join().unwrap());
    });
    t0.elapsed().as_nanos() as f64
}

fn main() {
    let n = env_usize("SOI_BENCH_FAULT_N", 1 << 14);
    let samples = env_usize("SOI_BENCH_FAULT_SAMPLES", 3);
    let params = SoiParams::with_preset(n, P, AccuracyPreset::Digits10).expect("params");
    let dist = DistSoiFft::new(&params).expect("plan");
    let x = signal(n);

    let base = median((0..samples).map(|_| undisturbed_ns(&dist, &x)).collect());
    println!("undisturbed N={n} {RANKS} ranks: {:.2} ms", base / 1e6);

    let mut rows = Vec::new();
    for boundary in 0..=LAST_BOUNDARY {
        let rec = median(
            (0..samples)
                .map(|_| recovered_ns(&dist, &x, boundary))
                .collect(),
        );
        let overhead = rec - base;
        println!(
            "boundary {boundary}: recovered {:>8.2} ms, overhead {:>8.2} ms ({:.1}x undisturbed)",
            rec / 1e6,
            overhead / 1e6,
            rec / base
        );
        rows.push(format!(
            "    {{\"boundary\":{boundary},\"recovered_ns\":{rec:.0},\
             \"overhead_ns\":{overhead:.0},\"over_undisturbed\":{:.3}}}",
            rec / base
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fault_recovery\",\n  \"ranks\": {RANKS},\n  \
         \"victim\": {VICTIM},\n  \"n\": {n},\n  \"p\": {P},\n  \
         \"samples\": {samples},\n  \"undisturbed_ns\": {base:.0},\n  \
         \"recovery\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = std::env::var("SOI_BENCH_FAULTS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json").to_string()
    });
    std::fs::write(&path, &json).expect("write fault bench json");
    println!("wrote {path}");
}
