//! Kernel bench: the local FFT engines across sizes and planner paths.
//!
//! The node-local FFTs are the compute substrate of both distributed
//! algorithms (Fig 2 uses "Intel MKL FFTs ... as building blocks"; we use
//! these). Throughput here anchors the `ComputeRates` discussion in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soi_bench::workload::tone_mix;
use soi_fft::Plan;

fn bench_pow2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_pow2");
    for lg in [10usize, 12, 14, 16] {
        let n = 1usize << lg;
        let plan = Plan::<f64>::forward(n);
        let x = tone_mix(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut buf = x.clone();
            let mut scratch = buf.clone();
            b.iter(|| plan.execute_with_scratch(&mut buf, &mut scratch));
        });
    }
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_engines");
    // Same magnitude, three planner paths.
    for n in [4096usize, 3 * 1280, 4093] {
        let plan = Plan::<f64>::forward(n);
        let x = tone_mix(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new(plan.engine_name(), n),
            &n,
            |b, _| {
                let mut buf = x.clone();
                b.iter(|| plan.execute(&mut buf));
            },
        );
    }
    g.finish();
}

fn bench_batch(c: &mut Criterion) {
    // The I ⊗ F_P pattern at SOI-realistic P.
    let mut g = c.benchmark_group("batch_fp");
    for p in [16usize, 32, 64] {
        let rows = 4096;
        let exec = soi_fft::batch::BatchFft::<f64>::new(p, soi_fft::Direction::Forward, 1);
        let x = tone_mix(rows * p);
        g.throughput(Throughput::Elements((rows * p) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            let mut buf = x.clone();
            b.iter(|| exec.execute(&mut buf));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pow2, bench_engines, bench_batch
}
criterion_main!(benches);
