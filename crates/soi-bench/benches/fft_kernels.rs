//! Kernel bench: the local FFT engines across sizes and planner paths.
//!
//! The node-local FFTs are the compute substrate of both distributed
//! algorithms (Fig 2 uses "Intel MKL FFTs ... as building blocks"; we use
//! these). Throughput here anchors the `ComputeRates` discussion in
//! DESIGN.md.
//!
//! Harness-free binary on the soi-testkit timer: run with `cargo bench
//! --bench fft_kernels` (or directly); `SOI_BENCH_SAMPLES=3
//! SOI_BENCH_WARMUP_MS=5 SOI_BENCH_TARGET_MS=2` gives a smoke run.

use soi_bench::workload::tone_mix;
use soi_fft::Plan;
use soi_testkit::Bencher;

fn bench_pow2() {
    let mut g = Bencher::new("fft_pow2").samples(20);
    for lg in [10usize, 12, 14, 16] {
        let n = 1usize << lg;
        let plan = Plan::<f64>::forward(n);
        let x = tone_mix(n);
        g.throughput_elements(n as u64);
        let mut buf = x.clone();
        let mut scratch = buf.clone();
        g.bench(&n.to_string(), || {
            plan.execute_with_scratch(&mut buf, &mut scratch)
        });
    }
}

fn bench_engines() {
    let mut g = Bencher::new("fft_engines").samples(20);
    // Same magnitude, three planner paths.
    for n in [4096usize, 3 * 1280, 4093] {
        let plan = Plan::<f64>::forward(n);
        let x = tone_mix(n);
        g.throughput_elements(n as u64);
        let mut buf = x.clone();
        g.bench(&format!("{}/{n}", plan.engine_name()), || {
            plan.execute(&mut buf)
        });
    }
}

fn bench_batch() {
    // The I ⊗ F_P pattern at SOI-realistic P.
    let mut g = Bencher::new("batch_fp").samples(20);
    for p in [16usize, 32, 64] {
        let rows = 4096;
        let exec = soi_fft::batch::BatchFft::<f64>::new(p, soi_fft::Direction::Forward, 1);
        let x = tone_mix(rows * p);
        g.throughput_elements((rows * p) as u64);
        let mut buf = x.clone();
        g.bench(&p.to_string(), || exec.execute(&mut buf));
    }
}

fn main() {
    bench_pow2();
    bench_engines();
    bench_batch();
}
