//! Kernel microbench: per-engine ns/point and nominal-GFLOPS fraction of
//! peak, recorded to `BENCH_kernels.json` at the repo root.
//!
//! One row per butterfly engine the planner can dispatch to (Stockham,
//! mixed-radix, four-step, Bluestein) plus the SOI convolution kernel.
//! GFLOPS use the paper's §7.1 nominal conventions from
//! [`soi_fft::flops`] (`5N·log₂N` per FFT, `8B` real ops per convolution
//! output point); the peak reference is either `SOI_PEAK_GFLOPS` (set it
//! to the machine's true single-core SIMD FMA peak for honest fractions)
//! or, by default, a measured scalar-FMA-chain proxy — a lower bound on
//! peak, so default fractions are *optimistic* and labeled as such via
//! `peak_source`.
//!
//! Env knobs: the soi-testkit timer set (`SOI_BENCH_SAMPLES`,
//! `SOI_BENCH_WARMUP_MS`, `SOI_BENCH_TARGET_MS`), plus
//! `SOI_BENCH_KERNELS_OUT` to redirect the JSON (smoke runs).

use soi_bench::workload::tone_mix;
use soi_core::coeff::ConvCoefficients;
use soi_core::conv::{convolve, convolve_portable, kernel_name};
use soi_core::{SoiFft, SoiParams};
use soi_fft::flops::{conv_flops, fft_flops};
use soi_fft::Plan;
use soi_num::{AlignedBuf, Complex64};
use soi_testkit::{black_box, BenchStats, Bencher};
use soi_window::AccuracyPreset;

/// Peak-GFLOPS reference: `SOI_PEAK_GFLOPS` if set, else a measured
/// proxy — eight independent vector-FMA chains when the CPU has
/// AVX2+FMA (the same features the conv kernel dispatches on), else
/// eight scalar multiply-add chains. Plain `a*b + c` in the scalar
/// fallback, deliberately: `f64::mul_add` without the FMA target
/// feature lowers to a software fma call and would *under*-measure
/// peak, inflating every fraction. Either way a sustained lower bound
/// for one core, not the datasheet number.
fn peak_gflops() -> (f64, &'static str) {
    if let Some(x) = std::env::var("SOI_PEAK_GFLOPS")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|&v| v > 0.0)
    {
        return (x, "env");
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: features just checked.
        return (unsafe { avx2_fma_peak() }, "measured_avx2_fma_proxy");
    }
    let iters: u64 = 1 << 24;
    let x = black_box(1.000000119_f64);
    let y = black_box(1e-9_f64);
    let mut acc = [0.0f64; 8];
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        for a in acc.iter_mut() {
            *a = *a * x + y;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    black_box(acc);
    // 2 real ops (mul + add) per chain step, 8 chains per iteration.
    ((iters * 8 * 2) as f64 / dt / 1e9, "measured_scalar_mac_proxy")
}

/// Eight independent 4-wide FMA chains: enough parallelism to saturate
/// both FMA ports past the instruction latency, so the measurement
/// approaches the core's true vector-FMA throughput.
///
/// SAFETY: caller must check avx2+fma.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn avx2_fma_peak() -> f64 {
    use std::arch::x86_64::*;
    let iters: u64 = 1 << 23;
    let x = _mm256_set1_pd(black_box(1.000000119_f64));
    let y = _mm256_set1_pd(black_box(1e-9_f64));
    let mut acc = [_mm256_setzero_pd(); 8];
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        for a in acc.iter_mut() {
            *a = _mm256_fmadd_pd(*a, x, y);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let mut sink = [0.0f64; 4];
    _mm256_storeu_pd(sink.as_mut_ptr(), acc[0]);
    black_box(sink);
    // 4 lanes × 2 real ops per FMA, 8 chains per iteration.
    (iters * 8 * 4 * 2) as f64 / dt / 1e9
}

struct Row {
    kernel: String,
    n: usize,
    stats: BenchStats,
    flops: f64,
    /// Transforms per timed iteration (`ns_per_point` divides by
    /// `transforms · n`).
    transforms: f64,
    /// Which implementation produced the number: `"avx2+fma"`,
    /// `"portable"`, or `"mixed"` for plans with both kinds of stage.
    dispatch: String,
}

fn bench_fft_engines(g: &mut Bencher, rows: &mut Vec<Row>) {
    // One size per planner dispatch path; the engine-name assert keeps
    // the labels honest if thresholds ever move. Each iteration runs a
    // forward + normalized-inverse round trip: the buffer returns to
    // ≈unit scale so no input-staging copy pollutes the timed region
    // (a full copy is ~10% of a Stockham transform at these sizes), and
    // both directions exercise the same kernels. `ns_per_point` is per
    // transform (the round trip counts as two).
    for (n, want_engine) in [
        (16384usize, "stockham"),   // 2^14, below the four-step threshold
        (20480, "mixed-radix"),     // 2^12·5: the radix-4/5 codelet path
        (163840, "four-step"),      // 2^15·5: production M'
        (4093, "bluestein"),        // prime
    ] {
        let fwd = Plan::<f64>::forward(n);
        let inv = Plan::<f64>::inverse(n);
        assert_eq!(fwd.engine_name(), want_engine, "size {n} dispatched away");
        // Aligned data + scratch, matching what the workspace arena hands
        // the engines in production: a plain Vec this size lands 16 bytes
        // past a page, where half the 32-byte SIMD loads straddle lines.
        let mut buf = AlignedBuf::from_slice(&tone_mix(n));
        let mut scratch =
            AlignedBuf::<Complex64>::zeroed(fwd.scratch_len().max(inv.scratch_len()));
        g.throughput_elements(2 * n as u64);
        let stats = g.bench(&format!("{want_engine}/{n}"), || {
            fwd.execute_with_scratch(&mut buf, &mut scratch);
            inv.execute_with_scratch(&mut buf, &mut scratch);
            black_box(buf[0])
        });
        // Bluestein really runs two padded-length FFTs plus three
        // pointwise chirp sweeps per transform; the nominal 5·N·log₂N
        // undercounts that several-fold at a prime N, which made the row
        // read as idle silicon rather than an algorithmic detour. Count
        // the work the engine actually executes.
        let per_transform = if want_engine == "bluestein" {
            let m = (2 * n - 1).next_power_of_two();
            2.0 * fft_flops(m) + 12.0 * n as f64 + 6.0 * m as f64
        } else {
            fft_flops(n)
        };
        rows.push(Row {
            kernel: want_engine.to_string(),
            n,
            stats,
            flops: 2.0 * per_transform,
            transforms: 2.0,
            dispatch: fwd.dispatch_name().to_string(),
        });
    }
}

/// Real-input FFT rows at the Stockham complex row's length, so the r2c
/// lever has a tracked baseline. The flop count is the work the packed
/// half-spectrum transform actually executes — one half-length complex
/// FFT plus the ~8-op/point Hermitian split epilogue — not the
/// `5·N·log₂N / 2` complex-budget proxy, which credited the row with
/// flops it never issues and understated the fraction of peak.
fn realfft_flops(n: usize) -> f64 {
    fft_flops(n / 2) + 8.0 * n as f64
}

fn bench_realfft(g: &mut Bencher, rows: &mut Vec<Row>) {
    use soi_fft::realfft::{RealFft, RealIfft};
    let n = 16384usize;
    let plan = RealFft::<f64>::new(n);
    let x: Vec<f64> = tone_mix(n).iter().map(|c| c.re).collect();
    let mut out = AlignedBuf::<Complex64>::zeroed(plan.output_len());
    let mut scratch = AlignedBuf::<Complex64>::zeroed(plan.scratch_len());
    g.throughput_elements(n as u64);
    let stats = g.bench(&format!("realfft/{n}"), || {
        plan.forward_into(&x, &mut out, &mut scratch);
        black_box(out[0])
    });
    rows.push(Row {
        kernel: "realfft".to_string(),
        n,
        stats,
        flops: realfft_flops(n),
        transforms: 1.0,
        dispatch: soi_fft::simd::kernel_name().to_string(),
    });

    // The inverse through the allocation-free `inverse_into` seam: same
    // half-length trick in reverse (Hermitian merge, then a half-length
    // inverse FFT).
    let iplan = RealIfft::<f64>::new(n);
    let spec = out.to_vec();
    let mut xr = vec![0.0f64; n];
    let mut iscratch = AlignedBuf::<Complex64>::zeroed(iplan.scratch_len());
    let stats = g.bench(&format!("realfft-inverse/{n}"), || {
        iplan.inverse_into(&spec, &mut xr, &mut iscratch);
        black_box(xr[0])
    });
    rows.push(Row {
        kernel: "realfft-inverse".to_string(),
        n,
        stats,
        flops: realfft_flops(n),
        transforms: 1.0,
        dispatch: soi_fft::simd::kernel_name().to_string(),
    });
}

/// The chirp multiply Bluestein leans on — the in-place weighted complex
/// product through the `soi_fft::simd` seam (6 real ops per point). Its
/// own row keeps the pre/post sweeps visible instead of smeared into the
/// bluestein total.
fn bench_chirp(g: &mut Bencher, rows: &mut Vec<Row>) {
    let n = 16384usize;
    // Unit-modulus weights (a quadratic chirp, like the real thing) so
    // the repeated in-place product can never drift toward 0 or inf.
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let phi = std::f64::consts::PI * (k as f64) * (k as f64) / n as f64;
            Complex64::new(phi.cos(), phi.sin())
        })
        .collect();
    let w = AlignedBuf::from_slice(&chirp);
    let mut buf = AlignedBuf::from_slice(&tone_mix(n));
    g.throughput_elements(n as u64);
    let stats = g.bench(&format!("chirp-mul/{n}"), || {
        soi_fft::simd::weighted_product_in(&mut buf, &w);
        black_box(buf[0])
    });
    rows.push(Row {
        kernel: "chirp-mul".to_string(),
        n,
        stats,
        flops: 6.0 * n as f64,
        transforms: 1.0,
        dispatch: soi_fft::simd::kernel_name().to_string(),
    });
}

fn bench_conv_kernel(g: &mut Bencher, rows: &mut Vec<Row>) {
    let n = 1usize << 16;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).expect("params");
    let soi = SoiFft::new(&params).expect("plan");
    let cfg = *soi.config();
    let shape = soi.shape();
    let coeffs: &ConvCoefficients = soi.coefficients();
    let x = tone_mix(n);
    let mut xext = AlignedBuf::<Complex64>::zeroed(cfg.n + cfg.halo_len());
    xext[..cfg.n].copy_from_slice(&x);
    let halo = xext[..cfg.halo_len()].to_vec();
    xext[cfg.n..].copy_from_slice(&halo);
    let mut out = AlignedBuf::<Complex64>::zeroed(cfg.n_prime);
    g.throughput_elements(cfg.n_prime as u64);
    let stats = g.bench(&format!("conv[{}]/{}", kernel_name(), cfg.n_prime), || {
        convolve(shape, coeffs, &xext, &mut out);
        black_box(out[0])
    });
    rows.push(Row {
        kernel: format!("conv[{}]", kernel_name()),
        n: cfg.n_prime,
        stats,
        flops: conv_flops(cfg.n_prime, cfg.taps()),
        transforms: 1.0,
        dispatch: kernel_name().to_string(),
    });
    if kernel_name() != "portable" {
        // SIMD ablation: the same tiling without the target-feature path.
        let stats = g.bench(&format!("conv[portable]/{}", cfg.n_prime), || {
            convolve_portable(shape, coeffs, &xext, &mut out);
            black_box(out[0])
        });
        rows.push(Row {
            kernel: "conv[portable]".to_string(),
            n: cfg.n_prime,
            stats,
            flops: conv_flops(cfg.n_prime, cfg.taps()),
            transforms: 1.0,
            dispatch: "portable".to_string(),
        });
    }
}

fn main() {
    let (peak, peak_source) = peak_gflops();
    let mut g = Bencher::new("kernel_report").samples(10);
    let mut rows: Vec<Row> = Vec::new();
    bench_fft_engines(&mut g, &mut rows);
    bench_realfft(&mut g, &mut rows);
    bench_chirp(&mut g, &mut rows);
    bench_conv_kernel(&mut g, &mut rows);

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let secs = r.stats.median_ns / 1e9;
            let gflops = r.flops / secs / 1e9;
            format!(
                "    {{\"kernel\":\"{}\",\"n\":{},\"dispatch\":\"{}\",\
                 \"ns_per_point\":{:.3},\
                 \"gflops\":{:.3},\"fraction_of_peak\":{:.4}}}",
                r.kernel,
                r.n,
                r.dispatch,
                r.stats.median_ns / (r.transforms * r.n as f64),
                gflops,
                gflops / peak
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernel_report\",\n  \"peak_gflops\": {peak:.3},\n  \
         \"peak_source\": \"{peak_source}\",\n  \"conv_dispatch\": \"{}\",\n  \
         \"samples\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        kernel_name(),
        rows[0].stats.samples,
        json_rows.join(",\n")
    );
    let path = std::env::var("SOI_BENCH_KERNELS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
    });
    std::fs::write(&path, &json).expect("write kernel bench json");
    println!("wrote {path} (peak {peak:.1} GFLOPS, {peak_source})");
}
