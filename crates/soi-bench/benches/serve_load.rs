//! Serve-layer latency/throughput bench: what does the long-lived
//! daemon buy, and how does it degrade under load?
//!
//! Two measurements, recorded to `BENCH_serve.json` at the repo root:
//!
//! 1. **Latency vs offered load** — `CLIENTS` open-loop clients pace
//!    identical full-transform requests at a fixed aggregate rate
//!    (0.25×, 0.5×, 1×, 2× of the calibrated single-stream capacity)
//!    and report p50/p99 response latency, achieved throughput, and how
//!    much admission control shed. Latencies are measured from each
//!    request's *scheduled* send time, so a sender falling behind under
//!    overload is charged, not hidden (no coordinated omission).
//! 2. **Batched vs unbatched ablation** — the same closed-loop client
//!    pool against a batching server (shared engines, hot arenas) and
//!    against `batching = false` (a fresh engine per request — exactly
//!    what `SOI_NO_BATCH=1` gives `soi serve`). Every response in both
//!    modes is verified bitwise against one locally computed
//!    `transform_into` reference before the ratio is reported.
//!
//! Harness-free binary (run via `cargo bench -p soi-bench`). Knobs:
//!
//! * `SOI_BENCH_SERVE_N` — transform size (default 2^15).
//! * `SOI_BENCH_SERVE_CLIENTS` — concurrent clients (default 8).
//! * `SOI_BENCH_SERVE_REQS` — requests per client per load point
//!   (default 30).
//! * `SOI_BENCH_SERVE_THREADS` — executor worker threads (default 2).
//! * `SOI_BENCH_SERVE_OUT` — output path override (default
//!   `BENCH_serve.json` at the repo root); CI smoke runs point this at
//!   a scratch file so the committed baseline is never clobbered.

use soi_core::{SoiFft, SoiParams, SoiWorkspace};
use soi_num::Complex64;
use soi_serve::{
    preset_for_digits, Reply, Request, RequestKind, Samples, ServeClient, ServeConfig, Server,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const P: usize = 4;
const DIGITS: u32 = 10;
const TIMEOUT: Duration = Duration::from_secs(300);

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|j| {
            let t = j as f64;
            Complex64::new((t * 0.37).sin() + 0.4 * (t * 1.7).cos(), (t * 0.11).cos())
        })
        .collect()
}

fn make_request(id: u64, n: usize, samples: &Arc<Vec<Complex64>>) -> Request {
    Request {
        id,
        tenant: "bench".into(),
        n,
        p: P,
        digits: DIGITS,
        kind: RequestKind::Full,
        arg: 0,
        deadline_ms: 0,
        samples: Samples::Complex(samples.as_ref().clone()),
    }
}

/// Single-stream closed-loop service rate: warm the engine, then time
/// back-to-back calls. The load ladder is expressed in multiples of
/// this.
fn calibrate_rps(addr: &str, n: usize, samples: &Arc<Vec<Complex64>>) -> f64 {
    let mut client = ServeClient::connect(addr, TIMEOUT).expect("calibration connect");
    for id in 0..3 {
        match client.call(&make_request(id, n, samples)).expect("warmup call") {
            Reply::Ok(_) => {}
            other => panic!("warmup: unexpected reply {other:?}"),
        }
    }
    let iters = 10u64;
    let t0 = Instant::now();
    for id in 0..iters {
        match client.call(&make_request(100 + id, n, samples)).expect("timed call") {
            Reply::Ok(_) => {}
            other => panic!("calibration: unexpected reply {other:?}"),
        }
    }
    let per_call = t0.elapsed().as_secs_f64() / iters as f64;
    let _ = client.bye();
    1.0 / per_call
}

struct LoadPoint {
    offered_rps: f64,
    achieved_rps: f64,
    p50_us: f64,
    p99_us: f64,
    ok: usize,
    shed: usize,
}

/// One open-loop load point: `clients` connections each pacing
/// `reqs` requests at `offered_rps / clients`, latencies from the
/// scheduled send instant to reply receipt.
fn run_load_point(
    addr: &str,
    n: usize,
    samples: &Arc<Vec<Complex64>>,
    clients: usize,
    reqs: usize,
    offered_rps: f64,
) -> LoadPoint {
    let per_client = offered_rps / clients as f64;
    let interval = Duration::from_secs_f64(1.0 / per_client);
    let t_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let samples = Arc::clone(samples);
            std::thread::spawn(move || {
                let client = ServeClient::connect(&addr, TIMEOUT).expect("load connect");
                let (mut sink, mut stream) = client.split().expect("split");
                let rx = std::thread::spawn(move || {
                    let mut events = Vec::with_capacity(reqs);
                    for _ in 0..reqs {
                        match stream.recv().expect("load recv") {
                            Reply::Ok(resp) => events.push((resp.id, Instant::now(), true)),
                            Reply::Rejected(rej) => events.push((rej.id, Instant::now(), false)),
                            other => panic!("load: unexpected reply {other:?}"),
                        }
                    }
                    events
                });
                let base = Instant::now();
                let mut scheds: HashMap<u64, Instant> = HashMap::with_capacity(reqs);
                for i in 0..reqs {
                    let id = (c * reqs + i) as u64;
                    let sched = base + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if now < sched {
                        std::thread::sleep(sched - now);
                    }
                    sink.send_request(&make_request(id, n, &samples)).expect("load send");
                    scheds.insert(id, sched);
                }
                let events = rx.join().expect("receiver thread");
                let _ = sink.bye();
                (scheds, events)
            })
        })
        .collect();

    let mut latencies_us: Vec<f64> = Vec::new();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for h in handles {
        let (scheds, events) = h.join().expect("client thread");
        for (id, at, was_ok) in events {
            if was_ok {
                ok += 1;
                let sched = scheds[&id];
                latencies_us.push(at.duration_since(sched).as_secs_f64() * 1e6);
            } else {
                shed += 1;
            }
        }
    }
    let wall = t_start.elapsed().as_secs_f64();
    latencies_us.sort_by(f64::total_cmp);
    let pick = |q: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() as f64 * q) as usize).min(latencies_us.len() - 1);
        latencies_us[idx]
    };
    LoadPoint {
        offered_rps,
        achieved_rps: ok as f64 / wall,
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        ok,
        shed,
    }
}

/// Closed-loop same-plan throughput against `server`; every response is
/// checked bitwise against `reference`.
fn closed_loop_rps(
    addr: &str,
    n: usize,
    samples: &Arc<Vec<Complex64>>,
    reference: &Arc<Vec<Complex64>>,
    clients: usize,
    reqs: usize,
) -> f64 {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let samples = Arc::clone(samples);
            let reference = Arc::clone(reference);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr, TIMEOUT).expect("ablation connect");
                for i in 0..reqs {
                    let id = (c * reqs + i) as u64;
                    match client.call(&make_request(id, n, &samples)).expect("ablation call") {
                        Reply::Ok(resp) => {
                            assert_eq!(resp.id, id);
                            assert_eq!(resp.bins.len(), reference.len());
                            for (b, (got, want)) in
                                resp.bins.iter().zip(reference.iter()).enumerate()
                            {
                                assert_eq!(
                                    got.re.to_bits(),
                                    want.re.to_bits(),
                                    "id {id} bin {b}: re differs from direct transform_into"
                                );
                                assert_eq!(
                                    got.im.to_bits(),
                                    want.im.to_bits(),
                                    "id {id} bin {b}: im differs from direct transform_into"
                                );
                            }
                        }
                        other => panic!("ablation: unexpected reply {other:?}"),
                    }
                }
                let _ = client.bye();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("ablation client");
    }
    (clients * reqs) as f64 / t0.elapsed().as_secs_f64()
}

fn start_server(threads: usize, batching: bool) -> Server {
    Server::start(ServeConfig {
        threads,
        batching,
        queue_cap: 64,
        ..ServeConfig::default()
    })
    .expect("server start")
}

fn main() {
    let n = env_usize("SOI_BENCH_SERVE_N", 1 << 15);
    let clients = env_usize("SOI_BENCH_SERVE_CLIENTS", 8);
    let reqs = env_usize("SOI_BENCH_SERVE_REQS", 30);
    let threads = env_usize("SOI_BENCH_SERVE_THREADS", 2);
    let samples = Arc::new(signal(n));

    // The bitwise ground truth for the ablation's response checks.
    let params = SoiParams::with_preset(n, P, preset_for_digits(DIGITS)).expect("params");
    let soi = SoiFft::new(&params).expect("pipeline");
    let mut ws = SoiWorkspace::new(&soi, 1);
    let mut reference = vec![Complex64::ZERO; n];
    soi.transform_into(&samples, &mut reference, &mut ws).expect("reference");
    let reference = Arc::new(reference);

    // --- latency vs offered load ---
    let mut server = start_server(threads, true);
    let addr = server.addr().to_string();
    let capacity = calibrate_rps(&addr, n, &samples);
    println!(
        "serve_load N={n} P={P} digits={DIGITS} threads={threads}: capacity ~ {capacity:.1} req/s"
    );
    let mut load_json = Vec::new();
    for &x in &[0.25f64, 0.5, 1.0, 2.0] {
        let point = run_load_point(&addr, n, &samples, clients, reqs, capacity * x);
        println!(
            "load {x:>4}x ({:>7.1} req/s offered): achieved {:>7.1} req/s, p50 {:>9.0} us, \
             p99 {:>9.0} us, ok {:>4}, shed {:>4}",
            point.offered_rps, point.achieved_rps, point.p50_us, point.p99_us, point.ok, point.shed
        );
        load_json.push(format!(
            "    {{\"x\":{x},\"offered_rps\":{:.1},\"achieved_rps\":{:.1},\"p50_us\":{:.0},\
             \"p99_us\":{:.0},\"ok\":{},\"shed\":{}}}",
            point.offered_rps, point.achieved_rps, point.p50_us, point.p99_us, point.ok, point.shed
        ));
    }
    let snap = server.stats();
    println!(
        "server: {} batches / {} requests (max {}/batch), plan cache {} hits {} misses",
        snap.batches, snap.batched_requests, snap.max_batch, snap.plan_hits, snap.plan_misses
    );
    {
        let mut c = ServeClient::connect(&addr, TIMEOUT).expect("shutdown connect");
        c.shutdown().expect("shutdown");
    }
    server.join();

    // --- batched vs unbatched ablation ---
    let abl_reqs = reqs.max(10);
    let mut batched_server = start_server(threads, true);
    let batched_rps = closed_loop_rps(
        batched_server.addr(),
        n,
        &samples,
        &reference,
        clients,
        abl_reqs,
    );
    {
        let mut c = ServeClient::connect(batched_server.addr(), TIMEOUT).expect("shutdown");
        c.shutdown().expect("shutdown");
    }
    batched_server.join();

    let mut unbatched_server = start_server(threads, false);
    let unbatched_rps = closed_loop_rps(
        unbatched_server.addr(),
        n,
        &samples,
        &reference,
        clients,
        abl_reqs,
    );
    {
        let mut c = ServeClient::connect(unbatched_server.addr(), TIMEOUT).expect("shutdown");
        c.shutdown().expect("shutdown");
    }
    unbatched_server.join();

    let ratio = batched_rps / unbatched_rps;
    println!(
        "ablation ({clients} clients x {abl_reqs} same-plan requests): batched {batched_rps:.1} \
         req/s vs unbatched {unbatched_rps:.1} req/s — {ratio:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"soi_serve\",\n  \"n\": {n},\n  \"p\": {P},\n  \"digits\": {DIGITS},\n  \
         \"clients\": {clients},\n  \"reqs_per_client\": {reqs},\n  \"threads\": {threads},\n  \
         \"capacity_rps\": {capacity:.1},\n  \"load\": [\n{}\n  ],\n  \"ablation\": {{\n    \
         \"reqs_per_client\": {abl_reqs},\n    \"batched_rps\": {batched_rps:.1},\n    \
         \"unbatched_rps\": {unbatched_rps:.1},\n    \"batched_over_unbatched\": {ratio:.3},\n    \
         \"unbatched_over_batched\": {:.3}\n  }}\n}}\n",
        load_json.join(",\n"),
        1.0 / ratio
    );
    let path = std::env::var("SOI_BENCH_SERVE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    std::fs::write(&path, &json).expect("write serve bench json");
    println!("wrote {path}");
}
