//! Distributed-transport bench: what does the real wire cost?
//!
//! Two measurements, recorded to `BENCH_dist.json` at the repo root:
//!
//! 1. **All-to-all, wire vs simnet** — the same pairwise-exchange
//!    collective timed over localhost TCP sockets (`soi-wire` loopback
//!    mesh) and over the in-process channel fabric (`soi-simnet`), per
//!    payload size. The ratio is the real price of crossing the kernel's
//!    network stack, which the single-all-to-all design exists to pay as
//!    few times as possible.
//! 2. **End-to-end phase breakdown** — one distributed SOI FFT on each
//!    transport, reporting the per-phase wall seconds (max across ranks)
//!    so exchange vs compute can be compared between fabrics.
//!
//! Harness-free binary (run via `cargo bench -p soi-bench`). Knobs:
//!
//! * `SOI_BENCH_DIST_ITERS` — collective reps per sample (default 20).
//! * `SOI_BENCH_DIST_N` — end-to-end transform size (default 2^16).
//! * `SOI_BENCH_DIST_OUT` — output path override (default
//!   `BENCH_dist.json` at the repo root); CI smoke runs point this at a
//!   scratch file so the committed baseline is never clobbered.

use soi_core::SoiParams;
use soi_dist::{ChargePolicy, DistSoiFft, PhaseTimes};
use soi_num::Complex64;
use soi_simnet::Cluster;
use soi_window::AccuracyPreset;
use soi_wire::{run_loopback, WireConfig};
use std::time::Instant;

const RANKS: usize = 4;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn payload(elements: usize, rank: usize) -> Vec<Complex64> {
    (0..elements)
        .map(|i| Complex64::new((i + rank) as f64, (i * 7 + rank) as f64 * 0.5))
        .collect()
}

/// Median of a small sample set (ns).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Time `iters` back-to-back all-to-alls across all ranks of a loopback
/// TCP mesh; returns per-op wall nanoseconds (whole-mesh round time).
fn wire_all_to_all_ns(elements: usize, iters: usize, samples: usize) -> f64 {
    let times = (0..samples)
        .map(|_| {
            run_loopback(RANKS, WireConfig::default(), move |comm| {
                let send = payload(elements, comm.rank());
                let mut recv = vec![Complex64::ZERO; elements];
                // One warm-up round, then the timed block.
                comm.all_to_all(&send, &mut recv).unwrap();
                let t0 = Instant::now();
                for _ in 0..iters {
                    comm.all_to_all(&send, &mut recv).unwrap();
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .expect("loopback mesh")
            .into_iter()
            .fold(0.0, f64::max)
        })
        .collect();
    median(times)
}

/// Same measurement over the in-process channel fabric.
fn simnet_all_to_all_ns(elements: usize, iters: usize, samples: usize) -> f64 {
    let times = (0..samples)
        .map(|_| {
            Cluster::ideal(RANKS)
                .run_collect(move |comm| {
                    let send = payload(elements, comm.rank());
                    let mut recv = vec![Complex64::ZERO; elements];
                    comm.all_to_all(&send, &mut recv);
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        comm.all_to_all(&send, &mut recv);
                    }
                    t0.elapsed().as_nanos() as f64 / iters as f64
                })
                .into_iter()
                .fold(0.0, f64::max)
        })
        .collect();
    median(times)
}

fn phase_row(t: &PhaseTimes) -> String {
    format!(
        "{{\"halo\":{:.6},\"conv\":{:.6},\"fft_small\":{:.6},\"fft_large\":{:.6},\
         \"scale\":{:.6},\"pack\":{:.6},\"exchange\":{:.6}}}",
        t.halo, t.conv, t.fft_small, t.fft_large, t.scale, t.pack, t.exchange
    )
}

/// One distributed SOI FFT per transport; returns (wire wall ns, wire
/// phases, simnet phases), phases as max across ranks.
fn end_to_end(n: usize) -> (f64, PhaseTimes, PhaseTimes) {
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).expect("params");
    let dist = DistSoiFft::new(&params).expect("plan");
    let x: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect();
    let m = n / RANKS;
    let (xr, dr) = (&x, &dist);

    let t0 = Instant::now();
    let wire_times = run_loopback(RANKS, WireConfig::default(), move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, ChargePolicy::WallClock).expect("soi run").1
    })
    .expect("loopback mesh")
    .iter()
    .fold(PhaseTimes::default(), |acc, t| acc.max_with(t));
    let wire_wall_ns = t0.elapsed().as_nanos() as f64;

    let sim_times = Cluster::ideal(RANKS)
        .run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            dr.run(comm, local, ChargePolicy::WallClock).expect("soi run").1
        })
        .iter()
        .fold(PhaseTimes::default(), |acc, t| acc.max_with(t));
    (wire_wall_ns, wire_times, sim_times)
}

fn main() {
    let iters = env_usize("SOI_BENCH_DIST_ITERS", 20);
    let samples = 5;
    let mut rows = Vec::new();
    for lg in [12usize, 14, 16] {
        let elements = 1usize << lg; // send-buffer Complex64 per rank
        let bytes = elements * std::mem::size_of::<Complex64>();
        let wire = wire_all_to_all_ns(elements, iters, samples);
        let sim = simnet_all_to_all_ns(elements, iters, samples);
        println!(
            "all_to_all {RANKS} ranks, {bytes:>8} B/rank: wire {:>12.0} ns/op, simnet {:>10.0} ns/op, ratio {:>6.1}x",
            wire,
            sim,
            wire / sim
        );
        rows.push(format!(
            "    {{\"elements_per_rank\":{elements},\"bytes_per_rank\":{bytes},\
             \"wire_ns_per_op\":{wire:.0},\"simnet_ns_per_op\":{sim:.0},\
             \"wire_over_simnet\":{:.3}}}",
            wire / sim
        ));
    }

    let n = env_usize("SOI_BENCH_DIST_N", 1 << 16);
    let (wire_wall_ns, wire_t, sim_t) = end_to_end(n);
    println!(
        "end_to_end N={n}: wire wall {:.1} ms; exchange wire {:.3} ms vs simnet {:.3} ms",
        wire_wall_ns / 1e6,
        wire_t.exchange * 1e3,
        sim_t.exchange * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"soi_dist_wire\",\n  \"ranks\": {RANKS},\n  \
         \"collective_iters\": {iters},\n  \"samples\": {samples},\n  \
         \"all_to_all\": [\n{}\n  ],\n  \"end_to_end\": {{\n    \"n\": {n},\n    \"p\": 8,\n    \
         \"wire_wall_ns\": {wire_wall_ns:.0},\n    \"wire_phases_s\": {},\n    \
         \"simnet_phases_s\": {}\n  }}\n}}\n",
        rows.join(",\n"),
        phase_row(&wire_t),
        phase_row(&sim_t)
    );
    let path = std::env::var("SOI_BENCH_DIST_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dist.json").to_string()
    });
    std::fs::write(&path, &json).expect("write dist bench json");
    println!("wrote {path}");
}
