//! End-to-end single-process bench: SOI transform vs a plain FFT of the
//! same size — §7.4's "about twice as much computation time" claim at the
//! node level (SOI buys its communication savings with this extra local
//! work).
//!
//! Harness-free binary on the soi-testkit timer (see fft_kernels.rs for
//! the env knobs).

use soi_bench::workload::tone_mix;
use soi_core::{SoiFft, SoiParams};
use soi_fft::Plan;
use soi_testkit::{black_box, Bencher};
use soi_window::AccuracyPreset;

fn bench_soi_vs_fft() {
    let mut g = Bencher::new("soi_vs_fft").samples(10);
    for lg in [14usize, 16] {
        let n = 1usize << lg;
        let p = 8;
        let x = tone_mix(n);
        g.throughput_elements(n as u64);

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Full).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        g.bench(&format!("soi_full/{n}"), || {
            black_box(soi.transform(&x).unwrap())
        });

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).expect("params");
        let soi10 = SoiFft::new(&params).expect("plan");
        g.bench(&format!("soi_10digit/{n}"), || {
            black_box(soi10.transform(&x).unwrap())
        });

        let plan = Plan::<f64>::forward(n);
        let mut buf = x.clone();
        let mut scratch = buf.clone();
        g.bench(&format!("plain_fft/{n}"), || {
            plan.execute_with_scratch(&mut buf, &mut scratch)
        });
    }
}

fn main() {
    bench_soi_vs_fft();
}
