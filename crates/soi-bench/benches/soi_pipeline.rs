//! End-to-end single-process bench: SOI transform vs a plain FFT of the
//! same size — §7.4's "about twice as much computation time" claim at the
//! node level (SOI buys its communication savings with this extra local
//! work) — plus the serial-vs-threaded scaling of the pooled
//! `transform_into` path, recorded to `BENCH_pipeline.json` at the repo
//! root so the perf baseline is versioned alongside the code.
//!
//! Harness-free binary on the soi-testkit timer (see fft_kernels.rs for
//! the env knobs). Extra knobs:
//!
//! * `SOI_BENCH_PIPELINE_N` — overrides the scaling bench's transform
//!   size (default 2^20; CI smoke runs set a small value).
//! * `SOI_BENCH_PIPELINE_OUT` — overrides the output path (default
//!   `BENCH_pipeline.json` at the repo root). `scripts/perf_gate.sh`
//!   points this at a scratch file so a fresh measurement never
//!   clobbers the committed baseline it is compared against.
//! * `SOI_BENCH_PIPELINE_ONLY=1` — skip the soi-vs-fft comparison and
//!   run only the scaling/phase measurement (the part the gate needs).

use soi_bench::workload::tone_mix;
use soi_core::{SoiFft, SoiParams, SoiRealWorkspace, SoiWorkspace};
use soi_fft::Plan;
use soi_num::Complex64;
use soi_testkit::{black_box, BenchStats, Bencher};
use soi_trace::{phase_totals, Trace};
use soi_window::AccuracyPreset;

fn bench_soi_vs_fft() {
    let mut g = Bencher::new("soi_vs_fft").samples(10);
    for lg in [14usize, 16] {
        let n = 1usize << lg;
        let p = 8;
        let x = tone_mix(n);
        g.throughput_elements(n as u64);

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Full).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        g.bench(&format!("soi_full/{n}"), || {
            black_box(soi.transform(&x).unwrap())
        });

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).expect("params");
        let soi10 = SoiFft::new(&params).expect("plan");
        g.bench(&format!("soi_10digit/{n}"), || {
            black_box(soi10.transform(&x).unwrap())
        });

        let plan = Plan::<f64>::forward(n);
        let mut buf = x.clone();
        let mut scratch = buf.clone();
        g.bench(&format!("plain_fft/{n}"), || {
            plan.execute_with_scratch(&mut buf, &mut scratch)
        });
    }
}

/// Serial vs threaded `transform_into` on one reused workspace per worker
/// count. Results (including the host's available parallelism, so a
/// 1-core reading is not mistaken for a scaling failure) go to
/// `BENCH_pipeline.json` at the repo root.
fn bench_threaded_scaling() {
    let n: usize = std::env::var("SOI_BENCH_PIPELINE_N")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1 << 20);
    let p = 8;
    let cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).expect("params");
    let soi = SoiFft::new(&params).expect("plan");
    let x = tone_mix(n);
    let mut y = vec![Complex64::ZERO; n];

    let mut g = Bencher::new("soi_threaded").samples(10);
    g.throughput_elements(n as u64);
    let mut results: Vec<(usize, BenchStats)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut ws = SoiWorkspace::new(&soi, workers);
        let stats = g.bench(&format!("transform_into/{n}/w{workers}"), || {
            soi.transform_into(&x, &mut y, &mut ws).unwrap();
            black_box(y[0])
        });
        results.push((workers, stats));
    }

    // The r2c pipeline on the same signal's real part, per worker count:
    // `r2c_speedup` is the complex path's median over the real path's at
    // the same worker count — the headline lever the gate tracks.
    let xr: Vec<f64> = x.iter().map(|c| c.re).collect();
    let mut yr = vec![Complex64::ZERO; n / 2 + 1];
    let mut real_results: Vec<(usize, BenchStats)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut ws = SoiRealWorkspace::new(&soi, workers);
        let stats = g.bench(&format!("transform_real_into/{n}/w{workers}"), || {
            soi.transform_real_into(&xr, &mut yr, &mut ws).unwrap();
            black_box(yr[0])
        });
        real_results.push((workers, stats));
    }

    // One traced serial pass for the per-phase breakdown: attach a
    // recording handle, run once, and pair the stage spans by wall time.
    // Tracing is off during the timed samples above, so the numbers they
    // report are of the untraced hot path.
    let mut ws = SoiWorkspace::new(&soi, 1);
    ws.set_trace(Trace::recording(0));
    soi.transform_into(&x, &mut y, &mut ws).unwrap();
    let phase_rows: Vec<String> = phase_totals(&ws.trace().snapshot())
        .iter()
        .map(|(phase, ns)| format!("    {{\"phase\":\"{phase}\",\"total_ns\":{ns}}}"))
        .collect();

    // And the same traced pass for the real-input pipeline.
    let mut ws = SoiRealWorkspace::new(&soi, 1);
    ws.set_trace(Trace::recording(0));
    soi.transform_real_into(&xr, &mut yr, &mut ws).unwrap();
    let real_phase_rows: Vec<String> = phase_totals(&ws.trace().snapshot())
        .iter()
        .map(|(phase, ns)| format!("    {{\"phase\":\"{phase}\",\"total_ns\":{ns}}}"))
        .collect();

    let serial_ns = results[0].1.median_ns;
    let rows: Vec<String> = results
        .iter()
        .map(|(workers, s)| {
            format!(
                "    {{\"workers\":{workers},\"median_ns\":{:.3},\"min_ns\":{:.3},\"speedup\":{:.3}}}",
                s.median_ns,
                s.min_ns,
                serial_ns / s.median_ns
            )
        })
        .collect();
    let real_serial_ns = real_results[0].1.median_ns;
    let real_rows: Vec<String> = real_results
        .iter()
        .zip(&results)
        .map(|((workers, s), (_, cs))| {
            format!(
                "    {{\"workers\":{workers},\"median_ns\":{:.3},\"min_ns\":{:.3},\
                 \"speedup\":{:.3},\"r2c_speedup\":{:.3}}}",
                s.median_ns,
                s.min_ns,
                real_serial_ns / s.median_ns,
                cs.median_ns / s.median_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"soi_pipeline_threaded\",\n  \"n\": {n},\n  \"p\": {p},\n  \
         \"preset\": \"Digits10\",\n  \"available_parallelism\": {cores},\n  \
         \"samples\": {},\n  \"results\": [\n{}\n  ],\n  \"real_results\": [\n{}\n  ],\n  \
         \"phases_ns\": [\n{}\n  ],\n  \"real_phases_ns\": [\n{}\n  ]\n}}\n",
        results[0].1.samples,
        rows.join(",\n"),
        real_rows.join(",\n"),
        phase_rows.join(",\n"),
        real_phase_rows.join(",\n")
    );
    let path = std::env::var("SOI_BENCH_PIPELINE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
    });
    std::fs::write(&path, &json).expect("write pipeline bench json");
    println!("wrote {path} (available_parallelism = {cores})");
}

fn main() {
    let gate_only = std::env::var("SOI_BENCH_PIPELINE_ONLY").map(|v| v == "1") == Ok(true);
    if !gate_only {
        bench_soi_vs_fft();
    }
    bench_threaded_scaling();
}
