//! End-to-end single-process bench: SOI transform vs a plain FFT of the
//! same size — §7.4's "about twice as much computation time" claim at the
//! node level (SOI buys its communication savings with this extra local
//! work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soi_bench::workload::tone_mix;
use soi_core::{SoiFft, SoiParams};
use soi_fft::Plan;
use soi_window::AccuracyPreset;

fn bench_soi_vs_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("soi_vs_fft");
    for lg in [14usize, 16] {
        let n = 1usize << lg;
        let p = 8;
        let x = tone_mix(n);
        g.throughput(Throughput::Elements(n as u64));

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Full).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        g.bench_with_input(BenchmarkId::new("soi_full", n), &n, |b, _| {
            b.iter(|| soi.transform(&x).unwrap());
        });

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).expect("params");
        let soi10 = SoiFft::new(&params).expect("plan");
        g.bench_with_input(BenchmarkId::new("soi_10digit", n), &n, |b, _| {
            b.iter(|| soi10.transform(&x).unwrap());
        });

        let plan = Plan::<f64>::forward(n);
        g.bench_with_input(BenchmarkId::new("plain_fft", n), &n, |b, _| {
            let mut buf = x.clone();
            let mut scratch = buf.clone();
            b.iter(|| plan.execute_with_scratch(&mut buf, &mut scratch));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_soi_vs_fft
}
criterion_main!(benches);
