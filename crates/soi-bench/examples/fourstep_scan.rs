//! Split-calibration scan for the four-step engine: times every viable
//! `(a, b)` factorization of a target size against the planner's pick,
//! so `choose_split`'s cost-model constants can be re-fit whenever the
//! kernels change speed.
//!
//!     cargo run --release -p soi-bench --example fourstep_scan [n ...]
//!
//! Defaults to the production M' sizes. Prints median ns/point per
//! split plus a plain Stockham reference at 16384 (the acceptance
//! yardstick for M' = 163840).

use soi_bench::workload::tone_mix;
use soi_fft::fourstep::{FourStepFft, RawFft};
use soi_fft::plan::choose_split;
use soi_fft::twiddle::Sign;
use soi_num::Complex64;
use soi_testkit::black_box;
use std::sync::Arc;
use std::time::Instant;

fn median_ns(mut f: impl FnMut(), iters: usize, samples: usize) -> f64 {
    let mut meds: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    meds.sort_by(|x, y| x.partial_cmp(y).unwrap());
    meds[meds.len() / 2]
}

fn scan(n: usize) {
    println!("== n = {n} (choose_split picks a = {}) ==", choose_split(n));
    let x = tone_mix(n);
    let mut divisors: Vec<usize> = (2..=((n as f64).sqrt() as usize))
        .filter(|a| n % a == 0 && n / a > 1)
        .collect();
    divisors.retain(|&a| n / a <= 65536); // inner side must stay cacheable
    let iters = (200_000_000 / n).clamp(1, 200);
    for a in divisors {
        let b = n / a;
        let fa = Arc::new(RawFft::<f64>::new(a, Sign::Forward));
        let fb = Arc::new(RawFft::<f64>::new(b, Sign::Forward));
        let plan = FourStepFft::with_engines(n, Sign::Forward, fa, fb);
        let mut buf = x.clone();
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        let ns = median_ns(
            || {
                buf.copy_from_slice(&x);
                plan.execute_with_scratch(&mut buf, &mut scratch);
                black_box(buf[0]);
            },
            iters,
            7,
        );
        println!("  a={a:>5} b={b:>6}  {:8.3} ns/pt", ns / n as f64);
    }
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let sizes = if args.is_empty() {
        vec![40960, 163840]
    } else {
        args
    };

    // Reference row: the plain Stockham engine at 16384.
    let n = 16384;
    let x = tone_mix(n);
    let st = RawFft::<f64>::new(n, Sign::Forward);
    let mut buf = x.clone();
    let mut scratch = vec![Complex64::ZERO; st.scratch_len()];
    let ns = median_ns(
        || {
            buf.copy_from_slice(&x);
            st.execute_with_scratch(&mut buf, &mut scratch);
            black_box(buf[0]);
        },
        (200_000_000 / n).clamp(1, 400),
        7,
    );
    println!("stockham reference n=16384: {:.3} ns/pt", ns / n as f64);

    for n in sizes {
        scan(n);
    }
}
