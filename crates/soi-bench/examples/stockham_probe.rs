//! Quick Stockham timing probe for kernel tuning: ns/pt at a few sizes.
//!
//! Not a committed benchmark — `kernel_report` is the reporting bench;
//! this exists so kernel edits can be timed in seconds (`cargo run
//! --release -p soi-bench --example stockham_probe [sizes...]`).

use soi_bench::workload::tone_mix;
use soi_fft::plan::Plan;
use soi_testkit::black_box;
use std::time::Instant;

fn median_ns(mut f: impl FnMut() -> f64) -> f64 {
    let mut v: Vec<f64> = (0..9).map(|_| f()).collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![4096, 16384, 65536]
        } else {
            args
        }
    };
    let roundtrip = std::env::var("SOI_PROBE_ROUNDTRIP").is_ok();
    for n in sizes {
        let x = tone_mix(n);
        let iters = (40_000_000 / n).max(1);
        if roundtrip {
            // Mirror the kernel_report methodology: forward + normalized
            // inverse on the same buffer, ns/pt per transform.
            let fwd = Plan::<f64>::forward(n);
            let inv = Plan::<f64>::inverse(n);
            let mut buf = soi_num::AlignedBuf::from_slice(&x);
            let mut scratch = soi_num::AlignedBuf::<soi_num::Complex64>::zeroed(
                fwd.scratch_len().max(inv.scratch_len()),
            );
            let ns = median_ns(|| {
                let t = Instant::now();
                for _ in 0..iters {
                    fwd.execute_with_scratch(&mut buf, &mut scratch);
                    inv.execute_with_scratch(&mut buf, &mut scratch);
                    black_box(&buf);
                }
                t.elapsed().as_nanos() as f64 / (iters * 2 * n) as f64
            });
            println!("{:>10} [{} round-trip] {:>8.3} ns/pt", n, fwd.engine_name(), ns);
            continue;
        }
        for plan in [Plan::<f64>::forward(n), Plan::<f64>::inverse(n)] {
            let mut buf = x.clone();
            let ns = median_ns(|| {
                let t = Instant::now();
                for _ in 0..iters {
                    buf.copy_from_slice(&x);
                    plan.execute(&mut buf);
                    black_box(&buf);
                }
                t.elapsed().as_nanos() as f64 / (iters * n) as f64
            });
            println!(
                "{:>10} [{} {:?}] {:>8.3} ns/pt (incl. input copy)",
                n,
                plan.engine_name(),
                plan.direction(),
                ns
            );
        }
    }
}
