//! Ablation: the oversampling rate β (DESIGN.md §5.2).
//!
//! β trades three quantities against each other: the window support B
//! (aliasing room), the inflated FFT/exchange size (1+β), and the
//! asymptotic communication bound 3/(1+β). The paper fixes β = 1/4
//! ("by no means the only option"); this harness shows why that choice is
//! sensible.

use soi_bench::model::{soi_phases, Library, Scenario};
use soi_bench::report::render_table;
use soi_bench::PAPER_POINTS_PER_NODE;
use soi_dist::ComputeRates;
use soi_simnet::Fabric;
use soi_window::design_two_param;

fn main() {
    println!("Ablation: oversampling rate beta at full accuracy, 32-node Gordon\n");
    let rates = ComputeRates::paper_node();
    let fabric = Fabric::gordon_torus();
    let mut rows = Vec::new();
    for (mu, nu) in [(9usize, 8usize), (5, 4), (3, 2), (2, 1)] {
        let beta = mu as f64 / nu as f64 - 1.0;
        let design = match design_two_param(beta, 1e-15, 1000.0) {
            Ok(d) => d,
            Err(e) => {
                rows.push(vec![
                    format!("{mu}/{nu} (beta={beta:.3})"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("infeasible: {e}"),
                ]);
                continue;
            }
        };
        let s = Scenario {
            points_per_node: PAPER_POINTS_PER_NODE / nu * nu, // keep divisible
            nodes: 32,
            mu,
            nu,
            b: design.b,
            rates,
            fabric: fabric.clone(),
        };
        let t_soi = soi_phases(&s).total();
        let t_mkl = Library::Mkl.time(&s);
        rows.push(vec![
            format!("{mu}/{nu} (beta={beta:.3})"),
            design.b.to_string(),
            format!("{:.1}", s.gflops(t_soi)),
            format!("{:.2}", t_mkl / t_soi),
            format!("asymptote {:.2}", 3.0 / (1.0 + beta)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["mu/nu", "B", "SOI GFLOPS", "speedup vs MKL", "comm-bound limit"],
            &rows
        )
    );
    println!("Small beta needs a huge B (window must die inside a narrow guard band);");
    println!("large beta wastes exchange volume and caps the speedup at 3/(1+beta).");
    println!("beta = 1/4 balances both — the paper's \"favorite choice of 25%\".");
}
