//! Ablation: window family (DESIGN.md §5.3, paper §8).
//!
//! "Had we used a simple one-parameter Gaussian function, one can show
//! that the accuracy will be limited to 10 digits at best if β is kept at
//! 1/4. Achieving full double-precision accuracy would require β be set
//! to 1."

use soi_bench::report::render_table;
use soi_window::{design_gaussian, design_two_param};

fn main() {
    println!("Ablation: two-parameter (tau, sigma) window vs one-parameter Gaussian\n");
    let mut rows = Vec::new();
    for (beta_label, beta) in [("1/4", 0.25f64), ("1/2", 0.5), ("1", 1.0)] {
        for digits in [8usize, 10, 12, 14] {
            let target = 10f64.powi(-(digits as i32));
            // The Gaussian gets a 100× more generous κ budget and still
            // caps out — that asymmetry is the point of this ablation.
            let two = design_two_param(beta, target, 1000.0);
            let gauss = design_gaussian(beta, target, 1e5);
            rows.push(vec![
                beta_label.to_string(),
                digits.to_string(),
                match &two {
                    Ok(d) => format!("B={} k={:.0}", d.b, d.kappa),
                    Err(_) => "infeasible".into(),
                },
                match &gauss {
                    Ok(d) => format!("B={} k={:.0}", d.b, d.kappa),
                    Err(_) => "infeasible".into(),
                },
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["beta", "digits", "two-param (tau,sigma)", "gaussian"],
            &rows
        )
    );
    println!("Expected pattern (paper §8): the Gaussian family cannot reach >~10 digits");
    println!("at beta = 1/4 (alias and trunc decay fight each other through one knob);");
    println!("at beta = 1 it recovers full accuracy. The two-parameter family reaches");
    println!("full double precision at beta = 1/4 — the basis of every measured result.");
}
