//! §7.4's in-text analysis numbers, reproduced:
//!
//! * convolution arithmetic ≈ 4× a regular FFT (at 2²⁸/node × 32 nodes);
//! * SOI total arithmetic ≈ 5× a regular FFT;
//! * convolution runs at ~40% of peak vs ~10% for FFT, so convolution
//!   *time* ≈ the FFT time inside SOI, and SOI compute ≈ 2× a regular
//!   FFT's — "this penalty is more than offset by our savings in
//!   communication time";
//! * plus a locally *measured* kernel-efficiency comparison on this
//!   machine (relative rates, since absolute peak is unknown here).

use soi_bench::report::render_table;
use soi_core::opcount::OpBreakdown;
use soi_core::{SoiFft, SoiParams};
use soi_dist::ComputeRates;
use soi_num::Complex64;
use soi_window::AccuracyPreset;
use std::time::Instant;

fn main() {
    // --- Paper-scale arithmetic accounting. ---
    let cfg = soi_core::SoiConfig {
        n: 1 << 33,
        p: 32,
        m: 1 << 28,
        m_prime: (1usize << 28) / 4 * 5,
        n_prime: ((1usize << 28) / 4 * 5) * 32,
        mu: 5,
        nu: 4,
        b: 72,
        window: soi_window::TwoParamWindow::new(0.8, 300.0),
        kappa: 10.0,
        alias: 1e-16,
        trunc: 1e-16,
    };
    let ops = OpBreakdown::of(&cfg);
    println!("Arithmetic accounting at the paper's scale (2^28/node x 32 nodes, B=72):\n");
    let rows = vec![
        vec!["convolution / regular FFT".into(), format!("{:.2}x", ops.conv_ratio()), "\"almost fourfold\"".into()],
        vec!["SOI total / regular FFT".into(), format!("{:.2}x", ops.total_ratio()), "\"about fivefold\"".into()],
    ];
    println!("{}", render_table(&["quantity", "computed", "paper"], &rows));

    // --- Time accounting under the §7.4 efficiency model. ---
    let r = ComputeRates::paper_node();
    let t_fft_std = ops.standard_fft / r.fft_flops_per_sec;
    let t_fft_soi = (ops.fft_p + ops.fft_m) / r.fft_flops_per_sec;
    let t_conv = ops.conv / r.conv_flops_per_sec;
    println!("Time accounting (FFT at 10% of peak, convolution at 40% — §7.4):\n");
    let rows = vec![
        vec!["T_conv / T_fft-inside-SOI".into(), format!("{:.2}", t_conv / t_fft_soi), "\"about the same\"".into()],
        vec!["SOI compute / regular FFT".into(), format!("{:.2}x", (t_conv + t_fft_soi) / t_fft_std), "\"about twice\"".into()],
    ];
    println!("{}", render_table(&["quantity", "computed", "paper"], &rows));

    // --- Local measured kernel rates (this machine). ---
    println!("Measured kernel throughput on this machine (single thread):\n");
    let n = 1 << 16;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Full).expect("params");
    let soi = SoiFft::new(&params).expect("plan");
    let c = *soi.config();
    let x = soi_bench::workload::tone_mix(n);

    // Convolution kernel rate.
    let mut xext = x.clone();
    xext.extend_from_slice(&x[..c.halo_len()]);
    let mut v = vec![Complex64::ZERO; c.n_prime];
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        soi_core::conv::convolve(soi.shape(), soi.coefficients(), &xext, &mut v);
    }
    let conv_rate =
        reps as f64 * soi_fft::flops::conv_flops(c.n_prime, c.b) / t0.elapsed().as_secs_f64();

    // FFT rate at M'.
    let plan = soi_fft::Plan::<f64>::forward(c.m_prime);
    let mut buf = vec![Complex64::ZERO; c.m_prime];
    buf.copy_from_slice(&xext[..c.m_prime]);
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        plan.execute(&mut buf);
    }
    let fft_rate =
        reps as f64 * soi_fft::flops::fft_flops(c.m_prime) / t0.elapsed().as_secs_f64();

    println!("  convolution : {:.2} Gflop/s", conv_rate / 1e9);
    println!("  FFT (M'={}) : {:.2} Gflop/s (nominal)", c.m_prime, fft_rate / 1e9);
    println!(
        "  conv/FFT throughput ratio: {:.2} (paper's 40%/10% model predicts ~4;",
        conv_rate / fft_rate
    );
    println!("  regular streaming inner products beat an FFT's strided butterflies)");
}
