//! Figure 5 — weak scaling on Endeavor (fat-tree InfiniBand).
//!
//! Bars: GFLOPS of SOI, MKL, FFTE, FFTW; line: SOI-over-MKL speedup.
//! The paper runs 2²⁸ points/node; the series below is the §7.4 analytic
//! model at that scale (the paper's own methodology), preceded by a real
//! simulated-cluster validation run at a feasible scale.

use soi_bench::model::{soi_phases, Library, Scenario};
use soi_bench::report::{fmt_gflops, render_table};
use soi_bench::{simulate, PAPER_POINTS_PER_NODE};
use soi_dist::{ChargePolicy, ComputeRates, ExchangeVariant};
use soi_simnet::Fabric;
use soi_window::AccuracyPreset;

fn main() {
    let fabric = Fabric::endeavor_fat_tree();
    let rates = ComputeRates::paper_node();
    let preset = AccuracyPreset::Full;
    let b = preset.design(0.25).expect("window design").b;

    // --- Validation: real data movement on the simulated cluster. ---
    let p = 4;
    let n = soi_bench::points_per_node_from_env() * p;
    println!("Validation run (simulated cluster, {} ranks, N = 2^{:.0}):", p, (n as f64).log2());
    let policy = ChargePolicy::Rates(rates);
    let soi = simulate::run_soi(n, p, preset, fabric.clone(), policy);
    let base = simulate::run_baseline(n, p, fabric.clone(), policy, ExchangeVariant::Collective);
    println!(
        "  SOI : err vs exact FFT = {:.2e}, all-to-alls = {}, wire bytes = {}",
        soi.error_vs_exact, soi.all_to_alls, soi.bytes_on_wire
    );
    println!(
        "  MKL-: err vs exact FFT = {:.2e}, all-to-alls = {}, wire bytes = {}",
        base.error_vs_exact, base.all_to_alls, base.bytes_on_wire
    );
    println!();

    // --- The figure series at paper scale. ---
    println!(
        "Fig 5: Endeavor (fat tree), weak scaling, 2^28 points/node, B = {b}, beta = 1/4\n"
    );
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32, 64] {
        let s = Scenario {
            points_per_node: PAPER_POINTS_PER_NODE,
            nodes,
            mu: 5,
            nu: 4,
            b,
            rates,
            fabric: fabric.clone(),
        };
        let t_soi = soi_phases(&s).total();
        let g = |t: f64| fmt_gflops(s.gflops(t));
        let t_mkl = Library::Mkl.time(&s);
        rows.push(vec![
            nodes.to_string(),
            g(t_soi),
            g(t_mkl),
            g(Library::Fftw.time(&s)),
            g(Library::Ffte.time(&s)),
            format!("{:.2}", t_mkl / t_soi),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["nodes", "SOI GFLOPS", "MKL", "FFTW", "FFTE", "SOI/MKL speedup"],
            &rows
        )
    );
    println!("Paper's shape: SOI fastest throughout; speedup ≈1.3–1.6, larger beyond 32 nodes");
    println!("as the fat tree's linear scaling ends.");
}
