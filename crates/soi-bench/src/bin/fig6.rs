//! Figure 6 — weak scaling on Gordon (4-ary 3-D torus, concentration 16):
//! SOI vs Intel MKL with a 90% normal confidence interval, and the
//! SOI-over-MKL speedup line.
//!
//! The paper reports "a large range of reported performance" on Gordon
//! (shared machine); we reproduce the CI by perturbing the effective
//! bandwidth across repeated model evaluations with a seeded RNG, and the
//! central series from the §7.4 model at 2²⁸ points/node.

use soi_bench::model::{baseline_phases, soi_phases, Scenario};
use soi_bench::report::render_table;
use soi_bench::{simulate, PAPER_POINTS_PER_NODE};
use soi_dist::{ChargePolicy, ComputeRates, ExchangeVariant};
use soi_num::stats::RunningStats;
use soi_simnet::Fabric;
use soi_testkit::TestRng;
use soi_window::AccuracyPreset;

fn perturbed_fabric(rng: &mut TestRng) -> Fabric {
    // Shared-machine interference: effective collective efficiency varies
    // run to run (Gordon is a production XSEDE system).
    let eff = 0.22 * rng.f64_in(0.75..1.15);
    Fabric::Torus3D {
        concentration: 16,
        local_gbps: 40.0,
        global_gbps: 120.0,
        latency_s: 2e-6,
        efficiency: eff,
    }
}

fn main() {
    let rates = ComputeRates::paper_node();
    let preset = AccuracyPreset::Full;
    let b = preset.design(0.25).expect("window design").b;

    // Validation on the real simulated cluster.
    let p = 4;
    let n = soi_bench::points_per_node_from_env() * p;
    let soi = simulate::run_soi(
        n,
        p,
        preset,
        Fabric::gordon_torus(),
        ChargePolicy::Rates(rates),
    );
    let base = simulate::run_baseline(
        n,
        p,
        Fabric::gordon_torus(),
        ChargePolicy::Rates(rates),
        ExchangeVariant::Collective,
    );
    println!(
        "Validation (simulated cluster, {p} ranks): SOI err {:.2e} ({} exchange), baseline err {:.2e} ({} exchanges)\n",
        soi.error_vs_exact, soi.all_to_alls, base.error_vs_exact, base.all_to_alls
    );

    println!("Fig 6: Gordon (3-D torus), weak scaling, 2^28 points/node, 90% CI over 12 runs\n");
    let mut rows = Vec::new();
    let mut rng = TestRng::seed_from_u64(2012);
    for nodes in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut soi_stats = RunningStats::new();
        let mut mkl_stats = RunningStats::new();
        for _ in 0..12 {
            let s = Scenario {
                points_per_node: PAPER_POINTS_PER_NODE,
                nodes,
                mu: 5,
                nu: 4,
                b,
                rates,
                fabric: perturbed_fabric(&mut rng),
            };
            soi_stats.push(s.gflops(soi_phases(&s).total()));
            mkl_stats.push(s.gflops(baseline_phases(&s).total()));
        }
        let ci_s = soi_stats.confidence_interval(0.90);
        let ci_m = mkl_stats.confidence_interval(0.90);
        rows.push(vec![
            nodes.to_string(),
            format!("{:.1} [{:.1},{:.1}]", ci_s.mean, ci_s.lower, ci_s.upper),
            format!("{:.1} [{:.1},{:.1}]", ci_m.mean, ci_m.lower, ci_m.upper),
            format!("{:.2}", ci_s.mean / ci_m.mean),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["nodes", "SOI GFLOPS (90% CI)", "MKL GFLOPS (90% CI)", "speedup"],
            &rows
        )
    );
    println!("Paper's shape: speedup exceeds the Endeavor numbers from 32 nodes onward —");
    println!("\"consistent with the narrower bandwidth due to a 3-D torus topology\".");
}
