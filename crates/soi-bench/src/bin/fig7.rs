//! Figure 7 — the accuracy↔performance tradeoff on 64-node Gordon.
//!
//! "By allowing the condition number κ to gradually increase, faster-decay
//! convolution window functions can be obtained, which in turn leads to a
//! smaller B value" — each accuracy preset redesigns the window, B
//! shrinks, the convolution gets cheaper, and the speedup over MKL grows
//! (past 2× at 10 digits).
//!
//! Unlike the pure-model figures, the SNR column here is *measured*: the
//! single-process SOI transform runs at each preset and is compared
//! against a double-double reference spectrum.

use soi_bench::model::{soi_phases, Library, Scenario};
use soi_bench::report::render_table;
use soi_bench::workload::tone_mix;
use soi_bench::PAPER_POINTS_PER_NODE;
use soi_core::{SoiFft, SoiParams};
use soi_dist::ComputeRates;
use soi_fft::ddfft::reference_spectrum;
use soi_num::stats::snr_db_vs_pairs;
use soi_simnet::Fabric;
use soi_window::AccuracyPreset;

fn main() {
    let rates = ComputeRates::paper_node();
    let fabric = Fabric::gordon_torus();
    let nodes = 64;

    // Measured-SNR configuration (feasible size).
    let n_snr = 1 << 14;
    let p_snr = 4;
    let x = tone_mix(n_snr);
    let reference = reference_spectrum(&x);

    println!("Fig 7: accuracy vs performance, 64-node Gordon, 2^28 points/node");
    println!("(SNR measured at N = 2^14 against a double-double reference)\n");
    let mut rows = Vec::new();
    let mut mkl_gflops = 0.0;
    for preset in AccuracyPreset::ALL {
        let design = preset.design(0.25).expect("design");
        let s = Scenario {
            points_per_node: PAPER_POINTS_PER_NODE,
            nodes,
            mu: 5,
            nu: 4,
            b: design.b,
            rates,
            fabric: fabric.clone(),
        };
        let t_soi = soi_phases(&s).total();
        let t_mkl = Library::Mkl.time(&s);
        mkl_gflops = s.gflops(t_mkl);

        // Measured SNR at this preset.
        let params = SoiParams::with_preset(n_snr, p_snr, preset).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        let y = soi.transform(&x).expect("transform");
        let snr = snr_db_vs_pairs(&y, &reference);

        rows.push(vec![
            preset.label().to_string(),
            design.b.to_string(),
            format!("{:.0}", design.kappa),
            format!("{:.0} dB", snr),
            format!("{:.1}", s.gflops(t_soi)),
            format!("{:.2}", t_mkl / t_soi),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "accuracy",
                "B",
                "kappa",
                "measured SNR",
                "SOI GFLOPS",
                "speedup vs MKL"
            ],
            &rows
        )
    );
    println!("MKL reference: {mkl_gflops:.1} GFLOPS (its SNR ≈ 310 dB; ours measured below)");

    // Also report the f64 FFT's own SNR for the paper's 310 dB anchor.
    let fast = soi_fft::fft_forward(&x);
    let snr_fft = snr_db_vs_pairs(&fast, &reference);
    println!("Standard f64 FFT measured SNR at N = 2^14: {snr_fft:.0} dB");
    println!("\nPaper: full-accuracy SOI ≈ 290 dB; at 10 digits SOI outperforms MKL");
    println!("\"by more than twofold\".");
}
