//! Figure 8 — Endeavor on 10 Gigabit Ethernet: with communication this
//! dominant, SOI's advantage should sit at the theoretical
//! `3/(1+β) = 2.4` (paper: measured 2.3–2.4).

use soi_bench::model::{soi_phases, Library, Scenario};
use soi_bench::report::render_table;
use soi_bench::{simulate, PAPER_POINTS_PER_NODE};
use soi_dist::{ChargePolicy, ComputeRates, ExchangeVariant};
use soi_simnet::Fabric;
use soi_window::AccuracyPreset;

fn main() {
    let fabric = Fabric::ethernet_10g();
    let rates = ComputeRates::paper_node();
    let preset = AccuracyPreset::Full;
    let b = preset.design(0.25).expect("window design").b;

    // Validation run with real data movement.
    let p = 4;
    let n = soi_bench::points_per_node_from_env() * p;
    let policy = ChargePolicy::Rates(rates);
    let soi = simulate::run_soi(n, p, preset, fabric.clone(), policy);
    let base = simulate::run_baseline(n, p, fabric.clone(), policy, ExchangeVariant::Collective);
    println!(
        "Validation (simulated cluster, {p} ranks): simulated speedup {:.2}, SOI err {:.2e}\n",
        base.makespan / soi.makespan,
        soi.error_vs_exact
    );

    println!("Fig 8: Endeavor on 10GbE, weak scaling, 2^28 points/node");
    println!("Expected speedup ≈ 3/(1+beta) = {:.2}\n", 3.0 / 1.25);
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8, 16, 32] {
        let s = Scenario {
            points_per_node: PAPER_POINTS_PER_NODE,
            nodes,
            mu: 5,
            nu: 4,
            b,
            rates,
            fabric: fabric.clone(),
        };
        let t_soi = soi_phases(&s).total();
        let t_mkl = Library::Mkl.time(&s);
        let comm_frac = soi_bench::model::baseline_phases(&s).comm_fraction();
        rows.push(vec![
            nodes.to_string(),
            format!("{:.2}", s.gflops(t_soi)),
            format!("{:.2}", s.gflops(t_mkl)),
            format!("{:.2}", t_mkl / t_soi),
            format!("{:.0}%", comm_frac * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["nodes", "SOI GFLOPS", "MKL GFLOPS", "speedup", "MKL comm share"],
            &rows
        )
    );
    println!("Paper: \"The speed up factors lie in the interval [2.3, 2.4], near the");
    println!("theoretical value of 3/(1+beta) = 3/1.25 = 2.4.\"");
}
