//! Figure 9 — speedup projection on a hypothetical k-ary 3-D torus
//! (`n = 16k³`, peak bandwidths), for convolution sensitivity
//! `c ∈ {0.75, 1.00, 1.25}`.

use soi_bench::projection::Projection;
use soi_bench::report::render_table;

fn main() {
    println!("Fig 9: projected SOI/MKL speedup on a k-ary 3-D torus, 2^28 points/node");
    println!("(paper §7.4 model: T_mpi = max(link bound, 4k^2-channel bisection bound))\n");
    let cs = [0.75, 1.0, 1.25];
    let mut rows = Vec::new();
    for nodes in Projection::node_series(10) {
        let k = soi_simnet::Fabric::torus_k(16, nodes);
        let mut row = vec![k.to_string(), nodes.to_string()];
        for &c in &cs {
            row.push(format!("{:.2}", Projection::paper_default(c).speedup(nodes)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["k", "nodes", "speedup (c=0.75)", "c=1.00", "c=1.25"],
            &rows
        )
    );
    println!("Paper's shape: all three curves rise with node count as the torus");
    println!("bisection tightens; c = 0.75 (a 50%-efficient convolution) is the upper");
    println!("envelope. Jaguar-like machines sit near k = 10 (~16K nodes).");
}
