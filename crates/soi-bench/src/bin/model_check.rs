//! Model-validation harness: run the REAL simulated cluster (data
//! actually moves, collectives actually synchronize) across node counts
//! and print the analytic §7.4 model next to the simulated makespans.
//!
//! This is the evidence that the paper-scale figure series (Figs 5/6/8)
//! rest on formulas that agree with an executed system, not just with
//! themselves.

use soi_bench::model::{baseline_phases, soi_phases, Scenario};
use soi_bench::report::{fmt_secs, render_table};
use soi_bench::simulate;
use soi_dist::{ChargePolicy, ComputeRates, ExchangeVariant};
use soi_simnet::Fabric;
use soi_window::AccuracyPreset;

fn main() {
    let points = soi_bench::points_per_node_from_env().min(1 << 14);
    let rates = ComputeRates::paper_node();
    let preset = AccuracyPreset::Digits10;
    let b = preset.design(0.25).expect("design").b;
    let fabric = Fabric::gordon_torus();
    println!(
        "Model vs executed simulation (Gordon fabric, {points} points/node, B = {b}):\n"
    );
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8] {
        let scenario = Scenario {
            points_per_node: points,
            nodes,
            mu: 5,
            nu: 4,
            b,
            rates,
            fabric: fabric.clone(),
        };
        let policy = ChargePolicy::Rates(rates);
        let n = points * nodes;
        let soi_sim = simulate::run_soi(n, nodes, preset, fabric.clone(), policy);
        let base_sim =
            simulate::run_baseline(n, nodes, fabric.clone(), policy, ExchangeVariant::Collective);
        let soi_model = soi_phases(&scenario).total();
        let base_model = baseline_phases(&scenario).total();
        rows.push(vec![
            nodes.to_string(),
            fmt_secs(soi_model),
            fmt_secs(soi_sim.makespan),
            format!("{:+.1}%", 100.0 * (soi_sim.makespan - soi_model) / soi_model),
            fmt_secs(base_model),
            fmt_secs(base_sim.makespan),
            format!("{:.2e}", soi_sim.error_vs_exact),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "SOI model",
                "SOI simulated",
                "gap",
                "baseline model",
                "baseline simulated",
                "SOI err vs exact"
            ],
            &rows
        )
    );
    println!("The gap column should stay within a few percent; the error column is the");
    println!("real distributed output checked against an exact serial FFT.");
}
