//! §7.2's accuracy claim, measured:
//!
//! "The signal-to-noise (SNR) ratio of our double-precision SOI is around
//! 290 dB, which is 20 dB (one digit) lower than standard FFTs (Intel
//! MKL, FFTW, etc.)" — MKL's typical SNR being ≈310 dB (§7.3).
//!
//! Both numbers sit at the f64 noise floor, so the reference spectrum is
//! computed in double-double arithmetic (~31 digits) and rounded last.

use soi_bench::report::render_table;
use soi_bench::workload::{random_signal, tone_mix};
use soi_core::{SoiFft, SoiParams};
use soi_fft::ddfft::reference_spectrum;
use soi_num::stats::{db_to_digits, snr_db_vs_pairs};
use soi_window::AccuracyPreset;

fn main() {
    println!("SNR of full-accuracy SOI vs a standard f64 FFT (paper §7.2)\n");
    let mut rows = Vec::new();
    for (label, n, p) in [
        ("tones  N=2^12", 1usize << 12, 4usize),
        ("random N=2^12", 1 << 12, 4),
        ("tones  N=2^14", 1 << 14, 4),
        ("random N=2^14", 1 << 14, 4),
        ("tones  N=2^16", 1 << 16, 8),
    ] {
        let x = if label.starts_with("random") {
            random_signal(n, 7)
        } else {
            tone_mix(n)
        };
        let reference = reference_spectrum(&x);

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Full).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        let y_soi = soi.transform(&x).expect("transform");
        let snr_soi = snr_db_vs_pairs(&y_soi, &reference);

        let y_fft = soi_fft::fft_forward(&x);
        let snr_fft = snr_db_vs_pairs(&y_fft, &reference);

        rows.push(vec![
            label.to_string(),
            format!("{snr_soi:.0} dB ({:.1} digits)", db_to_digits(snr_soi)),
            format!("{snr_fft:.0} dB ({:.1} digits)", db_to_digits(snr_fft)),
            format!("{:.0} dB", snr_fft - snr_soi),
        ]);
    }
    println!(
        "{}",
        render_table(&["workload", "SOI (full accuracy)", "standard FFT", "gap"], &rows)
    );
    println!("Paper: SOI ≈ 290 dB, standard FFTs ≈ 310 dB — a one-digit (20 dB) gap");
    println!("attributed to the condition number kappa and the extra flops.");
}
