//! Table 1 — system configuration.
//!
//! Prints the paper's two evaluation systems side by side with the
//! simulated substitutes this reproduction runs on.

use soi_bench::report::render_table;
use soi_simnet::SystemConfig;

fn main() {
    let systems = [
        SystemConfig::endeavor(),
        SystemConfig::gordon(),
        SystemConfig::endeavor_10gbe(),
    ];
    println!("Table 1: System configuration (paper values; simulated in this reproduction)\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let template = systems[0].table_rows();
    for (i, (key, _)) in template.iter().enumerate() {
        let mut row = vec![key.clone()];
        for s in &systems {
            row.push(s.table_rows()[i].1.clone());
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["", "Endeavor", "Gordon", "Endeavor (10GbE)"], &rows)
    );
    println!("Libraries (paper §7.1):");
    println!("  SOI   8 segment/process, beta = 1/4, SNR = 290 dB  -> this reproduction: soi-dist");
    println!("  MKL   v10.3, 2 processes/node, MPI+OpenMP          -> baseline, fft factor 1.00");
    println!("  FFTE  used in HPCC 1.4.1                           -> baseline, fft factor 0.70");
    println!("  FFTW  v3.3, MPI+OpenMP, FFTW_MEASURE               -> baseline, fft factor 0.85");
}
