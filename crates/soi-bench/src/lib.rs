//! Shared machinery for the figure/table reproduction harnesses.
//!
//! Two complementary evaluation paths (DESIGN.md §2):
//!
//! * [`simulate`] — run the *real* distributed algorithms on the
//!   thread-backed simulated cluster at a feasible scale: data really
//!   moves, results are checked against exact FFTs, and virtual time is
//!   charged from the calibrated node model.
//! * [`model`] — evaluate the same per-phase formulas analytically at the
//!   paper's scale (2²⁸ points/node, up to thousands of nodes). This is
//!   the paper's own §7.4 methodology; a consistency test pins the model
//!   to the simulation at overlapping scales.
//!
//! Plus [`workload`] (seeded signal generators), [`report`] (aligned
//! tables) and [`projection`] (the Fig 9 speedup projection).

pub mod model;
pub mod projection;
pub mod report;
pub mod simulate;
pub mod workload;

/// The paper's weak-scaling unit: 2²⁸ double-complex points per node.
pub const PAPER_POINTS_PER_NODE: usize = 1 << 28;

/// Default feasible per-node size for real simulated-cluster runs on this
/// machine (overridable via the `SOI_POINTS_PER_NODE` environment
/// variable in the harness binaries).
pub const SIM_POINTS_PER_NODE: usize = 1 << 16;

/// Read an environment override for per-node points, with default.
pub fn points_per_node_from_env() -> usize {
    std::env::var("SOI_POINTS_PER_NODE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SIM_POINTS_PER_NODE)
}
