//! Analytic per-phase time model — the paper's §7.4 methodology, with the
//! exact same work formulas the distributed algorithms charge.
//!
//! ```text
//! T_soi(n)  ≈ T_fft((1+β)·N) + c·T_conv + (1+β)·T_mpi(n)
//! T_mkl(n)  ≈ T_fft(N) + 3·T_mpi(n)
//! ```

use soi_dist::rates::ComputeRates;
use soi_dist::PhaseTimes;
use soi_fft::flops::{conv_flops, fft_flops};
use soi_simnet::Fabric;

/// One weak-scaling evaluation point.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Complex points per node (the paper: 2²⁸).
    pub points_per_node: usize,
    /// Node (= rank = segment) count.
    pub nodes: usize,
    /// Oversampling numerator μ.
    pub mu: usize,
    /// Oversampling denominator ν.
    pub nu: usize,
    /// Convolution support B.
    pub b: usize,
    /// Node compute model.
    pub rates: ComputeRates,
    /// Interconnect model.
    pub fabric: Fabric,
}

const CPX: f64 = 16.0; // bytes per Complex64

impl Scenario {
    /// Total logical transform size `N`.
    pub fn total_points(&self) -> usize {
        self.points_per_node * self.nodes
    }

    /// GFLOPS under the paper's convention for a run taking `secs`.
    pub fn gflops(&self, secs: f64) -> f64 {
        soi_fft::flops::fft_flops(self.total_points()) / secs / 1e9
    }
}

/// Per-rank phase times of the distributed SOI transform (mirrors
/// `soi_dist::DistSoiFft::run`'s charges exactly).
pub fn soi_phases(s: &Scenario) -> PhaseTimes {
    let m = s.points_per_node;
    let p = s.nodes;
    let m_prime = m / s.nu * s.mu;
    let r = &s.rates;
    PhaseTimes {
        halo: if p > 1 {
            s.fabric
                .point_to_point_time(((s.b - 1) * p) as u64 * CPX as u64)
        } else {
            0.0
        },
        conv: conv_flops(m_prime, s.b) / r.conv_flops_per_sec,
        fft_small: (m_prime / p) as f64 * fft_flops(p) / r.fft_flops_per_sec,
        pack: 2.0 * m_prime as f64 * CPX / r.mem_bytes_per_sec,
        // Off-rank traffic only: each rank's self-block stays local, so
        // the fabric carries (p-1)/p of the m' points per rank — exactly
        // what `RankComm::all_to_all` charges.
        exchange: s
            .fabric
            .all_to_all_time(p, ((p - 1) * m_prime) as u64 * CPX as u64),
        fft_large: fft_flops(m_prime) / r.fft_flops_per_sec,
        scale: 2.0 * m as f64 * CPX / r.mem_bytes_per_sec,
    }
}

/// Per-rank phase times of the triple-all-to-all baseline (mirrors
/// `soi_dist::BaselineFft::run`).
pub fn baseline_phases(s: &Scenario) -> PhaseTimes {
    let m = s.points_per_node;
    let p = s.nodes;
    let r = &s.rates;
    PhaseTimes {
        halo: 0.0,
        conv: 0.0,
        fft_small: (m / p) as f64 * fft_flops(p) / r.fft_flops_per_sec,
        fft_large: fft_flops(m) / r.fft_flops_per_sec,
        scale: 2.0 * m as f64 * CPX / r.mem_bytes_per_sec,
        pack: 3.0 * 2.0 * m as f64 * CPX / r.mem_bytes_per_sec,
        // Self-block excluded per exchange, as in the simulated collective.
        exchange: 3.0 * s.fabric.all_to_all_time(p, ((p - 1) * m) as u64 * CPX as u64),
    }
}

/// Convenience: `(T_soi, T_baseline, speedup)` for a scenario.
pub fn speedup(s: &Scenario) -> (f64, f64, f64) {
    let t_soi = soi_phases(s).total();
    let t_base = baseline_phases(s).total();
    (t_soi, t_base, t_base / t_soi)
}

/// Local-FFT efficiency multipliers standing in for the libraries the
/// paper compares against. All three run the identical triple-all-to-all
/// decomposition; measured differences between them are node-local kernel
/// quality, which we model as a factor on the FFT rate (DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Library {
    /// Intel MKL — the fastest baseline (factor 1.0).
    Mkl,
    /// FFTW 3.3 with FFTW_MEASURE.
    Fftw,
    /// FFTE (as used in HPCC 1.4.1).
    Ffte,
}

impl Library {
    /// Kernel-efficiency factor relative to MKL.
    pub fn fft_factor(self) -> f64 {
        match self {
            Library::Mkl => 1.0,
            Library::Fftw => 0.85,
            Library::Ffte => 0.70,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Library::Mkl => "MKL",
            Library::Fftw => "FFTW",
            Library::Ffte => "FFTE",
        }
    }

    /// Baseline time for this library on a scenario.
    pub fn time(self, s: &Scenario) -> f64 {
        let mut sc = s.clone();
        sc.rates.fft_flops_per_sec *= self.fft_factor();
        baseline_phases(&sc).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_scenario(nodes: usize, fabric: Fabric) -> Scenario {
        Scenario {
            points_per_node: 1 << 28,
            nodes,
            mu: 5,
            nu: 4,
            b: 72,
            rates: ComputeRates::paper_node(),
            fabric,
        }
    }

    #[test]
    fn baseline_is_communication_dominated_at_scale() {
        // §1: all-to-alls account for "50% to over 90%" of running time.
        for nodes in [8usize, 32, 64] {
            let s = paper_scenario(nodes, Fabric::endeavor_fat_tree());
            let frac = baseline_phases(&s).comm_fraction();
            assert!(
                (0.5..0.97).contains(&frac),
                "{nodes} nodes: comm fraction {frac}"
            );
        }
    }

    #[test]
    fn soi_wins_on_every_paper_fabric() {
        for fabric in [
            Fabric::endeavor_fat_tree(),
            Fabric::gordon_torus(),
            Fabric::ethernet_10g(),
        ] {
            let s = paper_scenario(32, fabric.clone());
            let (t_soi, t_base, sp) = speedup(&s);
            assert!(
                sp > 1.2,
                "{}: speedup {sp} (soi {t_soi}, base {t_base})",
                fabric.name()
            );
        }
    }

    #[test]
    fn ethernet_speedup_approaches_3_over_1_plus_beta() {
        // Fig 8: on 10 GbE the speedup lands in [2.3, 2.4] ≈ 3/1.25.
        let s = paper_scenario(32, Fabric::ethernet_10g());
        let (_, _, sp) = speedup(&s);
        assert!(
            (2.15..2.4).contains(&sp),
            "10GbE speedup {sp}, expected ≈ 2.3–2.4"
        );
    }

    #[test]
    fn torus_speedup_exceeds_fat_tree_beyond_32_nodes() {
        // Fig 6 vs Fig 5.
        let sp_tree = speedup(&paper_scenario(64, Fabric::endeavor_fat_tree())).2;
        let sp_torus = speedup(&paper_scenario(64, Fabric::gordon_torus())).2;
        assert!(
            sp_torus > sp_tree,
            "torus {sp_torus} should beat fat tree {sp_tree} at 64 nodes"
        );
    }

    #[test]
    fn speedup_grows_with_torus_scale() {
        let sp32 = speedup(&paper_scenario(32, Fabric::gordon_torus())).2;
        let sp256 = speedup(&paper_scenario(256, Fabric::gordon_torus())).2;
        assert!(sp256 > sp32, "{sp32} -> {sp256}");
    }

    #[test]
    fn library_factors_order_correctly() {
        let s = paper_scenario(16, Fabric::endeavor_fat_tree());
        let t_mkl = Library::Mkl.time(&s);
        let t_fftw = Library::Fftw.time(&s);
        let t_ffte = Library::Ffte.time(&s);
        assert!(t_mkl < t_fftw && t_fftw < t_ffte);
    }

    #[test]
    fn gflops_sane_at_single_node() {
        // One paper node ≈ 33 GFLOPS nominal FFT rate; the memory-bound
        // pack/twiddle passes the model charges pull the end-to-end number
        // down to the mid-teens (no communication at n = 1).
        let s = paper_scenario(1, Fabric::endeavor_fat_tree());
        let t = baseline_phases(&s).total();
        let g = s.gflops(t);
        assert!((10.0..35.0).contains(&g), "single-node GFLOPS {g}");
    }

    #[test]
    fn smaller_b_shrinks_conv_time_only() {
        let full = paper_scenario(32, Fabric::gordon_torus());
        let mut relaxed = full.clone();
        relaxed.b = 28;
        let pf = soi_phases(&full);
        let pr = soi_phases(&relaxed);
        assert!(pr.conv < pf.conv * 0.5);
        assert_eq!(pr.fft_large, pf.fft_large);
        assert_eq!(pr.exchange, pf.exchange);
    }
}
