//! The Fig 9 speedup projection — the paper's §7.4 model verbatim.
//!
//! Hypothetical k-ary 3-D torus with concentration 16 (`n = 16k³`),
//! switch-to-switch channels of three 4× QDR links (120 Gbit/s), node
//! links of one (40 Gbit/s), *theoretical peak* bandwidths (the paper's
//! stated assumption), bisection `4n/k` links in the footnote's units
//! (`4k²` global channels):
//!
//! ```text
//! T_fft(n)  ≈ α(log 2²⁸ + log n)        (α from T_fft(1))
//! T_conv(n) ≈ c·T_conv                  (constant in weak scaling)
//! T_mpi(n)  = max(per-node link bound, bisection bound)
//! speedup(n) = (T_fft(n) + 3·T_mpi(n)) /
//!              (T_fft((1+β)n) + c·T_conv + (1+β)·T_mpi(n))
//! ```

/// Parameters of the projection.
#[derive(Debug, Clone, Copy)]
pub struct Projection {
    /// Points per node (2²⁸ in the paper).
    pub points_per_node: usize,
    /// Oversampling rate β.
    pub beta: f64,
    /// Measured/modeled single-node FFT time `T_fft(1)` in seconds.
    pub t_fft_1: f64,
    /// Measured/modeled convolution time `T_conv` in seconds.
    pub t_conv: f64,
    /// Convolution sensitivity factor `c ∈ [0.75, 1.25]`.
    pub c: f64,
}

impl Projection {
    /// The paper's setup, deriving `T_fft(1)` and `T_conv` from the
    /// calibrated node model (33 Gflop/s nominal FFT, 132 Gflop/s conv).
    pub fn paper_default(c: f64) -> Self {
        let m = 1usize << 28;
        let rates = soi_dist::ComputeRates::paper_node();
        Self {
            points_per_node: m,
            beta: 0.25,
            t_fft_1: soi_fft::flops::fft_flops(m) / rates.fft_flops_per_sec,
            t_conv: soi_fft::flops::conv_flops(m / 4 * 5, 72) / rates.conv_flops_per_sec,
            c,
        }
    }

    /// `T_fft(n)`: weak-scaled local FFT time, `α(log 2^m + log n)`.
    pub fn t_fft(&self, n: f64) -> f64 {
        let lg_m = (self.points_per_node as f64).log2();
        let alpha = self.t_fft_1 / lg_m;
        alpha * (lg_m + n.log2())
    }

    /// `T_mpi(n)` on the full k-ary torus, peak bandwidths (`n = 16k³`).
    pub fn t_mpi(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let gbit = 1e9 / 8.0;
        let per_node_bytes = self.points_per_node as f64 * 16.0;
        let local = per_node_bytes / (40.0 * gbit);
        let k = soi_simnet::Fabric::torus_k(16, nodes);
        // Footnote 7: bisection = 4n/k in switch-count units = 4k² global
        // channels of 120 Gbit/s.
        let bisect_bw = 4.0 * (k * k) as f64 * 120.0 * gbit;
        let bisect = (nodes as f64 * per_node_bytes / 2.0) / bisect_bw;
        local.max(bisect)
    }

    /// The projected speedup at `nodes = 16k³`.
    pub fn speedup(&self, nodes: usize) -> f64 {
        let n = nodes as f64;
        let t_mpi = self.t_mpi(nodes);
        let t_mkl = self.t_fft(n) + 3.0 * t_mpi;
        let t_soi =
            self.t_fft((1.0 + self.beta) * n) + self.c * self.t_conv + (1.0 + self.beta) * t_mpi;
        t_mkl / t_soi
    }

    /// The Fig 9 x-axis: node counts `16k³` for `k = 1..=k_max`.
    pub fn node_series(k_max: usize) -> Vec<usize> {
        (1..=k_max).map(|k| 16 * k * k * k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_grows_with_node_count() {
        // Fig 9's curves rise as the torus bisection tightens.
        let p = Projection::paper_default(1.0);
        let series = Projection::node_series(10);
        let speedups: Vec<f64> = series.iter().map(|&n| p.speedup(n)).collect();
        for w in speedups.windows(2) {
            assert!(w[1] >= w[0] * 0.999, "not monotone: {speedups:?}");
        }
        // At Jaguar-like scale (~16K nodes, k=10) the projection exceeds
        // its small-scale value substantially.
        assert!(
            speedups.last().unwrap() > &(speedups[0] * 1.2),
            "{speedups:?}"
        );
    }

    #[test]
    fn c_band_orders_the_curves() {
        // Lower c (faster convolution) → higher projected speedup.
        let n = 16 * 6usize.pow(3);
        let hi = Projection::paper_default(0.75).speedup(n);
        let mid = Projection::paper_default(1.0).speedup(n);
        let lo = Projection::paper_default(1.25).speedup(n);
        assert!(hi > mid && mid > lo, "{hi} {mid} {lo}");
    }

    #[test]
    fn speedups_land_in_fig9_range() {
        // Fig 9 plots speedups roughly between 1 and 3.
        let p = Projection::paper_default(1.0);
        for &n in &Projection::node_series(10) {
            let s = p.speedup(n);
            assert!((0.8..3.5).contains(&s), "speedup {s} at {n} nodes");
        }
    }

    #[test]
    fn bisection_takes_over_at_large_k() {
        // The crossover n = 24k² sits between 64 and 128 nodes at k = 2 —
        // the paper's "bounded by the local channel bandwidths for
        // n ≲ 128, or by the bisection bandwidth otherwise".
        let p = Projection::paper_default(1.0);
        let local = (p.points_per_node as f64 * 16.0) / (40.0 * 1.25e8);
        assert!((p.t_mpi(64) - local).abs() < 1e-9, "64 nodes: local-bound");
        assert!(p.t_mpi(128) > local, "128 nodes: bisection-bound");
        assert!(p.t_mpi(16000) > 3.0 * local, "16K nodes: deep in bisection");
    }
}
