//! Plain-text table rendering for the harness binaries.

/// Render an aligned table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:>w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Format a GFLOPS value.
pub fn fmt_gflops(g: f64) -> String {
    format!("{g:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["nodes", "GFLOPS"],
            &[
                vec!["2".into(), "12.5".into()],
                vec!["64".into(), "301.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("nodes"));
        assert!(t.contains("301.0"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 µs");
    }
}
