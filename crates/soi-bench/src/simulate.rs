//! Real simulated-cluster runs: correctness + charged virtual time.

use crate::model::Scenario;
use soi_core::SoiParams;
use soi_dist::{BaselineFft, ChargePolicy, DistSoiFft, ExchangeVariant, PhaseTimes};
use soi_num::Complex64;
use soi_simnet::{Cluster, Fabric};
use soi_window::AccuracyPreset;

/// Result of one simulated weak-scaling point.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Slowest rank's virtual time (the job's execution time).
    pub makespan: f64,
    /// Critical-path phase breakdown (element-wise max over ranks).
    pub phases: PhaseTimes,
    /// Relative L2 error of the distributed output against an exact
    /// serial FFT of the same input.
    pub error_vs_exact: f64,
    /// Total payload bytes pushed into the network by all ranks.
    pub bytes_on_wire: u64,
    /// All-to-all collectives per rank.
    pub all_to_alls: u64,
}

/// Run the distributed SOI transform for real on the simulated cluster.
pub fn run_soi(
    n: usize,
    p: usize,
    preset: AccuracyPreset,
    fabric: Fabric,
    policy: ChargePolicy,
) -> SimResult {
    let params = SoiParams::with_preset(n, p, preset).expect("valid SOI params");
    let dist = DistSoiFft::new(&params).expect("plan");
    let x = crate::workload::tone_mix(n);
    let m = n / p;
    let (xr, distr) = (&x, &dist);
    let out = Cluster::new(p, fabric).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        distr.run(comm, local, policy).expect("soi run")
    });
    finish(out, &x)
}

/// Run the triple-all-to-all baseline for real on the simulated cluster.
pub fn run_baseline(
    n: usize,
    p: usize,
    fabric: Fabric,
    policy: ChargePolicy,
    variant: ExchangeVariant,
) -> SimResult {
    let plan = BaselineFft::new(n, p, variant);
    let x = crate::workload::tone_mix(n);
    let m = n / p;
    let (xr, planr) = (&x, &plan);
    let out = Cluster::new(p, fabric).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        planr.run(comm, local, policy).expect("baseline run")
    });
    finish(out, &x)
}

fn finish(
    out: Vec<((Vec<Complex64>, PhaseTimes), soi_simnet::RankReport)>,
    x: &[Complex64],
) -> SimResult {
    let makespan = out
        .iter()
        .map(|(_, rep)| rep.sim_time)
        .fold(0.0f64, f64::max);
    let phases = out
        .iter()
        .fold(PhaseTimes::default(), |acc, ((_, t), _)| acc.max_with(t));
    let bytes_on_wire = out.iter().map(|(_, rep)| rep.stats.bytes_sent).sum();
    let all_to_alls = out
        .iter()
        .map(|(_, rep)| rep.stats.all_to_alls)
        .max()
        .unwrap_or(0);
    let y: Vec<Complex64> = out.into_iter().flat_map(|((y, _), _)| y).collect();
    let exact = soi_fft::fft_forward(x);
    SimResult {
        makespan,
        phases,
        error_vs_exact: soi_num::complex::rel_l2_error(&y, &exact),
        bytes_on_wire,
        all_to_alls,
    }
}

/// Consistency check between the analytic model and a real simulated run:
/// returns `(model_total, simulated_makespan)` for SOI under identical
/// rate charging. Used by tests and printed by the harnesses.
pub fn model_vs_simulation(scenario: &Scenario, preset: AccuracyPreset) -> (f64, f64) {
    let model = crate::model::soi_phases(scenario).total();
    let sim = run_soi(
        scenario.total_points(),
        scenario.nodes,
        preset,
        scenario.fabric.clone(),
        ChargePolicy::Rates(scenario.rates),
    );
    (model, sim.makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_dist::ComputeRates;

    #[test]
    fn simulated_soi_is_correct_and_single_exchange() {
        let r = run_soi(
            1 << 12,
            4,
            AccuracyPreset::Digits10,
            Fabric::ethernet_10g(),
            ChargePolicy::Rates(ComputeRates::paper_node()),
        );
        assert!(r.error_vs_exact < 2e-7, "err {:e}", r.error_vs_exact); // κ-aware Digits10 bound
        assert_eq!(r.all_to_alls, 1);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn simulated_baseline_is_correct_and_triple_exchange() {
        let r = run_baseline(
            1 << 12,
            4,
            Fabric::ethernet_10g(),
            ChargePolicy::Rates(ComputeRates::paper_node()),
            ExchangeVariant::Collective,
        );
        assert!(r.error_vs_exact < 1e-11, "err {:e}", r.error_vs_exact);
        assert_eq!(r.all_to_alls, 3);
    }

    #[test]
    fn model_matches_simulation_closely() {
        // The simulation charges the same formulas the model evaluates;
        // they must agree to a few percent (barrier costs and the B chosen
        // by the preset designer vs the scenario's B account for the gap).
        let preset = AccuracyPreset::Digits10;
        let b = preset.design(0.25).unwrap().b;
        let scenario = Scenario {
            points_per_node: 1 << 10,
            nodes: 4,
            mu: 5,
            nu: 4,
            b,
            rates: ComputeRates::paper_node(),
            fabric: Fabric::ethernet_10g(),
        };
        let (model, sim) = model_vs_simulation(&scenario, preset);
        let rel = (model - sim).abs() / sim;
        assert!(
            rel < 0.05,
            "model {model} vs simulated {sim} ({:.1}% apart)",
            rel * 100.0
        );
    }

    #[test]
    fn soi_beats_baseline_in_simulation_on_slow_network() {
        let n = 1 << 14;
        let p = 4;
        let policy = ChargePolicy::Rates(ComputeRates::paper_node());
        let soi = run_soi(
            n,
            p,
            AccuracyPreset::Full,
            Fabric::ethernet_10g(),
            policy,
        );
        let base = run_baseline(
            n,
            p,
            Fabric::ethernet_10g(),
            policy,
            ExchangeVariant::Collective,
        );
        let sp = base.makespan / soi.makespan;
        assert!(sp > 1.5, "simulated speedup {sp}");
        assert!(base.bytes_on_wire > soi.bytes_on_wire * 2);
    }
}
