//! Deterministic workload generators for tests and harnesses.

use soi_num::Complex64;
use soi_testkit::TestRng;

/// Uniform random complex signal in the unit square, seeded.
pub fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    TestRng::seed_from_u64(seed).complex_vec(n)
}

/// A deterministic smooth multi-tone signal (no RNG; reproducible across
/// platforms bit-for-bit).
pub fn tone_mix(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|j| {
            let t = j as f64;
            Complex64::new(
                (t * 0.37).sin() + 0.5 * (t * 1.91).cos() + 0.25 * (t * 0.013).sin(),
                (t * 0.11).cos() - 0.3 * (t * 2.71).sin(),
            )
        })
        .collect()
}

/// A sparse spectrum: `tones` unit spikes at seeded random bins — the
/// spectrum-analysis example workload.
pub fn sparse_tones(n: usize, tones: usize, seed: u64) -> (Vec<Complex64>, Vec<usize>) {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut bins: Vec<usize> = Vec::with_capacity(tones);
    while bins.len() < tones {
        let b = rng.usize_in(0..n);
        if !bins.contains(&b) {
            bins.push(b);
        }
    }
    let mut x = vec![Complex64::ZERO; n];
    for j in 0..n {
        for &k in &bins {
            x[j] += Complex64::cis(2.0 * std::f64::consts::PI * (k as f64) * (j as f64) / n as f64);
        }
    }
    bins.sort_unstable();
    (x, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_signal_is_seeded_and_bounded() {
        let a = random_signal(64, 42);
        let b = random_signal(64, 42);
        let c = random_signal(64, 43);
        assert_eq!(
            a.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>(),
            b.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>()
        );
        assert!(a.iter().zip(&c).any(|(x, y)| x != y));
        assert!(a.iter().all(|v| v.re.abs() <= 1.0 && v.im.abs() <= 1.0));
    }

    #[test]
    fn sparse_tones_spike_where_promised() {
        let n = 256;
        let (x, bins) = sparse_tones(n, 3, 7);
        let y = soi_fft::fft_forward(&x);
        for &k in &bins {
            assert!((y[k].abs() - n as f64).abs() < 1e-6, "bin {k}");
        }
        let off: f64 = y
            .iter()
            .enumerate()
            .filter(|(k, _)| !bins.contains(k))
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max);
        assert!(off < 1e-7 * n as f64, "leakage {off}");
    }

    #[test]
    fn tone_mix_deterministic() {
        assert_eq!(tone_mix(16), tone_mix(16));
    }

    #[test]
    fn random_signal_known_answer_values() {
        // Run-to-run AND commit-to-commit pinning: figure/table harness
        // inputs must not drift when the RNG or workload code is touched.
        // Values are the exact f64s from TestRng seed 2012 (integer ops +
        // power-of-two scaling — bit-exact on every platform).
        let want = [
            (-0.9899132032485365, 0.018521048996289924),
            (-0.6549938247043099, 0.3572871223800984),
            (0.31092009746023397, -0.5978242408455998),
            (-0.7470281134756347, -0.22473260842676712),
        ];
        let got = random_signal(4, 2012);
        assert_eq!(
            got.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            want.to_vec()
        );
    }

    #[test]
    fn sparse_tones_deterministic_across_calls() {
        let (xa, ba) = sparse_tones(128, 4, 7);
        let (xb, bb) = sparse_tones(128, 4, 7);
        assert_eq!(ba, bb);
        assert_eq!(
            xa.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            xb.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>()
        );
    }
}
