//! A small dependency-free argument parser for the `soi` binary.
//!
//! Grammar: `soi <subcommand> [--key value | --flag]...`. Values parse on
//! demand with typed accessors; unknown keys are rejected up front so
//! typos fail loudly rather than silently using defaults.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// First positional token.
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Errors produced while parsing or accessing arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// `--key` without a value.
    MissingValue(String),
    /// A token that is neither the subcommand nor a `--key`.
    UnexpectedToken(String),
    /// `--key` not in the allowed set for this subcommand.
    UnknownOption(String),
    /// Value failed to parse as the requested type.
    BadValue {
        /// Offending option.
        key: String,
        /// Raw value.
        value: String,
        /// Target type name.
        wanted: &'static str,
    },
    /// Structurally valid values that violate a cross-option constraint
    /// (divisibility, alignment).
    Misaligned(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given (try `soi help`)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::UnexpectedToken(t) => write!(f, "unexpected argument `{t}`"),
            ArgError::UnknownOption(k) => write!(f, "unknown option --{k}"),
            ArgError::BadValue { key, value, wanted } => {
                write!(f, "--{key} {value}: expected {wanted}")
            }
            ArgError::Misaligned(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut it = tokens.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::UnexpectedToken(command));
        }
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError::UnexpectedToken(tok.clone()))?
                .to_string();
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap(),
                _ => return Err(ArgError::MissingValue(key)),
            };
            options.insert(key, value);
        }
        Ok(Args { command, options })
    }

    /// Reject any option not in `allowed`.
    pub fn restrict(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownOption(k.clone()));
            }
        }
        Ok(())
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        wanted: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                wanted,
            }),
        }
    }

    /// usize option.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        self.get_parsed(key, default, "an integer")
    }

    /// usize option that must be at least 1 (sizes, counts, rank totals).
    /// Every subcommand funnels its size-like options through here so
    /// `--n 0`, `--nodes 0`, `--ranks 0`, … all fail with the same shape
    /// of message.
    pub fn get_positive(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        let v = self.get_usize(key, default)?;
        if v == 0 {
            return Err(ArgError::BadValue {
                key: key.to_string(),
                value: "0".into(),
                wanted: "a positive integer",
            });
        }
        Ok(v)
    }

    /// f64 option.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        self.get_parsed(key, default, "a number")
    }
}

/// The problem geometry shared by every subcommand that runs a
/// distributed transform (`transform`, `launch`, `worker`): total size
/// `--n`, SOI segment count `--p`, accuracy `--digits`, per-rank
/// `--threads`. Parsed and validated in one place so zero and
/// misalignment errors read identically everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobGeometry {
    /// Total transform size N.
    pub n: usize,
    /// SOI segment count P (must divide N).
    pub p: usize,
    /// Decimal digits of accuracy requested.
    pub digits: usize,
    /// Compute threads per rank.
    pub threads: usize,
}

impl JobGeometry {
    /// Parse `--n/--p/--digits/--threads` with the given size defaults.
    pub fn from_args(a: &Args, default_n: usize, default_p: usize) -> Result<Self, ArgError> {
        let n = a.get_positive("n", default_n)?;
        let p = a.get_positive("p", default_p)?;
        let digits = a.get_usize("digits", 15)?;
        let threads = a.get_positive("threads", 1)?;
        if n % p != 0 {
            return Err(ArgError::Misaligned(format!(
                "--p {p} does not divide --n {n}"
            )));
        }
        Ok(JobGeometry { n, p, digits, threads })
    }

    /// Validate a rank count against the geometry: `R` must divide `P`
    /// (each rank owns whole segments) — the same check every launcher
    /// and worker performs before any process spawns or socket opens.
    pub fn check_ranks(&self, key: &str, ranks: usize) -> Result<(), ArgError> {
        if self.p % ranks != 0 {
            return Err(ArgError::Misaligned(format!(
                "--{key} {ranks} does not divide --p {}",
                self.p
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = Args::parse(toks("transform --n 1024 --p 8")).unwrap();
        assert_eq!(a.command, "transform");
        assert_eq!(a.get_usize("n", 0).unwrap(), 1024);
        assert_eq!(a.get_usize("p", 0).unwrap(), 8);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_command() {
        assert_eq!(Args::parse(toks("")), Err(ArgError::MissingCommand));
        assert!(matches!(
            Args::parse(toks("--n 4")),
            Err(ArgError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn rejects_dangling_key() {
        assert_eq!(
            Args::parse(toks("design --beta")),
            Err(ArgError::MissingValue("beta".into()))
        );
    }

    #[test]
    fn rejects_positional_garbage() {
        assert!(matches!(
            Args::parse(toks("transform 1024")),
            Err(ArgError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn restrict_flags_unknown_options() {
        let a = Args::parse(toks("design --beta 0.25 --digits 10")).unwrap();
        assert!(a.restrict(&["beta", "digits"]).is_ok());
        assert_eq!(
            a.restrict(&["beta"]),
            Err(ArgError::UnknownOption("digits".into()))
        );
    }

    #[test]
    fn typed_accessors_report_bad_values() {
        let a = Args::parse(toks("x --n abc")).unwrap();
        assert!(matches!(
            a.get_usize("n", 0),
            Err(ArgError::BadValue { .. })
        ));
        let a = Args::parse(toks("x --beta 0.25")).unwrap();
        assert_eq!(a.get_f64("beta", 0.0).unwrap(), 0.25);
    }

    #[test]
    fn positive_accessor_rejects_zero_uniformly() {
        let a = Args::parse(toks("x --n 0 --nodes 0 --ranks 7")).unwrap();
        for key in ["n", "nodes"] {
            let e = a.get_positive(key, 4).unwrap_err();
            assert!(
                e.to_string().contains("positive integer"),
                "--{key}: {e}"
            );
        }
        assert_eq!(a.get_positive("ranks", 4).unwrap(), 7);
        assert_eq!(a.get_positive("absent", 4).unwrap(), 4);
    }

    #[test]
    fn job_geometry_validates_shape() {
        let a = Args::parse(toks("x --n 4096 --p 8 --threads 2")).unwrap();
        let g = JobGeometry::from_args(&a, 1 << 16, 8).unwrap();
        assert_eq!((g.n, g.p, g.digits, g.threads), (4096, 8, 15, 2));
        g.check_ranks("ranks", 4).unwrap();
        assert!(g.check_ranks("ranks", 3).unwrap_err().to_string().contains("divide"));

        let a = Args::parse(toks("x --n 1000 --p 3")).unwrap();
        let e = JobGeometry::from_args(&a, 1 << 16, 8).unwrap_err();
        assert!(e.to_string().contains("does not divide"), "{e}");

        let a = Args::parse(toks("x --threads 0")).unwrap();
        assert!(JobGeometry::from_args(&a, 4096, 4).is_err());
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingCommand.to_string().contains("subcommand"));
        assert!(ArgError::UnknownOption("zap".into())
            .to_string()
            .contains("--zap"));
    }
}
