//! A small dependency-free argument parser for the `soi` binary.
//!
//! Grammar: `soi <subcommand> [--key value | --flag]...`. Values parse on
//! demand with typed accessors; unknown keys are rejected up front so
//! typos fail loudly rather than silently using defaults.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// First positional token.
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Errors produced while parsing or accessing arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// `--key` without a value.
    MissingValue(String),
    /// A token that is neither the subcommand nor a `--key`.
    UnexpectedToken(String),
    /// `--key` not in the allowed set for this subcommand.
    UnknownOption(String),
    /// Value failed to parse as the requested type.
    BadValue {
        /// Offending option.
        key: String,
        /// Raw value.
        value: String,
        /// Target type name.
        wanted: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given (try `soi help`)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::UnexpectedToken(t) => write!(f, "unexpected argument `{t}`"),
            ArgError::UnknownOption(k) => write!(f, "unknown option --{k}"),
            ArgError::BadValue { key, value, wanted } => {
                write!(f, "--{key} {value}: expected {wanted}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut it = tokens.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::UnexpectedToken(command));
        }
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError::UnexpectedToken(tok.clone()))?
                .to_string();
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap(),
                _ => return Err(ArgError::MissingValue(key)),
            };
            options.insert(key, value);
        }
        Ok(Args { command, options })
    }

    /// Reject any option not in `allowed`.
    pub fn restrict(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownOption(k.clone()));
            }
        }
        Ok(())
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        wanted: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                wanted,
            }),
        }
    }

    /// usize option.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        self.get_parsed(key, default, "an integer")
    }

    /// f64 option.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        self.get_parsed(key, default, "a number")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = Args::parse(toks("transform --n 1024 --p 8")).unwrap();
        assert_eq!(a.command, "transform");
        assert_eq!(a.get_usize("n", 0).unwrap(), 1024);
        assert_eq!(a.get_usize("p", 0).unwrap(), 8);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_command() {
        assert_eq!(Args::parse(toks("")), Err(ArgError::MissingCommand));
        assert!(matches!(
            Args::parse(toks("--n 4")),
            Err(ArgError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn rejects_dangling_key() {
        assert_eq!(
            Args::parse(toks("design --beta")),
            Err(ArgError::MissingValue("beta".into()))
        );
    }

    #[test]
    fn rejects_positional_garbage() {
        assert!(matches!(
            Args::parse(toks("transform 1024")),
            Err(ArgError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn restrict_flags_unknown_options() {
        let a = Args::parse(toks("design --beta 0.25 --digits 10")).unwrap();
        assert!(a.restrict(&["beta", "digits"]).is_ok());
        assert_eq!(
            a.restrict(&["beta"]),
            Err(ArgError::UnknownOption("digits".into()))
        );
    }

    #[test]
    fn typed_accessors_report_bad_values() {
        let a = Args::parse(toks("x --n abc")).unwrap();
        assert!(matches!(
            a.get_usize("n", 0),
            Err(ArgError::BadValue { .. })
        ));
        let a = Args::parse(toks("x --beta 0.25")).unwrap();
        assert_eq!(a.get_f64("beta", 0.0).unwrap(), 0.25);
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingCommand.to_string().contains("subcommand"));
        assert!(ArgError::UnknownOption("zap".into())
            .to_string()
            .contains("--zap"));
    }
}
