//! Subcommand implementations for the `soi` binary.

use crate::args::{Args, JobGeometry};
use soi_core::{SoiFft, SoiParams, SoiRealWorkspace, SoiWorkspace, ThreadPool};
use soi_dist::{BaselineFft, ChargePolicy, ComputeRates, DistSoiFft, ExchangeVariant, PhaseTimes};
use soi_num::Complex64;
use soi_simnet::{Cluster, Fabric, RankComm};
use soi_trace::{Event, Trace, TraceSet};
use soi_window::{design_compact, design_gaussian, design_two_param};
use std::path::Path;
use std::time::{Duration, Instant};

/// Top-level usage text.
pub const USAGE: &str = "\
soi — low-communication 1-D FFT (Tang et al., SC 2012 reproduction)

USAGE:
  soi transform --n <size> --p <segments> [--digits <6..15>] [--band <k0>]
                [--threads <t>] [--input complex|real]
      Run a SOI transform on a synthetic signal; checks against an exact
      FFT and prints accuracy and timing. --band computes one M-bin zoom
      band starting at bin k0 instead of the full spectrum. --threads
      fans the compute stages across t workers (default 1 = serial); the
      result is bitwise identical for every worker count. --input real
      runs the r2c pipeline (real samples in, packed N/2+1 half-spectrum
      out; needs an even P) and also times the complex path on the same
      signal to report the r2c speedup.

  soi design --beta <rate> --digits <d> [--family two-param|gaussian|compact]
      Search window parameters (tau, sigma, B) for an accuracy target.

  soi simulate --nodes <r> --points <per-node> [--fabric endeavor|gordon|ethernet]
               [--trace <file.jsonl>]
      Run SOI and the triple-all-to-all baseline on the simulated cluster
      and print the speedup and phase breakdown. --trace (or the
      SOI_TRACE environment variable) records every phase span, message,
      and collective of the SOI run as JSON lines, then validates the
      trace for communication conservation before writing it.

  soi launch --ranks <r> [--n <size>] [--p <segments>] [--digits <6..15>]
             [--threads <t>] [--trace <file.jsonl>] [--ckpt-dir <dir>]
      Spawn <r> local worker processes, bootstrap a full TCP mesh between
      them, and run the distributed SOI FFT over real sockets. The
      launcher aggregates per-rank results and traces, validates the
      captured traffic for communication conservation, and checks the
      assembled spectrum bitwise against an in-process reference run.
      --ckpt-dir (or SOI_CKPT_DIR) arms checkpointing: workers persist
      per-rank state at every phase boundary and the job survives one
      rank death — the launcher respawns the dead rank, every survivor
      re-rendezvouses into the next epoch, and the job replays from
      checkpoints to a bitwise-identical spectrum. Fault injection:
      SOI_FAULT_PHASE=<k> makes a victim rank (SOI_FAULT_RANK, default
      1) abort its process at phase boundary k in [0, 7]; a checkpoint
      directory is created automatically if none was given.

  soi worker --rendezvous <host:port> [--n ...] [--p ...] [--digits ...]
             [--threads ...] [--ckpt-dir <dir>] [--rejoin <rank>]
      One rank of a `soi launch` job (started by the launcher; runnable
      by hand across machines). Joins the rendezvous point, computes its
      slice, and reports the result over its control connection.
      --rejoin reclaims a dead rank's slot in the recovery epoch,
      reloading its input from the checkpoint directory; such a worker
      ignores any armed fault.

  soi serve [--addr <host:port>] [--threads <t>] [--queue <cap>]
            [--batch <max>] [--engines <cap>] [--idle-ms <ms>]
            [--stats <host:port>]
      Run the long-lived spectral-transform daemon: accepts transform
      requests (full spectra, segments, zoom bands; complex and real
      input) from many concurrent clients, coalesces compatible requests
      into batches through cached engines, sheds load past --queue with
      typed Overloaded rejects, and expires queued requests past their
      deadline with typed Expired rejects — never partial results.
      --addr defaults to 127.0.0.1:0 (a free port, printed on startup).
      Env knobs: SOI_SERVE_QUEUE/BATCH/ENGINES/IDLE_MS, SOI_NO_BATCH=1
      (ablation: a fresh engine per request). --stats <addr> instead
      connects to a running daemon and prints its accounting snapshot
      (per-tenant requests/bytes/compute, batches, plan-cache hits).

  soi request --addr <host:port> [--n <size>] [--p <segments>]
              [--digits <6..15>] [--input complex|real] [--segment <s>]
              [--band <k0>] [--deadline-ms <ms>] [--tenant <name>]
              [--count <c>] [--check 1] [--shutdown 1]
      Send transform requests for the standard synthetic signal to a
      running daemon. --segment/--band select one M-bin slice instead of
      the full spectrum; --input real exercises the r2c path. --count
      pipelines c identical requests. --check 1 recomputes the transform
      locally and fails unless every response is bitwise identical.
      --shutdown 1 asks the daemon to drain and exit.

  soi trace-check --file <trace.jsonl>
      Validate a recorded trace: per-link byte conservation, identical
      collective sequences, clock monotonicity, barrier agreement, span
      nesting. Prints a summary or the first violation.

  soi trace-view --file <trace.jsonl> [--out <trace.json>]
      Convert a recorded trace to Chrome trace-event JSON for
      chrome://tracing or ui.perfetto.dev (stdout if --out is omitted).

  soi info
      Print version and configuration summary.
";

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn synthetic(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|j| {
            let t = j as f64;
            Complex64::new((t * 0.37).sin() + 0.4 * (t * 1.7).cos(), (t * 0.11).cos())
        })
        .collect()
}

fn preset_for_digits(digits: usize) -> Result<soi_window::AccuracyPreset, String> {
    use soi_window::AccuracyPreset::*;
    Ok(match digits {
        0..=10 => Digits10,
        11 => Digits11,
        12 => Digits12,
        13 => Digits13,
        _ => Full,
    })
}

/// `soi transform`.
pub fn transform(a: &Args) -> CmdResult {
    a.restrict(&["n", "p", "digits", "band", "threads", "input"])?;
    let geo = JobGeometry::from_args(a, 1 << 16, 8)?;
    let JobGeometry { n, p, digits, threads } = geo;
    let preset = preset_for_digits(digits)?;
    let params = SoiParams::with_preset(n, p, preset)?;
    let soi = SoiFft::new(&params)?;
    let cfg = *soi.config();
    println!(
        "SOI: N = {n}, P = {p}, M' = {}, B = {}, kappa = {:.1}, predicted err ~ {:.1e}, threads = {threads}",
        cfg.m_prime,
        cfg.b,
        cfg.kappa,
        cfg.predicted_error()
    );
    match a.get("input").unwrap_or("complex") {
        "complex" => {}
        "real" => return transform_real(&soi, n, threads),
        other => return Err(format!("unknown input kind `{other}` (complex|real)").into()),
    }
    let x = synthetic(n);
    if let Some(k0s) = a.get("band") {
        let k0: usize = k0s.parse().map_err(|_| "--band must be an integer")?;
        let pool = ThreadPool::new(threads);
        let t0 = Instant::now();
        let band = soi.transform_band_pooled(&x, k0, &pool)?;
        let dt = t0.elapsed();
        let (peak_bin, peak) = band
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        println!(
            "band [{k0}, {}) in {dt:?}; peak |Y| = {peak:.3} at bin {}",
            k0 + cfg.m,
            k0 + peak_bin
        );
        return Ok(());
    }
    let mut ws = SoiWorkspace::new(&soi, threads);
    let mut y = vec![Complex64::ZERO; n];
    let t0 = Instant::now();
    soi.transform_into(&x, &mut y, &mut ws)?;
    let soi_t = t0.elapsed();
    let t0 = Instant::now();
    let exact = soi_fft::fft_forward(&x);
    let fft_t = t0.elapsed();
    let err = soi_num::complex::rel_l2_error(&y, &exact);
    println!("SOI transform: {soi_t:?}  |  plain FFT: {fft_t:?}");
    println!("relative L2 error vs exact FFT: {err:.3e}");
    Ok(())
}

/// `soi transform --input real`: the r2c pipeline on real samples, with
/// the complex path timed on the same (embedded) signal for the speedup.
fn transform_real(soi: &SoiFft, n: usize, threads: usize) -> CmdResult {
    let x: Vec<f64> = (0..n)
        .map(|j| {
            let t = j as f64;
            (t * 0.37).sin() + 0.4 * (t * 1.7).cos()
        })
        .collect();
    let mut ws = SoiRealWorkspace::new(soi, threads);
    let mut y = vec![Complex64::ZERO; n / 2 + 1];
    let t0 = Instant::now();
    soi.transform_real_into(&x, &mut y, &mut ws)?;
    let real_t = t0.elapsed();

    let xc: Vec<Complex64> = x.iter().map(|&r| Complex64::new(r, 0.0)).collect();
    let mut cws = SoiWorkspace::new(soi, threads);
    let mut yc = vec![Complex64::ZERO; n];
    let t0 = Instant::now();
    soi.transform_into(&xc, &mut yc, &mut cws)?;
    let complex_t = t0.elapsed();

    let exact = soi_fft::fft_forward(&xc);
    let err = soi_num::complex::rel_l2_error(&y, &exact[..n / 2 + 1]);
    println!(
        "r2c transform: {real_t:?} ({} half-spectrum bins)  |  complex path: {complex_t:?}",
        n / 2 + 1
    );
    println!(
        "relative L2 error vs exact FFT: {err:.3e}; r2c speedup {:.2}x",
        complex_t.as_secs_f64() / real_t.as_secs_f64()
    );
    Ok(())
}

/// `soi design`.
pub fn design(a: &Args) -> CmdResult {
    a.restrict(&["beta", "digits", "family", "kappa-max"])?;
    let beta = a.get_f64("beta", 0.25)?;
    let digits = a.get_usize("digits", 15)?;
    let kappa_max = a.get_f64("kappa-max", 1000.0)?;
    let target = 10f64.powi(-(digits as i32));
    match a.get("family").unwrap_or("two-param") {
        "two-param" => {
            let d = design_two_param(beta, target, kappa_max)?;
            println!(
                "two-param: tau = {:.4}, sigma = {:.2}, B = {}, kappa = {:.1}",
                d.window.tau, d.window.sigma, d.b, d.kappa
            );
            println!(
                "alias = {:.2e}, trunc = {:.2e}, predicted error ~ {:.2e}",
                d.alias,
                d.trunc,
                d.predicted_error()
            );
        }
        "gaussian" => {
            let d = design_gaussian(beta, target, kappa_max)?;
            println!(
                "gaussian: sigma = {:.2}, B = {}, kappa = {:.1}, alias = {:.2e}, trunc = {:.2e}",
                d.window.sigma, d.b, d.kappa, d.alias, d.trunc
            );
        }
        "compact" => {
            let d = design_compact(beta, target, kappa_max)?;
            println!(
                "compact: tau = {:.4}, u_max = {:.3}, B = {}, kappa = {:.1}, alias = 0 (exact), trunc = {:.2e}",
                d.window.tau, d.window.u_max, d.b, d.kappa, d.trunc
            );
        }
        other => return Err(format!("unknown family `{other}`").into()),
    }
    Ok(())
}

/// `soi simulate`.
pub fn simulate(a: &Args) -> CmdResult {
    a.restrict(&["nodes", "points", "fabric", "digits", "trace"])?;
    let nodes = a.get_positive("nodes", 4)?;
    let points = a.get_positive("points", 1 << 14)?;
    let digits = a.get_usize("digits", 15)?;
    let trace_path: Option<String> = a
        .get("trace")
        .map(String::from)
        .or_else(soi_trace::path_from_env);
    let fabric = match a.get("fabric").unwrap_or("endeavor") {
        "endeavor" => Fabric::endeavor_fat_tree(),
        "gordon" => Fabric::gordon_torus(),
        "ethernet" => Fabric::ethernet_10g(),
        "ideal" => Fabric::Ideal,
        other => return Err(format!("unknown fabric `{other}`").into()),
    };
    let n = nodes * points;
    let preset = preset_for_digits(digits)?;
    let params = SoiParams::with_preset(n, nodes, preset)?;
    let dist = DistSoiFft::new(&params)?;
    // Pre-flight the partition so a bad rank count surfaces as a usage
    // error here, not inside every simulated rank.
    dist.segments_per_rank(nodes)?;
    let base = BaselineFft::new(n, nodes, ExchangeVariant::Collective);
    let x = synthetic(n);
    let policy = ChargePolicy::Rates(ComputeRates::paper_node());
    let exact = soi_fft::fft_forward(&x);

    let (xr, dr) = (&x, &dist);
    let m = points;
    let soi_job = move |comm: &mut RankComm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, policy).expect("partition pre-validated")
    };
    let soi_out = if let Some(path) = &trace_path {
        let (out, traces) = Cluster::new(nodes, fabric.clone()).run_traced(&soi_job);
        let summary = traces.validate()?;
        traces.write_jsonl_file(Path::new(path))?;
        println!(
            "trace    : {} events / {} messages / {} bytes on {} ranks -> {path} (conservation OK)",
            summary.events, summary.messages, summary.bytes, summary.ranks,
        );
        out
    } else {
        Cluster::new(nodes, fabric.clone()).run(&soi_job)
    };
    let soi_y: Vec<Complex64> = soi_out.iter().flat_map(|((y, _), _)| y.clone()).collect();
    let soi_make = soi_out.iter().map(|(_, r)| r.sim_time).fold(0.0, f64::max);
    let t = &soi_out[0].0 .1;
    println!(
        "SOI      : {:.4} virtual s (conv {:.4}, F_P {:.4}, exchange {:.4}, F_M' {:.4}); err {:.1e}; {} all-to-all",
        soi_make,
        t.conv,
        t.fft_small,
        t.exchange,
        t.fft_large,
        soi_num::complex::rel_l2_error(&soi_y, &exact),
        soi_out[0].1.stats.all_to_alls,
    );

    let br = &base;
    let base_out = Cluster::new(nodes, fabric).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        br.run(comm, local, policy).expect("partition pre-validated")
    });
    let base_y: Vec<Complex64> = base_out.iter().flat_map(|((y, _), _)| y.clone()).collect();
    let base_make = base_out.iter().map(|(_, r)| r.sim_time).fold(0.0, f64::max);
    println!(
        "baseline : {:.4} virtual s; err {:.1e}; {} all-to-alls",
        base_make,
        soi_num::complex::rel_l2_error(&base_y, &exact),
        base_out[0].1.stats.all_to_alls,
    );
    println!("speedup  : {:.2}x", base_make / soi_make);
    Ok(())
}

/// `soi trace-check`.
pub fn trace_check(a: &Args) -> CmdResult {
    a.restrict(&["file"])?;
    let path = a
        .get("file")
        .ok_or("trace-check needs --file <trace.jsonl>")?;
    let traces = TraceSet::read_jsonl_file(Path::new(path))?;
    let summary = traces.validate()?;
    println!(
        "{path}: OK — {} ranks, {} events, {} messages, {} bytes",
        summary.ranks, summary.events, summary.messages, summary.bytes
    );
    println!(
        "collectives: {} ({})",
        summary.collectives.len(),
        summary
            .collectives
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if !summary.phases.is_empty() {
        println!("phases: {}", summary.phases.join(", "));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Out-of-process execution: `soi launch` / `soi worker`.
//
// The launcher owns a rendezvous socket and R child processes; each child
// bootstraps into the TCP mesh, computes its slice of the same synthetic
// input the launcher would use, and ships `(rank, PhaseTimes, spectrum,
// trace)` back over its control connection as one RESULT frame. The
// launcher reassembles the global spectrum in rank order, validates the
// merged trace, and diffs the result bitwise against an in-process
// reference run on the simulated cluster — the two transports must agree
// to the last bit, not approximately.
//
// With a checkpoint directory armed, the job additionally survives one
// rank death: each worker runs the recoverable driver
// (`soi_dist::run_wire_recoverable`), the launcher watches every control
// stream concurrently, and a dead worker's EOF triggers a respawn with
// `--rejoin <rank>` plus a `Rendezvous::reserve` round that re-wires all
// survivors into epoch 1. The replayed job must still pass the bitwise
// cross-check and trace conservation (with per-rank rejoin markers).
// ---------------------------------------------------------------------------

use soi_dist::{run_wire_recoverable, CheckpointStore, DirStore, FaultPlan};
use soi_wire::frame::{expect_frame, write_frame, TAG_ERROR, TAG_RESULT};
use soi_wire::pod::{PayloadReader, PayloadWriter};
use soi_wire::{encode_slice, Bootstrap, Rendezvous, WireComm, WireConfig, WireError};
use std::net::TcpStream;
use std::path::PathBuf;

/// How long the launcher waits for a worker's RESULT after the mesh is
/// up. Compute-bound, so much longer than the per-message wire timeout.
const RESULT_TIMEOUT: Duration = Duration::from_secs(300);

/// Serialize one rank's outcome as a RESULT payload.
fn encode_result(rank: usize, times: &PhaseTimes, y: &[Complex64], trace: &[Event]) -> Vec<u8> {
    let mut jsonl = String::new();
    for ev in trace {
        jsonl.push_str(&ev.to_json_line());
        jsonl.push('\n');
    }
    PayloadWriter::new()
        .u32(rank as u32)
        .f64(times.halo)
        .f64(times.conv)
        .f64(times.fft_small)
        .f64(times.fft_large)
        .f64(times.scale)
        .f64(times.pack)
        .f64(times.exchange)
        .bytes(&encode_slice(y))
        .bytes(jsonl.as_bytes())
        .finish()
}

/// Parse a RESULT payload back into `(rank, times, spectrum, events)`.
fn decode_result(
    payload: &[u8],
) -> Result<(usize, PhaseTimes, Vec<Complex64>, Vec<Event>), Box<dyn std::error::Error>> {
    let mut r = PayloadReader::new(payload);
    let rank = r.u32()? as usize;
    let times = PhaseTimes {
        halo: r.f64()?,
        conv: r.f64()?,
        fft_small: r.f64()?,
        fft_large: r.f64()?,
        scale: r.f64()?,
        pack: r.f64()?,
        exchange: r.f64()?,
    };
    let y = soi_wire::decode_slice::<Complex64>(&r.bytes()?)?;
    let jsonl = String::from_utf8(r.bytes()?).map_err(|e| format!("trace not UTF-8: {e}"))?;
    let mut events = Vec::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        events.push(Event::from_json_line(line).map_err(|e| format!("bad trace line: {e}"))?);
    }
    Ok((rank, times, y, events))
}

/// Build the distributed plan both the launcher and every worker agree
/// on, pre-flighting the partition so misconfiguration fails before any
/// socket traffic.
fn wire_plan(geo: &JobGeometry, ranks: usize) -> Result<DistSoiFft, Box<dyn std::error::Error>> {
    let preset = preset_for_digits(geo.digits)?;
    let params = SoiParams::with_preset(geo.n, geo.p, preset)?;
    let dist = DistSoiFft::new(&params)?;
    dist.segments_per_rank(ranks)?;
    Ok(dist)
}

/// `SOI_FAULT_PHASE=<k>` arms a deterministic crash: the victim rank
/// (`SOI_FAULT_RANK`, default 1) aborts its process — SIGKILL-equivalent
/// on the wire — at phase boundary `k`.
fn fault_from_env() -> Option<FaultPlan> {
    let boundary: usize = std::env::var("SOI_FAULT_PHASE").ok()?.parse().ok()?;
    let victim: usize = std::env::var("SOI_FAULT_RANK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    Some(FaultPlan::abort_process(victim, boundary))
}

/// `soi worker`: one rank of an out-of-process run.
pub fn worker(a: &Args) -> CmdResult {
    a.restrict(&["rendezvous", "n", "p", "digits", "threads", "rejoin", "ckpt-dir"])?;
    let addr = a
        .get("rendezvous")
        .ok_or("worker needs --rendezvous <host:port>")?;
    let geo = JobGeometry::from_args(a, 1 << 16, 8)?;
    let rejoin: Option<usize> = match a.get("rejoin") {
        Some(s) => Some(s.parse().map_err(|_| "--rejoin must be a rank number")?),
        None => None,
    };
    let ckpt_dir: Option<String> = a
        .get("ckpt-dir")
        .map(String::from)
        .or_else(|| std::env::var("SOI_CKPT_DIR").ok());
    // A respawned worker reclaims a dead rank's slot and must never
    // re-run that rank's fault: the launcher scrubs the fault env on
    // respawn, and --rejoin ignores it outright as a second line.
    let fault = if rejoin.is_none() { fault_from_env() } else { None };
    let cfg = WireConfig::from_env();
    let boot = match rejoin {
        None => Bootstrap::join(addr, cfg)?,
        Some(rank) => Bootstrap::rejoin(addr, rank, 1, cfg)?,
    };
    let (mut comm, control) = WireComm::from_bootstrap(boot);
    comm.set_trace(Trace::recording(comm.rank()));
    if rejoin.is_some() {
        // Survivors record the same marker when they re-rendezvous, so
        // the merged trace has one identical rejoin sequence per rank.
        comm.trace().rejoin(1, None);
    }
    match worker_job(&mut comm, &geo, rejoin.is_some(), ckpt_dir.as_deref(), fault) {
        Ok((y, times, new_control)) => {
            let events = comm.trace().drain();
            let payload = encode_result(comm.rank(), &times, &y, &events);
            // After a recovery the original control stream belongs to a
            // dead epoch; the RESULT goes on the reserve-round stream.
            let stream = new_control.as_ref().unwrap_or(&control);
            write_frame(&mut &*stream, TAG_RESULT, &payload, None, cfg.op_timeout)?;
            Ok(())
        }
        Err(e) => {
            let msg = format!("rank {}: {e}", comm.rank());
            // Best effort: the launcher may already be gone.
            let _ = write_frame(&mut &control, TAG_ERROR, msg.as_bytes(), None, cfg.op_timeout);
            Err(msg.into())
        }
    }
}

/// The compute body of a worker rank (separated so failures can be
/// reported over the control stream). Returns the fresh control stream
/// when the run went through a recovery rendezvous.
#[allow(clippy::type_complexity)]
fn worker_job(
    comm: &mut WireComm,
    geo: &JobGeometry,
    rejoined: bool,
    ckpt_dir: Option<&str>,
    fault: Option<FaultPlan>,
) -> Result<(Vec<Complex64>, PhaseTimes, Option<TcpStream>), Box<dyn std::error::Error>> {
    let ranks = comm.size();
    geo.check_ranks("ranks", ranks)?;
    let dist = wire_plan(geo, ranks)?;
    let local_pts = geo.n / ranks;
    let pool = ThreadPool::new(geo.threads);
    let Some(dir) = ckpt_dir else {
        // No checkpoint store: the plain non-recoverable path, byte for
        // byte what ran before fault tolerance existed.
        let x = synthetic(geo.n);
        let local = &x[comm.rank() * local_pts..][..local_pts];
        let (y, times) = dist.run_with(comm, local, ChargePolicy::WallClock, &pool)?;
        return Ok((y, times, None));
    };
    let store = DirStore::new(dir);
    let input: Vec<Complex64> = if rejoined {
        // The dead rank's input comes back from its last checkpoint —
        // the respawned process never sees the original signal source.
        let ckpt = store
            .load(comm.rank())?
            .ok_or_else(|| format!("no checkpoint for rejoined rank {}", comm.rank()))?;
        if ckpt.n as usize != geo.n || ckpt.p as usize != geo.p || ckpt.ranks as usize != ranks {
            return Err(format!(
                "checkpoint geometry (N = {}, P = {}, R = {}) does not match job (N = {}, P = {}, R = {ranks})",
                ckpt.n, ckpt.p, ckpt.ranks, geo.n, geo.p
            )
            .into());
        }
        ckpt.x_local
    } else {
        let x = synthetic(geo.n);
        x[comm.rank() * local_pts..][..local_pts].to_vec()
    };
    let rec = run_wire_recoverable(&dist, comm, &input, ChargePolicy::WallClock, &pool, &store, fault)?;
    Ok((rec.y, rec.times, rec.control))
}

/// `soi launch`: spawn workers, run over real sockets, verify.
pub fn launch(a: &Args) -> CmdResult {
    a.restrict(&["ranks", "n", "p", "digits", "threads", "trace", "ckpt-dir"])?;
    let ranks = a.get_positive("ranks", 4)?;
    let geo = JobGeometry::from_args(a, 1 << 16, 8)?;
    geo.check_ranks("ranks", ranks)?;
    let trace_path: Option<String> = a
        .get("trace")
        .map(String::from)
        .or_else(soi_trace::path_from_env);
    let dist = wire_plan(&geo, ranks)?;

    // Checkpointing is armed by an explicit directory or implicitly by
    // an injected fault (which would be unsurvivable without one). A
    // directory we invented ourselves is cleaned up on success.
    let fault_armed = fault_from_env().is_some();
    let explicit_dir: Option<PathBuf> = a
        .get("ckpt-dir")
        .map(PathBuf::from)
        .or_else(|| std::env::var("SOI_CKPT_DIR").ok().map(PathBuf::from));
    let owned_dir = explicit_dir.is_none() && fault_armed;
    let ckpt_dir: Option<PathBuf> = explicit_dir.or_else(|| {
        fault_armed.then(|| std::env::temp_dir().join(format!("soi-ckpt-{}", std::process::id())))
    });

    let cfg = WireConfig::from_env();
    let rv = Rendezvous::bind("127.0.0.1:0", cfg)?;
    let addr = rv.local_addr()?;
    let exe = std::env::current_exe()?;
    println!(
        "launch   : {ranks} ranks on {addr}, N = {}, P = {}, {} thread(s)/rank{}",
        geo.n,
        geo.p,
        geo.threads,
        match &ckpt_dir {
            Some(d) => format!(", checkpoints in {}", d.display()),
            None => String::new(),
        }
    );
    let t0 = Instant::now();
    let mut children = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        children.push(spawn_worker(&exe, &addr, &geo, None, ckpt_dir.as_deref())?);
    }

    let outcome = collect_results(&rv, ranks, &geo, &exe, &addr, ckpt_dir.as_deref(), &mut children);
    // Always reap the children: on success they have already exited; on
    // failure kill whatever is still running so nothing lingers.
    if outcome.is_err() {
        for c in &mut children {
            let _ = c.kill();
        }
    }
    let mut worker_failure = None;
    for (idx, c) in children.iter_mut().enumerate() {
        let status = c.wait()?;
        if !status.success() && worker_failure.is_none() {
            worker_failure = Some(format!("worker #{idx} exited with {status}"));
        }
    }
    let (wire_y, times, streams, recovered) = match outcome {
        Ok(v) => v,
        Err(e) => match worker_failure {
            // The worker's stderr (already inherited) has the real story.
            Some(w) => return Err(format!("{w}: {e}").into()),
            None => return Err(e),
        },
    };
    let wall = t0.elapsed();
    if recovered {
        println!("recovery : job survived a rank death and replayed from checkpoints (epoch 1)");
    }
    if owned_dir {
        if let Some(dir) = &ckpt_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    // Validate the captured traffic exactly like `trace-check` would.
    let set = TraceSet::from_streams(streams);
    let summary = set.validate()?;
    if let Some(path) = &trace_path {
        set.write_jsonl_file(Path::new(path))?;
        println!(
            "trace    : {} events / {} messages / {} bytes on {} ranks -> {path} (conservation OK)",
            summary.events, summary.messages, summary.bytes, summary.ranks,
        );
    } else {
        println!(
            "trace    : {} events / {} messages / {} bytes on {} ranks (conservation OK)",
            summary.events, summary.messages, summary.bytes, summary.ranks,
        );
    }

    // Bitwise cross-check against the in-process simulated cluster.
    let x = synthetic(geo.n);
    let local_pts = geo.n / ranks;
    let (xr, dr) = (&x, &dist);
    let sim_out = Cluster::ideal(ranks).run_collect(move |comm| {
        let local = &xr[comm.rank() * local_pts..][..local_pts];
        dr.run(comm, local, ChargePolicy::WallClock)
            .expect("partition pre-validated")
            .0
    });
    let sim_y: Vec<Complex64> = sim_out.into_iter().flatten().collect();
    let mismatches = wire_y
        .iter()
        .zip(&sim_y)
        .filter(|(a, b)| a.re.to_bits() != b.re.to_bits() || a.im.to_bits() != b.im.to_bits())
        .count();
    if wire_y.len() != sim_y.len() || mismatches != 0 {
        return Err(format!(
            "wire spectrum diverges from simnet reference: {mismatches} of {} bins differ",
            sim_y.len()
        )
        .into());
    }

    let t = times
        .iter()
        .fold(PhaseTimes::default(), |acc, t| acc.max_with(t));
    println!(
        "workers  : conv {:.4}s, F_P {:.4}s, exchange {:.4}s, F_M' {:.4}s (max across ranks)",
        t.conv, t.fft_small, t.exchange, t.fft_large
    );
    let exact = soi_fft::fft_forward(&x);
    println!(
        "result   : {} bins in {wall:.2?}; err {:.1e} vs exact FFT; bitwise identical to simnet reference",
        wire_y.len(),
        soi_num::complex::rel_l2_error(&wire_y, &exact)
    );
    Ok(())
}

/// Spawn one worker process. `rejoin` makes it reclaim a dead rank's
/// slot in the recovery epoch, with the fault env scrubbed so the
/// respawn does not inherit its predecessor's death sentence.
fn spawn_worker(
    exe: &std::path::Path,
    addr: &str,
    geo: &JobGeometry,
    rejoin: Option<usize>,
    ckpt_dir: Option<&std::path::Path>,
) -> std::io::Result<std::process::Child> {
    let mut cmd = std::process::Command::new(exe);
    cmd.args([
        "worker",
        "--rendezvous",
        addr,
        "--n",
        &geo.n.to_string(),
        "--p",
        &geo.p.to_string(),
        "--digits",
        &geo.digits.to_string(),
        "--threads",
        &geo.threads.to_string(),
    ]);
    if let Some(dir) = ckpt_dir {
        cmd.arg("--ckpt-dir").arg(dir);
    }
    if let Some(rank) = rejoin {
        cmd.args(["--rejoin", &rank.to_string()]);
        cmd.env_remove("SOI_FAULT_PHASE").env_remove("SOI_FAULT_RANK");
    }
    cmd.stdin(std::process::Stdio::null()).spawn()
}

/// One reader thread per control stream, reporting `(generation, rank,
/// frame-or-error)` — concurrency is what turns a dead worker's EOF
/// into prompt detection instead of a serialized 300 s stall.
fn spawn_result_readers(
    controls: Vec<TcpStream>,
    gen: u32,
    tx: &std::sync::mpsc::Sender<(u32, usize, Result<Vec<u8>, WireError>)>,
) {
    for (slot, control) in controls.into_iter().enumerate() {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let res = control
                .set_read_timeout(Some(RESULT_TIMEOUT))
                .map_err(|e| WireError::Io(e.to_string()))
                .and_then(|()| expect_frame(&mut &control, TAG_RESULT, Some(slot), RESULT_TIMEOUT));
            let _ = tx.send((gen, slot, res));
        });
    }
}

/// Read every worker's RESULT frame, surviving one rank death when a
/// checkpoint directory is armed: the dead rank is respawned with
/// `--rejoin`, a `reserve` round hands every worker a fresh control
/// stream (generation 1), and collection starts over on those. Returns
/// the assembled job plus whether a recovery happened.
#[allow(clippy::type_complexity)]
fn collect_results(
    rv: &Rendezvous,
    ranks: usize,
    geo: &JobGeometry,
    exe: &std::path::Path,
    addr: &str,
    ckpt_dir: Option<&std::path::Path>,
    children: &mut Vec<std::process::Child>,
) -> Result<(Vec<Complex64>, Vec<PhaseTimes>, Vec<Vec<Event>>, bool), Box<dyn std::error::Error>> {
    let controls = rv.serve(ranks)?;
    let (tx, rx) = std::sync::mpsc::channel();
    spawn_result_readers(controls, 0, &tx);
    let local_pts = geo.n / ranks;
    let mut wire_y = vec![Complex64::ZERO; geo.n];
    let mut times = vec![PhaseTimes::default(); ranks];
    let mut streams: Vec<Vec<Event>> = vec![Vec::new(); ranks];
    let mut seen = vec![false; ranks];
    let mut pending = ranks;
    let mut gen = 0u32;
    let mut recovered = false;
    let deadline = Instant::now() + RESULT_TIMEOUT;
    while pending > 0 {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err("timed out waiting for worker results".into());
        }
        let (g, slot, res) = rx
            .recv_timeout(left)
            .map_err(|_| "timed out waiting for worker results")?;
        if g != gen {
            // A pre-recovery stream finally EOF'd (its worker exited
            // after delivering on the fresh control); nothing to do.
            continue;
        }
        match res {
            Ok(payload) => {
                let (rank, t, y, events) = decode_result(&payload)?;
                if rank >= ranks || seen[rank] {
                    return Err(format!("duplicate or out-of-range result for rank {rank}").into());
                }
                if y.len() != local_pts {
                    return Err(format!(
                        "rank {rank} returned {} points, expected {local_pts}",
                        y.len()
                    )
                    .into());
                }
                seen[rank] = true;
                wire_y[rank * local_pts..(rank + 1) * local_pts].copy_from_slice(&y);
                times[rank] = t;
                streams[rank] = events;
                pending -= 1;
            }
            Err(e) => {
                if recovered {
                    return Err(format!("rank {slot} died during recovery (double fault): {e}").into());
                }
                let Some(dir) = ckpt_dir else {
                    return Err(format!(
                        "worker rank {slot} died: {e} (arm --ckpt-dir to make jobs recoverable)"
                    )
                    .into());
                };
                println!("fault    : rank {slot} died ({e}); respawning into epoch 1");
                children.push(spawn_worker(exe, addr, geo, Some(slot), Some(dir))?);
                // Survivors are already re-rendezvousing (their
                // completion barrier or data path failed); collect all
                // R rejoin claims and restart collection on the fresh
                // control streams.
                let fresh = rv.reserve(ranks, 1)?;
                gen += 1;
                recovered = true;
                pending = ranks;
                seen = vec![false; ranks];
                spawn_result_readers(fresh, gen, &tx);
            }
        }
    }
    Ok((wire_y, times, streams, recovered))
}

/// `soi trace-view`: JSONL trace -> Chrome trace-event JSON.
pub fn trace_view(a: &Args) -> CmdResult {
    a.restrict(&["file", "out"])?;
    let path = a
        .get("file")
        .ok_or("trace-view needs --file <trace.jsonl>")?;
    let set = TraceSet::read_jsonl_file(Path::new(path))?;
    let doc = soi_trace::to_chrome_trace(&set);
    match a.get("out") {
        Some(out) => {
            std::fs::write(out, &doc)?;
            let events: usize = set.ranks.iter().map(Vec::len).sum();
            println!(
                "{out}: {events} events from {} ranks — open in chrome://tracing or ui.perfetto.dev",
                set.ranks.iter().filter(|s| !s.is_empty()).count()
            );
        }
        None => print!("{doc}"),
    }
    Ok(())
}

/// `soi info`.
/// `soi serve`: run the daemon (or, with `--stats <addr>`, query one).
pub fn serve(a: &Args) -> CmdResult {
    a.restrict(&["addr", "threads", "queue", "batch", "engines", "idle-ms", "stats"])?;
    if let Some(addr) = a.get("stats") {
        let mut client = soi_serve::ServeClient::connect(addr, Duration::from_secs(10))?;
        let snap = client.stats()?;
        let _ = client.bye();
        print_serve_stats(&snap);
        return Ok(());
    }
    let mut cfg = soi_serve::ServeConfig::from_env();
    cfg.addr = a.get("addr").unwrap_or("127.0.0.1:0").to_string();
    cfg.threads = a.get_positive("threads", 1)?;
    cfg.queue_cap = a.get_usize("queue", cfg.queue_cap)?;
    cfg.max_batch = a.get_positive("batch", cfg.max_batch)?;
    cfg.engine_cap = a.get_positive("engines", cfg.engine_cap)?;
    let idle_ms = a.get_positive("idle-ms", cfg.idle_timeout.as_millis() as usize)?;
    cfg.idle_timeout = Duration::from_millis(idle_ms as u64);
    let batching = cfg.batching;
    let mut server = soi_serve::Server::start(cfg)?;
    // The bench and the CI smoke poll this exact line for the resolved
    // port; stdout is line-buffered even when redirected.
    println!("serve    : listening on {}", server.addr());
    println!(
        "serve    : batching {}, idle timeout {idle_ms} ms (send a shutdown \
         request or SIGKILL to stop)",
        if batching { "on" } else { "off (SOI_NO_BATCH)" }
    );
    server.join();
    let snap = server.stats();
    let answered: u64 = snap.tenants.iter().map(|t| t.ok).sum();
    println!("serve    : drained and stopped; {answered} request(s) answered");
    print_serve_stats(&snap);
    Ok(())
}

fn print_serve_stats(s: &soi_serve::StatsSnapshot) {
    println!(
        "serve    : connections {} total / {} active / {} idle-closed / {} lost",
        s.connections, s.active_connections, s.idle_closed, s.peer_lost
    );
    println!(
        "serve    : batches {} ({} requests, max {}/batch), queue depth {}",
        s.batches, s.batched_requests, s.max_batch, s.queue_depth
    );
    println!(
        "serve    : plan cache {} hits / {} misses / {} evictions; engines {} built / {} evicted",
        s.plan_hits, s.plan_misses, s.plan_evictions, s.engine_builds, s.engine_evictions
    );
    for t in &s.tenants {
        println!(
            "serve    : tenant {:<12} req {:>5}  ok {:>5}  shed {:>4}  expired {:>4}  \
             bad {:>4}  in {:>10} B  out {:>10} B  compute {:.3} ms",
            t.tenant,
            t.requests,
            t.ok,
            t.shed,
            t.expired,
            t.rejected,
            t.bytes_in,
            t.bytes_out,
            t.compute_ns as f64 / 1e6
        );
    }
}

/// `soi request`: issue transform requests to a running daemon.
pub fn request(a: &Args) -> CmdResult {
    a.restrict(&[
        "addr", "n", "p", "digits", "input", "segment", "band", "deadline-ms", "tenant",
        "count", "check", "shutdown",
    ])?;
    let addr = a.get("addr").ok_or("--addr <host:port> is required")?;
    let mut client = soi_serve::ServeClient::connect(addr, Duration::from_secs(120))?;
    if a.get_usize("shutdown", 0)? == 1 {
        client.shutdown()?;
        println!("request  : daemon acknowledged shutdown");
        return Ok(());
    }
    let geo = JobGeometry::from_args(a, 1 << 14, 4)?;
    let JobGeometry { n, p, digits, .. } = geo;
    let real = match a.get("input").unwrap_or("complex") {
        "complex" => false,
        "real" => true,
        other => return Err(format!("unknown input kind `{other}` (complex|real)").into()),
    };
    let segment = a.get("segment");
    let band = a.get("band");
    if segment.is_some() && band.is_some() {
        return Err("--segment and --band are mutually exclusive".into());
    }
    let parse = |key: &str, v: &str| -> Result<usize, String> {
        v.parse().map_err(|_| format!("--{key} must be an integer"))
    };
    let (kind, arg) = match (real, segment, band) {
        (false, None, None) => (soi_serve::RequestKind::Full, 0),
        (false, Some(s), None) => (soi_serve::RequestKind::Segment, parse("segment", s)?),
        (false, None, Some(k)) => (soi_serve::RequestKind::Band, parse("band", k)?),
        (true, None, None) => (soi_serve::RequestKind::RealFull, 0),
        (true, Some(s), None) => (soi_serve::RequestKind::RealSegment, parse("segment", s)?),
        (true, None, Some(k)) => (soi_serve::RequestKind::RealBand, parse("band", k)?),
        _ => unreachable!("segment/band exclusivity checked above"),
    };
    let samples = if real {
        soi_serve::Samples::Real(synthetic_real(n))
    } else {
        soi_serve::Samples::Complex(synthetic(n))
    };
    let count = a.get_positive("count", 1)? as u64;
    let deadline_ms = a.get_usize("deadline-ms", 0)? as u64;
    let tenant = a.get("tenant").unwrap_or("cli").to_string();
    for id in 0..count {
        client.send_request(&soi_serve::Request {
            id,
            tenant: tenant.clone(),
            n,
            p,
            digits: digits as u32,
            kind,
            arg,
            deadline_ms,
            samples: samples.clone(),
        })?;
    }
    let mut responses = std::collections::BTreeMap::new();
    for _ in 0..count {
        match client.recv()? {
            soi_serve::Reply::Ok(resp) => {
                responses.insert(resp.id, resp);
            }
            soi_serve::Reply::Rejected(rej) => {
                return Err(format!(
                    "request {} rejected ({}): {}",
                    rej.id,
                    rej.code.name(),
                    rej.message
                )
                .into())
            }
            other => return Err(format!("unexpected reply: {other:?}").into()),
        }
    }
    let _ = client.bye();
    let total_ns: u64 = responses.values().map(|r| r.compute_ns).sum();
    let bins = responses.values().next().map(|r| r.bins.len()).unwrap_or(0);
    println!(
        "request  : {count} {} response(s), {bins} bins each, server compute {:.3} ms total",
        kind.name(),
        total_ns as f64 / 1e6
    );
    if a.get_usize("check", 0)? == 1 {
        let reference = local_reference(n, p, digits, kind, arg, &samples)?;
        for resp in responses.values() {
            if resp.bins.len() != reference.len() {
                return Err(format!(
                    "check failed: response {} has {} bins, local transform has {}",
                    resp.id,
                    resp.bins.len(),
                    reference.len()
                )
                .into());
            }
            for (i, (got, want)) in resp.bins.iter().zip(&reference).enumerate() {
                if got.re.to_bits() != want.re.to_bits() || got.im.to_bits() != want.im.to_bits()
                {
                    return Err(format!(
                        "check failed: response {} bin {i} differs from the local \
                         transform ({got:?} vs {want:?})",
                        resp.id
                    )
                    .into());
                }
            }
        }
        println!("request  : check ok — all responses bitwise-identical to the local transform");
    }
    Ok(())
}

/// The real-valued synthetic signal (`soi transform --input real` uses
/// the same one, so spectra are comparable across verbs).
fn synthetic_real(n: usize) -> Vec<f64> {
    (0..n)
        .map(|j| {
            let t = j as f64;
            (t * 0.37).sin() + 0.4 * (t * 1.7).cos()
        })
        .collect()
}

/// Recompute a request locally, serially, through the same preset
/// mapping the daemon uses — the bitwise ground truth for `--check`.
fn local_reference(
    n: usize,
    p: usize,
    digits: usize,
    kind: soi_serve::RequestKind,
    arg: usize,
    samples: &soi_serve::Samples,
) -> Result<Vec<Complex64>, Box<dyn std::error::Error>> {
    let params = SoiParams::with_preset(n, p, preset_for_digits(digits)?)?;
    let soi = SoiFft::new(&params)?;
    use soi_serve::{RequestKind as K, Samples as S};
    Ok(match (kind, samples) {
        (K::Full, S::Complex(x)) => {
            let mut ws = SoiWorkspace::new(&soi, 1);
            let mut y = vec![Complex64::ZERO; n];
            soi.transform_into(x, &mut y, &mut ws)?;
            y
        }
        (K::Segment, S::Complex(x)) => soi.transform_segment(x, arg)?,
        (K::Band, S::Complex(x)) => soi.transform_band(x, arg)?,
        (K::RealFull, S::Real(x)) => {
            let mut ws = SoiRealWorkspace::new(&soi, 1);
            let mut y = vec![Complex64::ZERO; n / 2 + 1];
            soi.transform_real_into(x, &mut y, &mut ws)?;
            y
        }
        (K::RealSegment, S::Real(x)) => soi.transform_real_segment(x, arg)?,
        (K::RealBand, S::Real(x)) => soi.transform_real_band(x, arg)?,
        _ => return Err("request kind does not match sample domain".into()),
    })
}

pub fn info(a: &Args) -> CmdResult {
    a.restrict(&[])?;
    println!("soi {} — low-communication 1-D FFT", env!("CARGO_PKG_VERSION"));
    println!("reproduction of Tang, Park, Kim, Petrov — SC 2012 best paper");
    println!("crates: soi-num, soi-fft, soi-window, soi-simnet, soi-core, soi-dist");
    Ok(())
}
