//! Subcommand implementations for the `soi` binary.

use crate::args::Args;
use soi_core::{SoiFft, SoiParams, SoiWorkspace, ThreadPool};
use soi_dist::{BaselineFft, ChargePolicy, ComputeRates, DistSoiFft, ExchangeVariant};
use soi_num::Complex64;
use soi_simnet::{Cluster, Fabric, RankComm};
use soi_trace::TraceSet;
use soi_window::{design_compact, design_gaussian, design_two_param};
use std::path::Path;
use std::time::Instant;

/// Top-level usage text.
pub const USAGE: &str = "\
soi — low-communication 1-D FFT (Tang et al., SC 2012 reproduction)

USAGE:
  soi transform --n <size> --p <segments> [--digits <6..15>] [--band <k0>]
                [--threads <t>]
      Run a SOI transform on a synthetic signal; checks against an exact
      FFT and prints accuracy and timing. --band computes one M-bin zoom
      band starting at bin k0 instead of the full spectrum. --threads
      fans the compute stages across t workers (default 1 = serial); the
      result is bitwise identical for every worker count.

  soi design --beta <rate> --digits <d> [--family two-param|gaussian|compact]
      Search window parameters (tau, sigma, B) for an accuracy target.

  soi simulate --nodes <r> --points <per-node> [--fabric endeavor|gordon|ethernet]
               [--trace <file.jsonl>]
      Run SOI and the triple-all-to-all baseline on the simulated cluster
      and print the speedup and phase breakdown. --trace (or the
      SOI_TRACE environment variable) records every phase span, message,
      and collective of the SOI run as JSON lines, then validates the
      trace for communication conservation before writing it.

  soi trace-check --file <trace.jsonl>
      Validate a recorded trace: per-link byte conservation, identical
      collective sequences, clock monotonicity, barrier agreement, span
      nesting. Prints a summary or the first violation.

  soi info
      Print version and configuration summary.
";

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// A usize option that must be at least 1 (sizes, counts, rank totals).
fn get_positive(a: &Args, key: &str, default: usize) -> Result<usize, Box<dyn std::error::Error>> {
    let v = a.get_usize(key, default)?;
    if v == 0 {
        return Err(format!("--{key} must be at least 1").into());
    }
    Ok(v)
}

fn synthetic(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|j| {
            let t = j as f64;
            Complex64::new((t * 0.37).sin() + 0.4 * (t * 1.7).cos(), (t * 0.11).cos())
        })
        .collect()
}

fn preset_for_digits(digits: usize) -> Result<soi_window::AccuracyPreset, String> {
    use soi_window::AccuracyPreset::*;
    Ok(match digits {
        0..=10 => Digits10,
        11 => Digits11,
        12 => Digits12,
        13 => Digits13,
        _ => Full,
    })
}

/// `soi transform`.
pub fn transform(a: &Args) -> CmdResult {
    a.restrict(&["n", "p", "digits", "band", "threads"])?;
    let n = get_positive(a, "n", 1 << 16)?;
    let p = get_positive(a, "p", 8)?;
    let digits = a.get_usize("digits", 15)?;
    let threads = get_positive(a, "threads", 1)?;
    let preset = preset_for_digits(digits)?;
    let params = SoiParams::with_preset(n, p, preset)?;
    let soi = SoiFft::new(&params)?;
    let cfg = *soi.config();
    println!(
        "SOI: N = {n}, P = {p}, M' = {}, B = {}, kappa = {:.1}, predicted err ~ {:.1e}, threads = {threads}",
        cfg.m_prime,
        cfg.b,
        cfg.kappa,
        cfg.predicted_error()
    );
    let x = synthetic(n);
    if let Some(k0s) = a.get("band") {
        let k0: usize = k0s.parse().map_err(|_| "--band must be an integer")?;
        let pool = ThreadPool::new(threads);
        let t0 = Instant::now();
        let band = soi.transform_band_pooled(&x, k0, &pool)?;
        let dt = t0.elapsed();
        let (peak_bin, peak) = band
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        println!(
            "band [{k0}, {}) in {dt:?}; peak |Y| = {peak:.3} at bin {}",
            k0 + cfg.m,
            k0 + peak_bin
        );
        return Ok(());
    }
    let mut ws = SoiWorkspace::new(&soi, threads);
    let mut y = vec![Complex64::ZERO; n];
    let t0 = Instant::now();
    soi.transform_into(&x, &mut y, &mut ws)?;
    let soi_t = t0.elapsed();
    let t0 = Instant::now();
    let exact = soi_fft::fft_forward(&x);
    let fft_t = t0.elapsed();
    let err = soi_num::complex::rel_l2_error(&y, &exact);
    println!("SOI transform: {soi_t:?}  |  plain FFT: {fft_t:?}");
    println!("relative L2 error vs exact FFT: {err:.3e}");
    Ok(())
}

/// `soi design`.
pub fn design(a: &Args) -> CmdResult {
    a.restrict(&["beta", "digits", "family", "kappa-max"])?;
    let beta = a.get_f64("beta", 0.25)?;
    let digits = a.get_usize("digits", 15)?;
    let kappa_max = a.get_f64("kappa-max", 1000.0)?;
    let target = 10f64.powi(-(digits as i32));
    match a.get("family").unwrap_or("two-param") {
        "two-param" => {
            let d = design_two_param(beta, target, kappa_max)?;
            println!(
                "two-param: tau = {:.4}, sigma = {:.2}, B = {}, kappa = {:.1}",
                d.window.tau, d.window.sigma, d.b, d.kappa
            );
            println!(
                "alias = {:.2e}, trunc = {:.2e}, predicted error ~ {:.2e}",
                d.alias,
                d.trunc,
                d.predicted_error()
            );
        }
        "gaussian" => {
            let d = design_gaussian(beta, target, kappa_max)?;
            println!(
                "gaussian: sigma = {:.2}, B = {}, kappa = {:.1}, alias = {:.2e}, trunc = {:.2e}",
                d.window.sigma, d.b, d.kappa, d.alias, d.trunc
            );
        }
        "compact" => {
            let d = design_compact(beta, target, kappa_max)?;
            println!(
                "compact: tau = {:.4}, u_max = {:.3}, B = {}, kappa = {:.1}, alias = 0 (exact), trunc = {:.2e}",
                d.window.tau, d.window.u_max, d.b, d.kappa, d.trunc
            );
        }
        other => return Err(format!("unknown family `{other}`").into()),
    }
    Ok(())
}

/// `soi simulate`.
pub fn simulate(a: &Args) -> CmdResult {
    a.restrict(&["nodes", "points", "fabric", "digits", "trace"])?;
    let nodes = get_positive(a, "nodes", 4)?;
    let points = get_positive(a, "points", 1 << 14)?;
    let digits = a.get_usize("digits", 15)?;
    let trace_path: Option<String> = a
        .get("trace")
        .map(String::from)
        .or_else(soi_trace::path_from_env);
    let fabric = match a.get("fabric").unwrap_or("endeavor") {
        "endeavor" => Fabric::endeavor_fat_tree(),
        "gordon" => Fabric::gordon_torus(),
        "ethernet" => Fabric::ethernet_10g(),
        "ideal" => Fabric::Ideal,
        other => return Err(format!("unknown fabric `{other}`").into()),
    };
    let n = nodes * points;
    let preset = preset_for_digits(digits)?;
    let params = SoiParams::with_preset(n, nodes, preset)?;
    let dist = DistSoiFft::new(&params)?;
    // Pre-flight the partition so a bad rank count surfaces as a usage
    // error here, not inside every simulated rank.
    dist.segments_per_rank(nodes)?;
    let base = BaselineFft::new(n, nodes, ExchangeVariant::Collective);
    let x = synthetic(n);
    let policy = ChargePolicy::Rates(ComputeRates::paper_node());
    let exact = soi_fft::fft_forward(&x);

    let (xr, dr) = (&x, &dist);
    let m = points;
    let soi_job = move |comm: &mut RankComm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, policy).expect("partition pre-validated")
    };
    let soi_out = if let Some(path) = &trace_path {
        let (out, traces) = Cluster::new(nodes, fabric.clone()).run_traced(&soi_job);
        let summary = traces.validate()?;
        traces.write_jsonl_file(Path::new(path))?;
        println!(
            "trace    : {} events / {} messages / {} bytes on {} ranks -> {path} (conservation OK)",
            summary.events, summary.messages, summary.bytes, summary.ranks,
        );
        out
    } else {
        Cluster::new(nodes, fabric.clone()).run(&soi_job)
    };
    let soi_y: Vec<Complex64> = soi_out.iter().flat_map(|((y, _), _)| y.clone()).collect();
    let soi_make = soi_out.iter().map(|(_, r)| r.sim_time).fold(0.0, f64::max);
    let t = &soi_out[0].0 .1;
    println!(
        "SOI      : {:.4} virtual s (conv {:.4}, F_P {:.4}, exchange {:.4}, F_M' {:.4}); err {:.1e}; {} all-to-all",
        soi_make,
        t.conv,
        t.fft_small,
        t.exchange,
        t.fft_large,
        soi_num::complex::rel_l2_error(&soi_y, &exact),
        soi_out[0].1.stats.all_to_alls,
    );

    let br = &base;
    let base_out = Cluster::new(nodes, fabric).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        br.run(comm, local, policy)
    });
    let base_y: Vec<Complex64> = base_out.iter().flat_map(|((y, _), _)| y.clone()).collect();
    let base_make = base_out.iter().map(|(_, r)| r.sim_time).fold(0.0, f64::max);
    println!(
        "baseline : {:.4} virtual s; err {:.1e}; {} all-to-alls",
        base_make,
        soi_num::complex::rel_l2_error(&base_y, &exact),
        base_out[0].1.stats.all_to_alls,
    );
    println!("speedup  : {:.2}x", base_make / soi_make);
    Ok(())
}

/// `soi trace-check`.
pub fn trace_check(a: &Args) -> CmdResult {
    a.restrict(&["file"])?;
    let path = a
        .get("file")
        .ok_or("trace-check needs --file <trace.jsonl>")?;
    let traces = TraceSet::read_jsonl_file(Path::new(path))?;
    let summary = traces.validate()?;
    println!(
        "{path}: OK — {} ranks, {} events, {} messages, {} bytes",
        summary.ranks, summary.events, summary.messages, summary.bytes
    );
    println!(
        "collectives: {} ({})",
        summary.collectives.len(),
        summary
            .collectives
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if !summary.phases.is_empty() {
        println!("phases: {}", summary.phases.join(", "));
    }
    Ok(())
}

/// `soi info`.
pub fn info(a: &Args) -> CmdResult {
    a.restrict(&[])?;
    println!("soi {} — low-communication 1-D FFT", env!("CARGO_PKG_VERSION"));
    println!("reproduction of Tang, Park, Kim, Petrov — SC 2012 best paper");
    println!("crates: soi-num, soi-fft, soi-window, soi-simnet, soi-core, soi-dist");
    Ok(())
}
