//! `soi` — command-line front end to the low-communication FFT workspace.
//!
//! ```text
//! soi transform --n 65536 --p 8 [--digits 15] [--band 12345] [--threads 4]
//! soi design    --beta 0.25 --digits 12 [--family two-param|gaussian|compact]
//! soi simulate  --nodes 8 --points 16384 [--fabric endeavor|gordon|ethernet]
//!               [--trace trace.jsonl]
//! soi launch    --ranks 4 [--n 65536] [--p 8] [--threads 2] [--trace t.jsonl]
//! soi worker    --rendezvous host:port [--n 65536] [--p 8]
//! soi serve     [--addr host:port] [--threads 2] [--queue 64] [--stats host:port]
//! soi request   --addr host:port [--n 16384] [--p 4] [--segment 2] [--check 1]
//! soi trace-check --file trace.jsonl
//! soi trace-view  --file trace.jsonl [--out trace.json]
//! soi info
//! soi help
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let code = run(tokens);
    std::process::exit(code);
}

fn run(tokens: Vec<String>) -> i32 {
    let parsed = match Args::parse(tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return 2;
        }
    };
    let result = match parsed.command.as_str() {
        "transform" => commands::transform(&parsed),
        "design" => commands::design(&parsed),
        "simulate" => commands::simulate(&parsed),
        "launch" => commands::launch(&parsed),
        "worker" => commands::worker(&parsed),
        "serve" => commands::serve(&parsed),
        "request" => commands::request(&parsed),
        "trace-check" => commands::trace_check(&parsed),
        "trace-view" => commands::trace_view(&parsed),
        "info" => commands::info(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand `{other}`");
            eprintln!("{}", commands::USAGE);
            return 2;
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(run(toks("help")), 0);
    }

    #[test]
    fn unknown_subcommand_fails_cleanly() {
        assert_eq!(run(toks("frobnicate")), 2);
    }

    #[test]
    fn empty_args_fail_cleanly() {
        assert_eq!(run(vec![]), 2);
    }

    #[test]
    fn info_runs() {
        assert_eq!(run(toks("info")), 0);
    }

    #[test]
    fn small_transform_runs_end_to_end() {
        assert_eq!(run(toks("transform --n 4096 --p 4 --digits 10")), 0);
    }

    #[test]
    fn threaded_transform_runs_end_to_end() {
        assert_eq!(run(toks("transform --n 4096 --p 4 --digits 10 --threads 2")), 0);
        assert_eq!(
            run(toks("transform --n 4096 --p 4 --digits 10 --band 100 --threads 2")),
            0
        );
        assert_eq!(run(toks("transform --n 4096 --p 4 --threads 0")), 1);
    }

    #[test]
    fn transform_rejects_bad_shape() {
        assert_eq!(run(toks("transform --n 1000 --p 3")), 1);
    }

    #[test]
    fn design_runs() {
        assert_eq!(run(toks("design --beta 0.25 --digits 10")), 0);
        assert_eq!(run(toks("design --beta 0.25 --digits 10 --family gaussian")), 1);
        assert_eq!(
            run(toks("design --beta 0.25 --digits 6 --family compact")),
            0
        );
    }

    #[test]
    fn simulate_runs_small() {
        assert_eq!(
            run(toks("simulate --nodes 2 --points 2048 --fabric ethernet")),
            0
        );
    }

    #[test]
    fn zero_sized_options_are_usage_errors() {
        assert_eq!(run(toks("transform --n 0 --p 4")), 1);
        assert_eq!(run(toks("transform --n 4096 --p 0")), 1);
        assert_eq!(run(toks("simulate --nodes 0 --points 2048")), 1);
        assert_eq!(run(toks("simulate --nodes 2 --points 0")), 1);
    }

    #[test]
    fn traced_simulate_writes_a_trace_that_trace_check_accepts() {
        let path = std::env::temp_dir().join(format!(
            "soi-cli-trace-{}.jsonl",
            std::process::id()
        ));
        let path_s = path.to_str().unwrap().to_string();
        assert_eq!(
            run(vec![
                "simulate".into(),
                "--nodes".into(),
                "2".into(),
                "--points".into(),
                "2048".into(),
                "--fabric".into(),
                "ethernet".into(),
                "--trace".into(),
                path_s.clone(),
            ]),
            0
        );
        assert_eq!(
            run(vec!["trace-check".into(), "--file".into(), path_s]),
            0
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_check_requires_a_readable_file() {
        assert_eq!(run(toks("trace-check")), 1);
        assert_eq!(run(toks("trace-check --file /nonexistent/t.jsonl")), 1);
    }

    #[test]
    fn serve_and_request_roundtrip_via_cli() {
        // In-process daemon; the `request` verb talks to it over real
        // sockets exactly as an external client would.
        let mut server = soi_serve::Server::start(soi_serve::ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();
        for args in [
            format!("request --addr {addr} --n 4096 --p 4 --digits 10 --check 1"),
            format!("request --addr {addr} --n 4096 --p 4 --digits 10 --segment 2 --check 1"),
            format!("request --addr {addr} --n 4096 --p 4 --digits 10 --band 777 --check 1"),
            format!(
                "request --addr {addr} --n 4096 --p 4 --digits 10 --input real --check 1"
            ),
            format!(
                "request --addr {addr} --n 4096 --p 4 --digits 10 --input real --segment 1 \
                 --count 3 --check 1"
            ),
            format!("serve --stats {addr}"),
        ] {
            assert_eq!(run(toks(&args)), 0, "{args}");
        }
        // A server-rejected request surfaces as a runtime error.
        assert_eq!(
            run(toks(&format!(
                "request --addr {addr} --n 4096 --p 4 --segment 9"
            ))),
            1
        );
        assert_eq!(run(toks(&format!("request --addr {addr} --shutdown 1"))), 0);
        server.join();
    }

    #[test]
    fn request_requires_addr_and_consistent_options() {
        assert_eq!(run(toks("request --n 4096 --p 4")), 1);
        assert_eq!(
            run(toks("request --addr 127.0.0.1:1 --segment 1 --band 2")),
            1
        );
    }

    #[test]
    fn unknown_option_is_rejected() {
        // restrict() runs inside the subcommand, so this surfaces as a
        // runtime error (1), not a parse error (2).
        assert_eq!(run(toks("design --beta 0.25 --bogus 1")), 1);
    }
}
