//! Process-level tests of the out-of-process pipeline: `soi launch`
//! spawning real worker processes over localhost sockets, plus the trace
//! tooling downstream of a captured run.
//!
//! These exercise the actual binary (`CARGO_BIN_EXE_soi`), so everything
//! here — argument handling, rendezvous, mesh bootstrap, result
//! aggregation, exit codes — is tested exactly as a user would hit it.

use std::path::PathBuf;
use std::process::{Command, Output};

fn soi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_soi"))
        .args(args)
        .output()
        .expect("spawn soi binary")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("soi-launch-test-{}-{name}", std::process::id()))
}

#[test]
fn launch_runs_over_real_sockets_and_traces_validate() {
    let trace = tmp("ok.jsonl");
    let trace_s = trace.to_str().unwrap();
    let out = soi(&[
        "launch", "--ranks", "2", "--n", "16384", "--p", "4", "--digits", "10", "--trace", trace_s,
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "launch failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("bitwise identical to simnet reference"),
        "missing bitwise check in:\n{stdout}"
    );
    assert!(stdout.contains("conservation OK"), "{stdout}");

    // The captured trace must satisfy the standalone checker…
    let out = soi(&["trace-check", "--file", trace_s]);
    assert!(
        out.status.success(),
        "trace-check failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK"), "{stdout}");

    // …and convert to Chrome trace-event JSON.
    let chrome = tmp("ok.json");
    let chrome_s = chrome.to_str().unwrap();
    let out = soi(&["trace-view", "--file", trace_s, "--out", chrome_s]);
    assert!(
        out.status.success(),
        "trace-view failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&chrome).expect("chrome trace written");
    assert!(doc.starts_with('{') && doc.contains("\"traceEvents\""));
    assert!(doc.contains("\"name\":\"exchange\""), "phase spans exported");

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&chrome);
}

#[test]
fn trace_view_streams_to_stdout_without_out() {
    // Build a tiny valid trace via the simulator, then view it.
    let trace = tmp("sim.jsonl");
    let trace_s = trace.to_str().unwrap();
    let out = soi(&[
        "simulate", "--nodes", "2", "--points", "2048", "--fabric", "ethernet", "--trace", trace_s,
    ]);
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = soi(&["trace-view", "--file", trace_s]);
    assert!(out.status.success());
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("\"ph\":\"B\""));
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn launch_arg_errors_are_uniform_and_fail_fast() {
    for (args, needle) in [
        (&["launch", "--ranks", "0"][..], "positive integer"),
        (&["launch", "--ranks", "3", "--p", "8"][..], "does not divide"),
        (&["launch", "--ranks", "2", "--n", "1000", "--p", "3"][..], "does not divide"),
        (&["worker", "--n", "4096"][..], "--rendezvous"),
        (&["trace-view"][..], "--file"),
    ] {
        let out = soi(args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "{args:?}: expected `{needle}` in\n{stderr}"
        );
    }
}

#[test]
fn worker_against_dead_rendezvous_times_out_cleanly() {
    // Nothing listens here; the worker must give up within its connect
    // budget and exit nonzero rather than hang.
    let out = Command::new(env!("CARGO_BIN_EXE_soi"))
        .args(["worker", "--rendezvous", "127.0.0.1:9", "--n", "4096", "--p", "4"])
        .env("SOI_WIRE_CONNECT_TIMEOUT_MS", "500")
        .env("SOI_WIRE_TIMEOUT_MS", "500")
        .output()
        .expect("spawn soi binary");
    assert!(!out.status.success());
}
