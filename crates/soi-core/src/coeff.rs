//! Convolution coefficients and demodulation weights.
//!
//! ## Derivation (from §4–5 of the paper)
//!
//! The problem-size-specific window is configured from the reference
//! window by translation, dilation and phase shift:
//!
//! ```text
//! ŵ(u) = exp(iπ·BPu/N) · Ĥ((u − M/2)/M)           (§4)
//! ```
//!
//! With `N = MP` the phase simplifies to `exp(iπBu/M)`. Its inverse
//! Fourier transform (substituting `u = Mv + M/2`) is
//!
//! ```text
//! w(t) = M · exp(iπ·θ(t)) · H(θ(t)),    θ(t) = M·t + B/2,
//! ```
//!
//! so `w` is supported (to truncation accuracy) on `θ ∈ [−B/2, B/2]`, i.e.
//! `t ∈ [−B/M, 0]` — each convolution output reads `B` blocks of `P`
//! inputs starting at its own position.
//!
//! The matrix entries are `c_{j,ℓ} = (1/M') Σ_m w(j/M' − ℓ/N − m)`
//! (Eq. 4). Writing `ℓ = (k₀(j)+b)·P + s` with `k₀(j) = ⌊jν/μ⌋`:
//!
//! ```text
//! θ(j,b,s) = frac(jν/μ) + B/2 − b − s/P
//! c        = (ν/μ) · exp(iπθ) · H(θ)
//! ```
//!
//! which depends on `j` only through `j mod μ` — the `μPB` distinct
//! elements of Fig 4 ("The entire matrix has μPB distinct elements").
//!
//! Demodulation divides bin `k` by `ŵ(k)` (§3: `y⁽⁰⁾ ≈ Ŵ⁻¹·P_proj·ỹ`).

use crate::params::SoiConfig;
use soi_num::{AlignedBuf, Complex64};
use soi_window::family::Window;

/// Precomputed tables for one SOI configuration.
#[derive(Debug, Clone)]
pub struct ConvCoefficients {
    /// Distinct convolution coefficients, laid out `[(r·B + b)·P + s]` for
    /// row-residue `r < μ`, block `b < B`, lane `s < P` (μPB entries).
    pub coef: Vec<Complex64>,
    /// Real parts of `coef`, each duplicated in place (`[re_q, re_q]` at
    /// `2q..2q+2`), same `(r, blk, s)` order. A 4-wide f64 load at `2q`
    /// yields `[re_q, re_q, re_{q+1}, re_{q+1}]` — exactly the broadcast
    /// pattern the SIMD convolution kernel needs for a pair of lanes,
    /// without spending shuffle ports on it in the inner loop.
    pub coef_re_dup: AlignedBuf<f64>,
    /// Imaginary parts of `coef`, duplicated the same way.
    pub coef_im_dup: AlignedBuf<f64>,
    /// Demodulation weights `1/ŵ(k)` for `k < M`.
    pub demod: AlignedBuf<Complex64>,
    mu: usize,
    b: usize,
    p: usize,
}

impl ConvCoefficients {
    /// Build the tables for a resolved configuration. The block loop runs
    /// over `taps = B+1` blocks so the designed support `[−B/2, B/2]` is
    /// fully covered for every row residue (see `SoiConfig::taps`).
    pub fn new(cfg: &SoiConfig) -> Self {
        let (mu, nu, b, p) = (cfg.mu, cfg.nu, cfg.b, cfg.p);
        let taps = cfg.taps();
        let scale = nu as f64 / mu as f64;
        let mut coef = Vec::with_capacity(mu * taps * p);
        for r in 0..mu {
            // frac(r·ν/μ) computed exactly in rationals.
            let frac = (r * nu % mu) as f64 / mu as f64;
            for blk in 0..taps {
                for s in 0..p {
                    let theta = frac + b as f64 / 2.0 - blk as f64 - s as f64 / p as f64;
                    let h = cfg.window.h_time(theta);
                    let phase = Complex64::cis(std::f64::consts::PI * theta);
                    coef.push(phase.scale(h * scale));
                }
            }
        }
        let mut coef_re_dup = AlignedBuf::<f64>::zeroed(2 * coef.len());
        let mut coef_im_dup = AlignedBuf::<f64>::zeroed(2 * coef.len());
        for (q, c) in coef.iter().enumerate() {
            coef_re_dup[2 * q] = c.re;
            coef_re_dup[2 * q + 1] = c.re;
            coef_im_dup[2 * q] = c.im;
            coef_im_dup[2 * q + 1] = c.im;
        }
        let demod: Vec<Complex64> = (0..cfg.m).map(|k| w_hat(cfg, k as f64).inv()).collect();
        Self {
            coef,
            coef_re_dup,
            coef_im_dup,
            demod: AlignedBuf::from_slice(&demod),
            mu,
            b: taps,
            p,
        }
    }

    /// Coefficient row for residue `r`, block `b`: a `P`-lane slice.
    #[inline]
    pub fn lane_row(&self, r: usize, blk: usize) -> &[Complex64] {
        let start = (r * self.b + blk) * self.p;
        &self.coef[start..start + self.p]
    }

    /// Number of distinct coefficients (`μPB`, the Fig 4 count).
    pub fn distinct(&self) -> usize {
        self.coef.len()
    }

    /// Total table memory in bytes (coefficients, their SIMD split
    /// copies, and demodulation).
    pub fn memory_bytes(&self) -> usize {
        (self.coef.len() + self.demod.len()) * std::mem::size_of::<Complex64>()
            + (self.coef_re_dup.len() + self.coef_im_dup.len()) * std::mem::size_of::<f64>()
    }

    /// μ (row residues in the table).
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// Tap blocks per row (`B+1`, see `SoiConfig::taps`).
    pub fn b(&self) -> usize {
        self.b
    }

    /// P (lanes per block).
    pub fn p(&self) -> usize {
        self.p
    }
}

/// The problem-specific window `ŵ(u) = e^{iπBu/M}·Ĥ((u−M/2)/M)` (for real
/// `u`, typically a bin index).
pub fn w_hat(cfg: &SoiConfig, u: f64) -> Complex64 {
    let m = cfg.m as f64;
    let phase = std::f64::consts::PI * cfg.b as f64 * u / m;
    let mag = cfg.window.h_hat((u - m / 2.0) / m);
    Complex64::cis(phase).scale(mag)
}

/// The time-domain window `w(t) = M·e^{iπθ}·H(θ)`, `θ = Mt + B/2`.
pub fn w_time(cfg: &SoiConfig, t: f64) -> Complex64 {
    let theta = cfg.m as f64 * t + cfg.b as f64 / 2.0;
    Complex64::cis(std::f64::consts::PI * theta).scale(cfg.m as f64 * cfg.window.h_time(theta))
}

/// Oracle: the matrix entry `c_{j,ℓ}` by its definition (Eq. 4),
/// `(1/M') Σ_m w(j/M' − ℓ/N − m)` with the periodization shifts summed
/// explicitly. `O(1)` but slower than the table — used by tests.
pub fn coefficient_direct(cfg: &SoiConfig, j: usize, l: usize) -> Complex64 {
    let t0 = j as f64 / cfg.m_prime as f64 - l as f64 / cfg.n as f64;
    let mut acc = Complex64::ZERO;
    for m in -1..=1 {
        acc += w_time(cfg, t0 - m as f64);
    }
    acc.scale(1.0 / cfg.m_prime as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SoiParams;
    use soi_window::AccuracyPreset;

    fn small_cfg() -> SoiConfig {
        SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10)
            .unwrap()
            .resolve()
    }

    #[test]
    fn table_has_mu_p_b_distinct_elements() {
        let cfg = small_cfg();
        let c = ConvCoefficients::new(&cfg);
        // μ·P·taps distinct entries — Fig 4's μPB count plus the one
        // extra coverage block per row (SoiConfig::taps).
        assert_eq!(c.distinct(), cfg.mu * cfg.p * cfg.taps());
        assert_eq!(c.demod.len(), cfg.m);
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn table_matches_direct_definition() {
        // Every table entry must equal c_{j,ℓ} from Eq. (4) for a j with
        // the right residue and its support blocks.
        let cfg = small_cfg();
        let c = ConvCoefficients::new(&cfg);
        for j in [0usize, 1, 2, 3, 4, 7, 11, cfg.mu * 3 + 2] {
            let r = j % cfg.mu;
            let k0 = j * cfg.nu / cfg.mu;
            for blk in [0usize, 1, cfg.b / 2, cfg.b - 1] {
                for s in [0usize, 1, cfg.p - 1] {
                    let l = (k0 + blk) * cfg.p + s;
                    if l >= cfg.n {
                        continue;
                    }
                    let want = coefficient_direct(&cfg, j, l);
                    let got = c.lane_row(r, blk)[s];
                    assert!(
                        (got - want).abs() < 1e-15 + 1e-12 * want.abs(),
                        "j={j} blk={blk} s={s}: {got:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn periodicity_across_mu_rows() {
        // c_{j+μ, ℓ+νP} = c_{j,ℓ} (§4: "C0 is completely determined by its
        // first μ rows").
        let cfg = small_cfg();
        for j in 0..cfg.mu {
            for blk in [0usize, 2, cfg.b - 1] {
                let l = (j * cfg.nu / cfg.mu + blk) * cfg.p + 1;
                let a = coefficient_direct(&cfg, j, l);
                let b = coefficient_direct(&cfg, j + cfg.mu, l + cfg.nu * cfg.p);
                assert!((a - b).abs() < 1e-15 + 1e-12 * a.abs(), "j={j} blk={blk}");
            }
        }
    }

    #[test]
    fn coefficients_outside_support_are_negligible() {
        // c_{j,ℓ} for ℓ far from the support window must be ~ε_trunc.
        let cfg = small_cfg();
        let j = 10;
        let k0 = j * cfg.nu / cfg.mu;
        let peak = coefficient_direct(&cfg, j, k0 * cfg.p).abs();
        let far = coefficient_direct(&cfg, j, ((k0 + 2 * cfg.b) * cfg.p) % cfg.n).abs();
        assert!(
            far < peak * 1e-6,
            "support leak: far {far:e} vs peak {peak:e}"
        );
    }

    #[test]
    fn demod_is_reciprocal_of_w_hat() {
        let cfg = small_cfg();
        let c = ConvCoefficients::new(&cfg);
        for k in [0usize, 1, cfg.m / 2, cfg.m - 1] {
            let prod = c.demod[k] * w_hat(&cfg, k as f64);
            assert!((prod - Complex64::ONE).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn w_hat_magnitude_matches_reference_window() {
        let cfg = small_cfg();
        // |ŵ(k)| on [0, M−1] corresponds to |Ĥ| on ≈[−1/2, 1/2] (§4).
        let mid = w_hat(&cfg, cfg.m as f64 / 2.0).abs();
        assert!((mid - cfg.window.h_hat(0.0)).abs() < 1e-12);
        let edge = w_hat(&cfg, 0.0).abs();
        assert!((edge - cfg.window.h_hat(-0.5)).abs() < 1e-12);
        // Outside (−δ−1, M') the window is tiny.
        let outside = w_hat(&cfg, cfg.m_prime as f64 + 1.0).abs();
        assert!(outside < mid * 1e-8, "outside = {outside:e}");
    }

    #[test]
    fn w_time_support_is_b_blocks() {
        let cfg = small_cfg();
        // |w| at θ-center vs beyond the B/2 edge.
        let center = w_time(&cfg, -(cfg.b as f64) / (2.0 * cfg.m as f64)).abs();
        let beyond = w_time(&cfg, 2.0 * cfg.b as f64 / cfg.m as f64).abs();
        assert!(beyond < center * 1e-6, "beyond = {beyond:e} center = {center:e}");
    }
}
