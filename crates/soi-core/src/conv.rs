//! The convolution kernel `v = W·x` — SOI's "extra" arithmetic (§6b).
//!
//! Per Fig 4, the per-node matrix has `M'` rows over `M + halo` columns,
//! structured as chunks of `μ` row-groups that share one window of `B`
//! input blocks; every scalar row is a length-`B` inner product with
//! stride-`P` taps, and lanes `s = 0..P` of a row-group read *contiguous*
//! input, which is what makes the kernel vectorizable.
//!
//! Two implementations:
//!
//! * [`convolve`] — the optimized kernel: chunked μ-row coefficient reuse,
//!   lane-contiguous inner loop (auto-vectorizes), FMA accumulation. This
//!   mirrors the paper's loop-interchange + unroll-and-jam treatment that
//!   reached ~40% of machine peak (§7.4).
//! * [`convolve_naive`] — the textbook 4-deep loop nest in the paper's
//!   pseudo-code order (lane-strided inner products, no reuse), kept as
//!   the ablation baseline for the `conv_kernel` bench.

use crate::coeff::ConvCoefficients;
use soi_num::Complex64;
use soi_pool::{part_range, SlicePtr, ThreadPool};

/// Parameters the kernels need (a small copy-friendly subset of
/// `SoiConfig`, so the kernels stay testable in isolation).
#[derive(Debug, Clone, Copy)]
pub struct ConvShape {
    /// Oversampling numerator μ.
    pub mu: usize,
    /// Oversampling denominator ν.
    pub nu: usize,
    /// Tap blocks read per output row. This is the **tap count**
    /// `B + 1`, one more than the designed support `B` (see
    /// `SoiConfig::taps` for why), not `B` itself.
    pub b: usize,
    /// Lanes per block P.
    pub p: usize,
}

impl ConvShape {
    /// Input elements required to produce `rows` output rows:
    /// `(rows·ν/μ + b − 1)·P` — the rows' own `rows·(ν/μ)·P` points plus
    /// the `(b − 1)·P = B·P` halo, with `b` the tap count from the field
    /// above.
    pub fn required_input(&self, rows: usize) -> usize {
        assert!(rows % self.mu == 0, "rows must be a multiple of mu");
        (rows / self.mu * self.nu + self.b - 1) * self.p
    }

    /// First input block read by output row `j` (rank-relative):
    /// `k₀(j) = ⌊jν/μ⌋`.
    #[inline]
    pub fn k0(&self, j: usize) -> usize {
        j * self.nu / self.mu
    }
}

/// Optimized convolution: fills `out` (`rows·P` values, row-major in
/// `(j, s)`) from `xext` (local input followed by the halo).
///
/// The kernel register-tiles four lanes at a time so the four complex
/// accumulators live in registers across the whole B-tap reduction
/// (instead of a load/modify/store of `out` per tap) — the §6b
/// "keep partial sums of inner products in registers while exploiting
/// SIMD parallelism" treatment, expressed in safe Rust.
pub fn convolve(shape: ConvShape, coeffs: &ConvCoefficients, xext: &[Complex64], out: &mut [Complex64]) {
    let ConvShape { mu, nu, b, p } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    let chunks = rows / mu;
    for c in 0..chunks {
        for r in 0..mu {
            let j = c * mu + r;
            let k0 = c * nu + r * nu / mu;
            let out_row = &mut out[j * p..(j + 1) * p];
            let taps = &coeffs.coef[r * b * p..(r + 1) * b * p];
            let xin = &xext[k0 * p..];
            // Four-lane register tile.
            let mut s = 0;
            while s + 4 <= p {
                let (mut a0, mut a1, mut a2, mut a3) = (
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                );
                for blk in 0..b {
                    let ci = blk * p + s;
                    let t = &taps[ci..ci + 4];
                    let x = &xin[ci..ci + 4];
                    a0 = t[0].mul_add(x[0], a0);
                    a1 = t[1].mul_add(x[1], a1);
                    a2 = t[2].mul_add(x[2], a2);
                    a3 = t[3].mul_add(x[3], a3);
                }
                out_row[s] = a0;
                out_row[s + 1] = a1;
                out_row[s + 2] = a2;
                out_row[s + 3] = a3;
                s += 4;
            }
            // Remainder lanes.
            while s < p {
                let mut acc = Complex64::ZERO;
                for blk in 0..b {
                    acc = taps[blk * p + s].mul_add(xin[blk * p + s], acc);
                }
                out_row[s] = acc;
                s += 1;
            }
        }
    }
}

/// Row-parallel [`convolve`] on a [`ThreadPool`]: the μ-row coefficient
/// chunks are split into balanced contiguous ranges, one per worker, and
/// each range runs the untouched register-tiled kernel rank-relative
/// (input offset `c₀·ν·P`, exactly like the per-rank call in `soi-dist`).
/// Chunk boundaries sit at μ-row granularity, so per-row arithmetic is
/// identical to serial and the output is bitwise equal for every worker
/// count.
pub fn convolve_pooled(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[Complex64],
    out: &mut [Complex64],
    pool: &ThreadPool,
) {
    let ConvShape { mu, nu, p, .. } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    let chunks = rows / mu;
    let parts = pool.threads().min(chunks).max(1);
    if parts == 1 {
        return convolve(shape, coeffs, xext, out);
    }
    let out_ptr = SlicePtr::new(out);
    pool.run(parts, |t| {
        let (c0, cl) = part_range(chunks, parts, t);
        // SAFETY: chunk row-ranges are disjoint across tasks; the borrow
        // ends at the `run` barrier.
        let sub = unsafe { out_ptr.slice(c0 * mu * p, cl * mu * p) };
        convolve(shape, coeffs, &xext[c0 * nu * p..], sub);
    });
}

/// Naive reference kernel: the paper's pseudo-code loop order
/// (`loop_a` chunks → `loop_b` μ rows → `loop_c` B blocks → `loop_d`
/// P elements) evaluated one scalar inner product at a time, lane-major —
/// strided memory access and no coefficient reuse.
pub fn convolve_naive(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[Complex64],
    out: &mut [Complex64],
) {
    let ConvShape { mu, nu, b, p } = shape;
    let rows = out.len() / p;
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    for j in 0..rows {
        let r = j % mu;
        let k0 = j * nu / mu;
        for s in 0..p {
            let mut acc = Complex64::ZERO;
            for blk in 0..b {
                acc += coeffs.lane_row(r, blk)[s] * xext[(k0 + blk) * p + s];
            }
            out[j * p + s] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeff::{coefficient_direct, ConvCoefficients};
    use crate::params::SoiParams;
    use soi_num::{c64, complex::max_abs_diff};
    use soi_window::AccuracyPreset;

    fn setup() -> (crate::params::SoiConfig, ConvCoefficients, ConvShape) {
        let cfg = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10)
            .unwrap()
            .resolve();
        let coeffs = ConvCoefficients::new(&cfg);
        let shape = ConvShape {
            mu: cfg.mu,
            nu: cfg.nu,
            b: cfg.taps(),
            p: cfg.p,
        };
        (cfg, coeffs, shape)
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.23).sin(), (i as f64 * 0.71).cos()))
            .collect()
    }

    #[test]
    fn required_input_matches_halo_formula() {
        let (cfg, _, shape) = setup();
        // Per rank (Fig 4): M'/P rows need M local points + B·P halo.
        let rows = cfg.rows_per_rank();
        assert_eq!(
            shape.required_input(rows),
            cfg.m + cfg.halo_len(),
            "per-rank input = M + halo"
        );
        // Whole problem on one process: N points + the same halo (wrap).
        assert_eq!(
            shape.required_input(cfg.m_prime),
            cfg.n + cfg.halo_len(),
            "single-process input = N + halo"
        );
    }

    #[test]
    fn optimized_matches_naive() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.m_prime;
        let xext = signal(shape.required_input(rows));
        let mut a = vec![Complex64::ZERO; rows * cfg.p];
        let mut b = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut a);
        convolve_naive(shape, &coeffs, &xext, &mut b);
        assert!(max_abs_diff(&a, &b) < 1e-13);
    }

    #[test]
    fn kernel_matches_matrix_definition() {
        // v_j[s] must equal Σ_ℓ c_{j,ℓ}·x_ℓ over the support, with c from
        // the direct Eq. (4) oracle.
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 4; // a few chunks is enough (and fast)
        let xext = signal(shape.required_input(rows));
        let mut v = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut v);
        for j in [0usize, 1, cfg.mu, cfg.mu * 2 + 3] {
            for s in [0usize, cfg.p - 1] {
                let k0 = shape.k0(j);
                let mut want = Complex64::ZERO;
                for blk in 0..shape.b {
                    let l = (k0 + blk) * cfg.p + s;
                    want += coefficient_direct(&cfg, j, l) * xext[l];
                }
                let got = v[j * cfg.p + s];
                assert!(
                    (got - want).abs() < 1e-12 * (1.0 + want.abs()),
                    "j={j} s={s}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn kernel_is_linear() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 8;
        let len = shape.required_input(rows);
        let x1 = signal(len);
        let x2: Vec<Complex64> = signal(len).iter().map(|v| v.mul_i()).collect();
        let sum: Vec<Complex64> = x1.iter().zip(&x2).map(|(&a, &b)| a + b).collect();
        let mut v1 = vec![Complex64::ZERO; rows * cfg.p];
        let mut v2 = v1.clone();
        let mut vs = v1.clone();
        convolve(shape, &coeffs, &x1, &mut v1);
        convolve(shape, &coeffs, &x2, &mut v2);
        convolve(shape, &coeffs, &sum, &mut vs);
        for i in 0..vs.len() {
            assert!((vs[i] - (v1[i] + v2[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn pooled_convolve_is_bitwise_equal_to_serial() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.m_prime;
        let xext = signal(shape.required_input(rows));
        let mut serial = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut serial);
        for workers in [1usize, 2, 4, 7] {
            let pool = ThreadPool::new(workers);
            let mut pooled = vec![Complex64::ZERO; rows * cfg.p];
            convolve_pooled(shape, &coeffs, &xext, &mut pooled, &pool);
            let same = serial
                .iter()
                .zip(&pooled)
                .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            assert!(same, "workers={workers} drifted from serial");
        }
    }

    #[test]
    #[should_panic(expected = "xext too short")]
    fn rejects_short_input() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 2;
        let xext = signal(shape.required_input(rows) - 1);
        let mut out = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut out);
    }
}
