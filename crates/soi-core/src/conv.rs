//! The convolution kernel `v = W·x` — SOI's "extra" arithmetic (§6b).
//!
//! Per Fig 4, the per-node matrix has `M'` rows over `M + halo` columns,
//! structured as chunks of `μ` row-groups that share one window of `B`
//! input blocks; every scalar row is a length-`B` inner product with
//! stride-`P` taps, and lanes `s = 0..P` of a row-group read *contiguous*
//! input, which is what makes the kernel vectorizable.
//!
//! Three implementations:
//!
//! * [`convolve`] — the production entry point: chunked μ-row coefficient
//!   reuse + register tiling, dispatched at runtime to an AVX2+FMA inner
//!   kernel when the CPU has it. This mirrors the paper's loop
//!   interchange + unroll-and-jam + SIMD treatment that reached ~40% of
//!   machine peak (§7.4).
//! * [`convolve_portable`] — the same loop structure in safe, portable
//!   Rust; the fallback path and the SIMD ablation baseline.
//! * [`convolve_naive`] — the textbook 4-deep loop nest in the paper's
//!   pseudo-code order (lane-strided inner products, no reuse), kept as
//!   the ablation baseline for the `conv_kernel` bench.

use crate::coeff::ConvCoefficients;
use soi_num::Complex64;
use soi_pool::{part_range, SlicePtr, ThreadPool};

/// Parameters the kernels need (a small copy-friendly subset of
/// `SoiConfig`, so the kernels stay testable in isolation).
#[derive(Debug, Clone, Copy)]
pub struct ConvShape {
    /// Oversampling numerator μ.
    pub mu: usize,
    /// Oversampling denominator ν.
    pub nu: usize,
    /// Tap blocks read per output row. This is the **tap count**
    /// `B + 1`, one more than the designed support `B` (see
    /// `SoiConfig::taps` for why), not `B` itself.
    pub b: usize,
    /// Lanes per block P.
    pub p: usize,
}

impl ConvShape {
    /// Input elements required to produce `rows` output rows:
    /// `(rows·ν/μ + b − 1)·P` — the rows' own `rows·(ν/μ)·P` points plus
    /// the `(b − 1)·P = B·P` halo, with `b` the tap count from the field
    /// above.
    pub fn required_input(&self, rows: usize) -> usize {
        assert!(rows % self.mu == 0, "rows must be a multiple of mu");
        (rows / self.mu * self.nu + self.b - 1) * self.p
    }

    /// First input block read by output row `j` (rank-relative):
    /// `k₀(j) = ⌊jν/μ⌋`.
    #[inline]
    pub fn k0(&self, j: usize) -> usize {
        j * self.nu / self.mu
    }
}

/// Optimized convolution: fills `out` (`rows·P` values, row-major in
/// `(j, s)`) from `xext` (local input followed by the halo).
///
/// Dispatches once per call on runtime CPU features: an AVX2+FMA kernel
/// where the hardware has it (see [`kernel_name`]), otherwise the
/// portable register-tiled kernel. Both orders the reduction identically,
/// so each path is bitwise deterministic run-to-run and across worker
/// counts; the two paths differ from each other only by FMA rounding.
pub fn convolve(shape: ConvShape, coeffs: &ConvCoefficients, xext: &[Complex64], out: &mut [Complex64]) {
    let ConvShape { mu, p, .. } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        // SAFETY: avx2+fma presence just checked; slice extents were
        // validated by the asserts above.
        unsafe { avx2::convolve(shape, coeffs, xext, out) };
        return;
    }
    convolve_portable(shape, coeffs, xext, out);
}

/// Name of the convolution inner kernel [`convolve`] dispatches to on
/// this machine (`"avx2+fma"` or `"portable"`); recorded by the kernel
/// bench so committed numbers say which path produced them. Honors the
/// `SOI_NO_SIMD` ablation knob, like the FFT engines' dispatch.
pub fn kernel_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        return "avx2+fma";
    }
    "portable"
}

/// The portable (no target-feature) kernel: register-tiles four lanes ×
/// two tap blocks (2×4 unroll-and-jam), so eight complex accumulators
/// live in registers across the whole B-tap reduction (instead of a
/// load/modify/store of `out` per tap), with two independent FMA chains
/// per lane to cover the FMA latency — the §6b "keep partial sums of
/// inner products in registers while exploiting SIMD parallelism"
/// treatment, expressed in safe Rust. Public as the dispatch-free
/// reference for tests and the kernel-bench ablation.
pub fn convolve_portable(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[Complex64],
    out: &mut [Complex64],
) {
    let ConvShape { mu, nu, b, p } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    let chunks = rows / mu;
    for c in 0..chunks {
        for r in 0..mu {
            let j = c * mu + r;
            let k0 = c * nu + r * nu / mu;
            let out_row = &mut out[j * p..(j + 1) * p];
            let taps = &coeffs.coef[r * b * p..(r + 1) * b * p];
            let xin = &xext[k0 * p..];
            // 2×4 unroll-and-jam: four lanes × two tap blocks per
            // iteration. The eight accumulators give two independent FMA
            // chains per lane, hiding the complex-FMA latency that a
            // single chain per lane serializes on; banks are summed once
            // at the end (a fixed reassociation, identical for every
            // worker count).
            let mut s = 0;
            while s + 4 <= p {
                let (mut a0, mut a1, mut a2, mut a3) = (
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                );
                let (mut b0, mut b1, mut b2, mut b3) = (
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                );
                let mut blk = 0;
                while blk + 2 <= b {
                    let ci = blk * p + s;
                    let cj = ci + p;
                    let t = &taps[ci..ci + 4];
                    let x = &xin[ci..ci + 4];
                    let u = &taps[cj..cj + 4];
                    let z = &xin[cj..cj + 4];
                    a0 = t[0].mul_add(x[0], a0);
                    a1 = t[1].mul_add(x[1], a1);
                    a2 = t[2].mul_add(x[2], a2);
                    a3 = t[3].mul_add(x[3], a3);
                    b0 = u[0].mul_add(z[0], b0);
                    b1 = u[1].mul_add(z[1], b1);
                    b2 = u[2].mul_add(z[2], b2);
                    b3 = u[3].mul_add(z[3], b3);
                    blk += 2;
                }
                if blk < b {
                    let ci = blk * p + s;
                    let t = &taps[ci..ci + 4];
                    let x = &xin[ci..ci + 4];
                    a0 = t[0].mul_add(x[0], a0);
                    a1 = t[1].mul_add(x[1], a1);
                    a2 = t[2].mul_add(x[2], a2);
                    a3 = t[3].mul_add(x[3], a3);
                }
                out_row[s] = a0 + b0;
                out_row[s + 1] = a1 + b1;
                out_row[s + 2] = a2 + b2;
                out_row[s + 3] = a3 + b3;
                s += 4;
            }
            // Remainder lanes.
            while s < p {
                let mut acc = Complex64::ZERO;
                for blk in 0..b {
                    acc = taps[blk * p + s].mul_add(xin[blk * p + s], acc);
                }
                out_row[s] = acc;
                s += 1;
            }
        }
    }
}

/// AVX2+FMA inner kernel, selected at runtime by [`convolve`].
///
/// Lanes are processed two complex values per 256-bit register. The
/// complex multiply-accumulate is split into two plain FMA streams —
/// `m += t.re·x` and `n += t.im·swap(x)` — with the add/sub
/// reconciliation `[m₀−n₀, m₁+n₁, …]` deferred to a single `addsub`
/// after the whole B-tap reduction (legal because addsub distributes
/// over the sums). The `t.re`/`t.im` broadcasts come for free from the
/// pre-duplicated streams in [`ConvCoefficients`], so the loop spends
/// its shuffle port only on `swap(x)`: per tap and lane-pair the cost is
/// 3 loads + 1 shuffle + 2 FMAs. The same 2-tap × 4-lane jam as the
/// portable kernel gives eight independent FMA chains.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::ConvShape;
    use crate::coeff::ConvCoefficients;
    use soi_num::Complex64;
    use std::arch::x86_64::*;

    /// Runtime gate for the kernel: CPU features (cached atomics inside
    /// `std`) minus the process-wide `SOI_NO_SIMD` ablation override,
    /// sharing the FFT engines' dispatch seam so one knob disables every
    /// vector kernel in the workspace.
    #[inline]
    pub fn available() -> bool {
        soi_fft::simd::enabled()
    }

    /// One lane-pair × one tap: `m += t.re·x`, `n += t.im·swap(x)` for
    /// two consecutive complex lanes at flat tap offset `ci`.
    ///
    /// SAFETY: caller guarantees avx2+fma and that `ci + 2 ≤ b·p` holds
    /// for the row slices passed in.
    #[inline(always)]
    unsafe fn lane_pair(
        m: &mut __m256d,
        n: &mut __m256d,
        re: *const f64,
        im: *const f64,
        xin: *const Complex64,
        ci: usize,
    ) {
        let x = _mm256_loadu_pd(xin.add(ci) as *const f64);
        let xsw = _mm256_permute_pd(x, 0b0101);
        let tre = _mm256_loadu_pd(re.add(2 * ci));
        let tim = _mm256_loadu_pd(im.add(2 * ci));
        *m = _mm256_fmadd_pd(tre, x, *m);
        *n = _mm256_fmadd_pd(tim, xsw, *n);
    }

    /// SAFETY: caller checked [`available`] and validated slice extents
    /// (the asserts in [`super::convolve`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn convolve(
        shape: ConvShape,
        coeffs: &ConvCoefficients,
        xext: &[Complex64],
        out: &mut [Complex64],
    ) {
        let ConvShape { mu, nu, b, p } = shape;
        let rows = out.len() / p;
        let chunks = rows / mu;
        let zero = _mm256_setzero_pd();
        for c in 0..chunks {
            for r in 0..mu {
                let j = c * mu + r;
                let k0 = c * nu + r * nu / mu;
                let out_row = &mut out[j * p..(j + 1) * p];
                let trow = r * b * p;
                let re = coeffs.coef_re_dup[2 * trow..2 * (trow + b * p)].as_ptr();
                let im = coeffs.coef_im_dup[2 * trow..2 * (trow + b * p)].as_ptr();
                let xrow = &xext[k0 * p..];
                let xin = xrow.as_ptr();
                let mut s = 0;
                while s + 4 <= p {
                    // 2 lane-pairs × 2 jammed tap banks = 8 FMA chains.
                    let (mut m0a, mut n0a, mut m1a, mut n1a) = (zero, zero, zero, zero);
                    let (mut m0b, mut n0b, mut m1b, mut n1b) = (zero, zero, zero, zero);
                    let mut blk = 0;
                    while blk + 2 <= b {
                        let ci = blk * p + s;
                        let cj = ci + p;
                        lane_pair(&mut m0a, &mut n0a, re, im, xin, ci);
                        lane_pair(&mut m1a, &mut n1a, re, im, xin, ci + 2);
                        lane_pair(&mut m0b, &mut n0b, re, im, xin, cj);
                        lane_pair(&mut m1b, &mut n1b, re, im, xin, cj + 2);
                        blk += 2;
                    }
                    if blk < b {
                        let ci = blk * p + s;
                        lane_pair(&mut m0a, &mut n0a, re, im, xin, ci);
                        lane_pair(&mut m1a, &mut n1a, re, im, xin, ci + 2);
                    }
                    let r0 = _mm256_addsub_pd(_mm256_add_pd(m0a, m0b), _mm256_add_pd(n0a, n0b));
                    let r1 = _mm256_addsub_pd(_mm256_add_pd(m1a, m1b), _mm256_add_pd(n1a, n1b));
                    _mm256_storeu_pd(out_row.as_mut_ptr().add(s) as *mut f64, r0);
                    _mm256_storeu_pd(out_row.as_mut_ptr().add(s + 2) as *mut f64, r1);
                    s += 4;
                }
                while s + 2 <= p {
                    let (mut m0, mut n0) = (zero, zero);
                    for blk in 0..b {
                        lane_pair(&mut m0, &mut n0, re, im, xin, blk * p + s);
                    }
                    let r0 = _mm256_addsub_pd(m0, n0);
                    _mm256_storeu_pd(out_row.as_mut_ptr().add(s) as *mut f64, r0);
                    s += 2;
                }
                // Odd trailing lane (P is even in every real config).
                while s < p {
                    let mut acc = Complex64::ZERO;
                    for blk in 0..b {
                        acc = coeffs.coef[trow + blk * p + s].mul_add(xrow[blk * p + s], acc);
                    }
                    out_row[s] = acc;
                    s += 1;
                }
            }
        }
    }

    /// One lane-quad × one tap of the real-input kernel: the four real
    /// samples are loaded once and duplicated across re/im slots
    /// (`[x0 x0 x1 x1]`, `[x2 x2 x3 x3]`), so one FMA against the
    /// *interleaved* complex tap register advances both components of two
    /// lanes — 2 FMAs per tap per 4 lanes, half the complex kernel's 4.
    ///
    /// SAFETY: caller guarantees avx2+fma and `ci + 4 ≤ b·p` for the row
    /// slices passed in.
    #[inline(always)]
    unsafe fn real_quad(
        a01: &mut __m256d,
        a23: &mut __m256d,
        taps: *const f64,
        xin: *const f64,
        ci: usize,
    ) {
        let x = _mm256_loadu_pd(xin.add(ci));
        let x01 = _mm256_permute4x64_pd(x, 0x50);
        let x23 = _mm256_permute4x64_pd(x, 0xFA);
        let t01 = _mm256_loadu_pd(taps.add(2 * ci));
        let t23 = _mm256_loadu_pd(taps.add(2 * ci + 4));
        *a01 = _mm256_fmadd_pd(t01, x01, *a01);
        *a23 = _mm256_fmadd_pd(t23, x23, *a23);
    }

    /// Real-input AVX2+FMA kernel, selected at runtime by
    /// [`super::convolve_real`]. Same chunk/jam structure as the complex
    /// kernel; no addsub reconciliation is needed because the interleaved
    /// accumulators already hold `[re im re im]`.
    ///
    /// SAFETY: caller checked [`available`] and validated slice extents.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn convolve_real(
        shape: ConvShape,
        coeffs: &ConvCoefficients,
        xext: &[f64],
        out: &mut [Complex64],
    ) {
        let ConvShape { mu, nu, b, p } = shape;
        let rows = out.len() / p;
        let chunks = rows / mu;
        let zero = _mm256_setzero_pd();
        for c in 0..chunks {
            for r in 0..mu {
                let j = c * mu + r;
                let k0 = c * nu + r * nu / mu;
                let out_row = &mut out[j * p..(j + 1) * p];
                let trow = r * b * p;
                let taps = coeffs.coef[trow..trow + b * p].as_ptr() as *const f64;
                let xrow = &xext[k0 * p..];
                let xin = xrow.as_ptr();
                let mut s = 0;
                while s + 4 <= p {
                    // 2 quad-registers × 2 jammed tap banks = 4 FMA chains.
                    let (mut a01, mut a23) = (zero, zero);
                    let (mut b01, mut b23) = (zero, zero);
                    let mut blk = 0;
                    while blk + 2 <= b {
                        let ci = blk * p + s;
                        real_quad(&mut a01, &mut a23, taps, xin, ci);
                        real_quad(&mut b01, &mut b23, taps, xin, ci + p);
                        blk += 2;
                    }
                    if blk < b {
                        real_quad(&mut a01, &mut a23, taps, xin, blk * p + s);
                    }
                    let r01 = _mm256_add_pd(a01, b01);
                    let r23 = _mm256_add_pd(a23, b23);
                    _mm256_storeu_pd(out_row.as_mut_ptr().add(s) as *mut f64, r01);
                    _mm256_storeu_pd(out_row.as_mut_ptr().add(s + 2) as *mut f64, r23);
                    s += 4;
                }
                // Trailing lanes (never hit in real configs: P is even
                // and ≥ 4 whenever the r2c path is admissible).
                while s < p {
                    let mut acc = Complex64::ZERO;
                    for blk in 0..b {
                        let t = coeffs.coef[trow + blk * p + s];
                        let xv = xrow[blk * p + s];
                        acc = Complex64::new(t.re.mul_add(xv, acc.re), t.im.mul_add(xv, acc.im));
                    }
                    out_row[s] = acc;
                    s += 1;
                }
            }
        }
    }
}

/// Row-parallel [`convolve`] on a [`ThreadPool`]: the μ-row coefficient
/// chunks are split into balanced contiguous ranges, one per worker, and
/// each range runs the untouched register-tiled kernel rank-relative
/// (input offset `c₀·ν·P`, exactly like the per-rank call in `soi-dist`).
/// Chunk boundaries sit at μ-row granularity, so per-row arithmetic is
/// identical to serial and the output is bitwise equal for every worker
/// count.
pub fn convolve_pooled(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[Complex64],
    out: &mut [Complex64],
    pool: &ThreadPool,
) {
    let ConvShape { mu, nu, p, .. } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    let chunks = rows / mu;
    let parts = pool.threads().min(chunks).max(1);
    if parts == 1 {
        return convolve(shape, coeffs, xext, out);
    }
    let out_ptr = SlicePtr::new(out);
    pool.run(parts, |t| {
        let (c0, cl) = part_range(chunks, parts, t);
        // SAFETY: chunk row-ranges are disjoint across tasks; the borrow
        // ends at the `run` barrier.
        let sub = unsafe { out_ptr.slice(c0 * mu * p, cl * mu * p) };
        convolve(shape, coeffs, &xext[c0 * nu * p..], sub);
    });
}

/// Real-input convolution: fills `out` (`rows·P` complex values) from a
/// **real** extended input `xext` (local reals followed by the halo).
///
/// With `x` real, the complex multiply-accumulate per tap collapses to
/// two real FMAs — `acc.re += t.re·x`, `acc.im += t.im·x` — half the
/// arithmetic of the complex kernel, and the input stream halves in
/// bytes. Runtime dispatch mirrors [`convolve`]: an AVX2+FMA kernel
/// where available, the portable register-tiled kernel otherwise; each
/// path is bitwise deterministic run-to-run and across worker counts.
pub fn convolve_real(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[f64],
    out: &mut [Complex64],
) {
    let ConvShape { mu, p, .. } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        // SAFETY: avx2+fma presence just checked; slice extents were
        // validated by the asserts above.
        unsafe { avx2::convolve_real(shape, coeffs, xext, out) };
        return;
    }
    convolve_real_portable(shape, coeffs, xext, out);
}

/// Portable real-input kernel: the same chunked μ-row structure and 2×4
/// unroll-and-jam as [`convolve_portable`], with the per-tap work halved
/// to the two real products a real sample needs. Public as the
/// dispatch-free reference for tests and the kernel-bench ablation.
pub fn convolve_real_portable(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[f64],
    out: &mut [Complex64],
) {
    let ConvShape { mu, nu, b, p } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    let chunks = rows / mu;
    let fma = |t: Complex64, x: f64, acc: Complex64| {
        Complex64::new(acc.re + t.re * x, acc.im + t.im * x)
    };
    for c in 0..chunks {
        for r in 0..mu {
            let j = c * mu + r;
            let k0 = c * nu + r * nu / mu;
            let out_row = &mut out[j * p..(j + 1) * p];
            let taps = &coeffs.coef[r * b * p..(r + 1) * b * p];
            let xin = &xext[k0 * p..];
            let mut s = 0;
            while s + 4 <= p {
                let (mut a0, mut a1, mut a2, mut a3) = (
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                );
                let (mut b0, mut b1, mut b2, mut b3) = (
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                );
                let mut blk = 0;
                while blk + 2 <= b {
                    let ci = blk * p + s;
                    let cj = ci + p;
                    let t = &taps[ci..ci + 4];
                    let x = &xin[ci..ci + 4];
                    let u = &taps[cj..cj + 4];
                    let z = &xin[cj..cj + 4];
                    a0 = fma(t[0], x[0], a0);
                    a1 = fma(t[1], x[1], a1);
                    a2 = fma(t[2], x[2], a2);
                    a3 = fma(t[3], x[3], a3);
                    b0 = fma(u[0], z[0], b0);
                    b1 = fma(u[1], z[1], b1);
                    b2 = fma(u[2], z[2], b2);
                    b3 = fma(u[3], z[3], b3);
                    blk += 2;
                }
                if blk < b {
                    let ci = blk * p + s;
                    let t = &taps[ci..ci + 4];
                    let x = &xin[ci..ci + 4];
                    a0 = fma(t[0], x[0], a0);
                    a1 = fma(t[1], x[1], a1);
                    a2 = fma(t[2], x[2], a2);
                    a3 = fma(t[3], x[3], a3);
                }
                out_row[s] = a0 + b0;
                out_row[s + 1] = a1 + b1;
                out_row[s + 2] = a2 + b2;
                out_row[s + 3] = a3 + b3;
                s += 4;
            }
            while s < p {
                let mut acc = Complex64::ZERO;
                for blk in 0..b {
                    acc = fma(taps[blk * p + s], xin[blk * p + s], acc);
                }
                out_row[s] = acc;
                s += 1;
            }
        }
    }
}

/// Row-parallel [`convolve_real`] on a [`ThreadPool`]; same deterministic
/// μ-chunk partitioning as [`convolve_pooled`], so the output is bitwise
/// equal for every worker count.
pub fn convolve_real_pooled(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[f64],
    out: &mut [Complex64],
    pool: &ThreadPool,
) {
    let ConvShape { mu, nu, p, .. } = shape;
    let rows = out.len() / p;
    assert_eq!(out.len(), rows * p, "out must be whole rows");
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    assert!(
        xext.len() >= shape.required_input(rows),
        "xext too short: {} < {}",
        xext.len(),
        shape.required_input(rows)
    );
    let chunks = rows / mu;
    let parts = pool.threads().min(chunks).max(1);
    if parts == 1 {
        return convolve_real(shape, coeffs, xext, out);
    }
    let out_ptr = SlicePtr::new(out);
    pool.run(parts, |t| {
        let (c0, cl) = part_range(chunks, parts, t);
        // SAFETY: chunk row-ranges are disjoint across tasks; the borrow
        // ends at the `run` barrier.
        let sub = unsafe { out_ptr.slice(c0 * mu * p, cl * mu * p) };
        convolve_real(shape, coeffs, &xext[c0 * nu * p..], sub);
    });
}

/// Naive reference kernel: the paper's pseudo-code loop order
/// (`loop_a` chunks → `loop_b` μ rows → `loop_c` B blocks → `loop_d`
/// P elements) evaluated one scalar inner product at a time, lane-major —
/// strided memory access and no coefficient reuse.
pub fn convolve_naive(
    shape: ConvShape,
    coeffs: &ConvCoefficients,
    xext: &[Complex64],
    out: &mut [Complex64],
) {
    let ConvShape { mu, nu, b, p } = shape;
    let rows = out.len() / p;
    assert!(rows % mu == 0, "rows {rows} must be a multiple of mu {mu}");
    for j in 0..rows {
        let r = j % mu;
        let k0 = j * nu / mu;
        for s in 0..p {
            let mut acc = Complex64::ZERO;
            for blk in 0..b {
                acc += coeffs.lane_row(r, blk)[s] * xext[(k0 + blk) * p + s];
            }
            out[j * p + s] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeff::{coefficient_direct, ConvCoefficients};
    use crate::params::SoiParams;
    use soi_num::{c64, complex::max_abs_diff};
    use soi_window::AccuracyPreset;

    fn setup() -> (crate::params::SoiConfig, ConvCoefficients, ConvShape) {
        let cfg = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10)
            .unwrap()
            .resolve();
        let coeffs = ConvCoefficients::new(&cfg);
        let shape = ConvShape {
            mu: cfg.mu,
            nu: cfg.nu,
            b: cfg.taps(),
            p: cfg.p,
        };
        (cfg, coeffs, shape)
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.23).sin(), (i as f64 * 0.71).cos()))
            .collect()
    }

    #[test]
    fn required_input_matches_halo_formula() {
        let (cfg, _, shape) = setup();
        // Per rank (Fig 4): M'/P rows need M local points + B·P halo.
        let rows = cfg.rows_per_rank();
        assert_eq!(
            shape.required_input(rows),
            cfg.m + cfg.halo_len(),
            "per-rank input = M + halo"
        );
        // Whole problem on one process: N points + the same halo (wrap).
        assert_eq!(
            shape.required_input(cfg.m_prime),
            cfg.n + cfg.halo_len(),
            "single-process input = N + halo"
        );
    }

    #[test]
    fn optimized_matches_naive() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.m_prime;
        let xext = signal(shape.required_input(rows));
        let mut a = vec![Complex64::ZERO; rows * cfg.p];
        let mut b = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut a);
        convolve_naive(shape, &coeffs, &xext, &mut b);
        assert!(max_abs_diff(&a, &b) < 1e-13);
    }

    #[test]
    fn kernel_matches_matrix_definition() {
        // v_j[s] must equal Σ_ℓ c_{j,ℓ}·x_ℓ over the support, with c from
        // the direct Eq. (4) oracle.
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 4; // a few chunks is enough (and fast)
        let xext = signal(shape.required_input(rows));
        let mut v = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut v);
        for j in [0usize, 1, cfg.mu, cfg.mu * 2 + 3] {
            for s in [0usize, cfg.p - 1] {
                let k0 = shape.k0(j);
                let mut want = Complex64::ZERO;
                for blk in 0..shape.b {
                    let l = (k0 + blk) * cfg.p + s;
                    want += coefficient_direct(&cfg, j, l) * xext[l];
                }
                let got = v[j * cfg.p + s];
                assert!(
                    (got - want).abs() < 1e-12 * (1.0 + want.abs()),
                    "j={j} s={s}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn kernel_is_linear() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 8;
        let len = shape.required_input(rows);
        let x1 = signal(len);
        let x2: Vec<Complex64> = signal(len).iter().map(|v| v.mul_i()).collect();
        let sum: Vec<Complex64> = x1.iter().zip(&x2).map(|(&a, &b)| a + b).collect();
        let mut v1 = vec![Complex64::ZERO; rows * cfg.p];
        let mut v2 = v1.clone();
        let mut vs = v1.clone();
        convolve(shape, &coeffs, &x1, &mut v1);
        convolve(shape, &coeffs, &x2, &mut v2);
        convolve(shape, &coeffs, &sum, &mut vs);
        for i in 0..vs.len() {
            assert!((vs[i] - (v1[i] + v2[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn dispatched_kernel_matches_portable_reference() {
        // Whatever `convolve` dispatches to on this machine must agree
        // with the portable kernel to FMA-rounding accuracy (and exactly
        // when the dispatch *is* the portable kernel). Odd P exercises
        // the SIMD kernel's scalar remainder lane.
        let (cfg, coeffs, shape) = setup();
        for p in [cfg.p, 2, 1] {
            let shape = ConvShape { p, ..shape };
            let rows = cfg.mu * 6;
            let xext = signal(shape.required_input(rows));
            let mut fast = vec![Complex64::ZERO; rows * p];
            let mut reference = vec![Complex64::ZERO; rows * p];
            // The coefficient table is laid out for cfg.p lanes; reusing
            // it with p < cfg.p just reads a prefix of each block, which
            // is fine for an agreement test.
            convolve(shape, &coeffs, &xext, &mut fast);
            convolve_portable(shape, &coeffs, &xext, &mut reference);
            let worst = max_abs_diff(&fast, &reference);
            assert!(worst < 1e-13, "p={p}: kernels diverged by {worst:e}");
            if kernel_name() == "portable" {
                assert_eq!(worst, 0.0, "portable dispatch must be exact");
            }
        }
    }

    #[test]
    fn dispatched_kernel_is_bitwise_reproducible() {
        // Same inputs → bitwise-same outputs, call after call: the
        // runtime dispatch may pick different kernels on different
        // machines, but never different paths within one process.
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 8;
        let xext = signal(shape.required_input(rows));
        let mut a = vec![Complex64::ZERO; rows * cfg.p];
        let mut b = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut a);
        convolve(shape, &coeffs, &xext, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn split_coefficient_streams_mirror_the_complex_table() {
        let (_, coeffs, _) = setup();
        assert_eq!(coeffs.coef_re_dup.len(), 2 * coeffs.coef.len());
        assert_eq!(coeffs.coef_im_dup.len(), 2 * coeffs.coef.len());
        for (q, c) in coeffs.coef.iter().enumerate() {
            assert_eq!(coeffs.coef_re_dup[2 * q].to_bits(), c.re.to_bits());
            assert_eq!(coeffs.coef_re_dup[2 * q + 1].to_bits(), c.re.to_bits());
            assert_eq!(coeffs.coef_im_dup[2 * q].to_bits(), c.im.to_bits());
            assert_eq!(coeffs.coef_im_dup[2 * q + 1].to_bits(), c.im.to_bits());
        }
    }

    #[test]
    fn pooled_convolve_is_bitwise_equal_to_serial() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.m_prime;
        let xext = signal(shape.required_input(rows));
        let mut serial = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut serial);
        for workers in [1usize, 2, 4, 7] {
            let pool = ThreadPool::new(workers);
            let mut pooled = vec![Complex64::ZERO; rows * cfg.p];
            convolve_pooled(shape, &coeffs, &xext, &mut pooled, &pool);
            let same = serial
                .iter()
                .zip(&pooled)
                .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            assert!(same, "workers={workers} drifted from serial");
        }
    }

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.23).sin() + 0.1).collect()
    }

    #[test]
    fn real_kernel_is_bitwise_the_complex_kernel_on_embedded_input() {
        // Embedding the real samples as (x, 0) and running the complex
        // kernel multiplies every tap imaginary part by an exact zero;
        // the real kernel just skips those products. Same chains, same
        // order — the halved-FMA kernel must agree bit for bit.
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 8;
        let len = shape.required_input(rows);
        let xr = real_signal(len);
        let xc: Vec<Complex64> = xr.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let mut real = vec![Complex64::ZERO; rows * cfg.p];
        let mut complex = vec![Complex64::ZERO; rows * cfg.p];
        convolve_real(shape, &coeffs, &xr, &mut real);
        convolve(shape, &coeffs, &xc, &mut complex);
        for (i, (a, b)) in real.iter().zip(&complex).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "elem {i}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "elem {i}");
        }
    }

    #[test]
    fn real_dispatched_kernel_matches_real_portable_reference() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 6;
        let xext = real_signal(shape.required_input(rows));
        let mut fast = vec![Complex64::ZERO; rows * cfg.p];
        let mut reference = vec![Complex64::ZERO; rows * cfg.p];
        convolve_real(shape, &coeffs, &xext, &mut fast);
        convolve_real_portable(shape, &coeffs, &xext, &mut reference);
        let worst = max_abs_diff(&fast, &reference);
        assert!(worst < 1e-13, "real kernels diverged by {worst:e}");
        if kernel_name() == "portable" {
            assert_eq!(worst, 0.0, "portable dispatch must be exact");
        }
    }

    #[test]
    fn pooled_real_convolve_is_bitwise_equal_to_serial() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.m_prime;
        let xext = real_signal(shape.required_input(rows));
        let mut serial = vec![Complex64::ZERO; rows * cfg.p];
        convolve_real(shape, &coeffs, &xext, &mut serial);
        for workers in [1usize, 2, 4, 7] {
            let pool = ThreadPool::new(workers);
            let mut pooled = vec![Complex64::ZERO; rows * cfg.p];
            convolve_real_pooled(shape, &coeffs, &xext, &mut pooled, &pool);
            let same = serial
                .iter()
                .zip(&pooled)
                .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            assert!(same, "workers={workers} drifted from serial");
        }
    }

    #[test]
    #[should_panic(expected = "xext too short")]
    fn rejects_short_input() {
        let (cfg, coeffs, shape) = setup();
        let rows = cfg.mu * 2;
        let xext = signal(shape.required_input(rows) - 1);
        let mut out = vec![Complex64::ZERO; rows * cfg.p];
        convolve(shape, &coeffs, &xext, &mut out);
    }
}
