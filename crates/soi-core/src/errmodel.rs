//! A-priori error prediction for a SOI configuration — §4's error
//! characterization made quantitative and queryable.
//!
//! The paper bounds the relative error by
//! `O(κ·(ε_fft + ε_alias + ε_trunc))`. This module refines that to
//! per-bin predictions:
//!
//! * **aliasing** at bin `k` is the periodization leak
//!   `Σ_{p≠0} ŵ(k + pM') / ŵ(k)` — computable exactly from the window
//!   (this is what `pipeline`'s impulse test verifies against
//!   measurement);
//! * **conditioning** at bin `k` is `|ŵ|_max / |ŵ(k)|`, largest at the
//!   segment edges (`k = 0`, `k = M−1`).
//!
//! Uses: choosing a preset for a target SNR, flagging the bins of a
//! result that carry the most error, and sanity-checking measured
//! accuracy in tests and harnesses.

use crate::coeff::w_hat;
use crate::params::SoiConfig;

/// Predicted relative aliasing error at output bin `k ∈ [0, M)` for a
/// flat-spectrum (worst-case coherent) input.
pub fn bin_alias_error(cfg: &SoiConfig, k: usize) -> f64 {
    assert!(k < cfg.m, "bin {k} out of segment range");
    let mut leak = 0.0;
    for p in [-2i64, -1, 1, 2] {
        leak += w_hat(cfg, k as f64 + p as f64 * cfg.m_prime as f64).abs();
    }
    leak / w_hat(cfg, k as f64).abs()
}

/// Demodulation amplification at bin `k`: `max_u |ŵ| / |ŵ(k)|` (≥ 1; the
/// per-bin restriction of κ).
pub fn bin_condition(cfg: &SoiConfig, k: usize) -> f64 {
    assert!(k < cfg.m, "bin {k} out of segment range");
    let peak = w_hat(cfg, cfg.m as f64 / 2.0).abs();
    peak / w_hat(cfg, k as f64).abs()
}

/// Summary of the per-bin predictions over a whole segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Worst-bin aliasing leak.
    pub max_alias: f64,
    /// Median-bin aliasing leak (sampled).
    pub median_alias: f64,
    /// Worst-bin conditioning (attained at the segment edges).
    pub max_condition: f64,
    /// Predicted worst-bin relative error for a flat spectrum:
    /// `max_k (alias_k + condition_k·ε_f64 + ε_trunc·condition_k)`.
    pub worst_bin: f64,
}

/// Build the profile by sampling every `stride`-th bin plus the edges.
pub fn error_profile(cfg: &SoiConfig, stride: usize) -> ErrorProfile {
    let stride = stride.max(1);
    let mut aliases: Vec<f64> = Vec::new();
    let mut max_alias = 0.0f64;
    let mut max_cond = 0.0f64;
    let mut worst = 0.0f64;
    let bins: Vec<usize> = (0..cfg.m)
        .step_by(stride)
        .chain([0, cfg.m - 1])
        .collect();
    for &k in &bins {
        let a = bin_alias_error(cfg, k);
        let c = bin_condition(cfg, k);
        aliases.push(a);
        max_alias = max_alias.max(a);
        max_cond = max_cond.max(c);
        worst = worst.max(a + c * (f64::EPSILON + cfg.trunc));
    }
    aliases.sort_by(f64::total_cmp);
    ErrorProfile {
        max_alias,
        median_alias: aliases[aliases.len() / 2],
        max_condition: max_cond,
        worst_bin: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SoiParams;
    use soi_window::AccuracyPreset;

    fn cfg(preset: AccuracyPreset) -> SoiConfig {
        SoiParams::with_preset(1 << 12, 4, preset).unwrap().resolve()
    }

    #[test]
    fn alias_is_worst_at_segment_edges() {
        let c = cfg(AccuracyPreset::Digits12);
        let edge = bin_alias_error(&c, 0).max(bin_alias_error(&c, c.m - 1));
        let center = bin_alias_error(&c, c.m / 2);
        assert!(
            edge > 10.0 * center,
            "edge {edge:e} should dwarf center {center:e}"
        );
    }

    #[test]
    fn condition_bounded_by_design_kappa() {
        let c = cfg(AccuracyPreset::Full);
        for k in (0..c.m).step_by(127) {
            let cond = bin_condition(&c, k);
            assert!(cond >= 1.0 - 1e-12);
            // Per-bin condition over the *designed* grid cannot exceed the
            // window's continuum κ by much (sampling resolution).
            assert!(cond <= c.kappa * 1.05, "bin {k}: {cond} vs kappa {}", c.kappa);
        }
    }

    #[test]
    fn profile_orders_presets() {
        // Tighter presets must predict smaller worst-bin error.
        let full = error_profile(&cfg(AccuracyPreset::Full), 37);
        let ten = error_profile(&cfg(AccuracyPreset::Digits10), 37);
        assert!(full.worst_bin < ten.worst_bin);
        assert!(full.max_alias < ten.max_alias);
        assert!(full.median_alias <= full.max_alias);
    }

    #[test]
    fn worst_bin_prediction_is_consistent_with_integral_bound() {
        // The pointwise worst bin can exceed the integral-criterion bound,
        // but not by orders of magnitude beyond κ.
        let c = cfg(AccuracyPreset::Digits11);
        let p = error_profile(&c, 17);
        let integral_bound = c.kappa * (c.alias + c.trunc);
        assert!(
            p.worst_bin < integral_bound * 1e3,
            "worst bin {:e} vs integral bound {:e}",
            p.worst_bin,
            integral_bound
        );
    }

    #[test]
    #[should_panic(expected = "out of segment range")]
    fn rejects_out_of_range_bin() {
        let c = cfg(AccuracyPreset::Digits10);
        let _ = bin_alias_error(&c, c.m);
    }
}
