//! Error types for SOI configuration and execution.

use soi_window::design::DesignError;

/// Everything that can go wrong building or running a SOI transform.
#[derive(Debug, Clone, PartialEq)]
pub enum SoiError {
    /// Sizes violate the divisibility/support constraints.
    BadSize(String),
    /// The window designer could not meet the request.
    Design(DesignError),
    /// Input buffer has the wrong length.
    BadInput {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// A reused [`SoiWorkspace`](crate::workspace::SoiWorkspace) was built
    /// for a different configuration than the transform it was passed to.
    WorkspaceMismatch(String),
    /// A distributed run was asked to use a rank count incompatible with
    /// the configured segment count.
    BadRankCount(String),
    /// A distributed partition would not align with the kernel's chunk
    /// structure (μ-row coefficient blocks).
    BadAlignment(String),
    /// The communication fabric failed mid-run (a peer died, an exchange
    /// timed out, or traffic was malformed). Both transports raise this:
    /// the wire on real socket failures, the simulated network when a
    /// rank declares itself dead (fault injection). Recoverable — see
    /// the `soi-dist` checkpoint/replay driver.
    Comm(String),
}

impl std::fmt::Display for SoiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoiError::BadSize(msg) => write!(f, "invalid SOI sizes: {msg}"),
            SoiError::Design(e) => write!(f, "window design failed: {e}"),
            SoiError::BadInput { expected, got } => {
                write!(f, "bad input length: expected {expected}, got {got}")
            }
            SoiError::WorkspaceMismatch(msg) => {
                write!(f, "workspace/transform mismatch: {msg}")
            }
            SoiError::BadRankCount(msg) => write!(f, "bad rank count: {msg}"),
            SoiError::BadAlignment(msg) => write!(f, "bad partition alignment: {msg}"),
            SoiError::Comm(msg) => write!(f, "communication failed: {msg}"),
        }
    }
}

impl std::error::Error for SoiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoiError::Design(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DesignError> for SoiError {
    fn from(e: DesignError) -> Self {
        SoiError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SoiError::BadSize("p must divide n".into());
        assert!(e.to_string().contains("p must divide n"));
        let e = SoiError::BadInput {
            expected: 8,
            got: 7,
        };
        assert!(e.to_string().contains("expected 8"));
        let e: SoiError = DesignError::Infeasible {
            target: 1e-30,
            beta: 0.25,
        }
        .into();
        assert!(e.to_string().contains("window design failed"));
    }
}
