//! The §8 exact factorization — the rediscovery of Edelman,
//! McCorquodale & Toledo's "future FFT" [14] inside the SOI framework.
//!
//! §8: "Consider ŵ that is 1 on [0, M−1] and zero outside (−1, M). With
//! no oversampling or truncation, our framework corresponds to an exact
//! factorization
//!
//! ```text
//! F_N = (I_P ⊗ F_M) · P_perm^{P,N} · (I_M ⊗ F_P) · W^(exact)
//! ```
//!
//! The entries of W^(exact) are …
//! c_{jk} = (1/M) Σ_{ℓ=0}^{M−1} ω^ℓ,   ω = e^{ι2π(j/M − k/N)}."
//!
//! `W^(exact)` is dense (the rectangular ŵ has an abruptly-changing edge,
//! so its time dual decays only like 1/t — the reason [14] needed the
//! fast multipole method and the reason the paper prefers smooth windows
//! and sparse approximation). Here it is materialized densely at small N
//! as executable evidence that the framework's claim is literally true:
//! the factorization reproduces `F_N` to rounding error, with **no**
//! approximation.

use soi_fft::batch::BatchFft;
use soi_fft::permute::stride_permute;
use soi_fft::plan::Planner;
use soi_num::kahan::KahanComplexSum;
use soi_num::Complex64;

/// Entry `c_{jk}` of the exact (unoversampled, untruncated) convolution
/// matrix: the geometric sum `(1/M)·Σ_{ℓ<M} e^{ι2πℓ(j/M − k/N)}`.
pub fn w_exact_entry(n: usize, p: usize, j: usize, k: usize) -> Complex64 {
    let m = n / p;
    let mut acc = KahanComplexSum::new();
    for l in 0..m {
        // exp(+ι2πℓ(j/M − k/N)) — computed via two exact roots to avoid
        // accumulating angle error.
        let a = Complex64::root_of_unity((l * j) % m, m).conj(); // e^{+2πi lj/M}
        let b = Complex64::root_of_unity((l * k) % n, n); // e^{−2πi lk/N}
        acc.add(a * b);
    }
    Complex64::from_c64(acc.value()).scale(1.0 / m as f64)
}

/// Apply the full §8 exact factorization to `x` (for any `p | n` with
/// `p | n/p`): `(I_P ⊗ F_M)·P_perm^{P,N}·(I_M ⊗ F_P)·W^(exact)·x`.
///
/// `O(N²)` because `W^(exact)` is dense — this is a correctness exhibit,
/// not an algorithm (the paper's point exactly).
pub fn exact_factorization_dft(x: &[Complex64], p: usize) -> Vec<Complex64> {
    let n = x.len();
    assert!(p > 0 && n % p == 0, "p must divide n");
    let m = n / p;
    // v = W^(exact)·x, grouped as M groups of P lanes: the group structure
    // mirrors the production kernel: v[j·P + s] = Σ_k c_{j,k}·(Φ-folded x).
    // From §5's stacking, row (j, s) of the grouped W is row j of
    // C_s = C_0·(I_M ⊗ diag(ω^s)), i.e. v_j[s] = Σ_k c_{jk}·ω_P^{sk}·x_k
    // — but that ω_P^{sk} modulation is exactly what the subsequent
    // (I_M ⊗ F_P) performs. So here W's group j gathers the P decimated
    // partial sums: v_j[s] = Σ_{k ≡ s (mod P)} c_{j,k}·x_k.
    let mut v = vec![Complex64::ZERO; n];
    for j in 0..m {
        for s in 0..p {
            let mut acc = KahanComplexSum::new();
            let mut k = s;
            while k < n {
                acc.add(w_exact_entry(n, p, j, k) * x[k]);
                k += p;
            }
            v[j * p + s] = Complex64::from_c64(acc.value());
        }
    }
    // I_M ⊗ F_P (plans from the shared process-wide cache).
    let planner = Planner::global();
    BatchFft::with_plan(planner.forward(p), 1).execute(&mut v);
    // P_perm^{P,N}: group-major (j, s) → segment-major (s, j).
    let mut seg = vec![Complex64::ZERO; n];
    stride_permute(&v, &mut seg, m);
    // I_P ⊗ F_M.
    BatchFft::with_plan(planner.forward(m), 1).execute(&mut seg);
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_fft::dft::dft_naive;
    use soi_num::complex::max_abs_diff;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.81).sin(), (i as f64 * 0.29).cos() - 0.4))
            .collect()
    }

    #[test]
    fn exact_factorization_reproduces_the_dft_exactly() {
        // §8's claim, executed: no oversampling, no truncation, no
        // approximation — agreement to rounding error.
        for (n, p) in [(16usize, 2usize), (32, 4), (36, 3), (64, 8)] {
            let x = signal(n);
            let got = exact_factorization_dft(&x, p);
            let want = dft_naive(&x);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-10 * n as f64, "n={n} p={p} err={err}");
        }
    }

    #[test]
    fn w_exact_rows_are_dense_unlike_the_smooth_window() {
        // The rectangular ŵ gives a 1/t-decaying dual: entries far from
        // the diagonal band are small but nowhere near zero — this is why
        // [14] needed FMM and why the paper smooths the window instead.
        let (n, p) = (64usize, 4usize);
        let j = 3;
        let near = w_exact_entry(n, p, j, j * p).abs();
        // Columns k ≡ 0 (mod P) vanish identically (ω^M = 1 there); pick a
        // non-resonant far column to see the slow 1/distance decay.
        let mid = w_exact_entry(n, p, j, (j * p + n / 2 + 1) % n).abs();
        assert!(mid > 1e-3, "mid-row entry {mid:e} should not vanish");
        assert!(near > mid, "band should still dominate");
    }

    #[test]
    fn w_exact_entry_closed_form_consistency() {
        // The geometric sum has the closed form
        // (1/M)·(1 − ω^M)/(1 − ω) for ω ≠ 1, and 1 for ω = 1.
        let (n, p) = (40usize, 4usize);
        let m = n / p;
        for (j, k) in [(0usize, 0usize), (2, 8), (5, 13), (9, 39)] {
            let got = w_exact_entry(n, p, j, k);
            let theta = 2.0 * std::f64::consts::PI * (j as f64 / m as f64 - k as f64 / n as f64);
            let w = Complex64::cis(theta);
            let want = if (w - Complex64::ONE).abs() < 1e-12 {
                Complex64::ONE
            } else {
                let num = Complex64::ONE - Complex64::cis(theta * m as f64);
                (num / (Complex64::ONE - w)).scale(1.0 / m as f64)
            };
            assert!((got - want).abs() < 1e-10, "j={j} k={k}: {got:?} vs {want:?}");
        }
    }
}
