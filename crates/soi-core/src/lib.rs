//! The SOI (segment-of-interest) low-communication FFT — the paper's
//! primary contribution, in a single address space.
//!
//! The factorization (Eq. 6 of the paper):
//!
//! ```text
//! y ≈ (I_P ⊗ Ŵ⁻¹·P_proj·F_{M'}) · P_perm^{P,N'} · (I_{M'} ⊗ F_P) · W · x
//! ```
//!
//! * [`params`] — parameter resolution ([`SoiParams`] → [`SoiConfig`]):
//!   sizes, oversampling μ/ν, window design, divisibility checks.
//! * [`coeff`] — the `μPB` distinct convolution coefficients (Fig 4) and
//!   the demodulation weights `1/ŵ(k)`, with direct-definition oracles.
//! * [`conv`] — the optimized convolution kernel `W·x` plus the naive
//!   pseudo-code version kept for the §6b ablation bench.
//! * [`pipeline`] — [`SoiFft`]: the full transform and the
//!   single-segment API (the Fig 1 narrative, runnable).
//! * [`theorem`] — Theorem 1's operators (Samp/Peri/modulate/convolve) as
//!   executable, testable functions.
//! * [`opcount`] — the §5/§7.4 arithmetic accounting.
//!
//! The distributed version (one all-to-all across ranks) lives in
//! `soi-dist`, built from these same kernels.

pub mod coeff;
pub mod conv;
pub mod errmodel;
pub mod error;
pub mod exact;
pub mod opcount;
pub mod params;
pub mod pipeline;
pub mod theorem;
pub mod workspace;

pub use error::SoiError;
pub use params::{SoiConfig, SoiParams};
pub use pipeline::SoiFft;
pub use soi_pool::ThreadPool;
pub use workspace::{SoiRealWorkspace, SoiWorkspace};
