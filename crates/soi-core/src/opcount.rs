//! Arithmetic-cost accounting for a SOI instance (§5's operation count and
//! the §7.4 analysis numbers).

use crate::params::SoiConfig;
use soi_fft::flops::{conv_flops, fft_flops};

/// Nominal real-arithmetic breakdown of one SOI transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpBreakdown {
    /// Convolution `W·x`: `8·N'·B` real ops.
    pub conv: f64,
    /// The `I_{M'} ⊗ F_P` batch.
    pub fft_p: f64,
    /// The `I_P ⊗ F_{M'}` batch.
    pub fft_m: f64,
    /// Demodulation (one complex multiply per output bin).
    pub demod: f64,
    /// A standard FFT of the same logical size, for comparison.
    pub standard_fft: f64,
}

impl OpBreakdown {
    /// Compute the breakdown for a configuration.
    pub fn of(cfg: &SoiConfig) -> Self {
        OpBreakdown {
            conv: conv_flops(cfg.n_prime, cfg.b),
            fft_p: cfg.m_prime as f64 * fft_flops(cfg.p),
            fft_m: cfg.p as f64 * fft_flops(cfg.m_prime),
            demod: 6.0 * cfg.n as f64,
            standard_fft: fft_flops(cfg.n),
        }
    }

    /// Total SOI arithmetic.
    pub fn total(&self) -> f64 {
        self.conv + self.fft_p + self.fft_m + self.demod
    }

    /// Convolution cost relative to one standard FFT (§7.4: "almost
    /// fourfold" at the paper's scale).
    pub fn conv_ratio(&self) -> f64 {
        self.conv / self.standard_fft
    }

    /// Total SOI arithmetic relative to one standard FFT (§7.4: "about
    /// fivefold").
    pub fn total_ratio(&self) -> f64 {
        self.total() / self.standard_fft
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SoiParams;
    use soi_window::AccuracyPreset;

    #[test]
    fn ratios_match_section_7_4_at_paper_scale() {
        // The paper's numbers are quoted at 2^28/node × 32 nodes with
        // B = 72. Build the breakdown straight from a synthetic config of
        // that scale (no allocation happens here).
        let cfg = SoiConfig {
            n: 1 << 33,
            p: 32,
            m: 1 << 28,
            m_prime: (1usize << 28) / 4 * 5,
            n_prime: ((1usize << 28) / 4 * 5) * 32,
            mu: 5,
            nu: 4,
            b: 72,
            window: soi_window::TwoParamWindow::new(0.8, 300.0),
            kappa: 10.0,
            alias: 1e-16,
            trunc: 1e-16,
        };
        let ops = OpBreakdown::of(&cfg);
        assert!(
            (3.0..5.0).contains(&ops.conv_ratio()),
            "conv ratio {}",
            ops.conv_ratio()
        );
        assert!(
            (4.0..6.5).contains(&ops.total_ratio()),
            "total ratio {}",
            ops.total_ratio()
        );
        // The two FFT stages together cost ≈ (1+β) standard FFTs.
        let fft_ratio = (ops.fft_p + ops.fft_m) / ops.standard_fft;
        assert!((1.0..1.6).contains(&fft_ratio), "fft ratio {fft_ratio}");
    }

    #[test]
    fn smaller_b_means_cheaper_convolution() {
        let full = SoiParams::full_accuracy(1 << 14, 4).unwrap().resolve();
        let ten = SoiParams::with_preset(1 << 14, 4, AccuracyPreset::Digits10)
            .unwrap()
            .resolve();
        let of = OpBreakdown::of(&full);
        let ot = OpBreakdown::of(&ten);
        assert!(ot.conv < of.conv);
        assert_eq!(ot.fft_m, of.fft_m, "FFT cost independent of B");
    }
}
