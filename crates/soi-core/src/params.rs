//! SOI parameter resolution and validation.
//!
//! An instance is `N = M·P` points split into `P` segments of `M`, with
//! oversampling `1+β = μ/ν` giving segment FFT length `M' = M·μ/ν` and
//! inflated total `N' = P·M'`, plus a designed window `(τ, σ)` with
//! convolution support `B` blocks (§4–5 of the paper).
//!
//! Divisibility requirements (checked here once, assumed everywhere):
//!
//! * `P | N` — segments are equal (`M = N/P`);
//! * `νP | M` — so each rank owns a whole number of size-P blocks *and* a
//!   whole number of μ-row coefficient chunks (the Fig 4 structure);
//! * `B·P ≤ M` — the convolution halo (see `SoiConfig::taps`) fits in one adjacent neighbor
//!   (§2: "each node merely needs an insignificant amount of data from its
//!   next-door neighbor").

use crate::error::SoiError;
use soi_window::{design_two_param, AccuracyPreset, TwoParamWindow, WindowDesign};

/// User-facing parameter request for a SOI transform.
#[derive(Debug, Clone)]
pub struct SoiParams {
    /// Total transform size `N`.
    pub n: usize,
    /// Segment (and rank) count `P`.
    pub p: usize,
    /// Oversampling numerator μ (`1+β = μ/ν`).
    pub mu: usize,
    /// Oversampling denominator ν.
    pub nu: usize,
    /// Window design (parameters + support B).
    pub design: WindowDesign<TwoParamWindow>,
}

impl SoiParams {
    /// The paper's headline operating point: β = 1/4 (μ/ν = 5/4), full
    /// double-precision accuracy (B lands near the paper's 72).
    pub fn full_accuracy(n: usize, p: usize) -> Result<SoiParams, SoiError> {
        Self::with_preset(n, p, AccuracyPreset::Full)
    }

    /// β = 1/4 with a named accuracy preset (the Fig 7 sweep).
    pub fn with_preset(n: usize, p: usize, preset: AccuracyPreset) -> Result<SoiParams, SoiError> {
        let design = preset.design(0.25).map_err(SoiError::Design)?;
        Self::custom(n, p, 5, 4, design)
    }

    /// Fully custom parameters (any μ/ν and any window design).
    pub fn custom(
        n: usize,
        p: usize,
        mu: usize,
        nu: usize,
        design: WindowDesign<TwoParamWindow>,
    ) -> Result<SoiParams, SoiError> {
        let params = SoiParams {
            n,
            p,
            mu,
            nu,
            design,
        };
        params.validate()?;
        Ok(params)
    }

    /// β = μ/ν with an explicit accuracy target.
    pub fn with_beta(
        n: usize,
        p: usize,
        mu: usize,
        nu: usize,
        target: f64,
    ) -> Result<SoiParams, SoiError> {
        if mu <= nu {
            return Err(SoiError::BadSize(format!(
                "oversampling mu/nu = {mu}/{nu} must exceed 1"
            )));
        }
        let beta = mu as f64 / nu as f64 - 1.0;
        let design = design_two_param(beta, target, 1000.0).map_err(SoiError::Design)?;
        Self::custom(n, p, mu, nu, design)
    }

    fn validate(&self) -> Result<(), SoiError> {
        let SoiParams { n, p, mu, nu, .. } = *self;
        if n == 0 || p == 0 {
            return Err(SoiError::BadSize("n and p must be positive".into()));
        }
        if mu <= nu || nu == 0 {
            return Err(SoiError::BadSize(format!(
                "oversampling mu/nu = {mu}/{nu} must exceed 1"
            )));
        }
        if gcd(mu, nu) != 1 {
            return Err(SoiError::BadSize(format!(
                "mu/nu = {mu}/{nu} must be in lowest terms"
            )));
        }
        if n % p != 0 {
            return Err(SoiError::BadSize(format!("p = {p} must divide n = {n}")));
        }
        let m = n / p;
        if m % (nu * p) != 0 {
            return Err(SoiError::BadSize(format!(
                "segment length m = {m} must be divisible by nu*p = {}",
                nu * p
            )));
        }
        let b = self.design.b;
        // The kernel reads B+1 tap-blocks per row (see SoiConfig::taps),
        // so the halo is B·P points and must fit in one neighbor.
        if b * p > m {
            return Err(SoiError::BadSize(format!(
                "support B = {b} too large: halo B*P = {} exceeds segment m = {m}",
                b * p
            )));
        }
        Ok(())
    }

    /// Resolve into a fully-derived configuration.
    pub fn resolve(&self) -> SoiConfig {
        let m = self.n / self.p;
        let m_prime = m / self.nu * self.mu;
        SoiConfig {
            n: self.n,
            p: self.p,
            m,
            m_prime,
            n_prime: m_prime * self.p,
            mu: self.mu,
            nu: self.nu,
            b: self.design.b,
            window: self.design.window,
            kappa: self.design.kappa,
            alias: self.design.alias,
            trunc: self.design.trunc,
        }
    }
}

/// A resolved SOI configuration: every derived quantity the kernels need.
#[derive(Debug, Clone, Copy)]
pub struct SoiConfig {
    /// Total size `N`.
    pub n: usize,
    /// Segment count `P`.
    pub p: usize,
    /// Segment length `M = N/P` (also points per rank).
    pub m: usize,
    /// Oversampled segment FFT length `M' = M·μ/ν`.
    pub m_prime: usize,
    /// Inflated total `N' = P·M'`.
    pub n_prime: usize,
    /// Oversampling numerator.
    pub mu: usize,
    /// Oversampling denominator.
    pub nu: usize,
    /// Convolution support in blocks of `P`.
    pub b: usize,
    /// The designed window.
    pub window: TwoParamWindow,
    /// Window condition number κ.
    pub kappa: f64,
    /// Window aliasing error ε^(alias).
    pub alias: f64,
    /// Window truncation error ε^(trunc).
    pub trunc: f64,
}

impl SoiConfig {
    /// Oversampling rate β = μ/ν − 1.
    pub fn beta(&self) -> f64 {
        self.mu as f64 / self.nu as f64 - 1.0
    }

    /// Rows (P-groups) of the convolution output per rank: `M'/P`.
    pub fn rows_per_rank(&self) -> usize {
        self.m_prime / self.p
    }

    /// Coefficient chunks per rank (`rows_per_rank / μ`).
    pub fn chunks_per_rank(&self) -> usize {
        self.rows_per_rank() / self.mu
    }

    /// Blocks of `P` input points owned by each rank (`M/P`).
    pub fn blocks_per_rank(&self) -> usize {
        self.m / self.p
    }

    /// Tap-blocks the convolution reads per output row: `B + 1`.
    ///
    /// The designed support `B` covers `θ ∈ [−B/2, B/2]`, but row `j`'s
    /// taps sit at `θ = frac(jν/μ) + B/2 − b − s/P`; with `frac > 0`, `B`
    /// blocks would leave a sliver of `[−B/2, −B/2+frac)` uncovered —
    /// a small but measurable extra truncation error. One extra block
    /// (<2% more coefficients and flops) covers the support exactly.
    pub fn taps(&self) -> usize {
        self.b + 1
    }

    /// Halo elements each rank needs from its right neighbor:
    /// `(taps−1)·P = B·P` points.
    pub fn halo_len(&self) -> usize {
        self.b * self.p
    }

    /// A-priori relative error estimate `κ·(ε_alias + ε_trunc + ε_f64)`.
    pub fn predicted_error(&self) -> f64 {
        self.kappa * (self.alias + self.trunc + f64::EPSILON)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_accuracy_resolves_standard_quantities() {
        let p = SoiParams::full_accuracy(1 << 14, 4).unwrap();
        let c = p.resolve();
        assert_eq!(c.m, 4096);
        assert_eq!(c.m_prime, 5120);
        assert_eq!(c.n_prime, 20480);
        assert!((c.beta() - 0.25).abs() < 1e-15);
        assert_eq!(c.rows_per_rank(), 1280);
        assert_eq!(c.chunks_per_rank(), 256);
        assert_eq!(c.blocks_per_rank(), 1024);
        assert!(c.b >= 40, "full accuracy needs a substantial B");
        assert_eq!(c.taps(), c.b + 1);
        assert_eq!(c.halo_len(), c.b * 4);
    }

    #[test]
    fn rejects_bad_divisibility() {
        // p does not divide n
        assert!(SoiParams::full_accuracy(1000, 3).is_err());
        // m not divisible by nu*p: n=64, p=4 → m=16, nu*p=16 OK but B halo
        // will not fit → error either way.
        assert!(SoiParams::full_accuracy(64, 4).is_err());
    }

    #[test]
    fn rejects_degenerate_oversampling() {
        let d = AccuracyPreset::Digits10.design(0.25).unwrap();
        assert!(SoiParams::custom(1 << 12, 2, 4, 4, d.clone()).is_err());
        assert!(SoiParams::custom(1 << 12, 2, 10, 8, d).is_err(), "not coprime");
    }

    #[test]
    fn halo_must_fit_neighbor() {
        // Tiny segments with a full-accuracy B must be rejected.
        let d = AccuracyPreset::Full.design(0.25).unwrap();
        let err = SoiParams::custom(512, 4, 5, 4, d);
        assert!(err.is_err());
    }

    #[test]
    fn relaxed_preset_shrinks_b() {
        let full = SoiParams::full_accuracy(1 << 14, 4).unwrap().resolve();
        let ten = SoiParams::with_preset(1 << 14, 4, AccuracyPreset::Digits10)
            .unwrap()
            .resolve();
        assert!(ten.b < full.b);
        assert!(ten.predicted_error() > full.predicted_error());
    }

    #[test]
    fn beta_half_config() {
        // μ/ν = 3/2 → β = 0.5.
        let p = SoiParams::with_beta(1 << 13, 4, 3, 2, 1e-12).unwrap();
        let c = p.resolve();
        assert!((c.beta() - 0.5).abs() < 1e-15);
        assert_eq!(c.m_prime, c.m / 2 * 3);
    }
}
