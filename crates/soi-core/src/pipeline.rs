//! The complete SOI transform in a single address space.
//!
//! This is Eq. (6) executed end to end:
//!
//! ```text
//! y ≈ (I_P ⊗ Ŵ⁻¹·P_proj·F_{M'}) · P_perm^{P,N'} · (I_{M'} ⊗ F_P) · W · x
//! ```
//!
//! 1. `W·x` — the convolution ([`crate::conv`]), producing `M'` groups of
//!    `P` values from `x` plus a circular halo;
//! 2. `I_{M'} ⊗ F_P` — a batch of M' small FFTs over the groups;
//! 3. `P_perm^{P,N'}` — the stride permutation (distributed: the single
//!    all-to-all; here: a transpose);
//! 4. per segment: `F_{M'}`, project to the first `M` bins, demodulate.
//!
//! The distributed version in `soi-dist` runs the same four stages with
//! stage 3 as the one global exchange; this single-process form is the
//! correctness core and the per-node compute kernel.

use crate::coeff::ConvCoefficients;
use crate::conv::{convolve_pooled, convolve_real_pooled, ConvShape};
use crate::error::SoiError;
use crate::params::{SoiConfig, SoiParams};
use crate::workspace::{SoiRealWorkspace, SoiWorkspace};
use soi_fft::batch::BatchFft;
use soi_fft::permute::{stride_permute_pooled, transpose_partial_pooled};
use soi_fft::plan::{Direction, Plan, Planner};
use soi_num::Complex64;
use soi_pool::{part_range, SlicePtr, ThreadPool};
use std::sync::Arc;

/// A prepared single-process SOI FFT.
#[derive(Debug)]
pub struct SoiFft {
    cfg: SoiConfig,
    coeffs: ConvCoefficients,
    batch_p: BatchFft<f64>,
    plan_m: Arc<Plan<f64>>,
}

impl SoiFft {
    /// Build the transform: designs nothing (the window came with
    /// `params`), precomputes coefficient and demodulation tables and the
    /// two FFT plans. Both plans come from the process-wide
    /// [`Planner::global`] cache, so repeated constructions (and sibling
    /// transforms sharing `P` or `M'`) reuse one twiddle build.
    pub fn new(params: &SoiParams) -> Result<Self, SoiError> {
        let cfg = params.resolve();
        let coeffs = ConvCoefficients::new(&cfg);
        let planner = Planner::global();
        Ok(Self {
            cfg,
            coeffs,
            batch_p: BatchFft::with_plan(planner.plan(cfg.p, Direction::Forward), 1),
            plan_m: planner.plan(cfg.m_prime, Direction::Forward),
        })
    }

    /// The resolved configuration.
    pub fn config(&self) -> &SoiConfig {
        &self.cfg
    }

    /// The coefficient tables (exposed for the distributed driver and the
    /// benches).
    pub fn coefficients(&self) -> &ConvCoefficients {
        &self.coeffs
    }

    /// The prebuilt `F_{M'}` plan (shared with the distributed driver).
    pub fn plan_m(&self) -> &Plan<f64> {
        &self.plan_m
    }

    /// The prebuilt `I ⊗ F_P` batch executor.
    pub fn batch_p(&self) -> &BatchFft<f64> {
        &self.batch_p
    }

    /// Kernel shape for the convolution stage (`b` here is the *tap*
    /// block count `B+1`, see `SoiConfig::taps`).
    pub fn shape(&self) -> ConvShape {
        ConvShape {
            mu: self.cfg.mu,
            nu: self.cfg.nu,
            b: self.cfg.taps(),
            p: self.cfg.p,
        }
    }

    /// Full in-order forward DFT of `x` (length `N`), approximated to the
    /// window design's accuracy.
    ///
    /// Convenience wrapper: builds a one-shot serial [`SoiWorkspace`] and
    /// delegates to [`Self::transform_into`]. For repeated transforms or
    /// threaded execution, hold a workspace and call `transform_into`
    /// directly.
    pub fn transform(&self, x: &[Complex64]) -> Result<Vec<Complex64>, SoiError> {
        let mut ws = SoiWorkspace::new(self, 1);
        let mut y = vec![Complex64::ZERO; self.cfg.n];
        self.transform_into(x, &mut y, &mut ws)?;
        Ok(y)
    }

    /// The four-stage transform into a caller buffer, reusing `ws` for
    /// every intermediate: zero allocations in steady state, executed on
    /// `ws`'s worker pool.
    ///
    /// Determinism: every parallel stage assigns each output element to
    /// exactly one pure task with deterministic chunk boundaries
    /// ([`soi_pool::part_range`]), so the result is **bitwise identical**
    /// for every worker count, including fully serial.
    pub fn transform_into(
        &self,
        x: &[Complex64],
        y: &mut [Complex64],
        ws: &mut SoiWorkspace,
    ) -> Result<(), SoiError> {
        let cfg = &self.cfg;
        if x.len() != cfg.n {
            return Err(SoiError::BadInput {
                expected: cfg.n,
                got: x.len(),
            });
        }
        if y.len() != cfg.n {
            return Err(SoiError::BadInput {
                expected: cfg.n,
                got: y.len(),
            });
        }
        ws.check(self)?;
        let SoiWorkspace {
            pool,
            xext,
            v,
            seg,
            scratch,
            stride,
            trace,
            ..
        } = ws;
        let pool: &ThreadPool = pool;
        let trace: &soi_trace::Trace = trace;
        // Stage 1: convolution over x extended with the circular halo.
        trace.span_begin("halo", None);
        xext[..cfg.n].copy_from_slice(x);
        let (head, halo) = xext.split_at_mut(cfg.n);
        halo.copy_from_slice(&head[..cfg.halo_len()]);
        trace.span_end("halo", None);
        trace.span_begin("conv", None);
        convolve_pooled(self.shape(), &self.coeffs, xext, v, pool);
        trace.span_end("conv", None);
        // Stage 2: M' independent F_P over the contiguous groups.
        trace.span_begin("fft_p", None);
        self.batch_p.execute_pooled(v, pool, scratch);
        trace.span_end("fft_p", None);
        // Stage 3: stride permutation — group-major (j,s) → segment-major
        // (s,j). In the distributed algorithm this is the all-to-all.
        trace.span_begin("pack", None);
        stride_permute_pooled(v, seg, cfg.m_prime, pool);
        trace.span_end("pack", None);
        trace.span_begin("fft_m", None);
        // Stage 4: per segment, F_{M'} with the projection + Ŵ⁻¹
        // demodulation fused into the FFT's final output pass
        // (`execute_fused_into` — bitwise identical to transform-then-
        // multiply, but skips one full sweep over the M' points per
        // segment). Segments are independent, so fan them across the
        // pool, one scratch stripe per worker.
        let parts = pool.threads().min(cfg.p).max(1);
        let scr_len = self.plan_m.scratch_len();
        if parts == 1 {
            for s in 0..cfg.p {
                let row = &mut seg[s * cfg.m_prime..(s + 1) * cfg.m_prime];
                let out = &mut y[s * cfg.m..(s + 1) * cfg.m];
                self.plan_m
                    .execute_fused_into(row, &mut scratch[..scr_len], out, &self.coeffs.demod);
            }
        } else {
            let seg_ptr = SlicePtr::new(seg);
            let y_ptr = SlicePtr::new(y);
            let scr_ptr = SlicePtr::new(scratch);
            let stride = *stride;
            pool.run(parts, |t| {
                let (s0, sl) = part_range(cfg.p, parts, t);
                // SAFETY: segment ranges are disjoint across tasks, each
                // task owns scratch stripe `t`, and all borrows end at the
                // `run` barrier.
                let scr = unsafe { scr_ptr.slice(t * stride, scr_len) };
                for s in s0..s0 + sl {
                    let row = unsafe { seg_ptr.slice(s * cfg.m_prime, cfg.m_prime) };
                    let out = unsafe { y_ptr.slice(s * cfg.m, cfg.m) };
                    self.plan_m
                        .execute_fused_into(row, scr, out, &self.coeffs.demod);
                }
            });
        }
        trace.span_end("fft_m", None);
        Ok(())
    }

    /// Real-input (r2c) forward transform: the packed half-spectrum
    /// `y[0..=N/2]` of a real signal, `N/2 + 1` complex bins. The
    /// remaining bins are redundant by conjugate-even symmetry
    /// (`y[N−k] = conj(y[k])`). Convenience wrapper building a one-shot
    /// serial [`SoiRealWorkspace`]; hold a workspace and call
    /// [`Self::transform_real_into`] for repeated transforms.
    pub fn transform_real(&self, x: &[f64]) -> Result<Vec<Complex64>, SoiError> {
        let mut ws = SoiRealWorkspace::new(self, 1);
        let mut y = vec![Complex64::ZERO; self.cfg.n / 2 + 1];
        self.transform_real_into(x, &mut y, &mut ws)?;
        Ok(y)
    }

    /// The real-input four-stage transform into a caller buffer of
    /// `N/2 + 1` bins, reusing `ws` for every intermediate; zero
    /// allocations in steady state, executed on `ws`'s worker pool.
    ///
    /// Relative to [`Self::transform_into`] this path (a) runs the
    /// convolution on the real samples directly — two real FMAs per tap
    /// instead of four, half the input bytes; (b) packs only the
    /// non-redundant `P/2` segment lanes after `F_P` (for real `x`,
    /// lane `P−s` is the conjugate mirror of lane `s` bin-reversed, so
    /// segments `P/2..P` of the spectrum are determined by `0..P/2`);
    /// (c) runs `F_{M'}` + fused demodulation on those `P/2` segments
    /// only; and (d) fills the Nyquist bin with the exact alternating
    /// fold [`nyquist_fold`]. Segments `0..P/2` are computed by the
    /// byte-for-byte same arithmetic as the complex path on the embedded
    /// input, so bins `0..N/2` are bitwise identical to it, and the
    /// whole path is bitwise deterministic for every worker count.
    ///
    /// Requires an even segment count `P` (the half-spectrum boundary
    /// must fall on a segment boundary).
    pub fn transform_real_into(
        &self,
        x: &[f64],
        y: &mut [Complex64],
        ws: &mut SoiRealWorkspace,
    ) -> Result<(), SoiError> {
        let cfg = &self.cfg;
        if cfg.p % 2 != 0 {
            return Err(SoiError::BadSize(format!(
                "real-input transform needs an even segment count, got P = {}",
                cfg.p
            )));
        }
        if x.len() != cfg.n {
            return Err(SoiError::BadInput {
                expected: cfg.n,
                got: x.len(),
            });
        }
        let half = cfg.n / 2 + 1;
        if y.len() != half {
            return Err(SoiError::BadInput {
                expected: half,
                got: y.len(),
            });
        }
        ws.check(self)?;
        let SoiRealWorkspace {
            pool,
            xext,
            v,
            seg,
            scratch,
            stride,
            trace,
            ..
        } = ws;
        let pool: &ThreadPool = pool;
        let trace: &soi_trace::Trace = trace;
        let ph = cfg.p / 2;
        // Stage 1: real convolution over x extended with the circular halo.
        trace.span_begin("halo", None);
        xext[..cfg.n].copy_from_slice(x);
        let (head, halo) = xext.split_at_mut(cfg.n);
        halo.copy_from_slice(&head[..cfg.halo_len()]);
        trace.span_end("halo", None);
        trace.span_begin("conv", None);
        convolve_real_pooled(self.shape(), &self.coeffs, xext, v, pool);
        trace.span_end("conv", None);
        // Stage 2: M' independent F_P over the contiguous groups.
        trace.span_begin("fft_p", None);
        self.batch_p.execute_pooled(v, pool, scratch);
        trace.span_end("fft_p", None);
        // Stage 3: conjugate-even pack — the partial transpose keeps only
        // lanes 0..P/2 of each group. In the distributed algorithm this
        // is the halved all-to-all.
        trace.span_begin("pack", None);
        transpose_partial_pooled(v, seg, cfg.m_prime, cfg.p, ph, pool);
        trace.span_end("pack", None);
        trace.span_begin("fft_m", None);
        // Stage 4: per surviving segment, F_{M'} with the projection +
        // Ŵ⁻¹ demodulation fused into the FFT's final output pass.
        let parts = pool.threads().min(ph).max(1);
        let scr_len = self.plan_m.scratch_len();
        if parts == 1 {
            for s in 0..ph {
                let row = &mut seg[s * cfg.m_prime..(s + 1) * cfg.m_prime];
                let out = &mut y[s * cfg.m..(s + 1) * cfg.m];
                self.plan_m
                    .execute_fused_into(row, &mut scratch[..scr_len], out, &self.coeffs.demod);
            }
        } else {
            let seg_ptr = SlicePtr::new(seg);
            let y_ptr = SlicePtr::new(y);
            let scr_ptr = SlicePtr::new(scratch);
            let stride = *stride;
            pool.run(parts, |t| {
                let (s0, sl) = part_range(ph, parts, t);
                // SAFETY: segment ranges are disjoint across tasks, each
                // task owns scratch stripe `t`, and all borrows end at the
                // `run` barrier.
                let scr = unsafe { scr_ptr.slice(t * stride, scr_len) };
                for s in s0..s0 + sl {
                    let row = unsafe { seg_ptr.slice(s * cfg.m_prime, cfg.m_prime) };
                    let out = unsafe { y_ptr.slice(s * cfg.m, cfg.m) };
                    self.plan_m
                        .execute_fused_into(row, scr, out, &self.coeffs.demod);
                }
            });
        }
        // The Nyquist bin is exact and costs O(N): y_{N/2} = Σ x_j(−1)^j.
        y[cfg.n / 2] = Complex64::new(nyquist_fold(x), 0.0);
        trace.span_end("fft_m", None);
        Ok(())
    }

    /// Compute only segment `s` of a **real** signal's spectrum —
    /// `y_k for k ∈ [sM, (s+1)M)` — the r2c counterpart of
    /// [`Self::transform_segment`]. Any `s < P` is allowed (the mirror
    /// segments are still well-defined bins, just redundant).
    pub fn transform_real_segment(
        &self,
        x: &[f64],
        s: usize,
    ) -> Result<Vec<Complex64>, SoiError> {
        self.transform_real_segment_pooled(x, s, &ThreadPool::serial())
    }

    /// [`Self::transform_real_segment`] executed on a worker pool (same
    /// determinism guarantee as [`Self::transform_segment_pooled`]).
    pub fn transform_real_segment_pooled(
        &self,
        x: &[f64],
        s: usize,
        pool: &ThreadPool,
    ) -> Result<Vec<Complex64>, SoiError> {
        let cfg = &self.cfg;
        if x.len() != cfg.n {
            return Err(SoiError::BadInput {
                expected: cfg.n,
                got: x.len(),
            });
        }
        assert!(s < cfg.p, "segment {s} out of range (P = {})", cfg.p);
        let xp = self.modulate_real_ext(x, pool, |l| {
            Complex64::root_of_unity(s * (l % cfg.p), cfg.p)
        });
        Ok(self.zoom_core(&xp, pool))
    }

    /// Compute an arbitrary length-`M` band of a **real** signal's
    /// spectrum: the r2c counterpart of [`Self::transform_band`].
    pub fn transform_real_band(&self, x: &[f64], k0: usize) -> Result<Vec<Complex64>, SoiError> {
        self.transform_real_band_pooled(x, k0, &ThreadPool::serial())
    }

    /// [`Self::transform_real_band`] executed on a worker pool.
    pub fn transform_real_band_pooled(
        &self,
        x: &[f64],
        k0: usize,
        pool: &ThreadPool,
    ) -> Result<Vec<Complex64>, SoiError> {
        let cfg = &self.cfg;
        if x.len() != cfg.n {
            return Err(SoiError::BadInput {
                expected: cfg.n,
                got: x.len(),
            });
        }
        assert!(k0 < cfg.n, "band start {k0} out of range (N = {})", cfg.n);
        let xp = self.modulate_real_ext(x, pool, |j| {
            Complex64::root_of_unity(k0 * j % cfg.n, cfg.n)
        });
        Ok(self.zoom_core(&xp, pool))
    }

    /// Real-input counterpart of [`Self::modulate_ext`]:
    /// `out[l] = phase(l)·x[l]` (a complex scale of a real sample), then
    /// the circular halo. Same deterministic chunking.
    fn modulate_real_ext<F>(&self, x: &[f64], pool: &ThreadPool, phase: F) -> Vec<Complex64>
    where
        F: Fn(usize) -> Complex64 + Sync,
    {
        let cfg = &self.cfg;
        let mut out = vec![Complex64::ZERO; cfg.n + cfg.halo_len()];
        let parts = pool.threads().min(cfg.n).max(1);
        if parts == 1 {
            for (l, slot) in out[..cfg.n].iter_mut().enumerate() {
                *slot = phase(l).scale(x[l]);
            }
        } else {
            let out_ptr = SlicePtr::new(&mut out);
            pool.run(parts, |t| {
                let (l0, ll) = part_range(cfg.n, parts, t);
                // SAFETY: element ranges are disjoint across tasks.
                let chunk = unsafe { out_ptr.slice(l0, ll) };
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = phase(l0 + i).scale(x[l0 + i]);
                }
            });
        }
        let (head, halo) = out.split_at_mut(cfg.n);
        halo.copy_from_slice(&head[..cfg.halo_len()]);
        out
    }

    /// Inverse transform: recover `x` from a spectrum `y` such that
    /// `inverse(transform(x)) ≈ x`.
    ///
    /// Uses the conjugation identity `F_N⁻¹ y = conj(F_N conj(y))/N`, so
    /// the inverse inherits the forward path's single-all-to-all
    /// communication structure unchanged.
    pub fn inverse(&self, y: &[Complex64]) -> Result<Vec<Complex64>, SoiError> {
        let conj_y: Vec<Complex64> = y.iter().map(|v| v.conj()).collect();
        let z = self.transform(&conj_y)?;
        let scale = 1.0 / self.cfg.n as f64;
        Ok(z.into_iter().map(|v| v.conj().scale(scale)).collect())
    }

    /// Compute only segment `s` of the spectrum —
    /// `y_k for k ∈ [sM, (s+1)M)` — without touching the other segments.
    ///
    /// This is the Fig 1 story executed literally: phase-shift the input
    /// (`Φ_s`, the DFT shift theorem of §5), convolve against the
    /// *contiguous* `BP`-tap window, take one `M'`-point FFT, demodulate.
    /// Cost: `O(M'·BP + M' log M')`.
    pub fn transform_segment(&self, x: &[Complex64], s: usize) -> Result<Vec<Complex64>, SoiError> {
        self.transform_segment_pooled(x, s, &ThreadPool::serial())
    }

    /// [`Self::transform_segment`] executed on a worker pool: the
    /// modulation and the row convolutions fan out across workers with
    /// deterministic chunking, so the result is bitwise identical to the
    /// serial path.
    pub fn transform_segment_pooled(
        &self,
        x: &[Complex64],
        s: usize,
        pool: &ThreadPool,
    ) -> Result<Vec<Complex64>, SoiError> {
        let cfg = &self.cfg;
        if x.len() != cfg.n {
            return Err(SoiError::BadInput {
                expected: cfg.n,
                got: x.len(),
            });
        }
        assert!(s < cfg.p, "segment {s} out of range (P = {})", cfg.p);
        // Φ_s x: modulation by ω^{s·l}, ω = e^{−2πi/P} (§5).
        let xp = self.modulate_ext(x, pool, |l| {
            Complex64::root_of_unity(s * (l % cfg.p), cfg.p)
        });
        Ok(self.zoom_core(&xp, pool))
    }

    /// Compute an *arbitrary* length-`M` band of the spectrum:
    /// `y_k for k ∈ [k0, k0+M)`, any `k0 < N` — a "zoom FFT" built from
    /// the same machinery.
    ///
    /// [`Self::transform_segment`] handles the aligned case `k0 = sM` via
    /// the shift diagonal `Φ_s` (§5), whose entries are P-periodic. For
    /// general `k0` the modulation `x_j·e^{−2πi·k0·j/N}` is not periodic,
    /// but the segment-0 extraction never needed that: it just convolves
    /// whatever time series it is given. Cost: `O(N + M'·BP + M' log M')`.
    pub fn transform_band(&self, x: &[Complex64], k0: usize) -> Result<Vec<Complex64>, SoiError> {
        self.transform_band_pooled(x, k0, &ThreadPool::serial())
    }

    /// [`Self::transform_band`] executed on a worker pool (same
    /// determinism guarantee as [`Self::transform_segment_pooled`]).
    pub fn transform_band_pooled(
        &self,
        x: &[Complex64],
        k0: usize,
        pool: &ThreadPool,
    ) -> Result<Vec<Complex64>, SoiError> {
        let cfg = &self.cfg;
        if x.len() != cfg.n {
            return Err(SoiError::BadInput {
                expected: cfg.n,
                got: x.len(),
            });
        }
        assert!(k0 < cfg.n, "band start {k0} out of range (N = {})", cfg.n);
        // z_j = x_j·e^{−2πi·k0·j/N} shifts bin k0 to bin 0.
        let xp = self.modulate_ext(x, pool, |j| {
            Complex64::root_of_unity(k0 * j % cfg.n, cfg.n)
        });
        Ok(self.zoom_core(&xp, pool))
    }

    /// Modulate `x` pointwise by `phase` and append the circular halo:
    /// `out[l] = x[l]·phase(l)` for `l < N`, then the first `halo_len`
    /// modulated points again. The pointwise part fans out across the
    /// pool; every element is written by exactly one pure task.
    fn modulate_ext<F>(&self, x: &[Complex64], pool: &ThreadPool, phase: F) -> Vec<Complex64>
    where
        F: Fn(usize) -> Complex64 + Sync,
    {
        let cfg = &self.cfg;
        let mut out = vec![Complex64::ZERO; cfg.n + cfg.halo_len()];
        let parts = pool.threads().min(cfg.n).max(1);
        if parts == 1 {
            for (l, slot) in out[..cfg.n].iter_mut().enumerate() {
                *slot = x[l] * phase(l);
            }
        } else {
            let out_ptr = SlicePtr::new(&mut out);
            pool.run(parts, |t| {
                let (l0, ll) = part_range(cfg.n, parts, t);
                // SAFETY: element ranges are disjoint across tasks.
                let chunk = unsafe { out_ptr.slice(l0, ll) };
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = x[l0 + i] * phase(l0 + i);
                }
            });
        }
        let (head, halo) = out.split_at_mut(cfg.n);
        halo.copy_from_slice(&head[..cfg.halo_len()]);
        out
    }

    /// Shared tail of the segment/band extraction: row `j` of `C₀` is a
    /// contiguous `BP`-tap inner product starting at block `k₀(j)` (the
    /// taps are the coefficient table rows concatenated over blocks),
    /// then one `F_{M'}` and the projection + demodulation. The row
    /// convolutions fan out across the pool.
    fn zoom_core(&self, xp: &[Complex64], pool: &ThreadPool) -> Vec<Complex64> {
        let cfg = &self.cfg;
        let shape = self.shape();
        let bp = shape.b * cfg.p;
        let row = |j: usize| -> Complex64 {
            let r = j % cfg.mu;
            let base = shape.k0(j) * cfg.p;
            let taps = &self.coeffs.coef[r * bp..(r + 1) * bp];
            let data = &xp[base..base + bp];
            let mut acc = Complex64::ZERO;
            for (t, d) in taps.iter().zip(data) {
                acc = t.mul_add(*d, acc);
            }
            acc
        };
        let mut xt = vec![Complex64::ZERO; cfg.m_prime];
        let parts = pool.threads().min(cfg.m_prime).max(1);
        if parts == 1 {
            for (j, slot) in xt.iter_mut().enumerate() {
                *slot = row(j);
            }
        } else {
            let xt_ptr = SlicePtr::new(&mut xt);
            pool.run(parts, |t| {
                let (j0, jl) = part_range(cfg.m_prime, parts, t);
                // SAFETY: row ranges are disjoint across tasks.
                let chunk = unsafe { xt_ptr.slice(j0, jl) };
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = row(j0 + i);
                }
            });
        }
        let mut scratch = soi_num::AlignedBuf::zeroed(self.plan_m.scratch_len());
        let mut out = vec![Complex64::ZERO; cfg.m];
        self.plan_m
            .execute_fused_into(&mut xt, &mut scratch, &mut out, &self.coeffs.demod);
        out
    }
}

/// Deterministic alternating fold `Σ_j x_j·(−1)^j` — the exact Nyquist
/// bin of a real signal whose first sample sits at an **even** global
/// index. Four fixed accumulator banks over 8-sample chunks, summed in a
/// fixed tree: bitwise identical run-to-run and independent of worker
/// count (it is never threaded). The distributed driver folds each
/// rank's slice with this same function (rank slices start at even
/// offsets because `M` is even whenever `P` is) and combines the
/// partials with the deterministic all-reduce.
pub fn nyquist_fold(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = x.chunks_exact(8);
    for c in &mut chunks {
        acc[0] += c[0] - c[1];
        acc[1] += c[2] - c[3];
        acc[2] += c[4] - c[5];
        acc[3] += c[6] - c[7];
    }
    let mut tail = 0.0;
    let mut sign = 1.0;
    for &v in chunks.remainder() {
        tail += sign * v;
        sign = -sign;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_fft::fft_forward;
    use soi_num::complex::rel_l2_error;
    use soi_num::stats::snr_db;
    use soi_window::AccuracyPreset;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                Complex64::new(
                    (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.9).cos(),
                    (i as f64 * 0.11).cos() - 0.2,
                )
            })
            .collect()
    }

    #[test]
    fn matches_exact_fft_at_ten_digits() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(1 << 12);
        let y = soi.transform(&x).unwrap();
        let exact = fft_forward(&x);
        let err = rel_l2_error(&y, &exact);
        // The paper's bound (§4): O(κ·(ε_fft + ε_alias + ε_trunc)).
        let bound = soi.config().predicted_error();
        assert!(err < bound * 10.0, "rel error {err:e} vs bound {bound:e}");
        // And not absurdly better than designed (sanity that we measured
        // something real).
        assert!(err > 1e-16);
    }

    #[test]
    fn matches_exact_fft_at_full_accuracy() {
        let params = SoiParams::full_accuracy(1 << 14, 4).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(1 << 14);
        let y = soi.transform(&x).unwrap();
        let exact = fft_forward(&x);
        let snr = snr_db(&y, &exact);
        // §7.2: full-accuracy SOI sits around 290 dB (≈ one digit below a
        // standard FFT). Against an f64 reference we should comfortably
        // clear 260 dB.
        assert!(snr > 260.0, "snr = {snr} dB");
    }

    #[test]
    fn non_power_of_two_p() {
        // P = 5 exercises mixed-radix F_P and odd segment counts
        // (N = 10000 keeps m divisible by ν·P = 20).
        let params = SoiParams::with_preset(10_000, 5, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(10_000);
        let y = soi.transform(&x).unwrap();
        let exact = fft_forward(&x);
        let err = rel_l2_error(&y, &exact);
        let bound = soi.config().predicted_error();
        assert!(err < bound * 10.0, "rel error {err:e} vs bound {bound:e}");
    }

    #[test]
    fn segment_api_agrees_with_full_transform() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(1 << 12);
        let full = soi.transform(&x).unwrap();
        let m = soi.config().m;
        for s in 0..4 {
            let seg = soi.transform_segment(&x, s).unwrap();
            let err = rel_l2_error(&seg, &full[s * m..(s + 1) * m]);
            assert!(err < 1e-10, "segment {s}: {err:e}");
        }
    }

    #[test]
    fn segment_matches_exact_spectrum_slice() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits11).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(1 << 12);
        let exact = fft_forward(&x);
        let m = soi.config().m;
        let seg = soi.transform_segment(&x, 2).unwrap();
        let err = rel_l2_error(&seg, &exact[2 * m..3 * m]);
        let bound = soi.config().predicted_error();
        assert!(err < bound * 10.0, "rel error {err:e} vs bound {bound:e}");
    }

    #[test]
    fn linearity_of_whole_transform() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let a = signal(1 << 12);
        let b: Vec<Complex64> = signal(1 << 12).iter().map(|v| v.mul_neg_i()).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let ya = soi.transform(&a).unwrap();
        let yb = soi.transform(&b).unwrap();
        let ys = soi.transform(&sum).unwrap();
        for k in 0..ys.len() {
            assert!((ys[k] - (ya[k] + yb[k])).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_wrong_length() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(100);
        assert!(matches!(
            soi.transform(&x),
            Err(SoiError::BadInput { expected, got: 100 }) if expected == 1 << 12
        ));
    }

    #[test]
    fn impulse_response_matches_aliasing_theory_per_bin() {
        // DFT of δ₀ is all-ones — the worst case for periodization
        // aliasing, since every alias image is coherent. The §3 theory
        // predicts the *exact* per-bin error:
        //   ỹ_k = Σ_p ŵ(k+pM')  ⇒  y_k − 1 = Σ_{p≠0} ŵ(k+pM')/ŵ(k).
        // Verify measurement against that prediction bin by bin.
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let cfg = *soi.config();
        let mut x = vec![Complex64::ZERO; 1 << 12];
        x[0] = Complex64::ONE;
        let y = soi.transform(&x).unwrap();
        for k in (0..cfg.m).step_by(97).chain([0, 1, cfg.m - 1]) {
            let mut predicted = Complex64::ZERO;
            for p in [-2i64, -1, 1, 2] {
                predicted += crate::coeff::w_hat(&cfg, k as f64 + p as f64 * cfg.m_prime as f64);
            }
            let predicted = predicted * soi.coefficients().demod[k];
            // Each segment sees the same aliasing structure; check seg 0.
            let measured = y[k] - Complex64::ONE;
            let tol = 0.3 * predicted.abs() + 1e-12;
            assert!(
                (measured - predicted).abs() < tol,
                "bin {k}: measured {measured:?}, theory {predicted:?}"
            );
        }
    }

    #[test]
    fn band_api_matches_exact_spectrum_at_unaligned_offsets() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits11).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let cfg = *soi.config();
        let x = signal(1 << 12);
        let exact = fft_forward(&x);
        let bound = 10.0 * cfg.predicted_error();
        for k0 in [0usize, 1, 777, cfg.m + 13, cfg.n - cfg.m / 2] {
            let band = soi.transform_band(&x, k0).unwrap();
            for (i, v) in band.iter().enumerate().step_by(113) {
                let want = exact[(k0 + i) % cfg.n];
                assert!(
                    (*v - want).abs() < bound * (1.0 + want.abs()) * 20.0,
                    "k0={k0} bin {i}: {v:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn band_at_aligned_offset_equals_segment_api() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(1 << 12);
        let m = soi.config().m;
        let a = soi.transform_band(&x, 2 * m).unwrap();
        let b = soi.transform_segment(&x, 2).unwrap();
        assert!(rel_l2_error(&a, &b) < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(1 << 12);
        let y = soi.transform(&x).unwrap();
        let back = soi.inverse(&y).unwrap();
        let err = rel_l2_error(&back, &x);
        let bound = soi.config().predicted_error();
        assert!(err < bound * 20.0, "roundtrip err {err:e} vs bound {bound:e}");
    }

    #[test]
    fn inverse_matches_exact_ifft() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let y = signal(1 << 12);
        let got = soi.inverse(&y).unwrap();
        let want = soi_fft::fft_inverse(&y);
        let err = rel_l2_error(&got, &want);
        let bound = soi.config().predicted_error();
        assert!(err < bound * 10.0, "err {err:e} vs bound {bound:e}");
    }

    #[test]
    fn tracing_is_transparent_and_emits_stage_spans() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = signal(1 << 12);
        let mut ws_plain = SoiWorkspace::new(&soi, 2);
        let mut y_plain = vec![Complex64::ZERO; 1 << 12];
        soi.transform_into(&x, &mut y_plain, &mut ws_plain).unwrap();

        let mut ws_traced = SoiWorkspace::new(&soi, 2);
        ws_traced.set_trace(soi_trace::Trace::recording(0));
        let mut y_traced = vec![Complex64::ZERO; 1 << 12];
        soi.transform_into(&x, &mut y_traced, &mut ws_traced).unwrap();

        // Tracing must not perturb the numerics: bitwise identity.
        for (a, b) in y_plain.iter().zip(&y_traced) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let events = ws_traced.trace().drain();
        let totals = soi_trace::phase_totals(&events);
        let names: Vec<&str> = totals.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["halo", "conv", "fft_p", "pack", "fft_m"]);
        // The untraced workspace recorded nothing, and stays that way.
        assert!(ws_plain.trace().is_empty());
    }

    #[test]
    fn fused_stage4_is_bitwise_identical_to_unfused_reference() {
        // The production path fuses projection + demodulation into the
        // final FFT pass; rebuild the same pipeline from the public
        // pieces with the demodulation as a separate multiply loop and
        // demand bitwise identity (a far stronger statement than the SNR
        // bound, which it implies).
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let cfg = *soi.config();
        let x = signal(1 << 12);
        let y = soi.transform(&x).unwrap();

        let mut xext = vec![Complex64::ZERO; cfg.n + cfg.halo_len()];
        xext[..cfg.n].copy_from_slice(&x);
        let (head, halo) = xext.split_at_mut(cfg.n);
        halo.copy_from_slice(&head[..cfg.halo_len()]);
        let mut v = vec![Complex64::ZERO; cfg.n_prime];
        crate::conv::convolve(soi.shape(), soi.coefficients(), &xext, &mut v);
        soi.batch_p().execute(&mut v);
        let mut seg = vec![Complex64::ZERO; cfg.n_prime];
        soi_fft::permute::stride_permute(&v, &mut seg, cfg.m_prime);
        let mut want = vec![Complex64::ZERO; cfg.n];
        let mut scratch = vec![Complex64::ZERO; soi.plan_m().scratch_len()];
        for s in 0..cfg.p {
            let row = &mut seg[s * cfg.m_prime..(s + 1) * cfg.m_prime];
            soi.plan_m().execute_with_scratch(row, &mut scratch);
            for k in 0..cfg.m {
                want[s * cfg.m + k] = row[k] * soi.coefficients().demod[k];
            }
        }
        for (k, (a, b)) in y.iter().zip(&want).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "bin {k}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "bin {k}");
        }
    }

    #[test]
    fn fused_stage4_on_four_step_engine_matches_exact_fft() {
        // N = 2^16, P = 2 puts M' = 40960 above the four-step threshold,
        // so this exercises the genuinely fused cache-blocked path end to
        // end (the 2^12 tests run the mixed-radix fallback).
        let params = SoiParams::with_preset(1 << 16, 2, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        assert_eq!(soi.plan_m().engine_name(), "four-step");
        let x = signal(1 << 16);
        let y = soi.transform(&x).unwrap();
        let exact = fft_forward(&x);
        let err = rel_l2_error(&y, &exact);
        let bound = soi.config().predicted_error();
        assert!(err < bound * 10.0, "rel error {err:e} vs bound {bound:e}");
    }

    #[test]
    fn plan_m_dispatches_no_generic_butterfly() {
        // M' always carries the oversampling factor 5 (μ/ν = 5/4); the
        // paper's kernel story requires it to hit the hand-written
        // radix-5 codelet, never the O(r²) generic butterfly.
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let cs = soi.plan_m().codelets();
        assert!(
            cs.contains(&soi_fft::codelet::Codelet::Radix5),
            "M' = {} codelets: {cs:?}",
            soi.config().m_prime
        );
        assert!(cs.iter().all(|c| !c.is_generic()), "{cs:?}");
    }

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 1.9).cos() - 0.1)
            .collect()
    }

    #[test]
    fn nyquist_fold_matches_naive_alternating_sum() {
        for n in [0usize, 1, 5, 8, 9, 16, 23, 1000] {
            let x = real_signal(n.max(1))[..n].to_vec();
            let naive: f64 = x
                .iter()
                .enumerate()
                .map(|(j, &v)| if j % 2 == 0 { v } else { -v })
                .sum();
            assert!((nyquist_fold(&x) - naive).abs() < 1e-12 * (n.max(1) as f64), "n={n}");
        }
    }

    #[test]
    fn real_transform_matches_exact_packed_rfft() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = real_signal(1 << 12);
        let y = soi.transform_real(&x).unwrap();
        assert_eq!(y.len(), (1 << 11) + 1);
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let exact = fft_forward(&xc);
        let err = rel_l2_error(&y[..1 << 11], &exact[..1 << 11]);
        let bound = soi.config().predicted_error();
        assert!(err < bound * 10.0, "rel error {err:e} vs bound {bound:e}");
        // The Nyquist bin is the exact alternating fold, not an SOI
        // approximation — it should beat the bound outright.
        assert!((y[1 << 11] - exact[1 << 11]).abs() < 1e-9);
    }

    #[test]
    fn real_transform_is_bitwise_the_complex_transform_below_nyquist() {
        // Segments 0..P/2 of the r2c path run the byte-for-byte same
        // arithmetic as the complex path on the embedded input; demand
        // bitwise identity for every bin below Nyquist.
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = real_signal(1 << 12);
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let yc = soi.transform(&xc).unwrap();
        let yr = soi.transform_real(&x).unwrap();
        for k in 0..1 << 11 {
            assert_eq!(yr[k].re.to_bits(), yc[k].re.to_bits(), "bin {k}");
            assert_eq!(yr[k].im.to_bits(), yc[k].im.to_bits(), "bin {k}");
        }
        // At Nyquist the r2c path is exact while the complex path is the
        // SOI approximation; they agree to the design bound.
        let bound = soi.config().predicted_error() * (1 << 12) as f64;
        assert!((yr[1 << 11] - yc[1 << 11]).abs() < bound);
    }

    #[test]
    fn real_transform_satisfies_hermitian_symmetry() {
        // The packed half-spectrum must mirror the complex transform's
        // upper half: y[N−k] = conj(y[k]).
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits11).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let cfg = *soi.config();
        let x = real_signal(1 << 12);
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let yc = soi.transform(&xc).unwrap();
        let yr = soi.transform_real(&x).unwrap();
        let bound = cfg.predicted_error() * cfg.n as f64;
        for k in (1..cfg.n / 2).step_by(97).chain([1, cfg.n / 2 - 1]) {
            let mirror = yc[cfg.n - k];
            assert!(
                (yr[k].conj() - mirror).abs() < bound,
                "bin {k}: {:?} vs conj {:?}",
                yr[k],
                mirror
            );
        }
        // DC and Nyquist are real for real input: the DC imaginary part
        // is pure SOI approximation error, the Nyquist bin exactly zero
        // by construction.
        assert!(yr[0].im.abs() < bound, "DC imag {:e}", yr[0].im);
        assert_eq!(yr[cfg.n / 2].im, 0.0);
    }

    #[test]
    fn real_transform_is_bitwise_deterministic_across_worker_counts() {
        // P = 8 exercises the batched register-resident F_8 kernel in
        // stage 2 alongside the pooled real conv and partial pack.
        let params = SoiParams::with_preset(1 << 14, 8, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = real_signal(1 << 14);
        let half = (1 << 13) + 1;
        let mut reference = vec![Complex64::ZERO; half];
        let mut ws1 = SoiRealWorkspace::new(&soi, 1);
        soi.transform_real_into(&x, &mut reference, &mut ws1).unwrap();
        // Run-to-run on a reused workspace.
        let mut again = vec![Complex64::ZERO; half];
        soi.transform_real_into(&x, &mut again, &mut ws1).unwrap();
        for (a, b) in reference.iter().zip(&again) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // Across worker counts.
        for workers in [2usize, 3, 4, 7] {
            let mut ws = SoiRealWorkspace::new(&soi, workers);
            let mut y = vec![Complex64::ZERO; half];
            soi.transform_real_into(&x, &mut y, &mut ws).unwrap();
            let same = reference
                .iter()
                .zip(&y)
                .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            assert!(same, "workers={workers} drifted from serial");
        }
    }

    #[test]
    fn real_segment_and_band_agree_with_real_transform() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let cfg = *soi.config();
        let x = real_signal(1 << 12);
        let y = soi.transform_real(&x).unwrap();
        for s in 0..cfg.p / 2 {
            let seg = soi.transform_real_segment(&x, s).unwrap();
            let err = rel_l2_error(&seg, &y[s * cfg.m..(s + 1) * cfg.m]);
            assert!(err < 1e-10, "segment {s}: {err:e}");
        }
        // A mirror-half segment reproduces the conjugate bins.
        let seg = soi.transform_real_segment(&x, cfg.p - 1).unwrap();
        let bound = cfg.predicted_error() * cfg.n as f64;
        for i in (1..cfg.m).step_by(131) {
            let mirror = y[cfg.n - ((cfg.p - 1) * cfg.m + i)].conj();
            assert!((seg[i] - mirror).abs() < bound, "mirror bin {i}");
        }
        // Band at an aligned offset equals the segment API.
        let band = soi.transform_real_band(&x, cfg.m).unwrap();
        let seg1 = soi.transform_real_segment(&x, 1).unwrap();
        assert!(rel_l2_error(&band, &seg1) < 1e-12);
    }

    #[test]
    fn real_transform_rejects_odd_p_and_bad_lengths() {
        let params = SoiParams::with_preset(10_000, 5, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = real_signal(10_000);
        assert!(matches!(
            soi.transform_real(&x),
            Err(SoiError::BadSize(msg)) if msg.contains("even")
        ));

        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        assert!(matches!(
            soi.transform_real(&real_signal(100)),
            Err(SoiError::BadInput { expected, got: 100 }) if expected == 1 << 12
        ));
        let mut ws = SoiRealWorkspace::new(&soi, 1);
        let mut y_short = vec![Complex64::ZERO; 1 << 11];
        assert!(matches!(
            soi.transform_real_into(&real_signal(1 << 12), &mut y_short, &mut ws),
            Err(SoiError::BadInput { expected, got }) if expected == (1 << 11) + 1 && got == 1 << 11
        ));
    }

    #[test]
    fn real_tracing_is_transparent_and_emits_stage_spans() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let x = real_signal(1 << 12);
        let half = (1 << 11) + 1;
        let mut ws_plain = SoiRealWorkspace::new(&soi, 2);
        let mut y_plain = vec![Complex64::ZERO; half];
        soi.transform_real_into(&x, &mut y_plain, &mut ws_plain).unwrap();

        let mut ws_traced = SoiRealWorkspace::new(&soi, 2);
        ws_traced.set_trace(soi_trace::Trace::recording(0));
        let mut y_traced = vec![Complex64::ZERO; half];
        soi.transform_real_into(&x, &mut y_traced, &mut ws_traced).unwrap();

        for (a, b) in y_plain.iter().zip(&y_traced) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let events = ws_traced.trace().drain();
        let totals = soi_trace::phase_totals(&events);
        let names: Vec<&str> = totals.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["halo", "conv", "fft_p", "pack", "fft_m"]);
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 1 << 12;
        let params = SoiParams::with_preset(n, 4, AccuracyPreset::Digits12).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let f = 1234;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (f * j % n) as f64 / n as f64))
            .collect();
        let y = soi.transform(&x).unwrap();
        assert!((y[f] - Complex64::new(n as f64, 0.0)).abs() < 1e-6 * n as f64);
        let leak: f64 = y
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != f)
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max);
        assert!(leak < 1e-7 * n as f64, "max leak {leak:e}");
    }
}
