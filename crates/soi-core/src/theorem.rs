//! The hybrid convolution theorem (Theorem 1) as executable operators.
//!
//! Definition 1 of the paper introduces five operations mixing finite
//! vectors with functions; Theorem 1 states
//!
//! ```text
//! F_M [ (1/M)·Samp(x ∗ w; 1/M) ] = Peri(y·ŵ; M),   y = F_N x.
//! ```
//!
//! This module implements each operator literally (at `O(N)`-per-point
//! cost) so the theorem can be *tested numerically* rather than trusted —
//! it is the foundation the whole factorization stands on, and any sign or
//! convention error anywhere in the workspace shows up here first.

use crate::coeff::{w_hat, w_time};
use crate::params::SoiConfig;
use soi_fft::dft::dft_naive;
use soi_num::kahan::KahanComplexSum;
use soi_num::Complex64;

/// Definition 1(2): `(x ∗ w)(t) = Σ_ℓ w(t − ℓ/N)·x_{ℓ mod N}`, with the
/// sum taken over all shifts where `w` is non-negligible (its support is
/// ±B/M around each point, so ℓ ranges over one period plus a guard).
pub fn convolve_time(cfg: &SoiConfig, x: &[Complex64], t: f64) -> Complex64 {
    assert_eq!(x.len(), cfg.n);
    let n = cfg.n as i64;
    let mut acc = KahanComplexSum::new();
    // Periodized: ℓ runs over one extra period each side to capture the
    // wrap-around of the window support.
    for l in -n..(2 * n) {
        let xl = x[l.rem_euclid(n) as usize];
        let w = w_time(cfg, t - l as f64 / cfg.n as f64);
        acc.add(xl * w);
    }
    acc.value()
}

/// Definition 1(3): `Samp(f; 1/M)` — the M-vector `f(j/M)`, here fused
/// with the `1/M` scaling of Theorem 1.
pub fn sample_scaled(cfg: &SoiConfig, x: &[Complex64], m: usize) -> Vec<Complex64> {
    (0..m)
        .map(|j| convolve_time(cfg, x, j as f64 / m as f64).scale(1.0 / m as f64))
        .collect()
}

/// Definition 1(4)+(5): `Peri(y·ŵ; M)` — modulate the (periodically
/// extended) spectrum by `ŵ`, then fold with period `M`. The shift sum is
/// truncated where `ŵ` has decayed below any representable magnitude.
pub fn periodize_modulated(cfg: &SoiConfig, y: &[Complex64], m: usize) -> Vec<Complex64> {
    assert_eq!(y.len(), cfg.n);
    let n = cfg.n as i64;
    let mut out = Vec::with_capacity(m);
    for k in 0..m as i64 {
        let mut acc = KahanComplexSum::new();
        // k + j·M over enough periods of the window's spectral support.
        let span = 2 * n / m as i64 + 2;
        for j in -span..=span {
            let idx = k + j * m as i64;
            let yv = y[idx.rem_euclid(n) as usize];
            acc.add(yv * w_hat(cfg, idx as f64));
        }
        out.push(acc.value());
    }
    out
}

/// Both sides of Theorem 1 at period `m`: returns
/// `(F_m[(1/m)Samp(x∗w;1/m)], Peri(y·ŵ; m))`.
pub fn theorem1_sides(
    cfg: &SoiConfig,
    x: &[Complex64],
    m: usize,
) -> (Vec<Complex64>, Vec<Complex64>) {
    let xt = sample_scaled(cfg, x, m);
    let lhs = dft_naive(&xt);
    let y = dft_naive(x);
    let rhs = periodize_modulated(cfg, &y, m);
    (lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SoiParams;
    use soi_num::complex::{max_abs_diff, rel_l2_error};
    use soi_window::AccuracyPreset;

    fn tiny_cfg() -> SoiConfig {
        // Smallest size satisfying divisibility with a modest B: N = 512,
        // P = 2 → M = 256, νP = 8 | 256 ✓; B ≤ M/P+1.
        SoiParams::with_preset(512, 2, AccuracyPreset::Digits10)
            .unwrap()
            .resolve()
    }

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.4).cos() * 0.5))
            .collect()
    }

    #[test]
    fn hybrid_convolution_theorem_holds() {
        // THE theorem: both sides agree to (window-design) accuracy at the
        // oversampled period M'.
        let cfg = tiny_cfg();
        let x = signal(cfg.n);
        let (lhs, rhs) = theorem1_sides(&cfg, &x, cfg.m_prime);
        let err = rel_l2_error(&lhs, &rhs);
        assert!(err < 1e-9, "Theorem 1 violated: rel err {err:e}");
    }

    #[test]
    fn theorem_holds_at_other_periods_too() {
        // Theorem 1 is stated for ANY M — check a period unrelated to the
        // SOI configuration (the window still decays, just less sharply,
        // so tolerance is looser).
        let cfg = tiny_cfg();
        let x = signal(cfg.n);
        let (lhs, rhs) = theorem1_sides(&cfg, &x, 384);
        let err = rel_l2_error(&lhs, &rhs);
        assert!(err < 1e-8, "rel err {err:e}");
    }

    #[test]
    fn periodized_spectrum_approximates_windowed_segment() {
        // ỹ_k ≈ y_k·ŵ(k) for k in the segment of interest (§3) — aliasing
        // contributes only ~ε_alias.
        let cfg = tiny_cfg();
        let x = signal(cfg.n);
        let y = dft_naive(&x);
        let yt = periodize_modulated(&cfg, &y, cfg.m_prime);
        for k in [0usize, 1, cfg.m / 2, cfg.m - 1] {
            let want = y[k] * w_hat(&cfg, k as f64);
            assert!(
                (yt[k] - want).abs() < 1e-8 * (1.0 + want.abs()),
                "bin {k}: {:?} vs {want:?}",
                yt[k]
            );
        }
    }

    #[test]
    fn convolution_is_periodic_in_t() {
        // x∗w is 1-periodic (x is N-periodic in index, t in units of the
        // full record).
        let cfg = tiny_cfg();
        let x = signal(cfg.n);
        let a = convolve_time(&cfg, &x, 0.125);
        let b = convolve_time(&cfg, &x, 1.125);
        assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()));
    }

    #[test]
    fn sample_scaled_matches_pipeline_segment_zero_input() {
        // The x̃ built by the production convolution kernel for segment 0
        // must match the literal Definition-1 construction.
        let cfg = tiny_cfg();
        let x = signal(cfg.n);
        let params = SoiParams::with_preset(512, 2, AccuracyPreset::Digits10).unwrap();
        let soi = crate::pipeline::SoiFft::new(&params).unwrap();
        // Definition-1 route:
        let xt_direct = sample_scaled(&cfg, &x, cfg.m_prime);
        // Production route: segment-0 x̃ is the pre-FFT vector inside
        // transform_segment; recover it by inverse-transforming the
        // demodulated output... simpler: compare final segment values.
        let seg = soi.transform_segment(&x, 0).unwrap();
        let mut yt = xt_direct;
        soi_fft::plan::Planner::global()
            .forward(cfg.m_prime)
            .execute(&mut yt);
        // The production kernel truncates w to B taps; the Definition-1
        // route does not — they differ by O(κ·ε_trunc).
        let tol = (cfg.kappa * cfg.trunc * 100.0).max(1e-10);
        for k in [0usize, 3, cfg.m - 1] {
            let want = yt[k] * soi.coefficients().demod[k];
            assert!(
                (seg[k] - want).abs() < tol * (1.0 + want.abs()),
                "bin {k}: {:?} vs {want:?}",
                seg[k]
            );
        }
    }

    #[test]
    fn theorem_sides_have_expected_length() {
        let cfg = tiny_cfg();
        let x = signal(cfg.n);
        let (lhs, rhs) = theorem1_sides(&cfg, &x, 64);
        assert_eq!(lhs.len(), 64);
        assert_eq!(rhs.len(), 64);
        assert!(max_abs_diff(&lhs, &rhs).is_finite());
    }
}
