//! Reusable execution state for the SOI pipeline: one worker pool plus
//! every intermediate buffer [`SoiFft::transform_into`] touches.
//!
//! The four-stage transform needs four `O(N')` buffers (extended input,
//! convolution output, permuted segments, per-worker FFT scratch). The
//! original `transform` heap-allocated all of them per call; a
//! [`SoiWorkspace`] hoists them into an arena built once per
//! configuration, so steady-state calls allocate nothing and the worker
//! pool persists across calls (spawn once, park between jobs).
//!
//! **Reuse contract.** A workspace is bound to the exact configuration of
//! the [`SoiFft`] it was built from (sizes *and* FFT engine scratch
//! shapes). Passing it to a transform with a different configuration is
//! reported as [`SoiError::WorkspaceMismatch`]; reusing it across calls
//! of the same transform is the intended pattern and never requires
//! re-zeroing — every buffer region that is read is written first.

use crate::error::SoiError;
use crate::pipeline::SoiFft;
use soi_num::{AlignedBuf, Complex64};
use soi_pool::ThreadPool;
use soi_trace::Trace;
use std::sync::Arc;

/// Preallocated buffers + worker pool for allocation-free SOI execution.
#[derive(Debug)]
pub struct SoiWorkspace {
    pub(crate) pool: Arc<ThreadPool>,
    /// Extended input: `N` points followed by the circular halo.
    /// All four arena buffers are [`AlignedBuf`]s: a plain `Vec` this
    /// large is mmap-served at a 16-byte offset, which costs the SIMD
    /// kernels ~25% in straddled cache-line loads.
    pub(crate) xext: AlignedBuf<Complex64>,
    /// Convolution output / `F_P` batch buffer (`N'`).
    pub(crate) v: AlignedBuf<Complex64>,
    /// Stride-permuted segment buffer (`N'`).
    pub(crate) seg: AlignedBuf<Complex64>,
    /// Per-worker FFT scratch arena: `threads` stripes of `stride`.
    pub(crate) scratch: AlignedBuf<Complex64>,
    /// Stripe width of `scratch` (max engine scratch length).
    pub(crate) stride: usize,
    /// Configuration fingerprint: `(n, p, m_prime, halo_len)`.
    pub(crate) shape: (usize, usize, usize, usize),
    /// Phase-span recorder for [`SoiFft::transform_into`] (disabled by
    /// default — a null check per stage, no allocation).
    pub(crate) trace: Trace,
}

impl SoiWorkspace {
    /// Build a workspace for `soi` with a fresh pool of `threads` workers
    /// (`1` = fully serial, spawns no threads).
    pub fn new(soi: &SoiFft, threads: usize) -> Self {
        Self::with_pool(soi, Arc::new(ThreadPool::new(threads)))
    }

    /// Build a workspace for `soi` on an existing (possibly shared) pool.
    pub fn with_pool(soi: &SoiFft, pool: Arc<ThreadPool>) -> Self {
        let cfg = soi.config();
        let stride = soi
            .batch_p()
            .scratch_len()
            .max(soi.plan_m().scratch_len())
            // Whole cache lines per stripe (4 × 16-byte Complex64), so
            // every worker's stripe starts 64-byte aligned, not just the
            // arena base.
            .next_multiple_of(4);
        Self {
            xext: AlignedBuf::zeroed(cfg.n + cfg.halo_len()),
            v: AlignedBuf::zeroed(cfg.n_prime),
            seg: AlignedBuf::zeroed(cfg.n_prime),
            scratch: AlignedBuf::zeroed(pool.threads() * stride),
            stride,
            shape: (cfg.n, cfg.p, cfg.m_prime, cfg.halo_len()),
            trace: Trace::disabled(),
            pool,
        }
    }

    /// Attach a trace handle: subsequent [`SoiFft::transform_into`] calls
    /// on this workspace emit one span per pipeline stage ("halo", "conv",
    /// "fft_p", "pack", "fft_m"). Pass [`Trace::disabled`] to detach.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The currently attached trace handle.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The worker pool this workspace executes on.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Shared handle to the pool (for building sibling workspaces).
    pub fn pool_arc(&self) -> Arc<ThreadPool> {
        Arc::clone(&self.pool)
    }

    /// Worker count, caller included.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Verify this workspace was built for `soi`'s configuration.
    pub(crate) fn check(&self, soi: &SoiFft) -> Result<(), SoiError> {
        let cfg = soi.config();
        let want = (cfg.n, cfg.p, cfg.m_prime, cfg.halo_len());
        let stride = soi
            .batch_p()
            .scratch_len()
            .max(soi.plan_m().scratch_len());
        if self.shape != want || self.stride < stride {
            return Err(SoiError::WorkspaceMismatch(format!(
                "workspace built for (n, p, m', halo) = {:?} with scratch stride {}, \
                 transform needs {:?} with stride {}",
                self.shape, self.stride, want, stride
            )));
        }
        Ok(())
    }
}

/// Preallocated buffers + worker pool for the **real-input** (r2c)
/// transform [`SoiFft::transform_real_into`].
///
/// Identical arena discipline to [`SoiWorkspace`], with the real-path
/// shapes: the extended input is a stream of `N + halo` *reals* (half
/// the bytes of the complex arena), the convolution output still spans
/// the full `N'` complex values, and the segment buffer holds only the
/// non-redundant `P/2` segments the Hermitian fold keeps.
#[derive(Debug)]
pub struct SoiRealWorkspace {
    pub(crate) pool: Arc<ThreadPool>,
    /// Extended real input: `N` samples followed by the circular halo.
    pub(crate) xext: AlignedBuf<f64>,
    /// Convolution output / `F_P` batch buffer (`N'` complex).
    pub(crate) v: AlignedBuf<Complex64>,
    /// Partially transposed segment buffer: `P/2` segments of `M'`.
    pub(crate) seg: AlignedBuf<Complex64>,
    /// Per-worker FFT scratch arena: `threads` stripes of `stride`.
    pub(crate) scratch: AlignedBuf<Complex64>,
    /// Stripe width of `scratch` (max engine scratch length).
    pub(crate) stride: usize,
    /// Configuration fingerprint: `(n, p, m_prime, halo_len)`.
    pub(crate) shape: (usize, usize, usize, usize),
    /// Phase-span recorder (disabled by default).
    pub(crate) trace: Trace,
}

impl SoiRealWorkspace {
    /// Build a real-input workspace for `soi` with a fresh pool of
    /// `threads` workers (`1` = fully serial, spawns no threads).
    pub fn new(soi: &SoiFft, threads: usize) -> Self {
        Self::with_pool(soi, Arc::new(ThreadPool::new(threads)))
    }

    /// Build a real-input workspace for `soi` on an existing pool.
    pub fn with_pool(soi: &SoiFft, pool: Arc<ThreadPool>) -> Self {
        let cfg = soi.config();
        let stride = soi
            .batch_p()
            .scratch_len()
            .max(soi.plan_m().scratch_len())
            .next_multiple_of(4);
        Self {
            xext: AlignedBuf::zeroed(cfg.n + cfg.halo_len()),
            v: AlignedBuf::zeroed(cfg.n_prime),
            seg: AlignedBuf::zeroed(cfg.p / 2 * cfg.m_prime),
            scratch: AlignedBuf::zeroed(pool.threads() * stride),
            stride,
            shape: (cfg.n, cfg.p, cfg.m_prime, cfg.halo_len()),
            trace: Trace::disabled(),
            pool,
        }
    }

    /// Attach a trace handle: subsequent [`SoiFft::transform_real_into`]
    /// calls emit one span per pipeline stage ("halo", "conv", "fft_p",
    /// "pack", "fft_m"). Pass [`Trace::disabled`] to detach.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The currently attached trace handle.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The worker pool this workspace executes on.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Shared handle to the pool (for building sibling workspaces).
    pub fn pool_arc(&self) -> Arc<ThreadPool> {
        Arc::clone(&self.pool)
    }

    /// Worker count, caller included.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Verify this workspace was built for `soi`'s configuration.
    pub(crate) fn check(&self, soi: &SoiFft) -> Result<(), SoiError> {
        let cfg = soi.config();
        let want = (cfg.n, cfg.p, cfg.m_prime, cfg.halo_len());
        let stride = soi
            .batch_p()
            .scratch_len()
            .max(soi.plan_m().scratch_len());
        if self.shape != want || self.stride < stride {
            return Err(SoiError::WorkspaceMismatch(format!(
                "real workspace built for (n, p, m', halo) = {:?} with scratch stride {}, \
                 transform needs {:?} with stride {}",
                self.shape, self.stride, want, stride
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SoiParams;
    use soi_window::AccuracyPreset;

    #[test]
    fn workspace_rejects_foreign_transform() {
        let a = SoiFft::new(&SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap())
            .unwrap();
        let b = SoiFft::new(&SoiParams::with_preset(1 << 13, 4, AccuracyPreset::Digits10).unwrap())
            .unwrap();
        let mut ws = SoiWorkspace::new(&a, 2);
        let x = vec![Complex64::ZERO; 1 << 13];
        let mut y = vec![Complex64::ZERO; 1 << 13];
        assert!(matches!(
            b.transform_into(&x, &mut y, &mut ws),
            Err(SoiError::WorkspaceMismatch(_))
        ));
    }

    #[test]
    fn scratch_stride_is_exactly_the_larger_engine_requirement() {
        // The arena stripe must match the engines' exact scratch bounds
        // rounded to whole cache lines — a stride below either engine's
        // need would silently re-allocate per call (the fallback path), a
        // stride beyond the cache-line round-up wastes arena, and a
        // stride off a 64-byte multiple would misalign stripes 1..t.
        let soi =
            SoiFft::new(&SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap())
                .unwrap();
        let ws = SoiWorkspace::new(&soi, 3);
        let want = soi
            .batch_p()
            .scratch_len()
            .max(soi.plan_m().scratch_len())
            .next_multiple_of(4);
        assert_eq!(ws.stride, want);
        assert_eq!(ws.scratch.len(), 3 * want);
        assert_eq!(ws.scratch.as_ptr() as usize % 64, 0);
        // The mixed-radix M' engine needs more than M' elements; the pin
        // fails if Plan::scratch_len ever regresses to the flat `n`.
        assert!(soi.plan_m().scratch_len() > soi.config().m_prime);
    }

    #[test]
    fn workspace_shares_pool() {
        let soi =
            SoiFft::new(&SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap())
                .unwrap();
        let ws = SoiWorkspace::new(&soi, 3);
        assert_eq!(ws.threads(), 3);
        let sibling = SoiWorkspace::with_pool(&soi, ws.pool_arc());
        assert_eq!(sibling.threads(), 3);
    }
}
