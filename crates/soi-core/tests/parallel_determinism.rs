//! The threading contract: `transform_into` is **bitwise identical** to
//! the serial `transform` for every worker count, and a reused
//! [`SoiWorkspace`] never contaminates later calls.
//!
//! These are exact-equality tests (on f64 bit patterns), not tolerance
//! tests: the pool's static chunk assignment gives every output element
//! to exactly one pure task, so parallelism must not change a single ulp.

use std::cell::RefCell;

use soi_core::{SoiFft, SoiParams, SoiWorkspace};
use soi_num::Complex64;
use soi_testkit::prop::{check, PropConfig};
use soi_testkit::rng::TestRng;
use soi_window::AccuracyPreset;

fn signal(n: usize, seed: u64) -> Vec<Complex64> {
    TestRng::seed_from_u64(seed).complex_vec(n)
}

fn bits(v: &[Complex64]) -> Vec<(u64, u64)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

fn assert_bitwise_parallel_invariant(soi: &SoiFft, n: usize) {
    let x = signal(n, 0x50150 + n as u64);
    let serial = soi.transform(&x).unwrap();
    for workers in [1usize, 2, 4, 8] {
        let mut ws = SoiWorkspace::new(soi, workers);
        let mut y = vec![Complex64::ZERO; n];
        soi.transform_into(&x, &mut y, &mut ws).unwrap();
        assert_eq!(
            bits(&serial),
            bits(&y),
            "transform_into with {workers} workers diverged from serial"
        );
    }
}

#[test]
fn power_of_two_transform_is_worker_count_invariant() {
    let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
    let soi = SoiFft::new(&params).unwrap();
    assert_bitwise_parallel_invariant(&soi, 1 << 12);
}

#[test]
fn mixed_radix_transform_is_worker_count_invariant() {
    // P = 5, N = 10000: mixed-radix F_P and F_{M'} exercise the
    // staging-copy scratch path under parallel execution.
    let params = SoiParams::with_preset(10_000, 5, AccuracyPreset::Digits10).unwrap();
    let soi = SoiFft::new(&params).unwrap();
    assert_bitwise_parallel_invariant(&soi, 10_000);
}

#[test]
fn segment_and_band_pooled_match_serial_bitwise() {
    let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
    let soi = SoiFft::new(&params).unwrap();
    let n = 1 << 12;
    let x = signal(n, 42);
    let pool = soi_core::ThreadPool::new(4);
    for s in 0..4 {
        let serial = soi.transform_segment(&x, s).unwrap();
        let pooled = soi.transform_segment_pooled(&x, s, &pool).unwrap();
        assert_eq!(bits(&serial), bits(&pooled), "segment {s}");
    }
    for k0 in [0usize, 777, n - 100] {
        let serial = soi.transform_band(&x, k0).unwrap();
        let pooled = soi.transform_band_pooled(&x, k0, &pool).unwrap();
        assert_eq!(bits(&serial), bits(&pooled), "band k0={k0}");
    }
}

#[test]
fn workspace_reuse_matches_fresh_workspace_bitwise() {
    // Property: a workspace reused across many transforms (dirty buffers,
    // warm pool) produces exactly what a fresh workspace produces.
    let params = SoiParams::with_preset(10_000, 5, AccuracyPreset::Digits10).unwrap();
    let soi = SoiFft::new(&params).unwrap();
    let reused = RefCell::new(SoiWorkspace::new(&soi, 3));
    check(
        "workspace_reuse_matches_fresh",
        PropConfig::cases(8),
        |rng| {
            let x = rng.complex_vec(10_000);
            let mut y_reused = vec![Complex64::ZERO; 10_000];
            soi.transform_into(&x, &mut y_reused, &mut reused.borrow_mut())
                .unwrap();
            let mut fresh = SoiWorkspace::new(&soi, 3);
            let mut y_fresh = vec![Complex64::ZERO; 10_000];
            soi.transform_into(&x, &mut y_fresh, &mut fresh).unwrap();
            assert_eq!(
                bits(&y_reused),
                bits(&y_fresh),
                "reused workspace diverged from fresh workspace"
            );
        },
    );
}
