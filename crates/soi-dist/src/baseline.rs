//! The industry-standard triple-all-to-all distributed 1-D FFT — the
//! baseline SOI is measured against (the paper's overview diagram; the
//! decomposition MKL, FFTW and FFTE all implement).
//!
//! With `N = M·P` viewed as an `M×P` matrix (row-major, block-distributed
//! by rows):
//!
//! 1. **transpose #1** → `P×M`; rank `s` now owns original column `j₂=s`;
//! 2. local length-`M` FFT per owned row, then twiddle by `ω_N^{j₂k₁}`
//!    (the "M sets of length-P FFTs … elementwise scaling" step order is
//!    mirrored here as column FFTs first — algebraically the same
//!    factorization);
//! 3. **transpose #2** → back to `M×P`; rank `s` owns rows `k₁`;
//! 4. local length-`P` FFT per row;
//! 5. **transpose #3** → `P×M`; rank `s` ends with `y[sM..(s+1)M)` in
//!    natural order.
//!
//! Exactly three all-to-alls, `O(N log N)` arithmetic, in-order input and
//! output — the properties the paper ascribes to all standard
//! implementations (§1–2).

use crate::comm::{CommError, Communicator};
use crate::dtranspose::distributed_transpose;
use crate::rates::{ChargePolicy, WorkKind};
use crate::times::PhaseTimes;
use soi_core::SoiError;
use soi_fft::batch::BatchFft;
use soi_fft::flops::fft_flops;
use soi_fft::plan::{Direction, Plan, Planner};
use soi_num::Complex64;
use std::time::Instant;

/// How the global transposes exchange data (Fig 3: "the MPI all-to-all
/// primitive, or … non-blocking send-receive").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeVariant {
    /// One collective all-to-all per transpose.
    Collective,
    /// `P−1` paired send/receive rounds per transpose.
    Pairwise,
}

/// A prepared baseline transform (shared read-only across ranks).
#[derive(Debug)]
pub struct BaselineFft {
    n: usize,
    p: usize,
    m: usize,
    plan_m: std::sync::Arc<Plan<f64>>,
    batch_p: BatchFft<f64>,
    variant: ExchangeVariant,
}

impl BaselineFft {
    /// Plan for `n` points over `p` ranks (requires `p | n` and `p | n/p`).
    /// Plans come from the process-wide [`Planner::global`] cache, shared
    /// with the SOI pipeline's own plans.
    pub fn new(n: usize, p: usize, variant: ExchangeVariant) -> Self {
        assert!(p >= 1 && n % p == 0, "p must divide n");
        let m = n / p;
        assert!(m % p == 0, "baseline needs P | M for balanced transposes");
        let planner = Planner::global();
        Self {
            n,
            p,
            m,
            plan_m: planner.plan(m, Direction::Forward),
            batch_p: BatchFft::with_plan(planner.plan(p, Direction::Forward), 1),
            variant,
        }
    }

    /// Total size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the empty (unconstructible) plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Execute on one rank; `x_local` is this rank's `M` points, returns
    /// its `M` output points (natural order) and the phase breakdown.
    /// Generic over the transport, like [`crate::soi::DistSoiFft::run`].
    pub fn run<C: Communicator>(
        &self,
        comm: &mut C,
        x_local: &[Complex64],
        policy: ChargePolicy,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError> {
        assert_eq!(comm.size(), self.p, "cluster size mismatch");
        assert_eq!(x_local.len(), self.m, "rank input must be M points");
        let (n, p, m) = (self.n, self.p, self.m);
        let rank = comm.rank();
        let mut times = PhaseTimes::default();
        let mem = std::mem::size_of::<Complex64>() as f64;

        // Transpose #1: M×P → P×M (I own one row of length M per p=P).
        let a = self.transpose_step(comm, x_local, m, p, policy, &mut times)?;

        // Length-M FFT on each owned row (rows_here = P/P = 1 when the
        // matrix is P×M; kept general).
        let rows_here = p / p * (a.len() / m);
        let t0 = Instant::now();
        let mut a = a;
        let mut scratch = vec![Complex64::ZERO; m];
        for row in a.chunks_exact_mut(m) {
            self.plan_m.execute_with_scratch(row, &mut scratch);
        }
        let dt = policy.charge(
            WorkKind::Fft,
            rows_here as f64 * fft_flops(m),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_large += dt;

        // Twiddle: my row is original column j₂ = rank (for one row per
        // rank; general: row index = rank·rows + r).
        let t0 = Instant::now();
        let rows_owned = a.len() / m;
        for (r, row) in a.chunks_exact_mut(m).enumerate() {
            let j2 = rank * rows_owned + r;
            for (k1, v) in row.iter_mut().enumerate() {
                *v = *v * Complex64::root_of_unity(j2 * k1 % n, n);
            }
        }
        let dt = policy.charge(
            WorkKind::Mem,
            2.0 * a.len() as f64 * mem,
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.scale += dt;

        // Transpose #2: P×M → M×P (I own M/P rows of length P).
        let mut b = self.transpose_step(comm, &a, p, m, policy, &mut times)?;

        // Length-P FFT per row.
        let t0 = Instant::now();
        self.batch_p.execute(&mut b);
        let dt = policy.charge(
            WorkKind::Fft,
            (m / p) as f64 * fft_flops(p),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_small += dt;

        // Transpose #3: M×P → P×M; my row is y[rank·M ..].
        let y = self.transpose_step(comm, &b, m, p, policy, &mut times)?;
        Ok((y, times))
    }

    /// One distributed transpose with pack/exchange time charging.
    fn transpose_step<C: Communicator>(
        &self,
        comm: &mut C,
        local: &[Complex64],
        rows: usize,
        cols: usize,
        policy: ChargePolicy,
        times: &mut PhaseTimes,
    ) -> Result<Vec<Complex64>, CommError> {
        let c0 = comm.comm_seconds();
        let t0 = Instant::now();
        let (out, pack_bytes) = match self.variant {
            ExchangeVariant::Collective => distributed_transpose(comm, local, rows, cols)?,
            ExchangeVariant::Pairwise => distributed_transpose_pairwise(comm, local, rows, cols)?,
        };
        let exchange = comm.comm_seconds() - c0;
        times.exchange += exchange;
        // Wall time of the whole step minus the exchange approximates the
        // local pack work; in Rates mode the modeled bytes are charged.
        let wall_pack = (t0.elapsed().as_secs_f64() - exchange).max(0.0);
        let dt = policy.charge(WorkKind::Mem, pack_bytes as f64, wall_pack);
        comm.charge_compute(dt);
        times.pack += dt;
        Ok(out)
    }
}

/// Pairwise-exchange version of [`distributed_transpose`]: same local
/// permutations, but the wire exchange uses `P−1` send/receive rounds.
pub fn distributed_transpose_pairwise<C: Communicator>(
    comm: &mut C,
    local: &[Complex64],
    rows: usize,
    cols: usize,
) -> Result<(Vec<Complex64>, u64), CommError> {
    let p = comm.size();
    assert!(rows % p == 0 && cols % p == 0);
    let rb = rows / p;
    let cb = cols / p;
    assert_eq!(local.len(), rb * cols);
    let rank = comm.rank();
    // Pack per destination, as in the collective version.
    let mut blocks: Vec<Vec<Complex64>> = Vec::with_capacity(p);
    for d in 0..p {
        let mut blk = vec![Complex64::ZERO; rb * cb];
        for c in 0..cb {
            for r in 0..rb {
                blk[c * rb + r] = local[r * cols + d * cb + c];
            }
        }
        blocks.push(blk);
    }
    let mut out = vec![Complex64::ZERO; cb * rows];
    let place = |src: usize, block: &[Complex64], out: &mut [Complex64]| {
        for c in 0..cb {
            for r in 0..rb {
                out[c * rows + src * rb + r] = block[c * rb + r];
            }
        }
    };
    place(rank, &blocks[rank], &mut out);
    for round in 1..p {
        let dst = (rank + round) % p;
        let src = (rank + p - round) % p;
        let got = comm.sendrecv(dst, &blocks[dst], src)?;
        place(src, &got, &mut out);
    }
    let pack_bytes = 2 * (local.len() * std::mem::size_of::<Complex64>()) as u64;
    Ok((out, pack_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::complex::rel_l2_error;
    use soi_simnet::{Cluster, Fabric};

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.61).sin(), (i as f64 * 0.23).cos()))
            .collect()
    }

    fn run_baseline(n: usize, p: usize, variant: ExchangeVariant) -> Vec<Complex64> {
        let plan = BaselineFft::new(n, p, variant);
        let x = signal(n);
        let (xr, planr, m) = (&x, &plan, n / p);
        let pieces = Cluster::ideal(p).run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            planr.run(comm, local, ChargePolicy::WallClock).expect("baseline run").0
        });
        pieces.into_iter().flatten().collect()
    }

    #[test]
    fn matches_exact_fft() {
        for (n, p) in [(1usize << 10, 4usize), (1 << 12, 8), (4096, 2)] {
            let y = run_baseline(n, p, ExchangeVariant::Collective);
            let exact = soi_fft::fft_forward(&signal(n));
            let err = rel_l2_error(&y, &exact);
            assert!(err < 1e-10, "n={n} p={p}: {err:e}");
        }
    }

    #[test]
    fn pairwise_variant_matches_collective() {
        let n = 1 << 10;
        let a = run_baseline(n, 4, ExchangeVariant::Collective);
        let b = run_baseline(n, 4, ExchangeVariant::Pairwise);
        assert!(rel_l2_error(&a, &b) < 1e-14);
    }

    #[test]
    fn exactly_three_all_to_alls() {
        let n = 1 << 10;
        let p = 4;
        let plan = BaselineFft::new(n, p, ExchangeVariant::Collective);
        let x = signal(n);
        let (xr, planr, m) = (&x, &plan, n / p);
        let reports = Cluster::new(p, Fabric::ethernet_10g()).run(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            planr.run(comm, local, ChargePolicy::WallClock).expect("baseline run").0
        });
        for (_, rep) in &reports {
            assert_eq!(
                rep.stats.all_to_alls, 3,
                "baseline must perform exactly three all-to-alls"
            );
        }
    }

    #[test]
    fn baseline_moves_about_3x_the_soi_bytes() {
        // The communication-volume story of the whole paper, in one test:
        // baseline wire bytes ≈ 3N vs SOI ≈ (1+β)N per rank.
        let n = 1 << 12;
        let p = 4;
        let x = signal(n);
        let m = n / p;

        let plan = BaselineFft::new(n, p, ExchangeVariant::Collective);
        let (xr, planr) = (&x, &plan);
        let base_reports = Cluster::ideal(p).run(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            planr.run(comm, local, ChargePolicy::WallClock).expect("baseline run").0
        });
        let base_bytes: u64 = base_reports.iter().map(|(_, r)| r.stats.bytes_sent).sum();

        let params = soi_core::SoiParams::with_preset(n, p, soi_window::AccuracyPreset::Digits10)
            .unwrap();
        let dist = crate::soi::DistSoiFft::new(&params).unwrap();
        let (xr, distr) = (&x, &dist);
        let soi_reports = Cluster::ideal(p).run(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            distr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
        });
        let soi_bytes: u64 = soi_reports.iter().map(|(_, r)| r.stats.bytes_sent).sum();

        let ratio = base_bytes as f64 / soi_bytes as f64;
        // Expected ≈ 3/(1+β) = 2.4 (±off-diagonal and halo effects).
        assert!(
            (1.9..2.9).contains(&ratio),
            "byte ratio {ratio}: baseline {base_bytes}, SOI {soi_bytes}"
        );
    }

    #[test]
    #[should_panic(expected = "P | M")]
    fn rejects_unbalanced_shapes() {
        let _ = BaselineFft::new(64, 16, ExchangeVariant::Collective);
    }
}
