//! The transport seam: one trait, two fabrics.
//!
//! Every distributed algorithm in this crate ([`crate::soi::DistSoiFft`],
//! [`crate::baseline::BaselineFft`], [`crate::fft2d::Dist2dFft`], the
//! distributed transpose) is written against [`Communicator`] — the
//! abstract surface of a blocking-MPI-style rank endpoint. Two
//! implementations exist:
//!
//! * [`soi_simnet::RankComm`] — ranks as threads, channels as links, a
//!   virtual clock charging the paper's fabric model. Operations fail
//!   only when a rank declares itself dead ([`RankComm::fail_now`], the
//!   fault-injection seam) — survivors then see
//!   [`CommError::PeerLost`] instead of hanging.
//! * [`soi_wire::WireComm`] — ranks as processes, TCP as links, wall
//!   clocks. Operations fail for real ([`CommError::PeerLost`],
//!   [`CommError::Timeout`]) and the algorithms propagate that as
//!   [`SoiError::Comm`] instead of hanging.
//!
//! Element types are bounded by [`soi_wire::Pod`] — the little-endian
//! bit-exact codec — because anything the algorithms exchange must be
//! serializable on the real transport. `Pod: Copy + Send + 'static`
//! subsumes what the channel transport needs.
//!
//! Time is the one semantic difference the trait surfaces honestly:
//! [`Communicator::clock_now`] is `Some(virtual seconds)` on simnet and
//! `None` on the wire (real networks have no agreed clock), which is
//! exactly the `t_virt` convention of the trace schema;
//! [`Communicator::comm_seconds`] is virtual comm time on simnet and
//! accumulated wall time in comm calls on the wire, so `PhaseTimes`
//! breakdowns come out meaningful on both.

use soi_core::SoiError;
use soi_simnet::{RankComm, SimCommError};
use soi_trace::Trace;
use soi_wire::{Pod, WireComm, WireError};
use std::fmt;

/// A communication failure surfaced by a transport.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// A peer process died or its link was torn down.
    PeerLost(String),
    /// An operation missed its deadline while links stayed up.
    Timeout(String),
    /// Malformed traffic, ragged buffers, or misuse of the collective.
    Protocol(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerLost(m) => write!(f, "peer lost: {m}"),
            CommError::Timeout(m) => write!(f, "comm timeout: {m}"),
            CommError::Protocol(m) => write!(f, "comm protocol error: {m}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<WireError> for CommError {
    fn from(e: WireError) -> Self {
        match &e {
            WireError::PeerLost { .. } => CommError::PeerLost(e.to_string()),
            WireError::Timeout { .. } => CommError::Timeout(e.to_string()),
            _ => CommError::Protocol(e.to_string()),
        }
    }
}

impl From<SimCommError> for CommError {
    fn from(e: SimCommError) -> Self {
        match &e {
            SimCommError::PeerLost { .. } => CommError::PeerLost(e.to_string()),
            SimCommError::Timeout { .. } => CommError::Timeout(e.to_string()),
        }
    }
}

impl From<CommError> for SoiError {
    fn from(e: CommError) -> Self {
        SoiError::Comm(e.to_string())
    }
}

/// A rank's endpoint into some fabric — the surface the distributed
/// algorithms are generic over. Semantics mirror blocking MPI: every
/// rank calls each collective in the same order with compatible buffers.
pub trait Communicator {
    /// This rank's id in `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// A clone of this rank's trace handle (disabled handles are free).
    fn trace_handle(&self) -> Trace;

    /// The rank's clock, if the fabric has an agreed one: virtual seconds
    /// on simnet, `None` on a real network — feeds `t_virt` in traces.
    fn clock_now(&self) -> Option<f64>;

    /// Seconds attributed to communication so far (virtual on simnet,
    /// wall time inside comm calls on the wire). Differences of this
    /// around an exchange give the `PhaseTimes` comm entries.
    fn comm_seconds(&self) -> f64;

    /// Charge `dt` seconds of local computation to the rank's clock
    /// (no-op on fabrics without a virtual clock).
    fn charge_compute(&mut self, dt: f64);

    /// Simultaneous exchange: send `data` to `dst` while receiving from
    /// `src` (the halo pattern).
    fn sendrecv<T: Pod>(&mut self, dst: usize, data: &[T], src: usize)
        -> Result<Vec<T>, CommError>;

    /// Equal-block all-to-all: block `d` of `send` goes to rank `d`;
    /// `recv` block `s` arrives from rank `s`.
    fn all_to_all<T: Pod>(&mut self, send: &[T], recv: &mut [T]) -> Result<(), CommError>;

    /// Segment-granular all-to-all with a per-landed-segment callback —
    /// the seam the overlapped SOI exchange schedule runs on.
    ///
    /// `send` holds one block per destination rank, each `nseg`
    /// sub-blocks of `rows = len / (size·nseg)` elements (sub-block
    /// `(d, s)` at `send[(d·nseg + s)·rows..]`). Deliveries land
    /// *segment-major*: `recv[(s·size + src)·rows..]`, so each segment's
    /// `size·rows` region is contiguous. `on_seg(s, segment, clock)`
    /// fires once per segment in ascending order as soon as all of that
    /// segment's sub-blocks are in place (on the wire, while later
    /// segments are still in flight); `clock` is the fabric's agreed
    /// clock if it has one. Callback time is excluded from
    /// [`Communicator::comm_seconds`] on wall-clock fabrics. With
    /// `nseg = 1` the layouts coincide with [`Communicator::all_to_all`]
    /// and the callback fires once after the exchange.
    fn all_to_all_seg<T: Pod>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        nseg: usize,
        on_seg: &mut dyn FnMut(usize, &mut [T], Option<f64>),
    ) -> Result<(), CommError>;

    /// Variable-count all-to-all; returns received blocks concatenated
    /// in rank order.
    fn all_to_allv<T: Pod>(&mut self, send: &[T], counts: &[usize])
        -> Result<Vec<T>, CommError>;

    /// Synchronize all ranks.
    fn barrier(&mut self) -> Result<(), CommError>;

    /// Sum-allreduce of one f64, folded in rank order on every
    /// implementation so results are bitwise identical across fabrics.
    fn allreduce_sum(&mut self, v: f64) -> Result<f64, CommError>;

    /// Max-allreduce of one f64.
    fn allreduce_max(&mut self, v: f64) -> Result<f64, CommError>;

    /// Declare this rank dead, mid-run — the fault-injection seam.
    ///
    /// After this call every pending and future operation by *peers*
    /// involving this rank fails with [`CommError::PeerLost`] (promptly,
    /// not by deadline), and this rank's own operations fail too. On
    /// simnet this flips the shared death flag; on the wire it tears
    /// down every TCP link so peers see EOF. Used by `FaultPlan` to
    /// simulate a rank crash at an exact phase boundary.
    fn fail_now(&mut self);
}

impl Communicator for RankComm {
    fn rank(&self) -> usize {
        RankComm::rank(self)
    }

    fn size(&self) -> usize {
        RankComm::size(self)
    }

    fn trace_handle(&self) -> Trace {
        RankComm::trace(self).clone()
    }

    fn clock_now(&self) -> Option<f64> {
        Some(self.clock().now())
    }

    fn comm_seconds(&self) -> f64 {
        self.clock().comm_time()
    }

    fn charge_compute(&mut self, dt: f64) {
        RankComm::charge_compute(self, dt);
    }

    fn sendrecv<T: Pod>(
        &mut self,
        dst: usize,
        data: &[T],
        src: usize,
    ) -> Result<Vec<T>, CommError> {
        Ok(RankComm::try_sendrecv(self, dst, data, src)?)
    }

    fn all_to_all<T: Pod>(&mut self, send: &[T], recv: &mut [T]) -> Result<(), CommError> {
        Ok(RankComm::try_all_to_all(self, send, recv)?)
    }

    fn all_to_all_seg<T: Pod>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        nseg: usize,
        on_seg: &mut dyn FnMut(usize, &mut [T], Option<f64>),
    ) -> Result<(), CommError> {
        Ok(RankComm::try_all_to_all_seg(self, send, recv, nseg, on_seg)?)
    }

    fn all_to_allv<T: Pod>(&mut self, send: &[T], counts: &[usize]) -> Result<Vec<T>, CommError> {
        Ok(RankComm::try_all_to_allv(self, send, counts)?)
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        Ok(RankComm::try_barrier(self)?)
    }

    fn allreduce_sum(&mut self, v: f64) -> Result<f64, CommError> {
        Ok(RankComm::try_allreduce_sum(self, v)?)
    }

    fn allreduce_max(&mut self, v: f64) -> Result<f64, CommError> {
        Ok(RankComm::try_allreduce_max(self, v)?)
    }

    fn fail_now(&mut self) {
        RankComm::fail_now(self);
    }
}

impl Communicator for WireComm {
    fn rank(&self) -> usize {
        WireComm::rank(self)
    }

    fn size(&self) -> usize {
        WireComm::size(self)
    }

    fn trace_handle(&self) -> Trace {
        WireComm::trace(self).clone()
    }

    fn clock_now(&self) -> Option<f64> {
        None // no virtual clock on a real network
    }

    fn comm_seconds(&self) -> f64 {
        WireComm::comm_seconds(self)
    }

    fn charge_compute(&mut self, _dt: f64) {}

    fn sendrecv<T: Pod>(
        &mut self,
        dst: usize,
        data: &[T],
        src: usize,
    ) -> Result<Vec<T>, CommError> {
        Ok(WireComm::sendrecv(self, dst, data, src)?)
    }

    fn all_to_all<T: Pod>(&mut self, send: &[T], recv: &mut [T]) -> Result<(), CommError> {
        Ok(WireComm::all_to_all(self, send, recv)?)
    }

    fn all_to_all_seg<T: Pod>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        nseg: usize,
        on_seg: &mut dyn FnMut(usize, &mut [T], Option<f64>),
    ) -> Result<(), CommError> {
        Ok(WireComm::all_to_all_seg(self, send, recv, nseg, on_seg)?)
    }

    fn all_to_allv<T: Pod>(&mut self, send: &[T], counts: &[usize]) -> Result<Vec<T>, CommError> {
        Ok(WireComm::all_to_allv(self, send, counts)?)
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        Ok(WireComm::barrier(self)?)
    }

    fn allreduce_sum(&mut self, v: f64) -> Result<f64, CommError> {
        Ok(WireComm::allreduce_sum(self, v)?)
    }

    fn allreduce_max(&mut self, v: f64) -> Result<f64, CommError> {
        Ok(WireComm::allreduce_max(self, v)?)
    }

    fn fail_now(&mut self) {
        WireComm::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_simnet::Cluster;
    use soi_wire::{run_loopback, WireConfig};

    /// A tiny algorithm written once against the trait, run on both
    /// transports — the seam working end to end.
    fn ring_sum<C: Communicator>(comm: &mut C) -> Result<f64, CommError> {
        let me = comm.rank() as f64;
        let p = comm.size();
        let right = (comm.rank() + 1) % p;
        let left = (comm.rank() + p - 1) % p;
        let from_left = comm.sendrecv(right, &[me], left)?[0];
        comm.barrier()?;
        comm.allreduce_sum(from_left)
    }

    #[test]
    fn one_algorithm_runs_on_both_transports() {
        let p = 3;
        let want: f64 = (0..p).map(|r| r as f64).sum();
        let sim: Vec<f64> = Cluster::ideal(p).run_collect(|comm| ring_sum(comm).unwrap());
        let wire = run_loopback(p, WireConfig::default(), |comm| ring_sum(comm).unwrap()).unwrap();
        assert_eq!(sim, vec![want; p]);
        assert_eq!(wire, vec![want; p]);
        // Rank-order folds: bitwise identical, not just approximately.
        for (a, b) in sim.iter().zip(&wire) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn all_neg_inf_allreduce_max_stays_neg_inf_on_both_transports() {
        // A fold seeded with f64::MIN would silently answer f64::MIN
        // here; both transports must agree the max of {-inf} is -inf,
        // bitwise.
        let p = 3;
        let sim: Vec<f64> = Cluster::ideal(p)
            .run_collect(|comm| Communicator::allreduce_max(comm, f64::NEG_INFINITY).unwrap());
        let wire = run_loopback(p, WireConfig::default(), |comm| {
            Communicator::allreduce_max(comm, f64::NEG_INFINITY).unwrap()
        })
        .unwrap();
        for (a, b) in sim.iter().zip(&wire) {
            assert_eq!(a.to_bits(), f64::NEG_INFINITY.to_bits());
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Both one-sided self shapes, bootstrapped the only order that can
    /// work: a buffered self-`send` seeds rank 0's inbox so its
    /// `sendrecv(dst=1, src=0)` can pop it while writing to the peer,
    /// and rank 1's `sendrecv(dst=1, src=0)` queues to itself while
    /// reading that write, draining its own queue with a plain `recv`.
    /// One synchronized exchange per rank keeps simnet's clock sync in
    /// lockstep.
    #[test]
    fn one_sided_self_sendrecv_agrees_across_transports() {
        let p = 2;
        let sim: Vec<Vec<Vec<f64>>> = Cluster::ideal(p).run_collect(|c| {
            if c.rank() == 0 {
                c.send(0, vec![0.5, 0.25]);
                vec![c.sendrecv(1, &[7.0], 0)]
            } else {
                let from_peer = c.sendrecv(1, &[11.0, 12.0], 0);
                vec![from_peer, c.recv::<f64>(1)]
            }
        });
        let wire: Vec<Vec<Vec<f64>>> = run_loopback(p, WireConfig::default(), |c| {
            if c.rank() == 0 {
                c.send(0, &[0.5, 0.25]).unwrap();
                vec![c.sendrecv::<f64>(1, &[7.0], 0).unwrap()]
            } else {
                let from_peer = c.sendrecv::<f64>(1, &[11.0, 12.0], 0).unwrap();
                vec![from_peer, c.recv::<f64>(1).unwrap()]
            }
        })
        .unwrap();
        assert_eq!(sim, wire);
        // Rank 0's self-recv side popped its earlier self-send.
        assert_eq!(wire[0], vec![vec![0.5, 0.25]]);
        // Rank 1 received rank 0's one-sided wire write, then drained
        // the payload its own self-send side had queued.
        assert_eq!(wire[1], vec![vec![7.0], vec![11.0, 12.0]]);
    }

    /// Segment-granular exchange: values encode (source, destination,
    /// segment, row) so every landed sub-block is checkable, and the
    /// callback must see segments complete in ascending order.
    fn seg_exchange<C: Communicator>(comm: &mut C, nseg: usize, rows: usize) -> (Vec<f64>, Vec<usize>) {
        let p = comm.size();
        let me = comm.rank();
        let send: Vec<f64> = (0..p * nseg * rows)
            .map(|i| {
                let (d, s, j) = (i / (nseg * rows), (i / rows) % nseg, i % rows);
                (me * 1000 + d * 100 + s * 10 + j) as f64
            })
            .collect();
        let mut recv = vec![0.0f64; p * nseg * rows];
        let mut order = Vec::new();
        comm.all_to_all_seg(&send, &mut recv, nseg, &mut |si, seg, _clock| {
            assert_eq!(seg.len(), p * rows);
            order.push(si);
        })
        .unwrap();
        (recv, order)
    }

    #[test]
    fn segmented_exchange_delivers_segment_major_on_both_transports() {
        let (p, nseg, rows) = (3, 2, 4);
        let sim: Vec<_> = Cluster::ideal(p).run_collect(|c| seg_exchange(c, nseg, rows));
        let wire = run_loopback(p, WireConfig::default(), |c| seg_exchange(c, nseg, rows)).unwrap();
        assert_eq!(sim, wire);
        for (me, (recv, order)) in wire.iter().enumerate() {
            assert_eq!(*order, (0..nseg).collect::<Vec<_>>());
            for si in 0..nseg {
                for src in 0..p {
                    for j in 0..rows {
                        assert_eq!(
                            recv[(si * p + src) * rows + j],
                            (src * 1000 + me * 100 + si * 10 + j) as f64,
                            "rank {me} segment {si} from {src} row {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wire_errors_map_to_comm_errors() {
        let e: CommError = WireError::PeerLost { peer: Some(1), detail: "gone".into() }.into();
        assert!(matches!(e, CommError::PeerLost(_)));
        let e: CommError = WireError::Timeout {
            peer: None,
            op: "recv",
            after: std::time::Duration::from_secs(1),
        }
        .into();
        assert!(matches!(e, CommError::Timeout(_)));
        let e: CommError = WireError::Protocol("bad".into()).into();
        assert!(matches!(e, CommError::Protocol(_)));
        let s: SoiError = CommError::PeerLost("rank 3".into()).into();
        assert!(s.to_string().contains("rank 3"));
    }
}
