//! Distributed matrix transpose — the paper's Fig 3 pattern: a node-local
//! permutation that gathers same-destination data into contiguous memory,
//! followed by one all-to-all.
//!
//! The matrix is `rows × cols`, row-major, block-distributed by rows
//! (`rank s` owns rows `[s·rows/P, (s+1)·rows/P)`). The result is the
//! `cols × rows` transpose, block-distributed by its rows (the original
//! columns).

use crate::comm::{CommError, Communicator};
use soi_num::Complex64;

/// Transpose a block-row-distributed matrix across ranks.
///
/// `local` holds this rank's `rows/P` rows of length `cols`; returns this
/// rank's `cols/P` rows of length `rows` of the transpose.
///
/// Returns `(result, pack_bytes)` where `pack_bytes` is the local data
/// volume reshuffled (for time charging by the caller). Generic over the
/// transport ([`Communicator`]); fabric failures propagate as
/// [`CommError`].
pub fn distributed_transpose<C: Communicator>(
    comm: &mut C,
    local: &[Complex64],
    rows: usize,
    cols: usize,
) -> Result<(Vec<Complex64>, u64), CommError> {
    let p = comm.size();
    assert!(rows % p == 0, "rows {rows} must divide over {p} ranks");
    assert!(cols % p == 0, "cols {cols} must divide over {p} ranks");
    let rb = rows / p; // my row count
    let cb = cols / p; // my column count after transpose
    assert_eq!(local.len(), rb * cols, "local block shape mismatch");

    // Local pack (Fig 3 "local permutation"): destination-major blocks;
    // block for rank d is my rb×cb sub-panel, transposed to (c, r) order
    // so the receiver can use it contiguously.
    let mut send = vec![Complex64::ZERO; rb * cols];
    for d in 0..p {
        let base = d * (rb * cb);
        for c in 0..cb {
            for r in 0..rb {
                send[base + c * rb + r] = local[r * cols + d * cb + c];
            }
        }
    }
    let mut recv = vec![Complex64::ZERO; rb * cols];
    comm.all_to_all(&send, &mut recv)?;

    // Unpack: block from rank `src` holds A[r][c] for r in src's rows and
    // c in my columns, laid out (c, r); place into out[c][src·rb + r].
    let mut out = vec![Complex64::ZERO; cb * rows];
    for (src, block) in recv.chunks_exact(rb * cb).enumerate() {
        for c in 0..cb {
            for r in 0..rb {
                out[c * rows + src * rb + r] = block[c * rb + r];
            }
        }
    }
    let pack_bytes = 2 * (local.len() * std::mem::size_of::<Complex64>()) as u64;
    Ok((out, pack_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::c64;
    use soi_simnet::Cluster;

    /// Gather the distributed blocks into one full matrix for checking.
    fn run_transpose(p: usize, rows: usize, cols: usize) -> (Vec<Complex64>, Vec<Complex64>) {
        // Full matrix A[r][c] = r + i·c.
        let full: Vec<Complex64> = (0..rows * cols)
            .map(|i| c64((i / cols) as f64, (i % cols) as f64))
            .collect();
        let fullr = &full;
        let pieces = Cluster::ideal(p).run_collect(move |comm| {
            let rb = rows / p;
            let local = &fullr[comm.rank() * rb * cols..(comm.rank() + 1) * rb * cols];
            let (t, _) = distributed_transpose(comm, local, rows, cols).expect("transpose");
            t
        });
        let gathered: Vec<Complex64> = pieces.into_iter().flatten().collect();
        (full, gathered)
    }

    #[test]
    fn transpose_matches_serial() {
        for (p, rows, cols) in [(2usize, 4usize, 6usize), (3, 6, 9), (4, 8, 8), (4, 16, 4)] {
            let (full, got) = run_transpose(p, rows, cols);
            let mut want = vec![Complex64::ZERO; rows * cols];
            soi_fft::permute::transpose(&full, &mut want, rows, cols);
            assert_eq!(
                got.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>(),
                want.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>(),
                "p={p} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let (p, rows, cols) = (4usize, 8usize, 12usize);
        let full: Vec<Complex64> = (0..rows * cols).map(|i| c64(i as f64, -(i as f64))).collect();
        let fullr = &full;
        let pieces = Cluster::ideal(p).run_collect(move |comm| {
            let rb = rows / p;
            let local = &fullr[comm.rank() * rb * cols..(comm.rank() + 1) * rb * cols];
            let (t, _) = distributed_transpose(comm, local, rows, cols).expect("transpose");
            let (back, _) = distributed_transpose(comm, &t, cols, rows).expect("transpose");
            back
        });
        let gathered: Vec<Complex64> = pieces.into_iter().flatten().collect();
        assert_eq!(
            gathered.iter().map(|v| v.re as i64).collect::<Vec<_>>(),
            full.iter().map(|v| v.re as i64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_rank_degenerates_to_local_transpose() {
        let (full, got) = run_transpose(1, 6, 4);
        let mut want = vec![Complex64::ZERO; 24];
        soi_fft::permute::transpose(&full, &mut want, 6, 4);
        assert_eq!(
            got.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>(),
            want.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>()
        );
    }
}
