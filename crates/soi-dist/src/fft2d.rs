//! Distributed 2-D FFT over the simulated cluster.
//!
//! Context from the paper (§1): multidimensional FFTs admit
//! low/no-communication algorithms [18, 24] precisely because the
//! row–column decomposition already isolates whole 1-D transforms on
//! local data — the classical distributed 2-D FFT needs only **one**
//! transpose-style all-to-all (or two, if the caller wants the output
//! back in row-distributed layout). That is why the paper's contribution
//! targets the harder 1-D case, where the standard approach needs three.
//!
//! Layout: the `rows × cols` matrix is block-distributed by rows; rank
//! `r` owns rows `[r·rows/R, (r+1)·rows/R)`.

use crate::comm::Communicator;
use crate::dtranspose::distributed_transpose;
use crate::rates::{ChargePolicy, WorkKind};
use crate::times::PhaseTimes;
use soi_core::SoiError;
use soi_fft::batch::BatchFft;
use soi_fft::flops::fft_flops;
use soi_fft::plan::{Direction, Planner};
use soi_num::Complex64;
use std::time::Instant;

/// A prepared distributed 2-D transform (shared read-only across ranks).
#[derive(Debug)]
pub struct Dist2dFft {
    rows: usize,
    cols: usize,
    row_batch: BatchFft<f64>,
    col_batch: BatchFft<f64>,
    /// Transpose back after the column pass so the caller gets the
    /// spectrum in the original row-distributed layout (costs a second
    /// all-to-all); otherwise the result is left transposed.
    restore_layout: bool,
}

impl Dist2dFft {
    /// Plan a distributed `rows × cols` forward transform (row/column
    /// plans from the process-wide [`Planner::global`] cache — a square
    /// grid shares one plan between both passes).
    pub fn new(rows: usize, cols: usize, restore_layout: bool) -> Self {
        assert!(rows > 0 && cols > 0);
        let planner = Planner::global();
        Self {
            rows,
            cols,
            row_batch: BatchFft::with_plan(planner.plan(cols, Direction::Forward), 1),
            col_batch: BatchFft::with_plan(planner.plan(rows, Direction::Forward), 1),
            restore_layout,
        }
    }

    /// Matrix shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Execute on one rank. `local` holds this rank's `rows/R` rows.
    ///
    /// Returns the local block of the 2-D spectrum: row-distributed
    /// `rows × cols` if `restore_layout`, else column-distributed
    /// (`cols × rows` transposed layout — rank `r` owns spectrum columns
    /// `[r·cols/R, (r+1)·cols/R)` as rows), plus phase times.
    pub fn run<C: Communicator>(
        &self,
        comm: &mut C,
        local: &[Complex64],
        policy: ChargePolicy,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError> {
        let ranks = comm.size();
        assert!(self.rows % ranks == 0, "ranks must divide rows");
        assert!(self.cols % ranks == 0, "ranks must divide cols");
        let my_rows = self.rows / ranks;
        assert_eq!(local.len(), my_rows * self.cols, "local block shape");
        let mut times = PhaseTimes::default();

        // Row FFTs on local data.
        let t0 = Instant::now();
        let mut a = local.to_vec();
        self.row_batch.execute(&mut a);
        let dt = policy.charge(
            WorkKind::Fft,
            my_rows as f64 * fft_flops(self.cols),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_large += dt;

        // THE transpose (single all-to-all).
        let c0 = comm.comm_seconds();
        let t0 = Instant::now();
        let (mut b, pack_bytes) = distributed_transpose(comm, &a, self.rows, self.cols)?;
        let exch = comm.comm_seconds() - c0;
        times.exchange += exch;
        let dt = policy.charge(
            WorkKind::Mem,
            pack_bytes as f64,
            (t0.elapsed().as_secs_f64() - exch).max(0.0),
        );
        comm.charge_compute(dt);
        times.pack += dt;

        // Column FFTs (now local rows of length `rows`).
        let t0 = Instant::now();
        self.col_batch.execute(&mut b);
        let dt = policy.charge(
            WorkKind::Fft,
            (self.cols / ranks) as f64 * fft_flops(self.rows),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_small += dt;

        if !self.restore_layout {
            return Ok((b, times));
        }
        // Optional second transpose to restore row distribution.
        let c0 = comm.comm_seconds();
        let t0 = Instant::now();
        let (out, pack_bytes) = distributed_transpose(comm, &b, self.cols, self.rows)?;
        let exch = comm.comm_seconds() - c0;
        times.exchange += exch;
        let dt = policy.charge(
            WorkKind::Mem,
            pack_bytes as f64,
            (t0.elapsed().as_secs_f64() - exch).max(0.0),
        );
        comm.charge_compute(dt);
        times.pack += dt;
        Ok((out, times))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_fft::fft2d::fft2d_forward;
    use soi_num::complex::rel_l2_error;
    use soi_simnet::{Cluster, Fabric};

    fn signal(len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|i| Complex64::new((i as f64 * 0.19).sin(), (i as f64 * 0.41).cos()))
            .collect()
    }

    fn run_dist2d(rows: usize, cols: usize, ranks: usize, restore: bool) -> Vec<Complex64> {
        let plan = Dist2dFft::new(rows, cols, restore);
        let x = signal(rows * cols);
        let rb = rows / ranks;
        let (xr, pr) = (&x, &plan);
        Cluster::ideal(ranks)
            .run_collect(move |comm| {
                let local = &xr[comm.rank() * rb * cols..(comm.rank() + 1) * rb * cols];
                pr.run(comm, local, ChargePolicy::WallClock).expect("2d run").0
            })
            .into_iter()
            .flatten()
            .collect()
    }

    #[test]
    fn restored_layout_matches_serial_2d_fft() {
        for (rows, cols, ranks) in [(8usize, 8usize, 2usize), (16, 12, 4), (12, 20, 4)] {
            let got = run_dist2d(rows, cols, ranks, true);
            let x = signal(rows * cols);
            let want = fft2d_forward(&x, rows, cols);
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-12, "{rows}x{cols}/{ranks}: {err:e}");
        }
    }

    #[test]
    fn transposed_layout_matches_serial_transposed() {
        let (rows, cols, ranks) = (8usize, 16usize, 4usize);
        let got = run_dist2d(rows, cols, ranks, false);
        let x = signal(rows * cols);
        let spec = fft2d_forward(&x, rows, cols);
        let mut want = vec![Complex64::ZERO; rows * cols];
        soi_fft::permute::transpose(&spec, &mut want, rows, cols);
        assert!(rel_l2_error(&got, &want) < 1e-12);
    }

    #[test]
    fn exchange_counts_are_one_or_two() {
        let (rows, cols, ranks) = (8usize, 8usize, 4usize);
        for (restore, expect) in [(false, 1u64), (true, 2u64)] {
            let plan = Dist2dFft::new(rows, cols, restore);
            let x = signal(rows * cols);
            let rb = rows / ranks;
            let (xr, pr) = (&x, &plan);
            let reports = Cluster::new(ranks, Fabric::ethernet_10g()).run(move |comm| {
                let local = &xr[comm.rank() * rb * cols..(comm.rank() + 1) * rb * cols];
                pr.run(comm, local, ChargePolicy::WallClock).expect("2d run").0
            });
            for (_, rep) in &reports {
                assert_eq!(
                    rep.stats.all_to_alls, expect,
                    "restore={restore}: the 2-D FFT needs exactly {expect} exchange(s)"
                );
            }
        }
    }
}
