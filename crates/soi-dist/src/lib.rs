//! Distributed FFT algorithms over the simulated cluster.
//!
//! Two algorithms, both in-order and block-distributed (`rank s` owns
//! input `x[sM..(s+1)M)` and output `y[sM..(s+1)M)`):
//!
//! * [`soi`] — the paper's contribution: halo exchange → local convolution
//!   → batched `F_P` → pack → **one** all-to-all → local `F_{M'}` →
//!   project + demodulate (Fig 2).
//! * [`baseline`] — the industry-standard decomposition (the paper's
//!   overview diagram; what MKL/FFTW/FFTE implement): transpose → local
//!   length-`M` FFTs + twiddle → transpose → local length-`P` FFTs →
//!   transpose, i.e. **three** all-to-alls.
//!
//! Both are instrumented with a per-phase time breakdown and support two
//! charging policies ([`rates::ChargePolicy`]): wall-clock measurement
//! (honest on an unloaded machine) or calibrated per-flop rates modeled on
//! the paper's node (Table 1 + §7.4's measured efficiencies) — the mode
//! the figure harnesses use, since this reproduction runs many simulated
//! ranks on few physical cores (see DESIGN.md §2).

pub mod baseline;
pub mod comm;
pub mod dtranspose;
pub mod fft2d;
pub mod rates;
pub mod recover;
pub mod soi;
pub mod times;

pub use baseline::{BaselineFft, ExchangeVariant};
pub use comm::{CommError, Communicator};
pub use rates::{ChargePolicy, ComputeRates};
pub use recover::{
    run_checkpointed, run_wire_recoverable, Checkpoint, CheckpointStore, DirStore, FaultAction,
    FaultPlan, MemStore, Recovery, LAST_BOUNDARY,
};
pub use soi::{DistSoiFft, ExchangeSchedule};
pub use times::PhaseTimes;
