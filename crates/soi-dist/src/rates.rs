//! Compute-time charging policies.
//!
//! The simulated cluster oversubscribes physical cores (up to 64 rank
//! threads on this machine), so wall-clock timing of concurrent compute
//! phases is distorted by scheduling. The figure harnesses therefore
//! charge compute from calibrated per-flop rates modeled on the paper's
//! node, while the real computation still runs for correctness:
//!
//! * Table 1: 330 DP GFLOPS peak per node;
//! * §7.4: FFT "often hovering around 10% of a machine's peak" →
//!   33 Gflop/s of *nominal* (5N·log₂N) FFT flops;
//! * §7.4: "convolution computation reaches about 40% of the processor's
//!   peak" → 132 Gflop/s of convolution flops;
//! * pack/permute phases are memory-bound; a Sandy Bridge node streams
//!   roughly 50 GB/s, ~25 GB/s effective for a read+write reshuffle.
//!
//! With these rates `T_conv ≈ T_fft` inside SOI at B = 72 — exactly the
//! paper's own §7.4 observation — so the model is self-consistent with
//! the text.

/// Throughput description of one simulated node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRates {
    /// Nominal FFT flops (5·N·log₂N) per second.
    pub fft_flops_per_sec: f64,
    /// Convolution real flops per second.
    pub conv_flops_per_sec: f64,
    /// Pack/unpack/transpose bytes per second.
    pub mem_bytes_per_sec: f64,
}

impl ComputeRates {
    /// The paper's node (Table 1 + §7.4 efficiencies), as derived above.
    pub fn paper_node() -> Self {
        Self {
            fft_flops_per_sec: 33e9,
            conv_flops_per_sec: 132e9,
            mem_bytes_per_sec: 25e9,
        }
    }

    /// A variant with the convolution efficiency scaled by `c` — the §7.4
    /// model's `c ∈ [0.75, 1.25]` sensitivity band (Fig 9).
    pub fn with_conv_factor(self, c: f64) -> Self {
        assert!(c > 0.0);
        Self {
            // Fig 9's c multiplies T_conv, i.e. divides the rate.
            conv_flops_per_sec: self.conv_flops_per_sec / c,
            ..self
        }
    }
}

/// What a distributed algorithm charges its virtual clock for compute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChargePolicy {
    /// Charge measured wall time of each phase (real-machine timing).
    WallClock,
    /// Charge `work / rate` from a calibrated node model.
    Rates(ComputeRates),
}

/// Work classes a phase can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Nominal FFT flops.
    Fft,
    /// Convolution real flops.
    Conv,
    /// Bytes moved by packing/unpacking/transposes/twiddles.
    Mem,
}

impl ChargePolicy {
    /// Seconds to charge for a phase that did `work` units of `kind` and
    /// measured `wall` seconds of wall time.
    pub fn charge(&self, kind: WorkKind, work: f64, wall: f64) -> f64 {
        match self {
            ChargePolicy::WallClock => wall,
            ChargePolicy::Rates(r) => {
                let rate = match kind {
                    WorkKind::Fft => r.fft_flops_per_sec,
                    WorkKind::Conv => r.conv_flops_per_sec,
                    WorkKind::Mem => r.mem_bytes_per_sec,
                };
                work / rate
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_keeps_conv_and_fft_balanced() {
        // At B = 72, β = 1/4: conv flops ≈ 4.3× a standard FFT's nominal
        // flops, conv rate = 4× fft rate → T_conv/T_fft(standard) ≈ 1.
        let r = ComputeRates::paper_node();
        let n: f64 = (1u64 << 28) as f64;
        let fft_nominal = 5.0 * n * 28.0;
        let conv = 8.0 * n * 1.25 * 72.0;
        let t_fft = fft_nominal / r.fft_flops_per_sec;
        let t_conv = conv / r.conv_flops_per_sec;
        let ratio = t_conv / t_fft;
        assert!(
            (0.8..1.8).contains(&ratio),
            "T_conv/T_fft = {ratio}, §7.4 says ≈ 1–2 (conv ≈ FFT time, SOI ≈ 2× regular FFT compute)"
        );
    }

    #[test]
    fn wall_clock_policy_passes_through() {
        let p = ChargePolicy::WallClock;
        assert_eq!(p.charge(WorkKind::Fft, 1e12, 0.123), 0.123);
    }

    #[test]
    fn rates_policy_divides_by_rate() {
        let p = ChargePolicy::Rates(ComputeRates::paper_node());
        let t = p.charge(WorkKind::Conv, 132e9, 99.0);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conv_factor_scales_time_not_rate_direction() {
        let base = ComputeRates::paper_node();
        let slow = base.with_conv_factor(1.25);
        let fast = base.with_conv_factor(0.75);
        // c = 1.25 → 25% more conv time → lower rate.
        assert!(slow.conv_flops_per_sec < base.conv_flops_per_sec);
        assert!(fast.conv_flops_per_sec > base.conv_flops_per_sec);
    }
}
