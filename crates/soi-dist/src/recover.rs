//! Surviving rank death: checkpoints, fault injection, and replay.
//!
//! The SOI FFT's fault story is cheap because the algorithm's state is
//! cheap: until the all-to-all completes, everything a rank holds is
//! derived from its owned input block, and after it the run is within
//! two local phases of finishing. So a [`Checkpoint`] is just the input
//! block plus a phase tag — no intermediate vectors — and recovery is
//! *replay*: roll every rank back to its input and run again. Replay is
//! bitwise safe because the pipeline is deterministic for a fixed
//! geometry (the property the cross-transport equivalence tests pin).
//!
//! Three pieces live here:
//!
//! * [`FaultPlan`] — the deterministic injection seam: kill rank `v` at
//!   phase boundary `k`, either by declaring the communicator dead
//!   ([`FaultAction::FailComm`], works on both transports in-process) or
//!   by aborting the worker process ([`FaultAction::AbortProcess`], the
//!   `soi launch` path — on the wire an abort is indistinguishable from
//!   SIGKILL: peers see EOF).
//! * [`Checkpoint`] + [`CheckpointStore`] — the `"SOIC"`-tagged frame a
//!   rank persists at every boundary of
//!   [`DistSoiFft::run_with_hooks`], to a shared [`MemStore`] (simnet,
//!   loopback tests) or a [`DirStore`] directory (`soi launch` workers).
//! * [`run_checkpointed`] / [`run_wire_recoverable`] — the drivers. The
//!   first wires checkpointing and fault injection into one attempt; the
//!   second loops attempts on a [`WireComm`]: on a comm failure it
//!   re-rendezvouses into the next epoch ([`WireComm::reconnect`]),
//!   discards the aborted attempt's trace events, records a
//!   [`rejoin`](soi_trace::Trace::rejoin) marker, reloads its
//!   checkpoint, and replays.
//!
//! What is **not** survived (DESIGN.md §12): death of the rendezvous
//! process, a second failure during recovery, and loss of a rank's
//! checkpoint storage. Those need either replicated rendezvous state or
//! peer-replicated checkpoints — out of scope while the checkpoint is
//! an input block.

use crate::comm::Communicator;
use crate::rates::ChargePolicy;
use crate::soi::DistSoiFft;
use crate::times::PhaseTimes;
use soi_core::SoiError;
use soi_num::Complex64;
use soi_pool::ThreadPool;
use soi_wire::pod::{PayloadReader, PayloadWriter};
use soi_wire::{decode_slice, encode_slice, WireComm, WireError};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;

/// Number of phase boundaries a run passes through: `0` (before the
/// halo) through [`LAST_BOUNDARY`] (run complete). Fault sweeps iterate
/// `0..=LAST_BOUNDARY`.
pub const LAST_BOUNDARY: usize = 7;

/// How an injected fault kills the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Declare the victim's communicator dead ([`Communicator::fail_now`])
    /// and fail its run with [`SoiError::Comm`]. In-process: the victim
    /// thread survives to observe its own "death". Works on both
    /// transports.
    FailComm,
    /// `std::process::abort()` — the victim process dies for real, no
    /// destructors, no FIN-with-grace beyond what the kernel sends on
    /// process exit. Only meaningful for `soi launch` workers; peers see
    /// exactly what SIGKILL would produce on the wire.
    AbortProcess,
}

/// A deterministic fault: kill `victim` when it reaches phase boundary
/// `boundary` (see [`DistSoiFft::run_with_hooks`] for the numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Rank to kill.
    pub victim: usize,
    /// Phase boundary (`0..=LAST_BOUNDARY`) at which the victim dies.
    pub boundary: usize,
    /// How the victim dies.
    pub action: FaultAction,
}

impl FaultPlan {
    /// Kill `victim` at `boundary` by declaring its communicator dead.
    pub fn fail_comm(victim: usize, boundary: usize) -> Self {
        Self { victim, boundary, action: FaultAction::FailComm }
    }

    /// Kill `victim` at `boundary` by aborting the process.
    pub fn abort_process(victim: usize, boundary: usize) -> Self {
        Self { victim, boundary, action: FaultAction::AbortProcess }
    }
}

const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"SOIC");
const CKPT_VERSION: u32 = 1;

/// Per-rank recovery state, written at every phase boundary.
///
/// Deliberately cheap: the owned input block plus the geometry needed to
/// refuse a mismatched restore. Recovery replays the whole transform
/// from the input (see the module docs for why that is both correct and
/// bitwise-faithful), so no intermediate vectors are stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Job epoch the checkpoint was taken in (0 = initial launch).
    pub epoch: u32,
    /// Owning rank.
    pub rank: u32,
    /// Highest phase boundary this rank had completed when it saved.
    pub boundary: u32,
    /// Global problem size `N`.
    pub n: u64,
    /// Segment count `P`.
    pub p: u64,
    /// Cluster size the job was launched with.
    pub ranks: u32,
    /// The rank's owned input block (`c·M` points).
    pub x_local: Vec<Complex64>,
}

impl Checkpoint {
    /// Serialize to the `"SOIC"` frame (little-endian, bit-exact f64s).
    pub fn encode(&self) -> Vec<u8> {
        PayloadWriter::new()
            .u32(CKPT_MAGIC)
            .u32(CKPT_VERSION)
            .u32(self.epoch)
            .u32(self.rank)
            .u32(self.boundary)
            .u64(self.n)
            .u64(self.p)
            .u32(self.ranks)
            .bytes(&encode_slice(&self.x_local))
            .finish()
    }

    /// Parse a `"SOIC"` frame; truncated, trailing, or mistagged bytes
    /// are [`WireError::Protocol`].
    pub fn decode(b: &[u8]) -> Result<Self, WireError> {
        let mut r = PayloadReader::new(b);
        let magic = r.u32()?;
        if magic != CKPT_MAGIC {
            return Err(WireError::Protocol(format!(
                "checkpoint magic {magic:#010x} != \"SOIC\""
            )));
        }
        let version = r.u32()?;
        if version != CKPT_VERSION {
            return Err(WireError::Protocol(format!(
                "checkpoint version {version} unsupported (want {CKPT_VERSION})"
            )));
        }
        let ckpt = Self {
            epoch: r.u32()?,
            rank: r.u32()?,
            boundary: r.u32()?,
            n: r.u64()?,
            p: r.u64()?,
            ranks: r.u32()?,
            x_local: decode_slice(&r.bytes()?)?,
        };
        if r.remaining() != 0 {
            return Err(WireError::Protocol(format!(
                "{} trailing bytes after checkpoint",
                r.remaining()
            )));
        }
        Ok(ckpt)
    }
}

/// Where checkpoints live. Shared across ranks (`Sync`): simnet ranks
/// are threads over one [`MemStore`]; `soi launch` workers share a
/// [`DirStore`] directory.
pub trait CheckpointStore: Sync {
    /// Persist `ckpt` under its rank, replacing any previous one.
    fn save(&self, ckpt: &Checkpoint) -> Result<(), WireError>;

    /// The most recent checkpoint for `rank`, if any.
    fn load(&self, rank: usize) -> Result<Option<Checkpoint>, WireError>;
}

/// In-memory store for single-process harnesses (simnet, loopback).
#[derive(Debug)]
pub struct MemStore {
    slots: Mutex<Vec<Option<Checkpoint>>>,
}

impl MemStore {
    /// An empty store with one slot per rank.
    pub fn new(ranks: usize) -> Self {
        Self { slots: Mutex::new(vec![None; ranks]) }
    }
}

impl CheckpointStore for MemStore {
    fn save(&self, ckpt: &Checkpoint) -> Result<(), WireError> {
        let mut slots = self.slots.lock().expect("ckpt store poisoned");
        let r = ckpt.rank as usize;
        if r >= slots.len() {
            return Err(WireError::Protocol(format!(
                "checkpoint rank {r} out of range (store holds {})",
                slots.len()
            )));
        }
        slots[r] = Some(ckpt.clone());
        Ok(())
    }

    fn load(&self, rank: usize) -> Result<Option<Checkpoint>, WireError> {
        let slots = self.slots.lock().expect("ckpt store poisoned");
        Ok(slots.get(rank).cloned().flatten())
    }
}

/// Directory-backed store for `soi launch` workers: one
/// `ckpt-rank-<r>.bin` per rank, written via temp-file + rename so a
/// crash mid-save never leaves a torn frame (decode would reject one
/// anyway, but the previous checkpoint survives).
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Store under `dir` (created on first save if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    fn path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("ckpt-rank-{rank}.bin"))
    }
}

impl CheckpointStore for DirStore {
    fn save(&self, ckpt: &Checkpoint) -> Result<(), WireError> {
        let io = |e: std::io::Error| WireError::Io(format!("checkpoint save: {e}"));
        std::fs::create_dir_all(&self.dir).map_err(io)?;
        let rank = ckpt.rank as usize;
        let tmp = self.dir.join(format!("ckpt-rank-{rank}.tmp"));
        std::fs::write(&tmp, ckpt.encode()).map_err(io)?;
        std::fs::rename(&tmp, self.path(rank)).map_err(io)?;
        Ok(())
    }

    fn load(&self, rank: usize) -> Result<Option<Checkpoint>, WireError> {
        match std::fs::read(self.path(rank)) {
            Ok(bytes) => Checkpoint::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(WireError::Io(format!("checkpoint load: {e}"))),
        }
    }
}

/// One attempt of the distributed SOI FFT with checkpointing and
/// (optionally) a fault wired into the phase-boundary hook.
///
/// At every boundary the rank saves its [`Checkpoint`] (tagged `epoch`),
/// *then* dies if `fault` names this rank and boundary — so the victim's
/// store always holds the state needed to respawn it. Checkpoint store
/// failures surface as [`SoiError::Comm`].
pub fn run_checkpointed<C, S>(
    dist: &DistSoiFft,
    comm: &mut C,
    x_local: &[Complex64],
    policy: ChargePolicy,
    pool: &ThreadPool,
    store: &S,
    epoch: u32,
    fault: Option<FaultPlan>,
) -> Result<(Vec<Complex64>, PhaseTimes), SoiError>
where
    C: Communicator,
    S: CheckpointStore + ?Sized,
{
    let cfg = *dist.config();
    let rank = comm.rank();
    let ranks = comm.size();
    dist.run_with_hooks(comm, x_local, policy, pool, |comm, k| {
        let ckpt = Checkpoint {
            epoch,
            rank: rank as u32,
            boundary: k as u32,
            n: cfg.n as u64,
            p: cfg.p as u64,
            ranks: ranks as u32,
            x_local: x_local.to_vec(),
        };
        store
            .save(&ckpt)
            .map_err(|e| SoiError::Comm(format!("checkpoint save failed: {e}")))?;
        if let Some(f) = fault {
            if f.victim == rank && f.boundary == k {
                match f.action {
                    FaultAction::FailComm => {
                        comm.fail_now();
                        return Err(SoiError::Comm(format!(
                            "injected fault: rank {rank} died at boundary {k}"
                        )));
                    }
                    FaultAction::AbortProcess => std::process::abort(),
                }
            }
        }
        Ok(())
    })
}

/// What [`run_wire_recoverable`] hands back on success.
#[derive(Debug)]
pub struct Recovery {
    /// This rank's output block.
    pub y: Vec<Complex64>,
    /// Phase breakdown of the *successful* attempt.
    pub times: PhaseTimes,
    /// Attempts taken (1 = undisturbed).
    pub attempts: u32,
    /// The fresh control stream from the recovery rendezvous, when a
    /// reconnect happened — `soi launch` workers must send their RESULT
    /// on this, not the original (dead) control socket.
    pub control: Option<TcpStream>,
}

/// Ceiling on attempts: the initial run plus one recovery. A second
/// failure (double fault) is reported, not survived — see module docs.
const MAX_ATTEMPTS: u32 = 2;

/// Run to completion on a [`WireComm`], surviving one peer death.
///
/// Drives [`run_checkpointed`] in a loop, closing each attempt with a
/// *completion barrier*: the pipeline's last communication is the
/// all-to-all (boundary 5), so a rank dying at boundaries 5–7 is
/// invisible to survivors' data path — they would deliver and exit,
/// leaving the dead rank's output unrecoverable. The barrier makes
/// every death, at any boundary, surface to every survivor before any
/// result is considered final.
///
/// On [`SoiError::Comm`] from a *peer* failure, every survivor: tears
/// down and re-rendezvouses into epoch `+1` ([`WireComm::reconnect`] —
/// the launcher must be running
/// [`Rendezvous::reserve`](soi_wire::Rendezvous::reserve) and respawning
/// the dead rank), discards the aborted attempt's trace events, records
/// a [`rejoin`](soi_trace::Trace::rejoin) marker, reloads its
/// checkpoint, and replays. The merged trace of the recovered job is a
/// clean replay plus rejoin markers, so `TraceSet::validate`'s
/// conservation checks pass unchanged.
///
/// The fault's *victim* never retries: its injected death propagates as
/// the error it is (the respawned process takes over the rank).
pub fn run_wire_recoverable<S>(
    dist: &DistSoiFft,
    comm: &mut WireComm,
    x_local: &[Complex64],
    policy: ChargePolicy,
    pool: &ThreadPool,
    store: &S,
    fault: Option<FaultPlan>,
) -> Result<Recovery, SoiError>
where
    S: CheckpointStore + ?Sized,
{
    let rank = WireComm::rank(comm);
    let mut input = x_local.to_vec();
    let mut control = None;
    let mut fault_pending = fault;
    for attempt in 1..=MAX_ATTEMPTS {
        let epoch = comm.epoch();
        let outcome = run_checkpointed(dist, comm, &input, policy, pool, store, epoch, fault_pending)
            .and_then(|ok| {
                WireComm::barrier(comm)
                    .map_err(|e| SoiError::Comm(format!("completion barrier: {e}")))?;
                Ok(ok)
            });
        match outcome {
            Ok((y, times)) => return Ok(Recovery { y, times, attempts: attempt, control }),
            Err(SoiError::Comm(msg)) => {
                let i_am_victim = fault.is_some_and(|f| f.victim == rank);
                if i_am_victim || attempt == MAX_ATTEMPTS {
                    return Err(SoiError::Comm(msg));
                }
                fault_pending = None; // the fault fired; replay runs clean
                let stream = comm.reconnect().map_err(|e| {
                    SoiError::Comm(format!("recovery rendezvous failed after '{msg}': {e}"))
                })?;
                control = Some(stream);
                // The aborted attempt's events would double-count sends
                // whose receives never happened; drop them and mark the
                // epoch seam instead.
                let trace = comm.trace().clone();
                let _ = trace.drain();
                trace.rejoin(comm.epoch() as u64, None);
                if let Some(ckpt) = store
                    .load(rank)
                    .map_err(|e| SoiError::Comm(format!("checkpoint load failed: {e}")))?
                {
                    input = ckpt.x_local;
                }
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on success, exhaustion, or non-comm error");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ckpt() -> Checkpoint {
        Checkpoint {
            epoch: 1,
            rank: 2,
            boundary: 5,
            n: 1 << 14,
            p: 8,
            ranks: 4,
            x_local: (0..16)
                .map(|i| Complex64::new(i as f64 * 0.25, -(i as f64)))
                .collect(),
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let c = sample_ckpt();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn checkpoint_rejects_bad_magic_and_truncation() {
        let mut b = sample_ckpt().encode();
        b[0] ^= 0xff;
        assert!(matches!(Checkpoint::decode(&b), Err(WireError::Protocol(_))));
        let b = sample_ckpt().encode();
        assert!(matches!(
            Checkpoint::decode(&b[..b.len() - 3]),
            Err(WireError::Protocol(_))
        ));
        let mut b = sample_ckpt().encode();
        b.push(0);
        assert!(matches!(Checkpoint::decode(&b), Err(WireError::Protocol(_))));
    }

    #[test]
    fn mem_store_saves_and_loads_per_rank() {
        let store = MemStore::new(4);
        assert_eq!(store.load(2).unwrap(), None);
        let c = sample_ckpt();
        store.save(&c).unwrap();
        assert_eq!(store.load(2).unwrap(), Some(c.clone()));
        let mut newer = c.clone();
        newer.epoch = 2;
        store.save(&newer).unwrap();
        assert_eq!(store.load(2).unwrap(), Some(newer));
        assert!(store.save(&Checkpoint { rank: 9, ..c }).is_err());
    }

    #[test]
    fn dir_store_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("soi-ckpt-test-{}", std::process::id()));
        let store = DirStore::new(&dir);
        let c = sample_ckpt();
        store.save(&c).unwrap();
        assert_eq!(store.load(2).unwrap(), Some(c.clone()));
        assert_eq!(store.load(0).unwrap(), None);
        // A torn frame on disk is rejected, not silently accepted.
        std::fs::write(dir.join("ckpt-rank-3.bin"), &c.encode()[..10]).unwrap();
        assert!(store.load(3).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
