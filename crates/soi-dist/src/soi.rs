//! The distributed SOI FFT — Fig 2 of the paper, one phase at a time:
//!
//! 1. **halo** — fetch `B·P` points from the right neighbor (the only
//!    point-to-point traffic; "negligible" per §2);
//! 2. **convolution** — the local slice of `W·x` (`M'/R` groups of `P`);
//! 3. **F_P batch** — `I ⊗ F_P` on the local groups;
//! 4. **pack** — node-local permutation gathering same-destination data
//!    (Fig 3);
//! 5. **all-to-all** — the single global exchange (`P_perm^{P,N'}`);
//! 6. **F_{M'}** — one oversampled FFT per owned segment;
//! 7. **demodulate** — project to `M` bins and divide by `ŵ(k)`.
//!
//! Phases 5–7 run on one of two [`ExchangeSchedule`]s. The default
//! `Overlapped` schedule streams the exchange at segment granularity and
//! starts each owned segment's F_{M'} + demodulation the moment its rows
//! land, hiding compute under the remaining traffic; `Barriered`
//! (`SOI_NO_OVERLAP=1`) keeps the classic exchange → unpack → FFT →
//! demodulate sequence. Both produce bitwise-identical output.
//!
//! The segment count `P` may be a multiple of the rank count `R` (§6a:
//! "In general, P can be a multiple of number of processor nodes,
//! increasing the granularity of parallelism" — the paper's own runs used
//! 8 segments per process, Table 1). Each rank owns `c = P/R` consecutive
//! segments; output stays in natural order: rank `r` ends with
//! `y[r·cM..(r+1)·cM)`.

use crate::comm::Communicator;
use crate::rates::{ChargePolicy, WorkKind};
use crate::times::PhaseTimes;
use soi_core::{SoiError, SoiFft, SoiParams};
use soi_fft::flops::{conv_flops, fft_flops};
use soi_num::Complex64;
use soi_pool::{part_range, SlicePtr, ThreadPool};
use std::sync::OnceLock;
use std::time::Instant;

/// How the global exchange interleaves with the compute that consumes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeSchedule {
    /// Stream the all-to-all at segment granularity and run each owned
    /// segment's F_{M'} + demodulation the moment its rows land, hiding
    /// per-segment compute under the remaining segments' traffic. The
    /// segment-major delivery layout doubles as the x̃ layout, so the
    /// post-exchange unpack pass disappears entirely.
    Overlapped,
    /// The pre-pipelined schedule: one barriered all-to-all, an unpack
    /// pass, then every F_{M'}, then demodulation. Kept as the ablation
    /// baseline and the bitwise reference the overlapped path must match.
    Barriered,
}

impl ExchangeSchedule {
    /// Process-wide default: `Overlapped`, unless `SOI_NO_OVERLAP` is set
    /// (mirroring `SOI_NO_SIMD` for the kernel ablation — read once, so a
    /// process never mixes schedules mid-run by accident).
    pub fn from_env() -> Self {
        if no_overlap_env() {
            ExchangeSchedule::Barriered
        } else {
            ExchangeSchedule::Overlapped
        }
    }
}

/// `SOI_NO_OVERLAP` set to anything but `""`/`"0"` forces the barriered
/// schedule (same contract as `SOI_NO_SIMD`).
fn no_overlap_env() -> bool {
    static V: OnceLock<bool> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("SOI_NO_OVERLAP")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// A prepared distributed SOI transform (shared read-only across ranks).
#[derive(Debug)]
pub struct DistSoiFft {
    soi: SoiFft,
}

impl DistSoiFft {
    /// Build from parameters (`P` must equal the cluster size at run time).
    pub fn new(params: &SoiParams) -> Result<Self, SoiError> {
        Ok(Self {
            soi: SoiFft::new(params)?,
        })
    }

    /// The resolved configuration.
    pub fn config(&self) -> &soi_core::SoiConfig {
        self.soi.config()
    }

    /// The underlying single-node object (plans + coefficient tables).
    pub fn local(&self) -> &SoiFft {
        &self.soi
    }

    /// Segments each rank of an `r`-rank cluster would own (`P/R`).
    ///
    /// # Errors
    /// [`SoiError::BadRankCount`] if `r` does not divide the configured
    /// segment count; [`SoiError::BadAlignment`] if the per-rank row count
    /// would not align with the μ-row coefficient chunks. Call sites that
    /// want the old abort-on-misconfiguration behaviour use `.expect()`.
    pub fn segments_per_rank(&self, ranks: usize) -> Result<usize, SoiError> {
        let cfg = self.soi.config();
        if ranks < 1 || cfg.p % ranks != 0 {
            return Err(SoiError::BadRankCount(format!(
                "rank count {ranks} must divide segment count P = {}",
                cfg.p
            )));
        }
        let rows = cfg.m_prime / ranks;
        if rows % cfg.mu != 0 {
            return Err(SoiError::BadAlignment(format!(
                "rows per rank {rows} must align with mu = {} chunks",
                cfg.mu
            )));
        }
        Ok(cfg.p / ranks)
    }

    /// Execute on one rank of an `R`-rank cluster, `R` dividing `P`.
    ///
    /// `x_local` is this rank's `c·M` input points (`c = P/R` segments);
    /// returns this rank's `c·M` output points plus the phase breakdown.
    /// Serial per-rank compute; see [`Self::run_with`] for the threaded
    /// (MPI+OpenMP-style) hybrid. Generic over the transport: the same
    /// code runs on the simulated cluster and over real sockets.
    pub fn run<C: Communicator>(
        &self,
        comm: &mut C,
        x_local: &[Complex64],
        policy: ChargePolicy,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError> {
        self.run_with(comm, x_local, policy, &ThreadPool::serial())
    }

    /// [`Self::run`] with per-rank compute fanned across `pool` — the
    /// paper's hybrid model (ranks for the all-to-all, threads for the
    /// node-local convolution, batch F_P, pack, and F_{M'}). Chunk
    /// boundaries are deterministic, so the output is bitwise identical
    /// to the serial `run` for any worker count.
    pub fn run_with<C: Communicator>(
        &self,
        comm: &mut C,
        x_local: &[Complex64],
        policy: ChargePolicy,
        pool: &ThreadPool,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError> {
        self.run_with_hooks(comm, x_local, policy, pool, |_, _| Ok(()))
    }

    /// [`Self::run_with`] with a callback at every phase boundary — the
    /// seam the checkpoint/recovery layer ([`crate::recover`]) hangs off.
    ///
    /// `hook(comm, k)` fires at boundary `k ∈ 0..=7`: `0` before the halo
    /// exchange, then after each phase in pipeline order — `1` halo,
    /// `2` convolution, `3` F_P batch, `4` pack, `5` all-to-all (+unpack),
    /// `6` F_{M'}, `7` demodulation (i.e. run complete). An `Err` from the
    /// hook aborts the run at that boundary and propagates; a fault
    /// injector uses this to crash a rank at an exact point, a checkpoint
    /// writer to persist progress. The hook runs *outside* phase trace
    /// spans and is not charged to any phase, so a no-op hook leaves the
    /// run observationally identical to [`Self::run_with`].
    ///
    /// Under the default [`ExchangeSchedule::Overlapped`] schedule the
    /// exchange, F_{M'}, and demodulation fuse into one streamed region;
    /// boundaries `5` and `6` then fire back-to-back after it. Both
    /// checkpoint consumers store phase *inputs*, so replay from either
    /// boundary is schedule-independent.
    pub fn run_with_hooks<C, F>(
        &self,
        comm: &mut C,
        x_local: &[Complex64],
        policy: ChargePolicy,
        pool: &ThreadPool,
        hook: F,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError>
    where
        C: Communicator,
        F: FnMut(&mut C, usize) -> Result<(), SoiError>,
    {
        self.run_with_hooks_scheduled(comm, x_local, policy, pool, ExchangeSchedule::from_env(), hook)
    }

    /// [`Self::run_with_hooks`] with the exchange schedule pinned
    /// explicitly instead of read from `SOI_NO_OVERLAP` — the seam the
    /// equivalence tests use to compare both schedules inside one
    /// process. The two schedules produce bitwise-identical output.
    pub fn run_with_hooks_scheduled<C, F>(
        &self,
        comm: &mut C,
        x_local: &[Complex64],
        policy: ChargePolicy,
        pool: &ThreadPool,
        schedule: ExchangeSchedule,
        mut hook: F,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError>
    where
        C: Communicator,
        F: FnMut(&mut C, usize) -> Result<(), SoiError>,
    {
        let cfg = *self.soi.config();
        let ranks = comm.size();
        let c = self.segments_per_rank(ranks)?;
        let local_pts = c * cfg.m;
        if x_local.len() != local_pts {
            return Err(SoiError::BadInput {
                expected: local_pts,
                got: x_local.len(),
            });
        }
        let rank = comm.rank();
        let p = cfg.p;
        let rows = cfg.m_prime / ranks; // P-groups computed on this rank
        let mut times = PhaseTimes::default();
        // Cloned handle so phase spans interleave with `&mut comm` calls;
        // clones share one buffer (disabled outside traced runs).
        let trace = comm.trace_handle();

        hook(comm, 0)?;

        // 1. Halo exchange: my first halo_len points go to the LEFT
        // neighbor (whose window overruns into my block); I receive the
        // prefix of my RIGHT neighbor.
        trace.span_begin("halo", comm.clock_now());
        let c0 = comm.comm_seconds();
        let left = (rank + ranks - 1) % ranks;
        let right = (rank + 1) % ranks;
        let halo = comm.sendrecv(left, &x_local[..cfg.halo_len()], right)?;
        times.halo = comm.comm_seconds() - c0;
        trace.span_end("halo", comm.clock_now());
        hook(comm, 1)?;

        let mut xext = Vec::with_capacity(local_pts + cfg.halo_len());
        xext.extend_from_slice(x_local);
        xext.extend_from_slice(&halo);

        // 2. Convolution over my row range (global rows r·rows..(r+1)·rows;
        // the coefficient table is row-periodic with period μ | rows, so
        // the kernel runs rank-relative unchanged).
        trace.span_begin("conv", comm.clock_now());
        let t0 = Instant::now();
        let mut v = vec![Complex64::ZERO; rows * p];
        soi_core::conv::convolve_pooled(
            self.soi.shape(),
            self.soi.coefficients(),
            &xext,
            &mut v,
            pool,
        );
        let dt = policy.charge(
            WorkKind::Conv,
            conv_flops(rows * p, cfg.b),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.conv = dt;
        trace.span_end("conv", comm.clock_now());
        hook(comm, 2)?;

        // 3. I ⊗ F_P over the local groups.
        trace.span_begin("fft_p", comm.clock_now());
        let t0 = Instant::now();
        let batch = self.soi.batch_p();
        let mut batch_scratch =
            vec![Complex64::ZERO; pool.threads().min(rows).max(1) * batch.scratch_len()];
        batch.execute_pooled(&mut v, pool, &mut batch_scratch);
        let dt = policy.charge(
            WorkKind::Fft,
            rows as f64 * fft_flops(p),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_small = dt;
        trace.span_end("fft_p", comm.clock_now());
        hook(comm, 3)?;

        trace.span_begin("pack", comm.clock_now());
        // 4. Pack (Fig 3's local permutation): destination-major, and
        // within a destination segment-major — rank d gets, for each of
        // its segments s, my rows' lane-s values in row order.
        let t0 = Instant::now();
        let mut send = vec![Complex64::ZERO; rows * p];
        // v is (rows × p) row-major; transposing gives lane-major (p × rows),
        // which concatenates lanes s = 0..P in order — and destination d's
        // block is exactly lanes [d·c, (d+1)·c), already segment-major.
        soi_fft::permute::transpose_pooled(&v, &mut send, rows, p, pool);
        let pack_bytes = 2.0 * (rows * p * std::mem::size_of::<Complex64>()) as f64;
        let dt = policy.charge(WorkKind::Mem, pack_bytes, t0.elapsed().as_secs_f64());
        comm.charge_compute(dt);
        times.pack = dt;
        trace.span_end("pack", comm.clock_now());
        hook(comm, 4)?;

        if schedule == ExchangeSchedule::Overlapped {
            // 5–7 fused. The streamed exchange delivers segment-major, so
            // each landing sub-block already sits in its x̃ slot (delivery
            // IS the unpack), and the moment segment `si` completes its
            // F_{M'} + demodulation run inside the collective — hidden
            // under the remaining segments' traffic. Per-segment math is
            // identical to the barriered arm (independent segments, same
            // serial kernels), so the output is bitwise identical.
            trace.span_begin("exchange", comm.clock_now());
            let c0 = comm.comm_seconds();
            let mut xt = vec![Complex64::ZERO; c * cfg.m_prime];
            let mut y = vec![Complex64::ZERO; local_pts];
            let mut scratch = vec![Complex64::ZERO; self.soi.plan_m().scratch_len()];
            let demod = &self.soi.coefficients().demod;
            let (mut fft_wall, mut demod_wall) = (0.0f64, 0.0f64);
            let trace_cb = &trace;
            let y_out = &mut y;
            comm.all_to_all_seg(&send, &mut xt, c, &mut |si, seg, clock| {
                trace_cb.span_begin("fft_m", clock);
                let t0 = Instant::now();
                self.soi.plan_m().execute_with_scratch(seg, &mut scratch);
                fft_wall += t0.elapsed().as_secs_f64();
                trace_cb.span_end("fft_m", clock);
                trace_cb.span_begin("demod", clock);
                let t0 = Instant::now();
                for k in 0..cfg.m {
                    y_out[si * cfg.m + k] = seg[k] * demod[k];
                }
                demod_wall += t0.elapsed().as_secs_f64();
                trace_cb.span_end("demod", clock);
            })?;
            times.exchange = comm.comm_seconds() - c0;
            trace.span_end("exchange", comm.clock_now());

            // Compute was measured inside the callbacks (the transports
            // exclude it from comm time); charge it once per phase so the
            // ledger matches the barriered breakdown.
            let dt = policy.charge(WorkKind::Fft, c as f64 * fft_flops(cfg.m_prime), fft_wall);
            comm.charge_compute(dt);
            times.fft_large = dt;
            let dt = policy.charge(
                WorkKind::Mem,
                2.0 * (local_pts * std::mem::size_of::<Complex64>()) as f64,
                demod_wall,
            );
            comm.charge_compute(dt);
            times.scale = dt;

            // The fused region crossed boundaries 5–7 at once; fire the
            // hooks in pipeline order (both checkpoint consumers persist
            // phase inputs, so replay semantics match the barriered arm).
            hook(comm, 5)?;
            hook(comm, 6)?;
            hook(comm, 7)?;
            return Ok((y, times));
        }

        // 5. THE all-to-all. From src I receive its rows for each of my c
        // segments: recv[src·c·rows + si·rows + jl] = x̃^{(my seg si)}[src·rows + jl].
        trace.span_begin("exchange", comm.clock_now());
        let c0 = comm.comm_seconds();
        let mut recv = vec![Complex64::ZERO; c * cfg.m_prime];
        comm.all_to_all(&send, &mut recv)?;
        times.exchange = comm.comm_seconds() - c0;
        trace.span_end("exchange", comm.clock_now());

        // 5b. Unpack into per-segment x̃ vectors (a second local
        // permutation; a no-op copy when c = 1 and R = P).
        trace.span_begin("pack", comm.clock_now());
        let t0 = Instant::now();
        let mut xt = vec![Complex64::ZERO; c * cfg.m_prime];
        for src in 0..ranks {
            for si in 0..c {
                let from = &recv[(src * c + si) * rows..(src * c + si + 1) * rows];
                xt[si * cfg.m_prime + src * rows..si * cfg.m_prime + (src + 1) * rows]
                    .copy_from_slice(from);
            }
        }
        let dt = policy.charge(
            WorkKind::Mem,
            2.0 * (xt.len() * std::mem::size_of::<Complex64>()) as f64,
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.pack += dt;
        trace.span_end("pack", comm.clock_now());
        hook(comm, 5)?;

        // 6. F_{M'} per owned segment, one scratch stripe per worker.
        trace.span_begin("fft_m", comm.clock_now());
        let t0 = Instant::now();
        let scr_len = self.soi.plan_m().scratch_len();
        let parts = pool.threads().min(c).max(1);
        let mut scratch = vec![Complex64::ZERO; parts * scr_len];
        if parts == 1 {
            for seg in xt.chunks_exact_mut(cfg.m_prime) {
                self.soi.plan_m().execute_with_scratch(seg, &mut scratch);
            }
        } else {
            let xt_ptr = SlicePtr::new(&mut xt);
            let scr_ptr = SlicePtr::new(&mut scratch);
            pool.run(parts, |t| {
                let (s0, sl) = part_range(c, parts, t);
                // SAFETY: segment ranges are disjoint across tasks and each
                // task owns scratch stripe `t`; borrows end at the barrier.
                let scr = unsafe { scr_ptr.slice(t * scr_len, scr_len) };
                for si in s0..s0 + sl {
                    let seg = unsafe { xt_ptr.slice(si * cfg.m_prime, cfg.m_prime) };
                    self.soi.plan_m().execute_with_scratch(seg, scr);
                }
            });
        }
        let dt = policy.charge(
            WorkKind::Fft,
            c as f64 * fft_flops(cfg.m_prime),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_large = dt;
        trace.span_end("fft_m", comm.clock_now());
        hook(comm, 6)?;

        // 7. Project + demodulate each segment.
        trace.span_begin("demod", comm.clock_now());
        let t0 = Instant::now();
        let demod = &self.soi.coefficients().demod;
        let mut y = Vec::with_capacity(local_pts);
        for si in 0..c {
            let seg = &xt[si * cfg.m_prime..(si + 1) * cfg.m_prime];
            y.extend((0..cfg.m).map(|k| seg[k] * demod[k]));
        }
        let dt = policy.charge(
            WorkKind::Mem,
            2.0 * (local_pts * std::mem::size_of::<Complex64>()) as f64,
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.scale = dt;
        trace.span_end("demod", comm.clock_now());
        hook(comm, 7)?;

        Ok((y, times))
    }

    /// Half-segments each rank of an `r`-rank cluster would own in the
    /// real-input transform (`(P/2)/R` — conjugate symmetry makes only
    /// the first `P/2` segments worth exchanging).
    ///
    /// # Errors
    /// [`SoiError::BadSize`] if the segment count is odd (the Hermitian
    /// fold pairs lane `s` with lane `P−s`); [`SoiError::BadRankCount`]
    /// if `r` does not divide `P/2`; [`SoiError::BadAlignment`] if the
    /// per-rank row count would not align with the μ-row chunks.
    pub fn half_segments_per_rank(&self, ranks: usize) -> Result<usize, SoiError> {
        let cfg = self.soi.config();
        if cfg.p % 2 != 0 {
            return Err(SoiError::BadSize(format!(
                "real-input transform needs an even segment count, got P = {}",
                cfg.p
            )));
        }
        let ph = cfg.p / 2;
        if ranks < 1 || ph % ranks != 0 {
            return Err(SoiError::BadRankCount(format!(
                "rank count {ranks} must divide the half-segment count P/2 = {ph}"
            )));
        }
        let rows = cfg.m_prime / ranks;
        if rows % cfg.mu != 0 {
            return Err(SoiError::BadAlignment(format!(
                "rows per rank {rows} must align with mu = {} chunks",
                cfg.mu
            )));
        }
        Ok(ph / ranks)
    }

    /// Real-input (r2c) transform on one rank of an `R`-rank cluster.
    ///
    /// `x_local` is this rank's `N/R` **real** samples. The pipeline is
    /// the complex [`Self::run`] with the redundancy of a real signal
    /// removed at every layer: the halo moves raw `f64`s (half the
    /// bytes), the convolution runs the halved real kernel, and — the
    /// headline — the all-to-all carries only the first `P/2` segments,
    /// since conjugate symmetry (`X[N−k] = conj(X[k])`) makes segments
    /// `P/2..P` derivable from the kept half. The exchange volume is
    /// therefore half the complex transform's.
    ///
    /// Each rank returns the `(P/2)/R · M` packed half-spectrum bins of
    /// its owned half-segments; the LAST rank additionally appends the
    /// Nyquist bin `y[N/2]`, so concatenating rank outputs yields the
    /// same `N/2 + 1`-point packed half-spectrum as
    /// [`soi_core::SoiFft::transform_real`].
    pub fn run_real<C: Communicator>(
        &self,
        comm: &mut C,
        x_local: &[f64],
        policy: ChargePolicy,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError> {
        self.run_real_with(comm, x_local, policy, &ThreadPool::serial())
    }

    /// [`Self::run_real`] with per-rank compute fanned across `pool`;
    /// bitwise identical to the serial run for any worker count.
    pub fn run_real_with<C: Communicator>(
        &self,
        comm: &mut C,
        x_local: &[f64],
        policy: ChargePolicy,
        pool: &ThreadPool,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError> {
        self.run_real_scheduled(comm, x_local, policy, pool, ExchangeSchedule::from_env())
    }

    /// [`Self::run_real_with`] with the exchange schedule pinned
    /// explicitly — the seam the equivalence tests use. Both schedules
    /// produce bitwise-identical output.
    pub fn run_real_scheduled<C: Communicator>(
        &self,
        comm: &mut C,
        x_local: &[f64],
        policy: ChargePolicy,
        pool: &ThreadPool,
        schedule: ExchangeSchedule,
    ) -> Result<(Vec<Complex64>, PhaseTimes), SoiError> {
        let cfg = *self.soi.config();
        let ranks = comm.size();
        let ch = self.half_segments_per_rank(ranks)?;
        let local_pts = cfg.n / ranks; // reals on this rank (= 2·ch·M)
        if x_local.len() != local_pts {
            return Err(SoiError::BadInput {
                expected: local_pts,
                got: x_local.len(),
            });
        }
        let rank = comm.rank();
        let p = cfg.p;
        let ph = p / 2;
        let rows = cfg.m_prime / ranks; // P-groups computed on this rank
        let out_pts = ch * cfg.m; // owned packed half-spectrum bins
        let mut times = PhaseTimes::default();
        let trace = comm.trace_handle();

        // 1. Halo exchange — same ring pattern as the complex run, on raw
        // reals: half the bytes per halo point.
        trace.span_begin("halo", comm.clock_now());
        let c0 = comm.comm_seconds();
        let left = (rank + ranks - 1) % ranks;
        let right = (rank + 1) % ranks;
        let halo = comm.sendrecv(left, &x_local[..cfg.halo_len()], right)?;
        times.halo = comm.comm_seconds() - c0;
        trace.span_end("halo", comm.clock_now());

        let mut xext = Vec::with_capacity(local_pts + cfg.halo_len());
        xext.extend_from_slice(x_local);
        xext.extend_from_slice(&halo);

        // 2. Real convolution over my row range — two real FMAs per tap,
        // half the arithmetic of the complex kernel.
        trace.span_begin("conv", comm.clock_now());
        let t0 = Instant::now();
        let mut v = vec![Complex64::ZERO; rows * p];
        soi_core::conv::convolve_real_pooled(
            self.soi.shape(),
            self.soi.coefficients(),
            &xext,
            &mut v,
            pool,
        );
        let dt = policy.charge(
            WorkKind::Conv,
            conv_flops(rows * p, cfg.b) / 2.0, // real input halves the FMAs
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.conv = dt;
        trace.span_end("conv", comm.clock_now());

        // 3. I ⊗ F_P over the local groups — still the full complex
        // batch: every lane participates as F_P input; the redundancy
        // only becomes droppable after the per-group transform.
        trace.span_begin("fft_p", comm.clock_now());
        let t0 = Instant::now();
        let batch = self.soi.batch_p();
        let mut batch_scratch =
            vec![Complex64::ZERO; pool.threads().min(rows).max(1) * batch.scratch_len()];
        batch.execute_pooled(&mut v, pool, &mut batch_scratch);
        let dt = policy.charge(
            WorkKind::Fft,
            rows as f64 * fft_flops(p),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_small = dt;
        trace.span_end("fft_p", comm.clock_now());

        trace.span_begin("pack", comm.clock_now());
        // 4. Pack: the partial transpose keeps lanes 0..P/2 only —
        // conjugate symmetry of the real input makes lanes P/2..P the
        // mirror conjugates of the kept half, so they never enter the
        // send buffer. Destination d's block is lanes [d·ch, (d+1)·ch),
        // already segment-major, exactly as in the complex pack.
        let t0 = Instant::now();
        let mut send = vec![Complex64::ZERO; rows * ph];
        soi_fft::permute::transpose_partial_pooled(&v, &mut send, rows, p, ph, pool);
        let pack_bytes = ((rows * (p + ph)) * std::mem::size_of::<Complex64>()) as f64;
        let dt = policy.charge(WorkKind::Mem, pack_bytes, t0.elapsed().as_secs_f64());
        comm.charge_compute(dt);
        times.pack = dt;
        trace.span_end("pack", comm.clock_now());

        // Nyquist bin: y[N/2] = Σ_j (−1)^j x_j is the one output the kept
        // half-segments cannot produce. Every rank folds its own slice —
        // local origins sit at even global offsets (N/R = 2·ch·M), so the
        // alternating signs line up — and the rank-order allreduce
        // combines the partials bitwise identically on every fabric.
        // Placed before the schedule split so both schedules share it.
        let c0 = comm.comm_seconds();
        let nyq = comm.allreduce_sum(soi_core::pipeline::nyquist_fold(x_local))?;
        times.exchange += comm.comm_seconds() - c0;

        if schedule == ExchangeSchedule::Overlapped {
            // 5–7 fused, exactly as the complex overlapped arm, over the
            // ch owned half-segments.
            trace.span_begin("exchange", comm.clock_now());
            let c0 = comm.comm_seconds();
            let mut xt = vec![Complex64::ZERO; ch * cfg.m_prime];
            let mut y = vec![Complex64::ZERO; out_pts];
            let mut scratch = vec![Complex64::ZERO; self.soi.plan_m().scratch_len()];
            let demod = &self.soi.coefficients().demod;
            let (mut fft_wall, mut demod_wall) = (0.0f64, 0.0f64);
            let trace_cb = &trace;
            let y_out = &mut y;
            comm.all_to_all_seg(&send, &mut xt, ch, &mut |si, seg, clock| {
                trace_cb.span_begin("fft_m", clock);
                let t0 = Instant::now();
                self.soi.plan_m().execute_with_scratch(seg, &mut scratch);
                fft_wall += t0.elapsed().as_secs_f64();
                trace_cb.span_end("fft_m", clock);
                trace_cb.span_begin("demod", clock);
                let t0 = Instant::now();
                for k in 0..cfg.m {
                    y_out[si * cfg.m + k] = seg[k] * demod[k];
                }
                demod_wall += t0.elapsed().as_secs_f64();
                trace_cb.span_end("demod", clock);
            })?;
            times.exchange += comm.comm_seconds() - c0;
            trace.span_end("exchange", comm.clock_now());

            let dt = policy.charge(WorkKind::Fft, ch as f64 * fft_flops(cfg.m_prime), fft_wall);
            comm.charge_compute(dt);
            times.fft_large = dt;
            let dt = policy.charge(
                WorkKind::Mem,
                2.0 * (out_pts * std::mem::size_of::<Complex64>()) as f64,
                demod_wall,
            );
            comm.charge_compute(dt);
            times.scale = dt;

            if rank == ranks - 1 {
                y.push(Complex64::new(nyq, 0.0));
            }
            return Ok((y, times));
        }

        // 5. The halved all-to-all: from src I receive its rows for each
        // of my ch half-segments.
        trace.span_begin("exchange", comm.clock_now());
        let c0 = comm.comm_seconds();
        let mut recv = vec![Complex64::ZERO; ch * cfg.m_prime];
        comm.all_to_all(&send, &mut recv)?;
        times.exchange += comm.comm_seconds() - c0;
        trace.span_end("exchange", comm.clock_now());

        // 5b. Unpack into per-half-segment x̃ vectors.
        trace.span_begin("pack", comm.clock_now());
        let t0 = Instant::now();
        let mut xt = vec![Complex64::ZERO; ch * cfg.m_prime];
        for src in 0..ranks {
            for si in 0..ch {
                let from = &recv[(src * ch + si) * rows..(src * ch + si + 1) * rows];
                xt[si * cfg.m_prime + src * rows..si * cfg.m_prime + (src + 1) * rows]
                    .copy_from_slice(from);
            }
        }
        let dt = policy.charge(
            WorkKind::Mem,
            2.0 * (xt.len() * std::mem::size_of::<Complex64>()) as f64,
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.pack += dt;
        trace.span_end("pack", comm.clock_now());

        // 6. F_{M'} per owned half-segment, one scratch stripe per worker.
        trace.span_begin("fft_m", comm.clock_now());
        let t0 = Instant::now();
        let scr_len = self.soi.plan_m().scratch_len();
        let parts = pool.threads().min(ch).max(1);
        let mut scratch = vec![Complex64::ZERO; parts * scr_len];
        if parts == 1 {
            for seg in xt.chunks_exact_mut(cfg.m_prime) {
                self.soi.plan_m().execute_with_scratch(seg, &mut scratch);
            }
        } else {
            let xt_ptr = SlicePtr::new(&mut xt);
            let scr_ptr = SlicePtr::new(&mut scratch);
            pool.run(parts, |t| {
                let (s0, sl) = part_range(ch, parts, t);
                // SAFETY: segment ranges are disjoint across tasks and each
                // task owns scratch stripe `t`; borrows end at the barrier.
                let scr = unsafe { scr_ptr.slice(t * scr_len, scr_len) };
                for si in s0..s0 + sl {
                    let seg = unsafe { xt_ptr.slice(si * cfg.m_prime, cfg.m_prime) };
                    self.soi.plan_m().execute_with_scratch(seg, scr);
                }
            });
        }
        let dt = policy.charge(
            WorkKind::Fft,
            ch as f64 * fft_flops(cfg.m_prime),
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.fft_large = dt;
        trace.span_end("fft_m", comm.clock_now());

        // 7. Project + demodulate each half-segment; the last rank
        // appends the Nyquist bin to complete the packed half-spectrum.
        trace.span_begin("demod", comm.clock_now());
        let t0 = Instant::now();
        let demod = &self.soi.coefficients().demod;
        let mut y = Vec::with_capacity(out_pts + 1);
        for si in 0..ch {
            let seg = &xt[si * cfg.m_prime..(si + 1) * cfg.m_prime];
            y.extend((0..cfg.m).map(|k| seg[k] * demod[k]));
        }
        let dt = policy.charge(
            WorkKind::Mem,
            2.0 * (out_pts * std::mem::size_of::<Complex64>()) as f64,
            t0.elapsed().as_secs_f64(),
        );
        comm.charge_compute(dt);
        times.scale = dt;
        trace.span_end("demod", comm.clock_now());
        if rank == ranks - 1 {
            y.push(Complex64::new(nyq, 0.0));
        }

        Ok((y, times))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::complex::rel_l2_error;
    use soi_simnet::{Cluster, Fabric};
    use soi_window::AccuracyPreset;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    fn run_distributed(n: usize, p: usize, preset: AccuracyPreset) -> Vec<Complex64> {
        let params = SoiParams::with_preset(n, p, preset).unwrap();
        let dist = DistSoiFft::new(&params).unwrap();
        let x = signal(n);
        let xr = &x;
        let distr = &dist;
        let m = n / p;
        let pieces = Cluster::ideal(p).run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            distr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
        });
        pieces.into_iter().flatten().collect()
    }

    #[test]
    fn distributed_matches_exact_fft() {
        let n = 1 << 12;
        let y = run_distributed(n, 4, AccuracyPreset::Digits10);
        let exact = soi_fft::fft_forward(&signal(n));
        let err = rel_l2_error(&y, &exact);
        assert!(err < 2e-7, "err = {err:e}"); // Digits10 bound: κ·(ε_alias+ε_trunc) ≲ 2e-8
    }

    #[test]
    fn distributed_matches_single_process_soi_exactly_in_structure() {
        // Same window/params ⇒ distributed and single-process SOI should
        // agree to near machine precision (identical math, different
        // data motion).
        let n = 1 << 12;
        let p = 4;
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits12).unwrap();
        let serial = SoiFft::new(&params).unwrap();
        let want = serial.transform(&signal(n)).unwrap();
        let got = run_distributed(n, p, AccuracyPreset::Digits12);
        let err = rel_l2_error(&got, &want);
        assert!(err < 1e-13, "distributed vs serial SOI: {err:e}");
    }

    #[test]
    fn eight_ranks_work() {
        let n = 1 << 14;
        let y = run_distributed(n, 8, AccuracyPreset::Digits10);
        let exact = soi_fft::fft_forward(&signal(n));
        assert!(rel_l2_error(&y, &exact) < 2e-7); // κ-aware Digits10 bound
    }

    #[test]
    fn exactly_one_all_to_all_happens() {
        // The paper's headline property, asserted mechanically.
        let n = 1 << 12;
        let p = 4;
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
        let dist = DistSoiFft::new(&params).unwrap();
        let x = signal(n);
        let (xr, distr, m) = (&x, &dist, n / p);
        let reports = Cluster::new(p, Fabric::ethernet_10g()).run(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            distr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
        });
        for (_, rep) in &reports {
            assert_eq!(rep.stats.all_to_alls, 1, "SOI must use exactly one all-to-all");
            // Plus exactly one halo p2p message.
            assert_eq!(rep.stats.p2p_messages, 1);
        }
    }

    #[test]
    fn phase_times_are_populated() {
        let n = 1 << 12;
        let p = 4;
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
        let dist = DistSoiFft::new(&params).unwrap();
        let x = signal(n);
        let (xr, distr, m) = (&x, &dist, n / p);
        let rates = ChargePolicy::Rates(crate::rates::ComputeRates::paper_node());
        let out = Cluster::new(p, Fabric::ethernet_10g()).run(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            distr.run(comm, local, rates).expect("soi run").1
        });
        for (times, rep) in &out {
            assert!(times.conv > 0.0);
            assert!(times.fft_small > 0.0);
            assert!(times.fft_large > 0.0);
            assert!(times.exchange > 0.0);
            assert!(times.pack > 0.0);
            // Rank virtual clock ≈ phases total.
            let total = times.total();
            assert!(
                (rep.sim_time - total).abs() < 0.2 * total + 1e-6,
                "clock {} vs phases {}",
                rep.sim_time,
                total
            );
        }
    }

    #[test]
    fn threaded_rank_compute_matches_serial_bitwise() {
        // MPI+OpenMP hybrid: each of 2 ranks runs its compute on 3
        // workers; the output must not move by a single ulp.
        let n = 1 << 13;
        let p = 8;
        let ranks = 2;
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
        let dist = DistSoiFft::new(&params).unwrap();
        let x = signal(n);
        let per_rank = n / ranks;
        let (xr, distr) = (&x, &dist);
        let collect = |workers: usize| -> Vec<Complex64> {
            Cluster::ideal(ranks)
                .run_collect(move |comm| {
                    let local = &xr[comm.rank() * per_rank..(comm.rank() + 1) * per_rank];
                    let pool = soi_pool::ThreadPool::new(workers);
                    distr
                        .run_with(comm, local, ChargePolicy::WallClock, &pool)
                        .expect("soi run")
                        .0
                })
                .into_iter()
                .flatten()
                .collect()
        };
        let serial = collect(1);
        for workers in [2usize, 3, 4] {
            let threaded = collect(workers);
            let same = serial
                .iter()
                .zip(&threaded)
                .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            assert!(same, "hybrid run with {workers} workers diverged from serial");
        }
    }

    #[test]
    #[should_panic(expected = "must divide segment count")]
    fn non_dividing_cluster_size_panics() {
        let params = SoiParams::with_preset(1 << 12, 4, AccuracyPreset::Digits10).unwrap();
        let dist = DistSoiFft::new(&params).unwrap();
        // The raw-assert era panicked here; the Result API keeps the
        // same observable contract through `.expect`.
        let _ = dist.segments_per_rank(3).expect("cluster size");
    }

    #[test]
    fn multiple_segments_per_rank_match_exact_fft() {
        // §6a / Table 1: the paper ran 8 segments per MPI process. Here:
        // P = 8 segments on R = 2 ranks (c = 4 per rank).
        let n = 1 << 13;
        let p = 8;
        let ranks = 2;
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
        let dist = DistSoiFft::new(&params).unwrap();
        assert_eq!(dist.segments_per_rank(ranks), Ok(4));
        let x = signal(n);
        let per_rank = n / ranks;
        let (xr, distr) = (&x, &dist);
        let y: Vec<Complex64> = Cluster::ideal(ranks)
            .run_collect(move |comm| {
                let local = &xr[comm.rank() * per_rank..(comm.rank() + 1) * per_rank];
                distr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
            })
            .into_iter()
            .flatten()
            .collect();
        let exact = soi_fft::fft_forward(&x);
        let err = rel_l2_error(&y, &exact);
        assert!(err < 2e-7, "multi-segment err = {err:e}");
    }

    #[test]
    fn multi_segment_agrees_with_one_segment_per_rank_bitwise_shape() {
        // Running P = 8 segments on 8, 4, 2 ranks must give the same
        // answer to rounding level — only the data motion differs.
        let n = 1 << 13;
        let p = 8;
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits12).unwrap();
        let dist = DistSoiFft::new(&params).unwrap();
        let x = signal(n);
        let (xr, distr) = (&x, &dist);
        let mut outputs = Vec::new();
        for ranks in [8usize, 4, 2, 1] {
            let per_rank = n / ranks;
            let y: Vec<Complex64> = Cluster::ideal(ranks)
                .run_collect(move |comm| {
                    let local = &xr[comm.rank() * per_rank..(comm.rank() + 1) * per_rank];
                    distr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
                })
                .into_iter()
                .flatten()
                .collect();
            outputs.push(y);
        }
        for pair in outputs.windows(2) {
            let err = rel_l2_error(&pair[0], &pair[1]);
            assert!(err < 1e-14, "rank layouts disagree: {err:e}");
        }
    }
}
