//! Per-phase time breakdowns for the distributed algorithms.

/// Seconds charged to each phase of a distributed transform, on one rank.
///
/// `exchange` covers all global all-to-all time (one exchange for SOI,
/// three for the baseline); `halo` is SOI's neighbor exchange (absent in
/// the baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Neighbor halo exchange (SOI only).
    pub halo: f64,
    /// Convolution `W·x` (SOI only).
    pub conv: f64,
    /// Small-FFT batch (`F_P` for SOI; length-`P` row FFTs for baseline).
    pub fft_small: f64,
    /// Large-FFT work (`F_{M'}` for SOI; length-`M` FFTs for baseline).
    pub fft_large: f64,
    /// Twiddle scaling (baseline) / demodulation (SOI).
    pub scale: f64,
    /// Local pack/unpack around exchanges.
    pub pack: f64,
    /// Global all-to-all exchange time (modeled wire + wait).
    pub exchange: f64,
}

impl PhaseTimes {
    /// Total compute-side seconds (everything but exchanges and halo).
    pub fn compute(&self) -> f64 {
        self.conv + self.fft_small + self.fft_large + self.scale + self.pack
    }

    /// Total communication-side seconds.
    pub fn comm(&self) -> f64 {
        self.exchange + self.halo
    }

    /// Grand total.
    pub fn total(&self) -> f64 {
        self.compute() + self.comm()
    }

    /// Communication fraction of the total (the paper's "50% to over 90%"
    /// claim for triple-all-to-all FFTs, §1).
    pub fn comm_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.comm() / self.total()
        }
    }

    /// Element-wise maximum across ranks — the critical path when every
    /// rank runs the same phase schedule.
    pub fn max_with(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            halo: self.halo.max(other.halo),
            conv: self.conv.max(other.conv),
            fft_small: self.fft_small.max(other.fft_small),
            fft_large: self.fft_large.max(other.fft_large),
            scale: self.scale.max(other.scale),
            pack: self.pack.max(other.pack),
            exchange: self.exchange.max(other.exchange),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = PhaseTimes {
            halo: 0.1,
            conv: 1.0,
            fft_small: 0.5,
            fft_large: 2.0,
            scale: 0.2,
            pack: 0.3,
            exchange: 4.0,
        };
        assert!((t.compute() - 4.0).abs() < 1e-12);
        assert!((t.comm() - 4.1).abs() < 1e-12);
        assert!((t.total() - 8.1).abs() < 1e-12);
        assert!((t.comm_fraction() - 4.1 / 8.1).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(PhaseTimes::default().comm_fraction(), 0.0);
    }

    #[test]
    fn max_with_is_elementwise() {
        let a = PhaseTimes {
            conv: 1.0,
            exchange: 5.0,
            ..Default::default()
        };
        let b = PhaseTimes {
            conv: 2.0,
            exchange: 3.0,
            ..Default::default()
        };
        let m = a.max_with(&b);
        assert_eq!(m.conv, 2.0);
        assert_eq!(m.exchange, 5.0);
    }
}
