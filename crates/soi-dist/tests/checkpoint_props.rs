//! Property suite for the recovery checkpoint codec.
//!
//! A checkpoint frame is the only thing standing between a dead rank and
//! a wrong answer after respawn, so the codec gets the adversarial
//! treatment: random geometries must roundtrip **bit-exactly**, and any
//! torn or corrupted frame must be *rejected* — decode must never panic,
//! and must never silently accept a frame whose header bytes changed.

use soi_dist::Checkpoint;
use soi_num::Complex64;
use soi_testkit::{forall, prop::no_shrink, PropConfig, TestRng};

/// Draw a checkpoint with a random (not necessarily FFT-valid) geometry:
/// the codec must be total over the struct, not just over sizes the
/// planner would accept. Block lengths include 0 (a degenerate but legal
/// frame) and awkward non-power-of-two sizes.
fn gen_checkpoint(rng: &mut TestRng) -> Checkpoint {
    let len = match rng.usize_in(0..4) {
        0 => 0,
        1 => rng.usize_in(1..9),
        2 => rng.usize_in(9..257),
        _ => 1usize << rng.usize_in(8..13),
    };
    Checkpoint {
        epoch: rng.next_u32() % 4,
        rank: rng.next_u32() % 64,
        boundary: rng.next_u32() % 8,
        n: 1u64 << rng.usize_in(4..31),
        p: 1u64 << rng.usize_in(1..7),
        ranks: 1 + rng.next_u32() % 64,
        x_local: rng.complex_vec(len),
    }
}

fn bits(xs: &[Complex64]) -> Vec<(u64, u64)> {
    xs.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

#[test]
fn roundtrip_is_bit_exact_over_random_geometries() {
    forall(
        "ckpt_roundtrip",
        PropConfig::cases(64),
        gen_checkpoint,
        no_shrink,
        |ckpt| {
            let frame = ckpt.encode();
            let back = Checkpoint::decode(&frame)
                .map_err(|e| format!("decode of a fresh frame failed: {e}"))?;
            if back.epoch != ckpt.epoch
                || back.rank != ckpt.rank
                || back.boundary != ckpt.boundary
                || back.n != ckpt.n
                || back.p != ckpt.p
                || back.ranks != ckpt.ranks
            {
                return Err(format!("header drift: {back:?} vs {ckpt:?}"));
            }
            if bits(&back.x_local) != bits(&ckpt.x_local) {
                return Err("payload not bit-exact after roundtrip".into());
            }
            // Encoding is canonical: same struct, same bytes.
            if back.encode() != frame {
                return Err("re-encode differs from the original frame".into());
            }
            Ok(())
        },
    );
}

#[test]
fn every_truncation_is_rejected() {
    forall(
        "ckpt_truncation",
        PropConfig::cases(32),
        gen_checkpoint,
        no_shrink,
        |ckpt| {
            let frame = ckpt.encode();
            // Check every short prefix for small frames, a random sample
            // of cut points for large ones (always including the header).
            let cuts: Vec<usize> = if frame.len() <= 64 {
                (0..frame.len()).collect()
            } else {
                let mut rng = TestRng::seed_from_u64(frame.len() as u64);
                let mut c: Vec<usize> = (0..32).map(|_| rng.usize_in(0..frame.len())).collect();
                c.extend(0..40); // all header/length-prefix cuts
                c
            };
            for cut in cuts {
                if Checkpoint::decode(&frame[..cut]).is_ok() {
                    return Err(format!(
                        "decode accepted a frame truncated to {cut}/{} bytes",
                        frame.len()
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn trailing_garbage_and_bad_header_are_rejected() {
    forall(
        "ckpt_corruption",
        PropConfig::cases(32),
        gen_checkpoint,
        no_shrink,
        |ckpt| {
            let frame = ckpt.encode();

            // A trailing byte means the frame is not what we wrote.
            let mut longer = frame.clone();
            longer.push(0xAB);
            if Checkpoint::decode(&longer).is_ok() {
                return Err("decode accepted a frame with trailing garbage".into());
            }

            // Any bit flip in the magic or version words must be caught.
            for byte in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 0x01;
                if Checkpoint::decode(&bad).is_ok() {
                    return Err(format!("decode accepted a frame with header byte {byte} flipped"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn arbitrary_byte_flips_never_panic() {
    // Flipping payload bytes may yield a *different* valid checkpoint
    // (raw f64 bits carry no redundancy) — that is fine; what decode must
    // never do is panic or loop. Exercise a spread of flip positions.
    forall(
        "ckpt_no_panic",
        PropConfig::cases(32),
        gen_checkpoint,
        no_shrink,
        |ckpt| {
            let frame = ckpt.encode();
            let mut rng = TestRng::seed_from_u64(frame.len() as u64 ^ 0x5051);
            for _ in 0..16 {
                let mut bad = frame.clone();
                let pos = rng.usize_in(0..bad.len());
                bad[pos] ^= 1 << rng.usize_in(0..8);
                let _ = Checkpoint::decode(&bad); // must return, Ok or Err
            }
            Ok(())
        },
    );
}
