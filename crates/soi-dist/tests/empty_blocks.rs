//! Pin tests: `all_to_allv` with zero-length blocks behaves identically
//! on both transports.
//!
//! The SOI pack phase legitimately produces empty blocks (a rank can owe
//! a peer nothing for some segment layouts), so the variable-count
//! exchange must treat `count == 0` as a real, *observable* message slot:
//! same output concatenation, same byte counters, and the same zero-byte
//! send/recv events in the trace — on the simulated fabric and on real
//! sockets alike. These tests freeze that contract so neither transport
//! can silently start skipping (or double-counting) empty frames.

use soi_simnet::Cluster;
use soi_trace::{Event, EventKind, Trace, TraceSet};
use soi_wire::{run_loopback, WireConfig};
use std::time::Duration;

const P: usize = 4;

fn wire_cfg() -> WireConfig {
    WireConfig {
        op_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(10),
        ..WireConfig::default()
    }
}

/// Per-destination element counts for `rank`, under three patterns:
/// `"mixed"` zeroes out every (src+dst)-even pair, `"mute"` makes rank 0
/// send nothing at all, `"empty"` is the fully degenerate exchange.
fn counts_for(pattern: &str, rank: usize) -> Vec<usize> {
    match pattern {
        "mixed" => (0..P)
            .map(|dst| if (rank + dst) % 2 == 0 { 0 } else { 2 + rank })
            .collect(),
        "mute" => (0..P)
            .map(|dst| if rank == 0 { 0 } else { 1 + dst })
            .collect(),
        "empty" => vec![0; P],
        _ => unreachable!(),
    }
}

/// Flat send buffer matching `counts`, stamped `src*100 + dst`.
fn send_buf(rank: usize, counts: &[usize]) -> Vec<u64> {
    (0..P)
        .flat_map(|dst| std::iter::repeat((rank * 100 + dst) as u64).take(counts[dst]))
        .collect()
}

/// What `rank` must receive: each source's block, in rank order.
fn expect_recv(pattern: &str, rank: usize) -> Vec<u64> {
    (0..P)
        .flat_map(|src| {
            let c = counts_for(pattern, src)[rank];
            std::iter::repeat((src * 100 + rank) as u64).take(c)
        })
        .collect()
}

/// Reduce a rank's event stream to the comparable network payload shape:
/// (is_send, peer, bytes) for every Send/Recv event, sorted — the wire
/// interleaves sends with whatever recv completes first, so only the
/// multiset of payload events is transport-invariant, not their order.
fn payload_events(events: &[Event]) -> Vec<(bool, u32, u64)> {
    let mut v: Vec<(bool, u32, u64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Send { peer, bytes } => Some((true, peer, bytes)),
            EventKind::Recv { peer, bytes } => Some((false, peer, bytes)),
            _ => None,
        })
        .collect();
    v.sort_unstable();
    v
}

/// Byte/collective counters in a transport-neutral tuple.
type StatLine = (u64, u64, u64, u64);

fn run_simnet(pattern: &'static str) -> (Vec<Vec<u64>>, Vec<StatLine>, TraceSet) {
    let (results, set) = Cluster::ideal(P).run_traced(|comm| {
        let me = comm.rank();
        let counts = counts_for(pattern, me);
        let out = comm.all_to_allv(&send_buf(me, &counts), &counts);
        let s = comm.stats();
        (out, (s.bytes_sent, s.bytes_received, s.all_to_alls, s.other_collectives))
    });
    let (outs, stats) = results.into_iter().map(|(r, _report)| r).unzip();
    (outs, stats, set)
}

fn run_wire(pattern: &'static str) -> (Vec<Vec<u64>>, Vec<StatLine>, TraceSet) {
    let per_rank = run_loopback(P, wire_cfg(), |comm| {
        comm.set_trace(Trace::recording(comm.rank()));
        let me = comm.rank();
        let counts = counts_for(pattern, me);
        let out = comm
            .all_to_allv(&send_buf(me, &counts), &counts)
            .unwrap_or_else(|e| panic!("wire all_to_allv failed on rank {me}: {e}"));
        let s = comm.stats();
        let events = comm.trace().drain();
        (out, (s.bytes_sent, s.bytes_received, s.all_to_alls, s.other_collectives), events)
    })
    .expect("loopback mesh");
    let mut outs = Vec::new();
    let mut stats = Vec::new();
    let mut streams = Vec::new();
    for (o, s, ev) in per_rank {
        outs.push(o);
        stats.push(s);
        streams.push(ev);
    }
    (outs, stats, TraceSet::from_streams(streams))
}

fn pin_pattern(pattern: &'static str) {
    let (sim_out, sim_stats, sim_set) = run_simnet(pattern);
    let (wire_out, wire_stats, wire_set) = run_wire(pattern);

    for rank in 0..P {
        let want = expect_recv(pattern, rank);
        assert_eq!(sim_out[rank], want, "[{pattern}] simnet output, rank {rank}");
        assert_eq!(wire_out[rank], want, "[{pattern}] wire output, rank {rank}");
        assert_eq!(
            sim_stats[rank], wire_stats[rank],
            "[{pattern}] stats diverge on rank {rank} (sent, recvd, a2a, other)"
        );
        // Every remote slot — zero-length ones included — shows up as a
        // send/recv event pair with the exact byte count, identically on
        // both transports.
        let sim_ev = payload_events(&sim_set.ranks[rank]);
        let wire_ev = payload_events(&wire_set.ranks[rank]);
        assert_eq!(
            sim_ev, wire_ev,
            "[{pattern}] payload event streams diverge on rank {rank}"
        );
        let sends: Vec<(u32, u64)> = sim_ev
            .iter()
            .filter(|(is_send, _, _)| *is_send)
            .map(|&(_, peer, bytes)| (peer, bytes))
            .collect();
        let want_sends: Vec<(u32, u64)> = (0..P)
            .filter(|&dst| dst != rank)
            .map(|dst| (dst as u32, (counts_for(pattern, rank)[dst] * 8) as u64))
            .collect();
        assert_eq!(
            sends, want_sends,
            "[{pattern}] rank {rank} must emit one send event per remote peer, \
             zero-byte slots included"
        );
    }

    // Zero-byte traffic must still satisfy conservation on both sides.
    let sim_sum = sim_set.validate().expect("simnet trace must validate");
    let wire_sum = wire_set.validate().expect("wire trace must validate");
    assert_eq!(sim_sum.ranks, P);
    assert_eq!(wire_sum.ranks, P);
    assert_eq!(
        sim_sum.messages, wire_sum.messages,
        "[{pattern}] message counts diverge"
    );
    // P ranks × (P-1) remote slots, every slot an event even when empty.
    assert_eq!(sim_sum.messages, (P * (P - 1)) as u64, "[{pattern}]");
}

#[test]
fn mixed_zero_blocks_pin_identical_behavior() {
    pin_pattern("mixed");
}

#[test]
fn mute_rank_pin_identical_behavior() {
    pin_pattern("mute");
}

#[test]
fn fully_empty_exchange_pin_identical_behavior() {
    pin_pattern("empty");
}
