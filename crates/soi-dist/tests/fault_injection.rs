//! The fault matrix: kill one rank at every phase boundary, on both
//! transports, and demand a full recovery.
//!
//! For each (boundary, victim, transport) case the job must:
//! * detect the death promptly (no hangs — every case is deadline-bound),
//! * replay from per-rank checkpoints with a respawned rank in epoch 1,
//! * produce a spectrum **bitwise identical** to an undisturbed run, and
//! * leave a merged trace that passes every conservation check, with an
//!   identical `rejoin` marker sequence on every rank.
//!
//! Simnet cases model recovery as the launcher does: attempt 0 runs with
//! the fault and is rolled back wholesale (its trace discarded — exactly
//! what survivors' `run_wire_recoverable` does with `Trace::drain`);
//! attempt 1 is a fresh cluster replaying every rank from its
//! checkpoint. Wire cases run the real protocol end to end: survivor
//! threads re-rendezvous through `WireComm::reconnect` while a
//! "respawned" thread claims the dead rank with `Bootstrap::rejoin`.

use soi_core::{SoiError, SoiParams};
use soi_dist::{
    run_checkpointed, run_wire_recoverable, ChargePolicy, CheckpointStore, Communicator,
    DistSoiFft, FaultPlan, MemStore, LAST_BOUNDARY,
};
use soi_num::Complex64;
use soi_pool::ThreadPool;
use soi_simnet::Cluster;
use soi_trace::{Trace, TraceSet};
use soi_window::AccuracyPreset;
use soi_wire::{Bootstrap, Rendezvous, WireComm, WireConfig};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const N: usize = 1 << 14;
const P: usize = 8;
const RANKS: usize = 4;

/// Per-case wall-clock ceiling. Generous for loaded CI machines; real
/// recoveries finish in well under a second on simnet and a couple of
/// seconds on the wire.
const CASE_DEADLINE: Duration = Duration::from_secs(60);

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn plan() -> DistSoiFft {
    let params = SoiParams::with_preset(N, P, AccuracyPreset::Digits10).unwrap();
    DistSoiFft::new(&params).unwrap()
}

fn bitwise_eq(a: &[Complex64], b: &[Complex64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// The ground truth every recovered run must reproduce to the bit.
fn undisturbed(dist: &DistSoiFft) -> Vec<Complex64> {
    let x = signal(N);
    let (xr, dr) = (&x, dist);
    let m = N / RANKS;
    Cluster::ideal(RANKS)
        .run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            dr.run(comm, local, ChargePolicy::WallClock).unwrap().0
        })
        .into_iter()
        .flatten()
        .collect()
}

// ---------------------------------------------------------------------------
// Simnet: every boundary, two victims.
// ---------------------------------------------------------------------------

/// One recovered simnet job; returns (spectrum, merged trace).
fn simnet_recovered(dist: &DistSoiFft, victim: usize, boundary: usize) -> (Vec<Complex64>, TraceSet) {
    let x = signal(N);
    let store = MemStore::new(RANKS);
    let m = N / RANKS;
    let (xr, dr, st) = (&x, dist, &store);

    // Attempt 0: the fault fires. The victim must fail; survivors either
    // fail (death before their last comm op) or finish work that is
    // about to be rolled back — either way the attempt is discarded.
    let out0 = Cluster::ideal(RANKS).run_collect(move |comm| {
        let rank = comm.rank();
        let local = &xr[rank * m..(rank + 1) * m];
        let fault = (rank == victim).then(|| FaultPlan::fail_comm(victim, boundary));
        run_checkpointed(dr, comm, local, ChargePolicy::WallClock, &ThreadPool::serial(), st, 0, fault)
    });
    assert!(
        matches!(out0[victim], Err(SoiError::Comm(_))),
        "victim {victim} must die at boundary {boundary}, got {:?}",
        out0[victim].as_ref().map(|_| "ok")
    );

    // Every rank checkpointed before the death reached it.
    for r in 0..RANKS {
        let ckpt = st.load(r).unwrap().expect("every rank checkpoints at boundary 0");
        assert_eq!(ckpt.epoch, 0);
        assert_eq!((ckpt.n as usize, ckpt.p as usize, ckpt.ranks as usize), (N, P, RANKS));
    }

    // Attempt 1: epoch 1, fresh cluster (the respawned victim plus
    // rolled-back survivors), every rank replaying from its checkpoint
    // behind a rejoin marker.
    let (out1, traces) = Cluster::ideal(RANKS).run_traced(move |comm: &mut soi_simnet::RankComm| {
        Communicator::trace_handle(comm).rejoin(1, Communicator::clock_now(comm));
        let ckpt = st.load(comm.rank()).unwrap().expect("checkpoint for replay");
        run_checkpointed(
            dr,
            comm,
            &ckpt.x_local,
            ChargePolicy::WallClock,
            &ThreadPool::serial(),
            st,
            1,
            None,
        )
        .expect("replay must succeed")
        .0
    });
    let y = out1.into_iter().flat_map(|(y, _)| y).collect();
    (y, traces)
}

#[test]
fn simnet_matrix_every_boundary_recovers_bitwise() {
    let dist = plan();
    let want = undisturbed(&dist);
    for victim in [1, RANKS - 1] {
        for boundary in 0..=LAST_BOUNDARY {
            let t0 = Instant::now();
            let (y, traces) = simnet_recovered(&dist, victim, boundary);
            assert!(
                bitwise_eq(&y, &want),
                "victim {victim} boundary {boundary}: recovered spectrum differs"
            );
            let summary = traces
                .validate()
                .unwrap_or_else(|e| panic!("victim {victim} boundary {boundary}: {e}"));
            assert_eq!(summary.rejoins, vec![1], "one rejoin into epoch 1 on every rank");
            assert!(summary.messages > 0, "replay really communicated");
            let dt = t0.elapsed();
            assert!(
                dt < CASE_DEADLINE,
                "victim {victim} boundary {boundary}: recovery took {dt:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Wire: every boundary over real sockets, with the real rejoin protocol.
// ---------------------------------------------------------------------------

fn wire_cfg() -> WireConfig {
    WireConfig {
        op_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(15),
        ..WireConfig::default()
    }
}

/// One recovered wire job. Survivor threads run `run_wire_recoverable`
/// and reconnect on their own; the victim's death is signalled to a
/// "respawn" thread that claims the dead rank via `Bootstrap::rejoin`,
/// exactly as a relaunched worker process would.
fn wire_recovered(
    dist: &DistSoiFft,
    victim: usize,
    boundary: usize,
) -> (Vec<Complex64>, TraceSet, Vec<u32>) {
    let cfg = wire_cfg();
    let rv = Rendezvous::bind("127.0.0.1:0", cfg).unwrap();
    let addr = rv.local_addr().unwrap();
    let store = MemStore::new(RANKS);
    let x = signal(N);
    let m = N / RANKS;
    let (dead_tx, dead_rx) = mpsc::channel::<()>();

    let mut results: Vec<Option<(Vec<Complex64>, Vec<soi_trace::Event>, u32)>> =
        (0..RANKS).map(|_| None).collect();
    std::thread::scope(|s| {
        // Rendezvous driver: the initial round, then the recovery round.
        // Streams are held open until everyone is done (they are the
        // workers' control connections in a real launch).
        let rv_ref = &rv;
        let driver = s.spawn(move || {
            let initial = rv_ref.serve(RANKS).unwrap();
            let recovery = rv_ref.reserve(RANKS, 1).unwrap();
            (initial, recovery)
        });

        let mut workers = Vec::new();
        for _ in 0..RANKS {
            let (addr, xr, st, dr) = (addr.clone(), &x, &store, dist);
            let dead_tx = dead_tx.clone();
            workers.push(s.spawn(move || {
                let boot = Bootstrap::join(&addr, cfg).unwrap();
                let (mut comm, _control) = WireComm::from_bootstrap(boot);
                let rank = comm.rank();
                comm.set_trace(Trace::recording(rank));
                let local = &xr[rank * m..(rank + 1) * m];
                let fault = (rank == victim).then(|| FaultPlan::fail_comm(victim, boundary));
                let res = run_wire_recoverable(
                    dr,
                    &mut comm,
                    local,
                    ChargePolicy::WallClock,
                    &ThreadPool::serial(),
                    st,
                    fault,
                );
                if rank == victim {
                    assert!(
                        matches!(res, Err(SoiError::Comm(_))),
                        "victim must die, not recover itself"
                    );
                    // Only now may the "launcher" respawn the rank — in a
                    // real launch the EOF on the control stream is this
                    // signal.
                    dead_tx.send(()).unwrap();
                    None
                } else {
                    let rec = res.unwrap_or_else(|e| panic!("survivor rank {rank}: {e}"));
                    Some((rank, rec.y, comm.trace().drain(), rec.attempts))
                }
            }));
        }
        // Only clones held by worker threads remain: if the victim dies
        // without signalling, recv() errors instead of deadlocking.
        drop(dead_tx);

        // The respawned process for the dead rank's slot.
        let st = &store;
        let respawn = s.spawn(move || {
            dead_rx.recv().expect("victim thread must signal its death");
            let boot = Bootstrap::rejoin(&addr, victim, 1, cfg).unwrap();
            let (mut comm, _control) = WireComm::from_bootstrap(boot);
            assert_eq!(comm.rank(), victim, "rejoin must reclaim the dead slot");
            assert_eq!(comm.epoch(), 1);
            comm.set_trace(Trace::recording(victim));
            comm.trace().rejoin(1, None);
            let ckpt = st.load(victim).unwrap().expect("victim checkpointed before dying");
            let rec = run_wire_recoverable(
                dist,
                &mut comm,
                &ckpt.x_local,
                ChargePolicy::WallClock,
                &ThreadPool::serial(),
                st,
                None,
            )
            .expect("respawned rank replays clean");
            (victim, rec.y, comm.trace().drain(), rec.attempts)
        });

        for w in workers {
            if let Some((rank, y, events, attempts)) = w.join().unwrap() {
                results[rank] = Some((y, events, attempts));
            }
        }
        let (rank, y, events, attempts) = respawn.join().unwrap();
        results[rank] = Some((y, events, attempts));
        drop(driver.join().unwrap());
    });

    let mut y = Vec::with_capacity(N);
    let mut streams = Vec::with_capacity(RANKS);
    let mut attempts = Vec::with_capacity(RANKS);
    for slot in results.into_iter() {
        let (block, events, att) = slot.expect("every rank produced a result");
        y.extend(block);
        streams.push(events);
        attempts.push(att);
    }
    (y, TraceSet::from_streams(streams), attempts)
}

#[test]
fn wire_matrix_every_boundary_recovers_bitwise() {
    let dist = plan();
    let want = undisturbed(&dist);
    let victim = 1;
    for boundary in 0..=LAST_BOUNDARY {
        let t0 = Instant::now();
        let (y, traces, attempts) = wire_recovered(&dist, victim, boundary);
        assert!(
            bitwise_eq(&y, &want),
            "boundary {boundary}: recovered wire spectrum differs from undisturbed run"
        );
        let summary = traces
            .validate()
            .unwrap_or_else(|e| panic!("boundary {boundary}: merged trace invalid: {e}"));
        assert_eq!(summary.rejoins, vec![1], "boundary {boundary}: rejoin markers");
        for (rank, att) in attempts.iter().enumerate() {
            let want_attempts = if rank == victim { 1 } else { 2 };
            assert_eq!(
                *att, want_attempts,
                "boundary {boundary}: rank {rank} attempt count"
            );
        }
        let dt = t0.elapsed();
        assert!(dt < CASE_DEADLINE, "boundary {boundary}: recovery took {dt:?}");
    }
}

/// An undisturbed run through the recoverable driver is exactly the
/// plain run: one attempt, same bits, no rejoin events.
#[test]
fn recoverable_driver_is_transparent_without_faults() {
    let dist = plan();
    let want = undisturbed(&dist);
    let cfg = wire_cfg();
    let rv = Rendezvous::bind("127.0.0.1:0", cfg).unwrap();
    let addr = rv.local_addr().unwrap();
    let store = MemStore::new(RANKS);
    let x = signal(N);
    let m = N / RANKS;
    let mut blocks: Vec<Option<(usize, Vec<Complex64>, u32)>> = Vec::new();
    std::thread::scope(|s| {
        let rv_ref = &rv;
        let driver = s.spawn(move || rv_ref.serve(RANKS).unwrap());
        let mut handles = Vec::new();
        for _ in 0..RANKS {
            let (addr, xr, st, dr) = (addr.clone(), &x, &store, &dist);
            handles.push(s.spawn(move || {
                let boot = Bootstrap::join(&addr, cfg).unwrap();
                let (mut comm, _control) = WireComm::from_bootstrap(boot);
                let rank = comm.rank();
                let local = &xr[rank * m..(rank + 1) * m];
                let rec = run_wire_recoverable(
                    dr,
                    &mut comm,
                    local,
                    ChargePolicy::WallClock,
                    &ThreadPool::serial(),
                    st,
                    None,
                )
                .unwrap();
                assert!(rec.control.is_none(), "no reconnect without a fault");
                (rank, rec.y, rec.attempts)
            }));
        }
        blocks = handles.into_iter().map(|h| Some(h.join().unwrap())).collect();
        drop(driver.join().unwrap());
    });
    let mut y = vec![Complex64::ZERO; N];
    for b in blocks.into_iter().flatten() {
        let (rank, block, attempts) = b;
        assert_eq!(attempts, 1);
        y[rank * m..(rank + 1) * m].copy_from_slice(&block);
    }
    assert!(bitwise_eq(&y, &want));
}
