//! Schedule equivalence: the overlapped exchange pipeline must produce
//! THE SAME BITS as the barriered reference — across segment geometries
//! (R ranks × c segments per rank), worker counts, and both transports —
//! and a run recovered from a fault under the default (overlapped)
//! schedule must still match a *barriered* undisturbed baseline.

use soi_core::{SoiError, SoiParams};
use soi_dist::{
    run_checkpointed, ChargePolicy, CheckpointStore, DistSoiFft, ExchangeSchedule, FaultPlan,
    MemStore,
};
use soi_num::Complex64;
use soi_pool::ThreadPool;
use soi_simnet::Cluster;
use soi_window::AccuracyPreset;
use soi_wire::{run_loopback, WireConfig};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn assert_bitwise_equal(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: bin {k} differs: {x:?} vs {y:?}"
        );
    }
}

/// One full transform on `ranks` simulated ranks with the schedule and
/// worker count pinned explicitly.
fn simnet_spectrum(
    dist: &DistSoiFft,
    n: usize,
    ranks: usize,
    schedule: ExchangeSchedule,
    workers: usize,
) -> Vec<Complex64> {
    let x = signal(n);
    let (xr, dr) = (&x, dist);
    let m = n / ranks;
    Cluster::ideal(ranks)
        .run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            let pool = ThreadPool::new(workers);
            dr.run_with_hooks_scheduled(
                comm,
                local,
                ChargePolicy::WallClock,
                &pool,
                schedule,
                |_, _| Ok(()),
            )
            .expect("soi run")
            .0
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Same transform over a real localhost TCP mesh.
fn wire_spectrum(
    dist: &DistSoiFft,
    n: usize,
    ranks: usize,
    schedule: ExchangeSchedule,
) -> Vec<Complex64> {
    let x = signal(n);
    let (xr, dr) = (&x, dist);
    let m = n / ranks;
    run_loopback(ranks, WireConfig::default(), move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run_with_hooks_scheduled(
            comm,
            local,
            ChargePolicy::WallClock,
            &ThreadPool::serial(),
            schedule,
            |_, _| Ok(()),
        )
        .expect("soi run")
        .0
    })
    .expect("loopback mesh")
    .into_iter()
    .flatten()
    .collect()
}

#[test]
fn overlapped_matches_barriered_across_geometries_on_simnet() {
    // R ∈ {2,4,8} ranks × c ∈ {1,2,8} segments per rank (P = R·c up to
    // 64 segments) — every geometry the satellite grid names. N scales
    // with P so the halo (B·P points) always fits inside one segment.
    for ranks in [2usize, 4, 8] {
        for c in [1usize, 2, 8] {
            let p = ranks * c;
            let n = (p * 2048).max(1 << 14);
            let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10)
                .unwrap_or_else(|e| panic!("R={ranks} c={c}: {e}"));
            let dist = DistSoiFft::new(&params).unwrap();
            assert_eq!(dist.segments_per_rank(ranks), Ok(c));
            let barriered =
                simnet_spectrum(&dist, n, ranks, ExchangeSchedule::Barriered, 1);
            let overlapped =
                simnet_spectrum(&dist, n, ranks, ExchangeSchedule::Overlapped, 1);
            assert_bitwise_equal(&barriered, &overlapped, &format!("R={ranks} c={c}"));
        }
    }
}

#[test]
fn overlapped_matches_barriered_across_worker_counts() {
    // The overlapped callback runs each segment serially; worker count
    // must not move a single ulp on either schedule.
    let n = 1 << 14;
    let (ranks, p) = (2usize, 8usize);
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    let reference = simnet_spectrum(&dist, n, ranks, ExchangeSchedule::Barriered, 1);
    for workers in [1usize, 2, 4] {
        let overlapped =
            simnet_spectrum(&dist, n, ranks, ExchangeSchedule::Overlapped, workers);
        assert_bitwise_equal(&reference, &overlapped, &format!("workers={workers}"));
        let barriered =
            simnet_spectrum(&dist, n, ranks, ExchangeSchedule::Barriered, workers);
        assert_bitwise_equal(&reference, &barriered, &format!("workers={workers} barriered"));
    }
}

#[test]
fn overlapped_matches_barriered_on_the_wire() {
    let n = 1 << 16;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits12).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    for ranks in [2usize, 8] {
        let barriered = wire_spectrum(&dist, n, ranks, ExchangeSchedule::Barriered);
        let overlapped = wire_spectrum(&dist, n, ranks, ExchangeSchedule::Overlapped);
        assert_bitwise_equal(&barriered, &overlapped, &format!("wire R={ranks}"));
        // And the wire pipeline agrees with simnet under overlap, so the
        // cross-transport contract holds on the new schedule too.
        let sim = simnet_spectrum(&dist, n, ranks, ExchangeSchedule::Overlapped, 1);
        assert_bitwise_equal(&sim, &overlapped, &format!("wire vs simnet R={ranks}"));
    }
}

#[test]
fn recovered_overlapped_run_matches_barriered_baseline() {
    // Kill a rank at the exchange-adjacent boundaries under the DEFAULT
    // schedule (overlapped — the test env does not set SOI_NO_OVERLAP),
    // recover from checkpoints, and demand the recovered spectrum match
    // an undisturbed *barriered* run bit for bit.
    let n = 1 << 14;
    let (p, ranks, victim) = (8usize, 4usize, 1usize);
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    let want = simnet_spectrum(&dist, n, ranks, ExchangeSchedule::Barriered, 1);
    let x = signal(n);
    let m = n / ranks;
    for boundary in [4usize, 5, 6] {
        let store = MemStore::new(ranks);
        let (xr, dr, st) = (&x, &dist, &store);
        // Attempt 0: the fault fires at `boundary` on the victim.
        let out0 = Cluster::ideal(ranks).run_collect(move |comm| {
            let rank = comm.rank();
            let local = &xr[rank * m..(rank + 1) * m];
            let fault = (rank == victim).then(|| FaultPlan::fail_comm(victim, boundary));
            run_checkpointed(
                dr,
                comm,
                local,
                ChargePolicy::WallClock,
                &ThreadPool::serial(),
                st,
                0,
                fault,
            )
        });
        assert!(
            matches!(out0[victim], Err(SoiError::Comm(_))),
            "victim must die at boundary {boundary}"
        );
        // Attempt 1: every rank replays from its checkpoint.
        let y: Vec<Complex64> = Cluster::ideal(ranks)
            .run_collect(move |comm| {
                let ckpt = st.load(comm.rank()).unwrap().expect("checkpoint");
                run_checkpointed(
                    dr,
                    comm,
                    &ckpt.x_local,
                    ChargePolicy::WallClock,
                    &ThreadPool::serial(),
                    st,
                    1,
                    None,
                )
                .expect("replay must succeed")
                .0
            })
            .into_iter()
            .flatten()
            .collect();
        assert_bitwise_equal(&want, &y, &format!("recovered boundary {boundary}"));
    }
}
