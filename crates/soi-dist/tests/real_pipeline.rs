//! The distributed real-input (r2c) pipeline, end to end: the halved
//! exchange must still produce the serial packed half-spectrum, THE SAME
//! BITS under both exchange schedules, on both transports, for any
//! worker count — and it must actually move at most 0.55× the bytes of
//! the complex transform at the same geometry (the point of the path).

use soi_core::{SoiError, SoiFft, SoiParams};
use soi_dist::{ChargePolicy, DistSoiFft, ExchangeSchedule};
use soi_num::complex::rel_l2_error;
use soi_num::Complex64;
use soi_pool::ThreadPool;
use soi_simnet::{Cluster, Fabric};
use soi_window::AccuracyPreset;
use soi_wire::{run_loopback, WireConfig};

fn real_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.37).sin() + 0.5 * (i as f64 * 0.11).cos())
        .collect()
}

fn assert_bitwise_equal(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: bin {k} differs: {x:?} vs {y:?}"
        );
    }
}

/// One real transform on `ranks` simulated ranks; concatenated rank
/// outputs form the `N/2 + 1`-bin packed half-spectrum.
fn simnet_half_spectrum(
    dist: &DistSoiFft,
    n: usize,
    ranks: usize,
    schedule: ExchangeSchedule,
    workers: usize,
) -> Vec<Complex64> {
    let x = real_signal(n);
    let (xr, dr) = (&x, dist);
    let m = n / ranks;
    Cluster::ideal(ranks)
        .run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            let pool = ThreadPool::new(workers);
            dr.run_real_scheduled(comm, local, ChargePolicy::WallClock, &pool, schedule)
                .expect("real soi run")
                .0
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Same transform over a real localhost TCP mesh.
fn wire_half_spectrum(
    dist: &DistSoiFft,
    n: usize,
    ranks: usize,
    schedule: ExchangeSchedule,
) -> Vec<Complex64> {
    let x = real_signal(n);
    let (xr, dr) = (&x, dist);
    let m = n / ranks;
    run_loopback(ranks, WireConfig::default(), move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run_real_scheduled(
            comm,
            local,
            ChargePolicy::WallClock,
            &ThreadPool::serial(),
            schedule,
        )
        .expect("real soi run")
        .0
    })
    .expect("loopback mesh")
    .into_iter()
    .flatten()
    .collect()
}

#[test]
fn distributed_real_matches_serial_packed_half_spectrum() {
    // Identical math to the single-node transform_real, different data
    // motion — the assembled half-spectrum (Nyquist included) must agree
    // to near machine precision for every rank geometry.
    let n = 1 << 14;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits12).unwrap();
    let serial = SoiFft::new(&params).unwrap().transform_real(&real_signal(n)).unwrap();
    assert_eq!(serial.len(), n / 2 + 1);
    let dist = DistSoiFft::new(&params).unwrap();
    for ranks in [1usize, 2, 4] {
        assert_eq!(dist.half_segments_per_rank(ranks), Ok(p / 2 / ranks));
        let got = simnet_half_spectrum(&dist, n, ranks, ExchangeSchedule::Barriered, 1);
        assert_eq!(got.len(), n / 2 + 1, "R={ranks}");
        let err = rel_l2_error(&got, &serial);
        assert!(err < 1e-13, "R={ranks}: distributed vs serial r2c: {err:e}");
        // The constructed-real Nyquist bin has no imaginary part, exactly.
        assert_eq!(got[n / 2].im, 0.0);
    }
}

#[test]
fn real_schedules_agree_bitwise_across_geometries() {
    let n = 1 << 14;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    for ranks in [1usize, 2, 4] {
        let barriered = simnet_half_spectrum(&dist, n, ranks, ExchangeSchedule::Barriered, 1);
        let overlapped = simnet_half_spectrum(&dist, n, ranks, ExchangeSchedule::Overlapped, 1);
        assert_bitwise_equal(&barriered, &overlapped, &format!("R={ranks}"));
    }
}

#[test]
fn real_run_is_bitwise_across_worker_counts() {
    let n = 1 << 14;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    let reference = simnet_half_spectrum(&dist, n, 2, ExchangeSchedule::Barriered, 1);
    for workers in [2usize, 3, 4] {
        for schedule in [ExchangeSchedule::Barriered, ExchangeSchedule::Overlapped] {
            let got = simnet_half_spectrum(&dist, n, 2, schedule, workers);
            assert_bitwise_equal(&reference, &got, &format!("workers={workers} {schedule:?}"));
        }
    }
}

#[test]
fn real_wire_and_simnet_agree_bitwise_under_both_schedules() {
    let n = 1 << 16;
    let p = 8;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits12).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    for ranks in [2usize, 4] {
        for schedule in [ExchangeSchedule::Barriered, ExchangeSchedule::Overlapped] {
            let sim = simnet_half_spectrum(&dist, n, ranks, schedule, 1);
            let wire = wire_half_spectrum(&dist, n, ranks, schedule);
            assert_bitwise_equal(&sim, &wire, &format!("R={ranks} {schedule:?}"));
        }
    }
}

#[test]
fn real_exchange_moves_at_most_055x_the_complex_bytes() {
    // The acceptance number: at N = 2^16, P = 8 segments, the real run's
    // total traffic must be ≤ 0.55× the complex run's — the all-to-all
    // carries half the segments and the halo moves f64s, so the only
    // overhead against exactly 0.5× is the one-f64 Nyquist allreduce.
    let n = 1 << 16;
    let p = 8;
    let ranks = 4;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    let m = n / ranks;

    let xc: Vec<Complex64> = real_signal(n).iter().map(|&r| Complex64::new(r, 0.0)).collect();
    let (xr, dr) = (&xc, &dist);
    let complex_reports = Cluster::new(ranks, Fabric::ethernet_10g()).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, ChargePolicy::WallClock).expect("complex run").0
    });
    let complex_bytes: u64 = complex_reports.iter().map(|(_, r)| r.stats.bytes_sent).sum();

    let x = real_signal(n);
    let (xr, dr) = (&x, &dist);
    let real_reports = Cluster::new(ranks, Fabric::ethernet_10g()).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run_real(comm, local, ChargePolicy::WallClock).expect("real run").0
    });
    let real_bytes: u64 = real_reports.iter().map(|(_, r)| r.stats.bytes_sent).sum();

    // Still the paper's communication shape: one all-to-all, one halo
    // message per rank.
    for (_, rep) in &real_reports {
        assert_eq!(rep.stats.all_to_alls, 1, "r2c must keep the single all-to-all");
        assert_eq!(rep.stats.p2p_messages, 1, "r2c must keep the single halo message");
    }
    let ratio = real_bytes as f64 / complex_bytes as f64;
    assert!(
        ratio <= 0.55,
        "real exchange moved {real_bytes} bytes vs complex {complex_bytes} (ratio {ratio:.3})"
    );
}

#[test]
fn real_run_rejects_bad_geometries() {
    // Odd segment count: the Hermitian fold pairs lane s with P−s.
    let odd = SoiParams::with_preset(10000, 5, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&odd).unwrap();
    assert!(matches!(
        dist.half_segments_per_rank(1),
        Err(SoiError::BadSize(_))
    ));

    let params = SoiParams::with_preset(1 << 14, 8, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    // 3 and 8 don't divide P/2 = 4.
    assert!(matches!(
        dist.half_segments_per_rank(3),
        Err(SoiError::BadRankCount(_))
    ));
    assert!(matches!(
        dist.half_segments_per_rank(8),
        Err(SoiError::BadRankCount(_))
    ));
    // Wrong local length surfaces as BadInput, on the rank.
    let bad: Vec<SoiError> = Cluster::ideal(2)
        .run_collect(|comm| {
            let x = vec![0.0f64; 100];
            dist.run_real(comm, &x, ChargePolicy::WallClock).unwrap_err()
        })
        .into_iter()
        .collect();
    for e in &bad {
        assert!(matches!(e, SoiError::BadInput { .. }), "got {e:?}");
    }
}
