//! Acceptance test for the tracing tentpole: a traced 4-rank
//! [`DistSoiFft`] run must emit every SOI phase on every rank, the
//! merged trace must pass the conservation validator, and a corrupted
//! copy (one dropped message event) must fail it.

use soi_core::SoiParams;
use soi_dist::{ChargePolicy, DistSoiFft};
use soi_num::Complex64;
use soi_simnet::{Cluster, Fabric};
use soi_trace::{phase_totals, EventKind, TraceError};
use soi_window::AccuracyPreset;

const RANKS: usize = 4;
const PHASES: [&str; 7] = ["halo", "conv", "fft_p", "pack", "exchange", "fft_m", "demod"];

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

#[test]
fn traced_four_rank_run_emits_all_phases_and_validates() {
    let n = 1 << 14;
    let params = SoiParams::with_preset(n, RANKS, AccuracyPreset::Digits10).unwrap();
    let dist = DistSoiFft::new(&params).unwrap();
    let x = signal(n);
    let (xr, dr) = (&x, &dist);
    let m = n / RANKS;
    let (out, traces) = Cluster::new(RANKS, Fabric::ethernet_10g()).run_traced(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
    });
    assert_eq!(out.len(), RANKS);
    assert_eq!(traces.ranks.len(), RANKS);

    // Every rank reports every SOI phase, each completed (begin/end paired).
    for (rank, events) in traces.ranks.iter().enumerate() {
        let totals = phase_totals(events);
        for phase in PHASES {
            assert!(
                totals.iter().any(|(name, _)| name == phase),
                "rank {rank} trace is missing phase `{phase}`: {totals:?}"
            );
        }
        // Messages flowed on every rank (halo sendrecv + all-to-all).
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Recv { .. })),
            "rank {rank} recorded no receives"
        );
    }

    let summary = traces.validate().expect("healthy trace must validate");
    assert_eq!(summary.ranks, RANKS);
    assert!(summary.bytes > 0);
    assert!(summary.phases.iter().any(|p| p == "exchange"));

    // Corrupt the trace: drop one message event from rank 1. The per-link
    // conservation check must now fail — a lost message is mechanically
    // detectable, not a matter of interpretation.
    let mut corrupted = traces;
    let victim = corrupted.ranks[1]
        .iter()
        .position(|e| matches!(e.kind, EventKind::Recv { .. }))
        .expect("rank 1 must have received something");
    corrupted.ranks[1].remove(victim);
    match corrupted.validate() {
        Err(TraceError::LinkImbalance { .. }) => {}
        other => panic!("dropped recv must fail link conservation, got {other:?}"),
    }
}
