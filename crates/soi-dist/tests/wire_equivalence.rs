//! Cross-transport acceptance: the distributed SOI FFT must produce the
//! SAME BITS whether ranks are threads exchanging buffers through the
//! simulated fabric or processes pushing bytes through the kernel's TCP
//! stack — and when a rank dies mid-run on the real transport, the
//! survivors must fail fast with a communication error, not hang.

use soi_core::{SoiError, SoiParams};
use soi_dist::{ChargePolicy, DistSoiFft};
use soi_num::Complex64;
use soi_simnet::Cluster;
use soi_window::AccuracyPreset;
use soi_wire::{loopback_mesh, run_loopback, WireConfig};
use std::time::Duration;

const N: usize = 1 << 16;
const SEGMENTS: usize = 8;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn plan() -> DistSoiFft {
    let params = SoiParams::with_preset(N, SEGMENTS, AccuracyPreset::Digits12).unwrap();
    DistSoiFft::new(&params).unwrap()
}

/// Run the SOI FFT on `ranks` simulated ranks and return the assembled
/// spectrum.
fn simnet_spectrum(ranks: usize) -> Vec<Complex64> {
    let dist = plan();
    let x = signal(N);
    let (xr, dr) = (&x, &dist);
    let m = N / ranks;
    let out = Cluster::ideal(ranks).run_collect(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
    });
    out.into_iter().flatten().collect()
}

/// Same transform, but every rank is a socket endpoint on a real
/// localhost TCP mesh.
fn wire_spectrum(ranks: usize) -> Vec<Complex64> {
    let dist = plan();
    let x = signal(N);
    let (xr, dr) = (&x, &dist);
    let m = N / ranks;
    let out = run_loopback(ranks, WireConfig::default(), move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
    })
    .expect("loopback mesh");
    out.into_iter().flatten().collect()
}

fn assert_bitwise_equal(a: &[Complex64], b: &[Complex64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: bin {k} differs: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn two_rank_spectra_are_bitwise_identical_across_transports() {
    assert_bitwise_equal(&simnet_spectrum(2), &wire_spectrum(2), "P=2");
}

#[test]
fn four_rank_spectra_are_bitwise_identical_across_transports() {
    assert_bitwise_equal(&simnet_spectrum(4), &wire_spectrum(4), "P=4");
}

#[test]
fn killed_rank_fails_survivors_with_comm_error_not_hang() {
    let ranks = 4;
    let fast = WireConfig {
        op_timeout: Duration::from_millis(500),
        connect_timeout: Duration::from_secs(10),
        ..WireConfig::default()
    };
    let comms = loopback_mesh(ranks, fast).unwrap();

    let dist = plan();
    let x = signal(N);
    let (xr, dr) = (&x, &dist);
    let m = N / ranks;
    // Rank 3 "dies" before the run; survivors must surface SoiError::Comm.
    let out = soi_testkit::kill_and_run(comms, ranks - 1, Duration::from_secs(30), |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        dr.run(comm, local, ChargePolicy::WallClock)
    });
    for e in &out.errors {
        assert!(matches!(e, SoiError::Comm(_)), "got {e:?}");
    }
}
