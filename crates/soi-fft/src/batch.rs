//! Batched transforms — the `I_ℓ ⊗ F_m` Kronecker pattern.
//!
//! §6(a) of the paper: "A Kronecker product of the form `I ⊗ A` expresses
//! parallelism naturally. It says that ℓ copies of the matrix A are to be
//! applied independently on ℓ contiguous segments of stride-one data."
//! This module is that operator: a batch of contiguous same-size FFTs,
//! executed serially or across threads (the paper's OpenMP level maps to
//! `std::thread::scope` here).

use crate::plan::{Direction, Plan};
use soi_num::{Complex, Real};

/// Executor for `I_count ⊗ F_len`: `count` independent FFTs over
/// contiguous rows of length `len`.
#[derive(Debug)]
pub struct BatchFft<T> {
    plan: Plan<T>,
    threads: usize,
}

impl<T: Real> BatchFft<T> {
    /// Plan a batch of transforms of size `len` in `direction`, run on
    /// `threads` threads (1 = serial).
    pub fn new(len: usize, direction: Direction, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        Self {
            plan: Plan::new(len, direction),
            threads,
        }
    }

    /// Row length.
    pub fn row_len(&self) -> usize {
        self.plan.len()
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Transform every contiguous `row_len`-sized row of `data` in place.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the row length.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let m = self.plan.len();
        assert!(
            data.len() % m == 0,
            "batch data length {} not a multiple of row length {m}",
            data.len()
        );
        let rows = data.len() / m;
        if self.threads <= 1 || rows <= 1 {
            let mut scratch = vec![Complex::ZERO; m];
            for row in data.chunks_exact_mut(m) {
                self.plan.execute_with_scratch(row, &mut scratch);
            }
            return;
        }
        let workers = self.threads.min(rows);
        let rows_per = rows.div_ceil(workers);
        // A worker panic propagates out of the scope when it joins.
        std::thread::scope(|scope| {
            for chunk in data.chunks_mut(rows_per * m) {
                let plan = &self.plan;
                scope.spawn(move || {
                    let mut scratch = vec![Complex::ZERO; m];
                    for row in chunk.chunks_exact_mut(m) {
                        plan.execute_with_scratch(row, &mut scratch);
                    }
                });
            }
        });
    }
}

/// One-shot helper: `count` forward FFTs of length `len` over `data`.
pub fn batch_fft_forward<T: Real>(data: &mut [Complex<T>], len: usize, threads: usize) {
    BatchFft::new(len, Direction::Forward, threads).execute(data);
}

/// Strided batch: apply `F_m` to `count` sub-vectors of `data`, where
/// sub-vector `q` occupies indices `{q + i·count : i < m}` — the
/// `F_m ⊗ I_count` pattern. Gathers into scratch, transforms, scatters.
pub fn strided_fft<T: Real>(data: &mut [Complex<T>], plan: &Plan<T>, count: usize) {
    let m = plan.len();
    assert_eq!(data.len(), m * count, "strided batch shape mismatch");
    let mut gathered = vec![Complex::ZERO; m];
    let mut scratch = vec![Complex::ZERO; m];
    for q in 0..count {
        crate::permute::gather_strided(data, &mut gathered, q, count);
        plan.execute_with_scratch(&mut gathered, &mut scratch);
        crate::permute::scatter_strided(&gathered, data, q, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn rows_signal(rows: usize, m: usize) -> Vec<Complex64> {
        (0..rows * m)
            .map(|i| c64((i as f64 * 0.13).sin(), (i as f64 * 0.77).cos()))
            .collect()
    }

    #[test]
    fn serial_batch_matches_per_row_naive() {
        let (rows, m) = (5, 16);
        let data = rows_signal(rows, m);
        let mut got = data.clone();
        BatchFft::new(m, Direction::Forward, 1).execute(&mut got);
        for r in 0..rows {
            let want = dft_naive(&data[r * m..(r + 1) * m]);
            assert!(max_abs_diff(&got[r * m..(r + 1) * m], &want) < 1e-10);
        }
    }

    #[test]
    fn threaded_batch_matches_serial() {
        let (rows, m) = (64, 128);
        let data = rows_signal(rows, m);
        let mut serial = data.clone();
        let mut threaded = data;
        BatchFft::new(m, Direction::Forward, 1).execute(&mut serial);
        BatchFft::new(m, Direction::Forward, 4).execute(&mut threaded);
        // Identical plans must give bitwise-identical results regardless of
        // the thread split.
        assert_eq!(
            serial.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            threaded.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (rows, m) = (3, 8);
        let data = rows_signal(rows, m);
        let mut got = data.clone();
        BatchFft::new(m, Direction::Forward, 16).execute(&mut got);
        let mut want = data;
        BatchFft::new(m, Direction::Forward, 1).execute(&mut want);
        assert!(max_abs_diff(&got, &want) < 1e-15);
    }

    #[test]
    fn inverse_batch_roundtrip() {
        let (rows, m) = (7, 30);
        let data = rows_signal(rows, m);
        let mut buf = data.clone();
        BatchFft::new(m, Direction::Forward, 2).execute(&mut buf);
        BatchFft::new(m, Direction::Inverse, 2).execute(&mut buf);
        assert!(max_abs_diff(&buf, &data) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_batch() {
        let mut data = vec![Complex64::ZERO; 10];
        BatchFft::new(4, Direction::Forward, 1).execute(&mut data);
    }

    #[test]
    fn strided_fft_equals_transpose_batch_transpose() {
        // F_m ⊗ I_c  ==  P·(I_c ⊗ F_m)·P⁻¹
        let (m, c) = (16, 6);
        let data = rows_signal(c, m); // length m*c
        let plan = Plan::forward(m);

        let mut got = data.clone();
        strided_fft(&mut got, &plan, c);

        // stride_permute with ℓ=m makes row q of `reference` equal the
        // strided sub-vector q of `data`.
        let mut reference = vec![Complex64::ZERO; m * c];
        crate::permute::stride_permute(&data, &mut reference, m);
        BatchFft::new(m, Direction::Forward, 1).execute(&mut reference);
        let mut back = vec![Complex64::ZERO; m * c];
        crate::permute::stride_unpermute(&reference, &mut back, m);

        assert!(max_abs_diff(&got, &back) < 1e-12);
    }
}
