//! Batched transforms — the `I_ℓ ⊗ F_m` Kronecker pattern.
//!
//! §6(a) of the paper: "A Kronecker product of the form `I ⊗ A` expresses
//! parallelism naturally. It says that ℓ copies of the matrix A are to be
//! applied independently on ℓ contiguous segments of stride-one data."
//! This module is that operator: a batch of contiguous same-size FFTs.
//!
//! Execution is row-parallel on a persistent [`ThreadPool`] (the paper's
//! OpenMP level): a `BatchFft` built with `threads > 1` owns its own pool,
//! spawned once at plan time and parked between calls, and
//! [`BatchFft::execute_pooled`] runs on any external pool with
//! caller-provided scratch — zero per-call allocation, zero per-call
//! thread spawning. Rows are split into balanced contiguous ranges with
//! deterministic boundaries, and every row is an independent transform,
//! so the output is bitwise identical for every worker count (pinned by
//! `tests/batch_equivalence.rs`).

use crate::plan::{Direction, Plan};
use crate::simd;
use soi_num::{AlignedBuf, Complex, Real};
use soi_pool::{part_range, SlicePtr, ThreadPool};
use std::sync::Arc;

/// Executor for `I_count ⊗ F_len`: `count` independent FFTs over
/// contiguous rows of length `len`.
#[derive(Debug)]
pub struct BatchFft<T> {
    plan: Arc<Plan<T>>,
    pool: ThreadPool,
    /// Batched AVX2 fast path, decided once at plan time: forward rows of
    /// length 8 (the production `F_P` shape, where per-row plan dispatch
    /// overhead rivals the butterfly work) run through
    /// [`simd::avx2::dft8_rows`], which keeps four rows of state in
    /// registers per sweep instead of round-tripping scratch.
    dft8: bool,
}

impl<T: Real> BatchFft<T> {
    /// Plan a batch of transforms of size `len` in `direction`, run on
    /// `threads` workers (1 = serial, spawns nothing). The workers are
    /// spawned once here and parked between `execute` calls.
    pub fn new(len: usize, direction: Direction, threads: usize) -> Self {
        Self::with_plan(Arc::new(Plan::new(len, direction)), threads)
    }

    /// Build a batch executor around an existing shared plan (e.g. from a
    /// [`crate::plan::Planner`] cache) instead of planning from scratch.
    pub fn with_plan(plan: Arc<Plan<T>>, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let dft8 = plan.len() == 8
            && plan.direction() == Direction::Forward
            && simd::is_c64::<T>()
            && simd::enabled();
        Self {
            plan,
            pool: ThreadPool::new(threads),
            dft8,
        }
    }

    /// The shared row plan.
    pub fn plan(&self) -> &Plan<T> {
        &self.plan
    }

    /// Row length.
    pub fn row_len(&self) -> usize {
        self.plan.len()
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Per-worker scratch elements [`Self::execute_pooled`] and
    /// [`Self::execute_with_scratch`] need (the row plan's scratch size).
    pub fn scratch_len(&self) -> usize {
        self.plan.scratch_len()
    }

    /// Transform every contiguous `row_len`-sized row of `data` in place,
    /// on the internal pool. Convenience wrapper around
    /// [`Self::execute_pooled`] that allocates the scratch arena.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the row length.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let m = self.plan.len();
        let rows = data.len() / m;
        let parts = self.pool.threads().min(rows).max(1);
        let mut scratch = AlignedBuf::zeroed(parts * self.scratch_len());
        self.execute_pooled(data, &self.pool, &mut scratch);
    }

    /// Serial (calling-thread) execution reusing caller scratch of at
    /// least [`Self::scratch_len`] elements; allocation-free.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the row length or the
    /// scratch is too short.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        let m = self.plan.len();
        assert!(
            data.len() % m == 0,
            "batch data length {} not a multiple of row length {m}",
            data.len()
        );
        assert!(
            scratch.len() >= self.scratch_len(),
            "batch scratch too short: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        #[cfg(target_arch = "x86_64")]
        if self.dft8 {
            let rows = data.len() / m;
            // SAFETY: `dft8` implies AVX2+FMA detected and `T = f64`.
            unsafe { simd::avx2::dft8_rows(simd::c64s_mut(data), rows, true) };
            return;
        }
        for row in data.chunks_exact_mut(m) {
            self.plan.execute_with_scratch(row, scratch);
        }
    }

    /// Row-parallel execution on an external pool, reusing a caller
    /// scratch arena of at least `min(pool.threads(), rows) ·
    /// scratch_len()` elements; allocation-free. Rows are assigned to
    /// workers in balanced contiguous ranges with deterministic
    /// boundaries, so the result is bitwise identical to serial.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the row length or the
    /// scratch arena is too short.
    pub fn execute_pooled(
        &self,
        data: &mut [Complex<T>],
        pool: &ThreadPool,
        scratch: &mut [Complex<T>],
    ) {
        let m = self.plan.len();
        assert!(
            data.len() % m == 0,
            "batch data length {} not a multiple of row length {m}",
            data.len()
        );
        let rows = data.len() / m;
        if rows == 0 {
            return;
        }
        let parts = pool.threads().min(rows);
        let stride = self.scratch_len();
        assert!(
            scratch.len() >= parts * stride,
            "batch scratch arena too short: {} < {parts}x{stride}",
            scratch.len()
        );
        if parts == 1 {
            return self.execute_with_scratch(data, scratch);
        }
        let data_ptr = SlicePtr::new(data);
        let scratch_ptr = SlicePtr::new(scratch);
        pool.run(parts, |t| {
            let (r0, rl) = part_range(rows, parts, t);
            // SAFETY: row ranges are disjoint across tasks and each task
            // uses its own scratch stripe; both borrows end at the
            // `run` barrier.
            let chunk = unsafe { data_ptr.slice(r0 * m, rl * m) };
            let scr = unsafe { scratch_ptr.slice(t * stride, stride) };
            #[cfg(target_arch = "x86_64")]
            if self.dft8 {
                // SAFETY: `dft8` implies AVX2+FMA detected and `T = f64`.
                unsafe { simd::avx2::dft8_rows(simd::c64s_mut(chunk), rl, true) };
                return;
            }
            for row in chunk.chunks_exact_mut(m) {
                self.plan.execute_with_scratch(row, scr);
            }
        });
    }
}

/// One-shot helper: `count` forward FFTs of length `len` over `data`.
pub fn batch_fft_forward<T: Real>(data: &mut [Complex<T>], len: usize, threads: usize) {
    BatchFft::new(len, Direction::Forward, threads).execute(data);
}

/// Strided batch: apply `F_m` to `count` sub-vectors of `data`, where
/// sub-vector `q` occupies indices `{q + i·count : i < m}` — the
/// `F_m ⊗ I_count` pattern. Gathers into scratch, transforms, scatters.
/// Convenience wrapper around [`strided_fft_with_scratch`] that allocates
/// the workspace.
pub fn strided_fft<T: Real>(data: &mut [Complex<T>], plan: &Plan<T>, count: usize) {
    let mut work = AlignedBuf::zeroed(plan.len() + plan.scratch_len());
    strided_fft_with_scratch(data, plan, count, &mut work);
}

/// [`strided_fft`] reusing a caller workspace of at least
/// `plan.len() + plan.scratch_len()` elements (gather buffer + FFT
/// scratch); allocation-free.
pub fn strided_fft_with_scratch<T: Real>(
    data: &mut [Complex<T>],
    plan: &Plan<T>,
    count: usize,
    work: &mut [Complex<T>],
) {
    let m = plan.len();
    assert_eq!(data.len(), m * count, "strided batch shape mismatch");
    assert!(
        work.len() >= m + plan.scratch_len(),
        "strided workspace too short: {} < {}",
        work.len(),
        m + plan.scratch_len()
    );
    let (gathered, scratch) = work.split_at_mut(m);
    for q in 0..count {
        crate::permute::gather_strided(data, gathered, q, count);
        plan.execute_with_scratch(gathered, scratch);
        crate::permute::scatter_strided(gathered, data, q, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn rows_signal(rows: usize, m: usize) -> Vec<Complex64> {
        (0..rows * m)
            .map(|i| c64((i as f64 * 0.13).sin(), (i as f64 * 0.77).cos()))
            .collect()
    }

    #[test]
    fn serial_batch_matches_per_row_naive() {
        let (rows, m) = (5, 16);
        let data = rows_signal(rows, m);
        let mut got = data.clone();
        BatchFft::new(m, Direction::Forward, 1).execute(&mut got);
        for r in 0..rows {
            let want = dft_naive(&data[r * m..(r + 1) * m]);
            assert!(max_abs_diff(&got[r * m..(r + 1) * m], &want) < 1e-10);
        }
    }

    #[test]
    fn threaded_batch_matches_serial() {
        let (rows, m) = (64, 128);
        let data = rows_signal(rows, m);
        let mut serial = data.clone();
        let mut threaded = data;
        BatchFft::new(m, Direction::Forward, 1).execute(&mut serial);
        BatchFft::new(m, Direction::Forward, 4).execute(&mut threaded);
        // Identical plans must give bitwise-identical results regardless of
        // the thread split.
        assert_eq!(
            serial.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            threaded.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (rows, m) = (3, 8);
        let data = rows_signal(rows, m);
        let mut got = data.clone();
        BatchFft::new(m, Direction::Forward, 16).execute(&mut got);
        let mut want = data;
        BatchFft::new(m, Direction::Forward, 1).execute(&mut want);
        assert!(max_abs_diff(&got, &want) < 1e-15);
    }

    #[test]
    fn inverse_batch_roundtrip() {
        let (rows, m) = (7, 30);
        let data = rows_signal(rows, m);
        let mut buf = data.clone();
        BatchFft::new(m, Direction::Forward, 2).execute(&mut buf);
        BatchFft::new(m, Direction::Inverse, 2).execute(&mut buf);
        assert!(max_abs_diff(&buf, &data) < 1e-11);
    }

    #[test]
    fn dft8_rows_batch_matches_naive_and_is_thread_invariant() {
        // The production F_P shape: forward rows of length 8 take the
        // batched register-resident kernel when SIMD is live, the plan
        // path otherwise — both must match the naive DFT, and the thread
        // split must never change a bit.
        let (rows, m) = (13, 8);
        let data = rows_signal(rows, m);
        let mut serial = data.clone();
        BatchFft::new(m, Direction::Forward, 1).execute(&mut serial);
        for r in 0..rows {
            let want = dft_naive(&data[r * m..(r + 1) * m]);
            assert!(max_abs_diff(&serial[r * m..(r + 1) * m], &want) < 1e-12);
        }
        let mut threaded = data;
        BatchFft::new(m, Direction::Forward, 4).execute(&mut threaded);
        assert_eq!(
            serial.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect::<Vec<_>>(),
            threaded.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_batch() {
        let mut data = vec![Complex64::ZERO; 10];
        BatchFft::new(4, Direction::Forward, 1).execute(&mut data);
    }

    #[test]
    fn external_pool_with_reused_scratch_matches_serial() {
        // Mixed-radix rows (m = 24) exercise the staging-copy scratch
        // path; the arena is reused across calls without re-zeroing.
        let (rows, m) = (13, 24);
        let batch = BatchFft::new(m, Direction::Forward, 1);
        let pool = ThreadPool::new(4);
        let parts = pool.threads().min(rows);
        let mut scratch = vec![Complex64::ZERO; parts * batch.scratch_len()];
        for round in 0..3 {
            let data = rows_signal(rows + round, m);
            let mut want = data.clone();
            batch.execute_with_scratch(&mut want, &mut vec![Complex64::ZERO; batch.scratch_len()]);
            let mut got = data;
            batch.execute_pooled(&mut got, &pool, &mut scratch);
            assert_eq!(
                got.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect::<Vec<_>>(),
                want.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect::<Vec<_>>(),
                "round {round}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "scratch arena too short")]
    fn pooled_execute_rejects_short_scratch() {
        let batch = BatchFft::<f64>::new(8, Direction::Forward, 1);
        let pool = ThreadPool::new(2);
        let mut data = vec![Complex64::ZERO; 32];
        let mut scratch = vec![Complex64::ZERO; 7];
        batch.execute_pooled(&mut data, &pool, &mut scratch);
    }

    #[test]
    fn strided_fft_equals_transpose_batch_transpose() {
        // F_m ⊗ I_c  ==  P·(I_c ⊗ F_m)·P⁻¹
        let (m, c) = (16, 6);
        let data = rows_signal(c, m); // length m*c
        let plan = Plan::forward(m);

        let mut got = data.clone();
        strided_fft(&mut got, &plan, c);

        // stride_permute with ℓ=m makes row q of `reference` equal the
        // strided sub-vector q of `data`.
        let mut reference = vec![Complex64::ZERO; m * c];
        crate::permute::stride_permute(&data, &mut reference, m);
        BatchFft::new(m, Direction::Forward, 1).execute(&mut reference);
        let mut back = vec![Complex64::ZERO; m * c];
        crate::permute::stride_unpermute(&reference, &mut back, m);

        assert!(max_abs_diff(&got, &back) < 1e-12);
    }

    #[test]
    fn strided_fft_scratch_variant_matches_allocating() {
        let (m, c) = (20, 5); // mixed-radix plan: scratch_len > m
        let data = rows_signal(c, m);
        let plan = Plan::forward(m);
        let mut a = data.clone();
        strided_fft(&mut a, &plan, c);
        let mut b = data;
        let mut work = vec![Complex64::ZERO; m + plan.scratch_len()];
        strided_fft_with_scratch(&mut b, &plan, c, &mut work);
        // Same arithmetic, same order — bitwise equal.
        assert_eq!(
            a.iter().map(|v| (v.re.to_bits(), v.im.to_bits())).collect::<Vec<_>>(),
            b.iter().map(|v| (v.re.to_bits(), v.im.to_bits())).collect::<Vec<_>>()
        );
    }
}
