//! Bluestein's chirp-z algorithm: an `O(N log N)` DFT for arbitrary `N`,
//! including large primes, via a cyclic convolution at a padded
//! power-of-two size.
//!
//! `y_k = b̄_k · Σ_j x_j b̄_j · b_{k−j}` with chirp `b_j = exp(iπ j²/N)`
//! (signs per direction). The convolution runs through the Stockham
//! engine at `m = next_pow2(2N−1)`.

use crate::codelet::{self, Codelet, Dispatch};
use crate::fourstep::RawFft;
use crate::plan::Planner;
use crate::simd;
use crate::twiddle::Sign;
use soi_num::{AlignedBuf, Complex, Real};
use std::sync::Arc;

/// A prepared arbitrary-size Bluestein transform.
#[derive(Debug, Clone)]
pub struct BluesteinFft<T> {
    n: usize,
    m: usize,
    sign: Sign,
    /// Chirp `b_j = exp(∓iπ j²/n)`, j < n (cache-line aligned stream).
    chirp: AlignedBuf<Complex<T>>,
    /// Forward FFT (size m) of the zero-padded conjugate-chirp filter
    /// (cache-line aligned stream).
    filter_hat: AlignedBuf<Complex<T>>,
    /// Post-multiply chirp with the `1/m` convolution normalization
    /// folded in at plan time, so the output sweep is one complex
    /// product per point instead of scale-then-multiply.
    post_chirp: AlignedBuf<Complex<T>>,
    /// Size-`m` convolution engines (planner-cached Stockham plans; the
    /// padded size is a power of two by construction).
    fwd: Arc<RawFft<T>>,
    inv: Arc<RawFft<T>>,
}

impl<T: Real> BluesteinFft<T> {
    /// Plan a transform of any positive size `n`.
    pub fn new(n: usize, sign: Sign) -> Self {
        Self::new_in(n, sign, &Planner::new())
    }

    /// Plan inside a [`Planner`], pulling the two size-`m` convolution
    /// engines from the planner's raw-engine cache — so many Bluestein
    /// plans sharing a padded size build the Stockham twiddles once.
    pub fn new_in(n: usize, sign: Sign, planner: &Planner<T>) -> Self {
        assert!(n > 0);
        let m = (2 * n - 1).next_power_of_two();
        // b_j = exp(∓iπ j²/n) = ω_{2n}^{j²} with j² reduced mod 2n.
        let two_n = 2 * n;
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|j| {
                let jj = ((j as u128 * j as u128) % two_n as u128) as usize;
                sign.root(jj, two_n)
            })
            .collect();
        let fwd = planner.raw(m, Sign::Forward);
        let inv = planner.raw(m, Sign::Inverse);
        // Filter h_j = conj(b_j) for |j| < n, wrapped cyclically at m.
        let mut h = vec![Complex::ZERO; m];
        for j in 0..n {
            h[j] = chirp[j].conj();
            if j != 0 {
                h[m - j] = chirp[j].conj();
            }
        }
        fwd.execute(&mut h);
        let inv_m = T::ONE / T::from_usize(m);
        let post: Vec<Complex<T>> = chirp.iter().map(|c| c.scale(inv_m)).collect();
        Self {
            n,
            m,
            sign,
            chirp: AlignedBuf::from_slice(&chirp),
            filter_hat: AlignedBuf::from_slice(&h),
            post_chirp: AlignedBuf::from_slice(&post),
            fwd,
            inv,
        }
    }

    /// The butterfly codelets the inner convolution engines dispatch to.
    pub fn codelets(&self) -> Vec<Codelet> {
        let mut v = self.fwd.codelets();
        v.extend(self.inv.codelets());
        codelet::dedup(v)
    }

    /// The inner engines' codelets with their active dispatch.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        let mut v = self.fwd.codelet_dispatch();
        v.extend(self.inv.codelet_dispatch());
        codelet::dedup_dispatch(v)
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the empty transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Padded convolution size (power of two ≥ 2n−1).
    pub fn padded_len(&self) -> usize {
        self.m
    }

    /// In-place execute.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let mut scratch = AlignedBuf::zeroed(self.scratch_len());
        self.execute_with_scratch(data, &mut scratch);
    }

    /// Scratch elements [`Self::execute_with_scratch`] needs: the padded
    /// convolution buffer plus the Stockham ping-pong buffer, `2m` total.
    pub fn scratch_len(&self) -> usize {
        2 * self.m
    }

    /// In-place execute reusing caller scratch (`scratch.len()` must be at
    /// least [`Self::scratch_len`]); allocation-free. The padding region
    /// is re-zeroed on every call, so stale scratch contents are harmless.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n);
        assert!(
            scratch.len() >= self.scratch_len(),
            "bluestein scratch too short: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        let (a, rest) = scratch.split_at_mut(self.m);
        let st = &mut rest[..self.m];
        // All three chirp sweeps run through the SIMD seam: the pre- and
        // post-multiplies as weighted products against the aligned chirp
        // streams (the 1/m normalization is baked into `post_chirp`), the
        // pointwise filter as an in-place weighted product.
        simd::weighted_product(&mut a[..self.n], data, &self.chirp);
        a[self.n..].fill(Complex::ZERO);
        self.fwd.execute_with_scratch(a, st);
        simd::weighted_product_in(a, &self.filter_hat);
        self.inv.execute_with_scratch(a, st);
        simd::weighted_product(data, &a[..self.n], &self.post_chirp);
    }

    /// Out-of-place execute.
    pub fn process(&self, src: &[Complex<T>], dst: &mut [Complex<T>]) {
        dst.copy_from_slice(src);
        self.execute(dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, dft_naive_signed};
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.83).sin() + 0.2, (i as f64 * 0.29).cos()))
            .collect()
    }

    #[test]
    fn matches_naive_on_primes() {
        for n in [2usize, 3, 5, 7, 11, 13, 97, 101, 257, 997] {
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = BluesteinFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-8 * n as f64, "n={n} err={err}");
        }
    }

    #[test]
    fn matches_naive_on_composites_and_pow2() {
        for n in [1usize, 4, 6, 12, 64, 100, 1000] {
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = BluesteinFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-8 * n.max(4) as f64, "n={n}");
        }
    }

    #[test]
    fn inverse_direction() {
        for n in [7usize, 31, 50] {
            let x = test_signal(n);
            let want = dft_naive_signed(&x, Sign::Inverse);
            let plan = BluesteinFft::new(n, Sign::Inverse);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn roundtrip_prime() {
        let n = 61;
        let x = test_signal(n);
        let fwd = BluesteinFft::new(n, Sign::Forward);
        let inv = BluesteinFft::new(n, Sign::Inverse);
        let mut buf = x.clone();
        fwd.execute(&mut buf);
        inv.execute(&mut buf);
        let back: Vec<Complex64> = buf.iter().map(|&v| v / n as f64).collect();
        assert!(max_abs_diff(&back, &x) < 1e-12);
    }

    #[test]
    fn padded_length_is_sufficient_power_of_two() {
        let plan = BluesteinFft::<f64>::new(1000, Sign::Forward);
        assert!(plan.padded_len().is_power_of_two());
        assert!(plan.padded_len() >= 1999);
    }

    #[test]
    fn large_prime_chirp_indices_do_not_lose_precision() {
        // j² overflows u64 ranges where naive f64 angle math degrades;
        // the u128 modular reduction must keep the transform accurate.
        let n = 4093; // prime
        let x = test_signal(n);
        let plan = BluesteinFft::new(n, Sign::Forward);
        let mut got = x.clone();
        plan.execute(&mut got);
        // Spot-check a few bins against the naive single-bin DFT.
        for k in [0usize, 1, 17, 2048, 4092] {
            let want = crate::dft::dft_bin(&x, k);
            assert!((got[k] - want).abs() < 1e-7, "bin {k}");
        }
    }
}
