//! Codelet introspection: which butterfly kernels a plan dispatches to.
//!
//! Every engine reports the list of butterfly codelets its execution
//! path runs through. The distinction that matters for performance (and
//! that tests assert on) is hand-written codelet vs the generic `O(r²)`
//! fallback butterfly: the paper's §7.4 tuning story only holds when the
//! dominant factors (2/4/8 for the power-of-two sizes, 5 and 7 for the
//! oversampled `M' = M·μ/ν` sizes) run dedicated kernels.

use std::fmt;

/// One butterfly kernel in an engine's dispatch table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Codelet {
    /// Hand-written radix-2 butterfly.
    Radix2,
    /// Hand-written radix-3 butterfly.
    Radix3,
    /// Hand-written radix-4 butterfly.
    Radix4,
    /// Hand-written radix-5 butterfly (real-symmetric half-complexity).
    Radix5,
    /// Hand-written radix-7 butterfly (real-symmetric half-complexity).
    Radix7,
    /// Hand-written radix-8 butterfly (Stockham stages).
    Radix8,
    /// The generic `O(r²)` dense butterfly for the contained radix.
    Generic(usize),
    /// The Hermitian split/merge epilogue of the real-input (r2c/c2r)
    /// transforms: a length-`h+1` conjugate-even unpack/repack sweep.
    Split,
}

impl Codelet {
    /// The radix this codelet combines.
    pub fn radix(self) -> usize {
        match self {
            Codelet::Radix2 => 2,
            Codelet::Radix3 => 3,
            Codelet::Radix4 => 4,
            Codelet::Radix5 => 5,
            Codelet::Radix7 => 7,
            Codelet::Radix8 => 8,
            Codelet::Generic(r) => r,
            Codelet::Split => 2,
        }
    }

    /// True for the dense fallback butterfly.
    pub fn is_generic(self) -> bool {
        matches!(self, Codelet::Generic(_))
    }

    /// The codelet a mixed-radix level of radix `r` dispatches to. Must
    /// mirror the `match` in `MixedRadixFft::rec` exactly (pinned by a
    /// test there).
    pub fn for_mixed_radix(r: usize) -> Codelet {
        match r {
            2 => Codelet::Radix2,
            3 => Codelet::Radix3,
            4 => Codelet::Radix4,
            5 => Codelet::Radix5,
            7 => Codelet::Radix7,
            r => Codelet::Generic(r),
        }
    }
}

impl fmt::Display for Codelet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Codelet::Generic(r) => write!(f, "generic({r})"),
            Codelet::Split => f.write_str("split"),
            other => write!(f, "r{}", other.radix()),
        }
    }
}

/// Which implementation of a codelet an engine's execution path actually
/// runs: the runtime-dispatched SIMD kernel or the portable scalar one.
///
/// Dispatch is decided once at plan-construction time from the CPU
/// feature set (and the `SOI_NO_SIMD` ablation knob), so a given plan
/// reports — and executes — the same dispatch for its whole lifetime:
/// that is what makes SIMD execution bitwise reproducible run-to-run and
/// across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dispatch {
    /// 256-bit AVX2 + FMA kernel (2 complex `f64` per register).
    Avx2Fma,
    /// Portable scalar kernel (the ablation / non-x86 fallback).
    Portable,
}

impl Dispatch {
    /// Short name, matching the conv kernel's report strings.
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Avx2Fma => "avx2+fma",
            Dispatch::Portable => "portable",
        }
    }

    /// True for any vectorized dispatch.
    pub fn is_simd(self) -> bool {
        self != Dispatch::Portable
    }
}

impl fmt::Display for Dispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Deduplicate and sort a codelet list (helper for engines assembling
/// reports from per-stage radices).
pub fn dedup(mut v: Vec<Codelet>) -> Vec<Codelet> {
    v.sort();
    v.dedup();
    v
}

/// Deduplicate and sort a per-stage `(codelet, dispatch)` report. A
/// codelet can legitimately appear twice with different dispatches (e.g.
/// a radix-4 level vectorized at one depth and scalar at another), so
/// pairs — not codelets — are the dedup key.
pub fn dedup_dispatch(mut v: Vec<(Codelet, Dispatch)>) -> Vec<(Codelet, Dispatch)> {
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_roundtrip_and_generic_flag() {
        for (c, r) in [
            (Codelet::Radix2, 2),
            (Codelet::Radix3, 3),
            (Codelet::Radix4, 4),
            (Codelet::Radix5, 5),
            (Codelet::Radix7, 7),
            (Codelet::Radix8, 8),
            (Codelet::Generic(11), 11),
        ] {
            assert_eq!(c.radix(), r);
            assert_eq!(c.is_generic(), matches!(c, Codelet::Generic(_)));
        }
    }

    #[test]
    fn mixed_radix_dispatch_table() {
        assert_eq!(Codelet::for_mixed_radix(5), Codelet::Radix5);
        assert_eq!(Codelet::for_mixed_radix(7), Codelet::Radix7);
        assert_eq!(Codelet::for_mixed_radix(11), Codelet::Generic(11));
    }

    #[test]
    fn display_and_dedup() {
        assert_eq!(Codelet::Radix5.to_string(), "r5");
        assert_eq!(Codelet::Generic(13).to_string(), "generic(13)");
        let v = dedup(vec![Codelet::Radix4, Codelet::Radix2, Codelet::Radix4]);
        assert_eq!(v, vec![Codelet::Radix2, Codelet::Radix4]);
    }

    #[test]
    fn dispatch_names_and_dedup() {
        assert_eq!(Dispatch::Avx2Fma.name(), "avx2+fma");
        assert_eq!(Dispatch::Portable.to_string(), "portable");
        assert!(Dispatch::Avx2Fma.is_simd());
        assert!(!Dispatch::Portable.is_simd());
        // Same codelet under two dispatches survives the dedup; exact
        // duplicates collapse.
        let v = dedup_dispatch(vec![
            (Codelet::Radix4, Dispatch::Portable),
            (Codelet::Radix4, Dispatch::Avx2Fma),
            (Codelet::Radix4, Dispatch::Avx2Fma),
        ]);
        assert_eq!(
            v,
            vec![
                (Codelet::Radix4, Dispatch::Avx2Fma),
                (Codelet::Radix4, Dispatch::Portable),
            ]
        );
    }
}
