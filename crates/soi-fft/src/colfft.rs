//! Batched column DFTs for the four-step engine's SIMD fast path.
//!
//! The four-step decomposition needs `b` independent `a`-point DFTs down
//! the *columns* of the row-major `a×b` matrix. The classic formulation
//! materializes the columns with a full transpose pass; this module
//! removes that pass entirely by exploiting an identity of the Stockham
//! layout: a size-`a` Stockham ladder applied to `w` interleaved streams
//! is *the same kernel sequence* with every stride multiplied by `w`.
//! So a block of `w` adjacent columns — whose elements sit at
//! `data[i·b + c0 + q]`, i.e. contiguous `w`-runs per row — feeds the
//! ordinary stage kernels directly: the first stage reads the matrix
//! strided (`xld = b`), later stages ping-pong through two packed
//! `a·w` tiles that stay cache-resident, and the finished tile is
//! scattered back through [`crate::simd::avx2::twiddle_rows`] with the
//! four-step twiddle multiply fused into the store. Net memory traffic
//! for transpose + `F_a` rows + twiddle: one read and one write of the
//! matrix.
//!
//! Supported sizes are `a = 5^j·2^k` (radix-5 stages first, then the
//! 8/4/2 ladder) — exactly the splits the planner produces for the
//! paper's smooth `M' = 5·2^k` production sizes. Other factors fall
//! back to the transpose-based path in [`crate::fourstep`].

use crate::twiddle::{Sign, StageTwiddles};
use soi_num::Complex64;

/// Tile budget in complex elements (`a·w ≤ TILE_ELEMS`): two ping-pong
/// tiles of 2048 elements are 64 KiB — inside L2 with room for the
/// streamed rows, and small enough that stage passes stay cache-hot.
const TILE_ELEMS: usize = 2048;

/// A prepared batched column transform of size `a` over `w` streams.
///
/// Construction is host-gated by the caller (only built when the
/// four-step engine decided on SIMD dispatch), so `run_block` may assume
/// AVX2+FMA.
#[derive(Debug, Clone)]
pub(crate) struct ColumnFft {
    a: usize,
    w: usize,
    stages: Vec<StageTwiddles<f64>>,
    /// Radix-5 butterfly constants `(Re ω₅, Re ω₅², Im ω₅, Im ω₅²)`,
    /// direction-signed (also the direction oracle for the pow2 stages).
    r5: (f64, f64, f64, f64),
}

impl ColumnFft {
    /// `true` when `a` factors as `5^j·2^k` with `a ≥ 2` — the radix set
    /// the batched stage kernels cover.
    pub(crate) fn supports(a: usize) -> bool {
        let mut m = a;
        while m % 5 == 0 {
            m /= 5;
        }
        a >= 2 && m.is_power_of_two()
    }

    /// Pick the stream width for a split `(a, b)`: the largest power of
    /// two `w` dividing `b` with `a·w` inside the tile budget (and
    /// `w ≥ 2` so the vector kernels have a full lane pair). `None` when
    /// no such width exists — the caller keeps the transpose-based path.
    pub(crate) fn width_for(a: usize, b: usize) -> Option<usize> {
        if !Self::supports(a) {
            return None;
        }
        let cap = (TILE_ELEMS / a).max(2);
        let mut w = cap.next_power_of_two();
        if w > cap {
            w /= 2;
        }
        while w >= 2 && b % w != 0 {
            w /= 2;
        }
        (w >= 2).then_some(w)
    }

    /// Plan the batched ladder. `w` must come from [`Self::width_for`].
    pub(crate) fn new(a: usize, w: usize, sign: Sign) -> Self {
        assert!(Self::supports(a), "unsupported column size {a}");
        assert!(w >= 2 && w % 2 == 0);
        let mut stages = Vec::new();
        let mut cur = a;
        while cur > 1 {
            let r = if cur % 5 == 0 {
                5
            } else if cur % 8 == 0 {
                8
            } else if cur % 4 == 0 {
                4
            } else {
                2
            };
            stages.push(StageTwiddles::new(cur, r, sign));
            cur /= r;
        }
        let w1 = sign.root(1, 5);
        let w2 = sign.root(2, 5);
        Self {
            a,
            w,
            stages,
            r5: (w1.re, w2.re, w1.im, w2.im),
        }
    }

    /// Stream width (columns per block).
    pub(crate) fn width(&self) -> usize {
        self.w
    }

    /// Elements of one ping-pong tile; callers provide `2·tile_len()`
    /// scratch to [`Self::run_block`].
    pub(crate) fn tile_len(&self) -> usize {
        self.a * self.w
    }

    /// The stage radices of the ladder (for dispatch introspection).
    pub(crate) fn radices(&self) -> impl Iterator<Item = usize> + '_ {
        self.stages.iter().map(|st| st.radix)
    }

    /// Transform columns `[c0, c0+w)` of the row-major `a×ld` matrix in
    /// `data` (so `data.len() ≥ (a−1)·ld + c0 + w`), multiply each
    /// element by the matching entry of the row-major twiddle table `tw`
    /// (same `a×ld` shape), and store back in place. `tiles` is the
    /// `2·tile_len()` ping-pong scratch.
    ///
    /// # Panics
    /// Panics (via `unreachable!`) on non-x86_64 targets — construction
    /// is SIMD-gated, so this cannot be reached there.
    pub(crate) fn run_block(
        &self,
        data: &mut [Complex64],
        ld: usize,
        c0: usize,
        tw: &[Complex64],
        tiles: &mut [Complex64],
    ) {
        let (a, w) = (self.a, self.w);
        assert!(c0 + w <= ld);
        assert!(data.len() >= (a - 1) * ld + c0 + w);
        assert!(tw.len() >= (a - 1) * ld + c0 + w);
        assert!(tiles.len() >= 2 * a * w);
        #[cfg(not(target_arch = "x86_64"))]
        {
            unreachable!("ColumnFft is only constructed under SIMD dispatch");
        }
        #[cfg(target_arch = "x86_64")]
        {
            // Stage tables are direction-signed; recover the flag the
            // radix-4/8 kernels need from the first-root imaginary sign
            // (forward roots have Im ω₅ < 0).
            let forward = self.r5.2 <= 0.0;
            let (c1, c2, s1, s2) = self.r5;
            let mut s = w;
            let mut live = 0usize; // which tile holds the running result
            for (i, st) in self.stages.iter().enumerate() {
                let m = st.m;
                let (first, second) = tiles.split_at_mut(a * w);
                let second = &mut second[..a * w];
                let (src, dst, xld): (&[Complex64], &mut [Complex64], usize) = if i == 0 {
                    (&data[c0..], first, ld)
                } else if live == 0 {
                    (first, second, s)
                } else {
                    (second, first, s)
                };
                // Safety: construction is gated on AVX2+FMA dispatch;
                // `w` is even, so `s` and every later stride are even.
                unsafe {
                    match st.radix {
                        2 => crate::simd::avx2::stockham_q2(src, dst, &st.tw, m, s, xld),
                        4 => crate::simd::avx2::stockham_q4(src, dst, &st.tw, m, s, xld, forward),
                        5 => crate::simd::avx2::stockham_q5(
                            src, dst, &st.tw, m, s, xld, c1, c2, s1, s2,
                        ),
                        8 => crate::simd::avx2::stockham_q8(src, dst, &st.tw, m, s, xld, forward),
                        r => unreachable!("unsupported column radix {r}"),
                    }
                }
                live = if i == 0 { 0 } else { 1 - live };
                s *= st.radix;
            }
            let result = &tiles[live * (a * w)..][..a * w];
            // Safety: AVX2+FMA gated as above; `w` even; row `r` of the
            // scatter touches `data[r·ld + c0 ..][..w]`, in bounds by the
            // asserts at entry.
            unsafe {
                crate::simd::avx2::twiddle_rows(result, &tw[c0..], &mut data[c0..], a, w, ld);
            }
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::dft::dft_naive_signed;
    use soi_num::c64;

    fn col_signal(a: usize, w: usize) -> Vec<Complex64> {
        (0..a * w)
            .map(|i| c64((i as f64 * 0.61).sin() + 0.3, (i as f64 * 0.23).cos() - 0.1))
            .collect()
    }

    #[test]
    fn supports_recognizes_five_smooth_pow2() {
        for a in [2usize, 4, 5, 8, 10, 16, 20, 25, 32, 40, 80, 125, 320, 2048] {
            assert!(ColumnFft::supports(a), "{a}");
        }
        for a in [1usize, 3, 6, 7, 12, 15, 21, 24, 35, 60] {
            assert!(!ColumnFft::supports(a), "{a}");
        }
    }

    #[test]
    fn width_divides_b_and_fits_budget() {
        for (a, b) in [(5usize, 32768usize), (80, 2048), (320, 512), (32, 5120)] {
            let w = ColumnFft::width_for(a, b).unwrap();
            assert!(w >= 2 && b % w == 0 && a * w <= TILE_ELEMS, "a={a} b={b} w={w}");
        }
        assert_eq!(ColumnFft::width_for(6, 64), None); // unsupported radix
        assert_eq!(ColumnFft::width_for(4, 25), None); // no even divisor
    }

    #[test]
    fn batched_columns_match_naive_dft_times_twiddle() {
        if !crate::simd::cpu_supported() {
            return;
        }
        for &(a, ld) in &[(2usize, 8usize), (4, 8), (5, 8), (8, 16), (10, 8), (16, 8),
                          (20, 16), (25, 8), (40, 8), (64, 16), (80, 8), (320, 8)] {
            for sign in [Sign::Forward, Sign::Inverse] {
                let w = ColumnFft::width_for(a, ld).expect("width");
                let plan = ColumnFft::new(a, w, sign);
                let n = a * ld;
                let data0 = col_signal(a, ld);
                // Twiddle table in the four-step row-major layout.
                let tw: Vec<Complex64> = (0..a)
                    .flat_map(|k1| (0..ld).map(move |j2| (k1, j2)))
                    .map(|(k1, j2)| sign.root(k1 * j2, n))
                    .collect();
                let mut data = data0.clone();
                let mut tiles = vec![Complex64::ZERO; 2 * plan.tile_len()];
                let mut c0 = 0;
                while c0 < ld {
                    plan.run_block(&mut data, ld, c0, &tw, &mut tiles);
                    c0 += w;
                }
                for j2 in 0..ld {
                    let col: Vec<Complex64> =
                        (0..a).map(|j1| data0[j1 * ld + j2]).collect();
                    let want = dft_naive_signed(&col, sign);
                    for k1 in 0..a {
                        let scaled = want[k1] * sign.root(k1 * j2, n);
                        let got = data[k1 * ld + j2];
                        assert!(
                            (got - scaled).abs() < 1e-10 * (a as f64),
                            "a={a} {sign:?} col {j2} row {k1}: {got:?} vs {scaled:?}"
                        );
                    }
                }
            }
        }
    }
}
