//! Double-double reference FFT.
//!
//! §7.2 of the paper distinguishes a 290 dB SNR (SOI) from a 310 dB SNR
//! (MKL) — a one-digit difference sitting right at the f64 noise floor.
//! An f64 reference transform has the *same* ~310 dB error and cannot
//! resolve that gap, so reference spectra here are computed in
//! double-double (~31 digits) and only rounded at the very end.
//!
//! Power-of-two sizes use an iterative radix-2 decimation-in-time FFT with
//! bit-reversal (simplicity over speed — this is an oracle, not a kernel);
//! other sizes fall back to the naive `O(N²)` dd DFT.

use soi_num::dd::DdComplex;
use soi_num::{Complex, Real};

/// Forward DFT of `x` computed in double-double, returned as dd pairs.
pub fn dd_fft_forward(x: &[DdComplex]) -> Vec<DdComplex> {
    let n = x.len();
    if n <= 1 {
        return x.to_vec();
    }
    if n.is_power_of_two() {
        let mut data = x.to_vec();
        fft_pow2_in_place(&mut data);
        data
    } else {
        dd_dft_naive(x)
    }
}

/// High-precision reference spectrum of an f64 complex signal, rounded to
/// f64 `(re, im)` pairs at the end. The rounding error is ≤ half an ulp
/// per component, far below anything being measured.
pub fn reference_spectrum<T: Real>(x: &[Complex<T>]) -> Vec<(f64, f64)> {
    let wide: Vec<DdComplex> = x
        .iter()
        .map(|c| DdComplex::from_f64(c.re.to_f64(), c.im.to_f64()))
        .collect();
    dd_fft_forward(&wide).iter().map(|c| c.to_f64()).collect()
}

/// Naive `O(N²)` dd DFT (used directly for non-power-of-two sizes and as
/// the oracle for the fast dd path).
pub fn dd_dft_naive(x: &[DdComplex]) -> Vec<DdComplex> {
    let n = x.len();
    let mut y = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = DdComplex::ZERO;
        for (j, &xj) in x.iter().enumerate() {
            let w = DdComplex::root_of_unity(j * k % n, n);
            acc += xj * w;
        }
        y.push(acc);
    }
    y
}

/// Iterative radix-2 DIT with bit reversal, all arithmetic in dd.
fn fft_pow2_in_place(data: &mut [DdComplex]) {
    let n = data.len();
    let lg = n.trailing_zeros();
    // Bit-reversal permutation.
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - lg)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Precompute twiddles for the largest stage once; smaller stages use
    // strided reads of the same table: ω_len^k = ω_n^{k·(n/len)}.
    let half = n / 2;
    let table: Vec<DdComplex> = (0..half).map(|k| DdComplex::root_of_unity(k, n)).collect();
    let mut len = 2usize;
    while len <= n {
        let stride = n / len;
        let half_len = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half_len {
                let w = table[k * stride];
                let a = data[start + k];
                let b = data[start + k + half_len] * w;
                data[start + k] = a + b;
                data[start + k + half_len] = a - b;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::c64;

    fn dd_signal(n: usize) -> Vec<DdComplex> {
        (0..n)
            .map(|i| DdComplex::from_f64((i as f64 * 0.7).sin(), (i as f64 * 1.1).cos()))
            .collect()
    }

    #[test]
    fn pow2_matches_dd_naive() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = dd_signal(n);
            let fast = dd_fft_forward(&x);
            let naive = dd_dft_naive(&x);
            for (f, w) in fast.iter().zip(&naive) {
                assert!(
                    (f.re - w.re).abs().hi < 1e-28 * n as f64,
                    "n={n} re mismatch"
                );
                assert!(
                    (f.im - w.im).abs().hi < 1e-28 * n as f64,
                    "n={n} im mismatch"
                );
            }
        }
    }

    #[test]
    fn non_pow2_uses_naive_and_matches_f64_engine_loosely() {
        let n = 12;
        let x = dd_signal(n);
        let dd = dd_fft_forward(&x);
        let xf: Vec<_> = x.iter().map(|c| c64(c.re.to_f64(), c.im.to_f64())).collect();
        let f = crate::dft::dft_naive(&xf);
        for (d, v) in dd.iter().zip(&f) {
            let (re, im) = d.to_f64();
            assert!((re - v.re).abs() < 1e-12);
            assert!((im - v.im).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_spectrum_is_more_accurate_than_f64_fft() {
        // The dd reference and the f64 Stockham engine agree to f64
        // rounding levels, and the dd residual against the dd naive oracle
        // is dramatically smaller — i.e. the reference really carries
        // extra precision.
        let n = 256;
        let x: Vec<_> = (0..n)
            .map(|i| c64((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
            .collect();
        let reference = reference_spectrum(&x);
        let fast = crate::fft_forward(&x);
        let snr = soi_num::stats::snr_db_vs_pairs(&fast, &reference);
        // An f64 FFT measured against a dd reference shows its true noise
        // floor: comfortably above 250 dB but finite.
        assert!(snr > 250.0, "snr = {snr}");
        assert!(snr < 400.0, "snr = {snr} suspiciously clean");
    }

    #[test]
    fn dd_parseval() {
        let n = 64;
        let x = dd_signal(n);
        let y = dd_fft_forward(&x);
        let ex: f64 = x
            .iter()
            .map(|v| (v.re * v.re + v.im * v.im).to_f64())
            .sum();
        let ey: f64 = y
            .iter()
            .map(|v| (v.re * v.re + v.im * v.im).to_f64())
            .sum();
        assert!((ey - n as f64 * ex).abs() < 1e-10 * ey);
    }

    #[test]
    fn empty_and_single() {
        assert!(dd_fft_forward(&[]).is_empty());
        let one = [DdComplex::from_f64(2.0, -3.0)];
        let y = dd_fft_forward(&one);
        assert_eq!(y[0].to_f64(), (2.0, -3.0));
    }
}
