//! Naive `O(N²)` DFT — the correctness oracle.
//!
//! Every fast engine in this crate is validated against this module. The
//! accumulation is compensated (Neumaier) so the oracle's own rounding
//! error stays near one ulp even for large `N`, which matters when we
//! measure SNR differences of a few dB.

use crate::twiddle::Sign;
use soi_num::kahan::KahanComplexSum;
use soi_num::{Complex, Real};

/// Naive forward DFT: `y_k = Σ_j x_j·exp(−2πi jk/N)`.
pub fn dft_naive<T: Real>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    dft_naive_signed(x, Sign::Forward)
}

/// Naive unnormalized inverse DFT: `y_k = Σ_j x_j·exp(+2πi jk/N)`.
pub fn idft_naive_unnormalized<T: Real>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    dft_naive_signed(x, Sign::Inverse)
}

/// Naive inverse DFT normalized by `1/N` (inverse of [`dft_naive`]).
pub fn idft_naive<T: Real>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    let n = x.len();
    let scale = T::ONE / T::from_usize(n.max(1));
    idft_naive_unnormalized(x)
        .into_iter()
        .map(|v| v.scale(scale))
        .collect()
}

/// Naive DFT with an explicit direction.
pub fn dft_naive_signed<T: Real>(x: &[Complex<T>], sign: Sign) -> Vec<Complex<T>> {
    let n = x.len();
    let mut y = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = KahanComplexSum::new();
        for (j, &xj) in x.iter().enumerate() {
            // Index reduction keeps the twiddle angle accurate even when
            // j*k overflows usize ranges where sin/cos loses precision.
            let w: Complex<T> = sign.root((j % n) * k % n, n);
            acc.add(xj * w);
        }
        y.push(Complex::from_c64(acc.value()));
    }
    y
}

/// Naive DFT of a single output bin `k` (useful for spot-checking huge
/// transforms without `O(N²)` total work).
pub fn dft_bin<T: Real>(x: &[Complex<T>], k: usize) -> Complex<T> {
    let n = x.len();
    let mut acc = KahanComplexSum::new();
    for (j, &xj) in x.iter().enumerate() {
        let w: Complex<T> = Sign::Forward.root(j * (k % n) % n, n);
        acc.add(xj * w);
    }
    Complex::from_c64(acc.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::{c64, Complex64};

    #[test]
    fn dft_of_delta_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let y = dft_naive(&x);
        for v in y {
            assert!((v - Complex64::ONE).abs() < 1e-14);
        }
    }

    #[test]
    fn dft_of_constant_is_delta() {
        let x = vec![Complex64::ONE; 8];
        let y = dft_naive(&x);
        assert!((y[0] - c64(8.0, 0.0)).abs() < 1e-13);
        for v in &y[1..] {
            assert!(v.abs() < 1e-13);
        }
    }

    #[test]
    fn dft_of_single_tone() {
        // x_j = exp(2πi·3j/16) → y has a spike of height 16 at bin 13 for
        // the forward (negative exponent) convention? No: forward DFT of
        // exp(+2πi·3j/N) puts the spike at k = 3.
        let n = 16;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        let y = dft_naive(&x);
        assert!((y[3] - c64(16.0, 0.0)).abs() < 1e-12);
        for (k, v) in y.iter().enumerate() {
            if k != 3 {
                assert!(v.abs() < 1e-12, "bin {k} = {v:?}");
            }
        }
    }

    #[test]
    fn roundtrip_idft_dft() {
        let x: Vec<Complex64> = (0..10)
            .map(|i| c64((i as f64 * 1.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let y = dft_naive(&x);
        let back = idft_naive(&y);
        assert!(soi_num::complex::max_abs_diff(&back, &x) < 1e-13);
    }

    #[test]
    fn parseval() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| c64((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let y = dft_naive(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - 32.0 * ex).abs() < 1e-10 * ey.abs());
    }

    #[test]
    fn dft_bin_matches_full_dft() {
        let x: Vec<Complex64> = (0..20)
            .map(|i| c64((i as f64 * 0.9).sin(), -(i as f64 * 0.2).cos()))
            .collect();
        let y = dft_naive(&x);
        for k in [0, 1, 7, 19] {
            assert!((dft_bin(&x, k) - y[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..16).map(|i| c64(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..16).map(|i| c64(0.0, -(i as f64))).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let ya = dft_naive(&a);
        let yb = dft_naive(&b);
        let ysum = dft_naive(&sum);
        for k in 0..16 {
            assert!((ysum[k] - (ya[k] + yb[k])).abs() < 1e-11);
        }
    }

    #[test]
    fn empty_input() {
        let x: Vec<Complex64> = vec![];
        assert!(dft_naive(&x).is_empty());
    }
}
