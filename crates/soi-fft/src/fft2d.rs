//! 2-D FFT — the first of the paper's "next steps": "generalize to
//! higher-dimensional FFTs" (§8).
//!
//! Row–column decomposition: transform rows, transpose (cache-blocked),
//! transform the other axis, transpose back. For the *distributed* 2-D
//! case the classical algorithm needs only one transpose-style exchange
//! already, which is why the paper's low-communication contribution
//! targets the harder 1-D problem; this serial implementation completes
//! the library for downstream users.

use crate::batch::BatchFft;
use crate::permute::transpose;
use crate::plan::Direction;
use soi_num::{Complex, Real};

/// A prepared 2-D transform of fixed `rows × cols` shape.
#[derive(Debug)]
pub struct Fft2d<T> {
    rows: usize,
    cols: usize,
    row_batch: BatchFft<T>,
    col_batch: BatchFft<T>,
}

impl<T: Real> Fft2d<T> {
    /// Plan a `rows × cols` transform in `direction`, using `threads`
    /// worker threads for the row batches.
    pub fn new(rows: usize, cols: usize, direction: Direction, threads: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        Self {
            rows,
            cols,
            row_batch: BatchFft::new(cols, direction, threads),
            col_batch: BatchFft::new(rows, direction, threads),
        }
    }

    /// Forward plan, single-threaded.
    pub fn forward(rows: usize, cols: usize) -> Self {
        Self::new(rows, cols, Direction::Forward, 1)
    }

    /// Inverse plan (fully `1/(rows·cols)`-normalized via the two 1-D
    /// inverse normalizations), single-threaded.
    pub fn inverse(rows: usize, cols: usize) -> Self {
        Self::new(rows, cols, Direction::Inverse, 1)
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Transform `data` (row-major `rows × cols`) in place.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.rows * self.cols, "shape mismatch");
        // Rows.
        self.row_batch.execute(data);
        // Columns via transpose – batch – transpose.
        let mut t = vec![Complex::ZERO; data.len()];
        transpose(data, &mut t, self.rows, self.cols);
        self.col_batch.execute(&mut t);
        transpose(&t, data, self.cols, self.rows);
    }
}

/// One-shot forward 2-D FFT of a row-major matrix.
pub fn fft2d_forward<T: Real>(data: &[Complex<T>], rows: usize, cols: usize) -> Vec<Complex<T>> {
    let plan = Fft2d::forward(rows, cols);
    let mut buf = data.to_vec();
    plan.execute(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::kahan::KahanComplexSum;
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn naive_dft2(x: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        let mut y = vec![Complex64::ZERO; rows * cols];
        for k1 in 0..rows {
            for k2 in 0..cols {
                let mut acc = KahanComplexSum::new();
                for j1 in 0..rows {
                    for j2 in 0..cols {
                        let w1: Complex64 = Complex64::root_of_unity(j1 * k1 % rows, rows);
                        let w2: Complex64 = Complex64::root_of_unity(j2 * k2 % cols, cols);
                        acc.add(x[j1 * cols + j2] * w1 * w2);
                    }
                }
                y[k1 * cols + k2] = Complex64::from_c64(acc.value());
            }
        }
        y
    }

    fn signal(len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|i| c64((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect()
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (r, c) in [(4usize, 4usize), (8, 16), (6, 10), (5, 7)] {
            let x = signal(r * c);
            let got = fft2d_forward(&x, r, c);
            let want = naive_dft2(&x, r, c);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-10 * (r * c) as f64, "{r}x{c}: {err}");
        }
    }

    #[test]
    fn roundtrip() {
        let (r, c) = (16usize, 24usize);
        let x = signal(r * c);
        let mut buf = x.clone();
        Fft2d::forward(r, c).execute(&mut buf);
        Fft2d::inverse(r, c).execute(&mut buf);
        assert!(max_abs_diff(&buf, &x) < 1e-12);
    }

    #[test]
    fn separable_impulse() {
        // δ at (0,0) → flat 2-D spectrum.
        let (r, c) = (8usize, 8usize);
        let mut x = vec![Complex64::ZERO; r * c];
        x[0] = Complex64::ONE;
        let y = fft2d_forward(&x, r, c);
        for v in y {
            assert!((v - Complex64::ONE).abs() < 1e-13);
        }
    }

    #[test]
    fn threaded_matches_serial() {
        let (r, c) = (32usize, 32usize);
        let x = signal(r * c);
        let mut a = x.clone();
        Fft2d::new(r, c, Direction::Forward, 1).execute(&mut a);
        let mut b = x;
        Fft2d::new(r, c, Direction::Forward, 4).execute(&mut b);
        assert_eq!(
            a.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>(),
            b.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>()
        );
    }
}
