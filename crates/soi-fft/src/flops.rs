//! Operation-count conventions from the paper's evaluation (§7).
//!
//! * "Performance is reported in GFLOPS, which is 5N·log₂N divided by
//!   execution time" (§7.1) — the standard FFT nominal-flop convention.
//! * SOI's extra arithmetic: the convolution `W·x` costs `8·B` real ops per
//!   *output* point (a length-`B` complex inner product), over
//!   `N' = N(1+β)` outputs (§5: `O(N'B)`), and its FFT stages run at the
//!   inflated size `N'`.

/// Nominal flop count of a length-`n` complex FFT: `5·n·log₂(n)`.
pub fn fft_flops(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

/// GFLOPS for a length-`n` FFT completed in `seconds` (paper §7.1).
pub fn fft_gflops(n: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "elapsed time must be positive");
    fft_flops(n) / seconds / 1e9
}

/// Real-arithmetic cost of the SOI convolution `W·x`: each of the
/// `n_prime` output points is a length-`b` complex-coefficient inner
/// product (4 mul + 4 add real ops per tap).
pub fn conv_flops(n_prime: usize, b: usize) -> f64 {
    8.0 * n_prime as f64 * b as f64
}

/// Total nominal arithmetic of a SOI transform of logical size `n` with
/// oversampling `1+β = (mu/nu)` and convolution support `b`, decomposed
/// into (convolution, small FFTs `F_P`, segment FFTs `F_{M'}`).
///
/// Returns `(conv, fft_p, fft_m')` so harnesses can report the paper's
/// "convolution is almost fourfold that of a regular FFT" analysis (§7.4).
pub fn soi_flops_breakdown(n: usize, p: usize, mu: usize, nu: usize, b: usize) -> (f64, f64, f64) {
    let n_prime = n / nu * mu;
    let m_prime = n_prime / p;
    let conv = conv_flops(n_prime, b);
    // N'/P batches of F_P plus P batches of F_{M'}.
    let fft_p = (n_prime / p) as f64 * fft_flops(p);
    let fft_m = p as f64 * fft_flops(m_prime);
    (conv, fft_p, fft_m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_flops_convention() {
        assert_eq!(fft_flops(1), 0.0);
        assert_eq!(fft_flops(2), 10.0);
        assert_eq!(fft_flops(1024), 5.0 * 1024.0 * 10.0);
    }

    #[test]
    fn gflops_scaling() {
        let g = fft_gflops(1 << 20, 1.0);
        assert!((g - 5.0 * (1 << 20) as f64 * 20.0 / 1e9).abs() < 1e-12);
        // Twice as fast = twice the GFLOPS.
        assert!((fft_gflops(1 << 20, 0.5) / g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn soi_breakdown_matches_paper_ratio() {
        // Paper §7.4: at 2^28/node, 32 nodes, full accuracy (B = 72,
        // β = 1/4), convolution arithmetic is "almost fourfold" a regular
        // FFT's, making SOI "about fivefold" in total.
        let n: usize = 1usize << 33; // 2^28 per node × 32 nodes
        let (conv, fft_p, fft_m) = soi_flops_breakdown(n, 32, 5, 4, 72);
        let regular = fft_flops(n);
        let ratio_conv = conv / regular;
        assert!(
            (3.0..5.0).contains(&ratio_conv),
            "conv/regular = {ratio_conv}"
        );
        let total_ratio = (conv + fft_p + fft_m) / regular;
        assert!(
            (4.0..6.5).contains(&total_ratio),
            "total/regular = {total_ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gflops_rejects_zero_time() {
        let _ = fft_gflops(8, 0.0);
    }
}
