//! Cache-blocked four-step (Bailey) decomposition for large transforms.
//!
//! Above the L2 working-set threshold, one big `F_n` stops fitting in
//! cache and every butterfly pass becomes a strided memory-bound sweep.
//! Bailey's factorization `F_n = (F_a ⊗ I_b) · T · (I_a ⊗ F_b)` (here in
//! its transpose-based six-pass form) turns the transform into *rows*:
//! `b` independent `a`-point FFTs, a twiddle scaling `T`, then `a`
//! independent `b`-point FFTs, with blocked transposes in between so each
//! row transform runs on contiguous, L1/L2-resident data. With
//! `a ≈ b ≈ √n`, each inner transform of an `n = 2^20`-point FFT is only
//! `~2^10` points — a few KiB — so the memory system streams while the
//! butterflies hit cache.
//!
//! The inner row transforms are *raw* (unnormalized, [`Sign`]-keyed)
//! engines, not [`crate::Plan`]s: a plan would apply `1/len` per inverse
//! sub-transform and double-normalize the composite. [`RawFft`] is the
//! shared wrapper the planner also caches for Bluestein's inner
//! convolution FFTs.

use crate::codelet::{self, Codelet, Dispatch};
use crate::colfft::ColumnFft;
use crate::mixed::MixedRadixFft;
use crate::simd;
use crate::stockham::StockhamFft;
use crate::twiddle::Sign;
use soi_num::{AlignedBuf, Complex, Real};
use std::sync::Arc;

/// Transpose block edge (elements); 32 complex doubles = 512 B per row
/// segment, matching `permute::transpose`.
const BLOCK: usize = 32;

/// An unnormalized direction-keyed FFT engine: Stockham for powers of
/// two, mixed-radix otherwise. This is the building block composite
/// engines (four-step, Bluestein) recurse into, and what
/// [`crate::Planner`] caches so inner twiddle tables are shared.
#[derive(Debug, Clone)]
pub enum RawFft<T> {
    /// Power-of-two Stockham engine.
    Stockham(StockhamFft<T>),
    /// General smooth-size mixed-radix engine.
    Mixed(MixedRadixFft<T>),
}

impl<T: Real> RawFft<T> {
    /// Build the natural raw engine for `n` (callers route sizes with
    /// huge prime factors to Bluestein *before* reaching here; mixed
    /// still handles them, just in `O(r²)` per large factor).
    pub fn new(n: usize, sign: Sign) -> Self {
        Self::with_simd(n, sign, simd::enabled())
    }

    /// Build with an explicit SIMD request forwarded to the inner engine
    /// (see [`StockhamFft::with_simd`] / [`MixedRadixFft::with_simd`]).
    pub fn with_simd(n: usize, sign: Sign, want: bool) -> Self {
        if n.is_power_of_two() {
            RawFft::Stockham(StockhamFft::with_simd(n, sign, want))
        } else {
            RawFft::Mixed(MixedRadixFft::with_simd(n, sign, want))
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        match self {
            RawFft::Stockham(e) => e.len(),
            RawFft::Mixed(e) => e.len(),
        }
    }

    /// True only for the empty transform.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        match self {
            RawFft::Stockham(e) => e.sign(),
            RawFft::Mixed(e) => e.sign(),
        }
    }

    /// Scratch elements an allocation-free execute needs.
    pub fn scratch_len(&self) -> usize {
        match self {
            RawFft::Stockham(e) => e.len(),
            RawFft::Mixed(e) => e.scratch_len(),
        }
    }

    /// In-place unnormalized execute reusing caller scratch.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        match self {
            RawFft::Stockham(e) => e.execute_with_scratch(data, &mut scratch[..e.len()]),
            RawFft::Mixed(e) => e.execute_with_scratch(data, scratch),
        }
    }

    /// In-place unnormalized execute, allocating scratch internally.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let mut scratch = AlignedBuf::zeroed(self.scratch_len());
        self.execute_with_scratch(data, &mut scratch);
    }

    /// Out-of-place unnormalized execute: transform `src` into `dst`
    /// leaving `src` untouched, with results bitwise identical to the
    /// in-place path (both engines run the exact same stage/combine
    /// arithmetic — only the buffer schedule differs). This is the row
    /// API the four-step uses to land `F_b` directly in the transpose
    /// buffer.
    pub fn process_with_scratch(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        match self {
            RawFft::Stockham(e) => e.process_with_scratch(src, dst, &mut scratch[..e.len()]),
            RawFft::Mixed(e) => e.process_with_scratch(src, dst, scratch),
        }
    }

    /// The butterfly codelets this engine dispatches to.
    pub fn codelets(&self) -> Vec<Codelet> {
        match self {
            RawFft::Stockham(e) => e.codelets(),
            RawFft::Mixed(e) => e.codelets(),
        }
    }

    /// The codelets with their active dispatch.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        match self {
            RawFft::Stockham(e) => e.codelet_dispatch(),
            RawFft::Mixed(e) => e.codelet_dispatch(),
        }
    }
}

/// A prepared four-step transform of composite size `n = a·b`.
#[derive(Debug, Clone)]
pub struct FourStepFft<T> {
    n: usize,
    a: usize,
    b: usize,
    sign: Sign,
    /// Inter-step twiddles `ω_n^{j2·k1}` (direction-signed). Layout
    /// follows the active column-pass path: `tw[k1·b + j2]` (row-major,
    /// matching the matrix) when `col` is active so the fused scatter
    /// streams it unit-stride, else `tw[j2·a + k1]` to match the `b×a`
    /// buffer of the transpose-based path.
    tw: AlignedBuf<Complex<T>>,
    /// `a`-point row engine (applied `b` times on the transpose-based
    /// path; on the batched column path it only documents the codelets).
    fa: Arc<RawFft<T>>,
    /// `b`-point row engine (applied `a` times).
    fb: Arc<RawFft<T>>,
    /// Run the transpose / twiddle / fused-epilogue passes through the
    /// AVX2 kernels (decided once at construction, like the engines').
    simd: bool,
    /// Batched column-DFT fast path for the `F_a` side: replaces the
    /// first transpose, the `b` row transforms, and the twiddle pass
    /// with one strided read and one fused twiddled write. Built only
    /// under SIMD dispatch for `a = 5^j·2^k` splits.
    col: Option<ColumnFft>,
}

/// The near-square split: largest divisor of `n` that is ≤ √n. Returns 1
/// for primes (for which four-step degenerates and should not be used).
pub fn split(n: usize) -> usize {
    let mut best = 1;
    let mut d = 1;
    while d * d <= n {
        if n % d == 0 {
            best = d;
        }
        d += 1;
    }
    best
}

impl<T: Real> FourStepFft<T> {
    /// Plan a four-step transform, building inner engines directly.
    ///
    /// # Panics
    /// Panics if `n` has no nontrivial near-square split (i.e. is 1 or
    /// prime) — the planner never routes such sizes here.
    pub fn new(n: usize, sign: Sign) -> Self {
        Self::with_simd(n, sign, simd::enabled())
    }

    /// Plan with an explicit SIMD request, forwarded to the inner row
    /// engines and governing this engine's own transpose/twiddle passes.
    pub fn with_simd(n: usize, sign: Sign, want: bool) -> Self {
        let a = split(n);
        assert!(a > 1, "four-step needs a composite size, got {n}");
        Self::with_engines_opts(
            n,
            sign,
            Arc::new(RawFft::with_simd(a, sign, want)),
            Arc::new(RawFft::with_simd(n / a, sign, want)),
            want,
        )
    }

    /// Plan with caller-provided (typically planner-cached) inner engines.
    /// The split is taken from the engines themselves — `fa.len()·fb.len()`
    /// must equal `n` with both sides nontrivial — so the planner is free
    /// to pick a better-than-near-square split.
    pub fn with_engines(n: usize, sign: Sign, fa: Arc<RawFft<T>>, fb: Arc<RawFft<T>>) -> Self {
        Self::with_engines_opts(n, sign, fa, fb, simd::enabled())
    }

    fn with_engines_opts(
        n: usize,
        sign: Sign,
        fa: Arc<RawFft<T>>,
        fb: Arc<RawFft<T>>,
        want: bool,
    ) -> Self {
        let a = fa.len();
        let b = fb.len();
        assert!(a > 1 && b > 1, "four-step needs a composite size, got {n}");
        assert_eq!(a * b, n, "inner engine sizes {a}·{b} != {n}");
        assert!(fa.sign() == sign && fb.sign() == sign, "inner engine sign mismatch");
        let simd = want && simd::cpu_supported() && simd::is_c64::<T>();
        let col = if simd {
            ColumnFft::width_for(a, b).map(|w| ColumnFft::new(a, w, sign))
        } else {
            None
        };
        let mut tw = Vec::with_capacity(n);
        if col.is_some() {
            for k1 in 0..a {
                for j2 in 0..b {
                    tw.push(sign.root(j2 * k1, n));
                }
            }
        } else {
            for j2 in 0..b {
                for k1 in 0..a {
                    tw.push(sign.root(j2 * k1, n));
                }
            }
        }
        Self {
            n,
            a,
            b,
            sign,
            tw: AlignedBuf::from_slice(&tw),
            fa,
            fb,
            simd,
            col,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the empty transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The `(a, b)` row split.
    pub fn dims(&self) -> (usize, usize) {
        (self.a, self.b)
    }

    /// The butterfly codelets the inner row engines dispatch to.
    pub fn codelets(&self) -> Vec<Codelet> {
        let mut v = self.fa.codelets();
        v.extend(self.fb.codelets());
        codelet::dedup(v)
    }

    /// The codelets the transform actually runs, with their dispatch.
    /// On the batched column path the `F_a` side executes through the
    /// [`ColumnFft`] ladder's vector stage kernels, not `fa` — report
    /// those radices (all AVX2+FMA by construction) so introspection
    /// matches the code that runs.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        let mut v: Vec<(Codelet, Dispatch)> = if let Some(col) = &self.col {
            col.radices()
                .map(|r| {
                    let c = match r {
                        2 => Codelet::Radix2,
                        4 => Codelet::Radix4,
                        5 => Codelet::Radix5,
                        8 => Codelet::Radix8,
                        r => Codelet::Generic(r),
                    };
                    (c, Dispatch::Avx2Fma)
                })
                .collect()
        } else {
            self.fa.codelet_dispatch()
        };
        v.extend(self.fb.codelet_dispatch());
        codelet::dedup_dispatch(v)
    }

    /// Scratch elements [`Self::execute_with_scratch`] needs: the size-`n`
    /// transpose buffer, the column-pass ping-pong tiles when that path is
    /// active, plus the worst-case inner row scratch. Exact — no internal
    /// allocation happens when this much is provided.
    pub fn scratch_len(&self) -> usize {
        self.n
            + self.col.as_ref().map_or(0, |c| 2 * c.tile_len())
            + self.fa.scratch_len().max(self.fb.scratch_len())
    }

    /// In-place unnormalized execute reusing caller scratch
    /// (`scratch.len() >= self.scratch_len()`); allocation-free.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        let in_buf = self.run_steps(data, scratch, true);
        debug_assert!(in_buf, "want_buf must stage the F_b rows in scratch");
        let (buf, _) = scratch.split_at_mut(self.n);
        // Final step: transpose a×b → b×a lands y[k1 + a·k2] in natural
        // order, streaming buf→data — the F_b rows were transformed
        // out-of-place into `buf`, so no copy-back pass remains.
        self.transpose_pass(buf, data, self.a, self.b);
    }

    /// Blocked transpose through the SIMD kernel when active, the scalar
    /// block loop otherwise (identical element moves either way).
    fn transpose_pass(&self, src: &[Complex<T>], dst: &mut [Complex<T>], rows: usize, cols: usize) {
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // Safety: `simd` implies AVX2+FMA detected and `T = f64`.
            unsafe { simd::avx2::transpose(simd::c64s(src), simd::c64s_mut(dst), rows, cols) };
            return;
        }
        transpose_blocked(src, dst, rows, cols);
    }

    /// Transform `data` and write `out[k] = result[k]·weights[k]` for
    /// `k < out.len()`, fusing the weighted (projection + demodulation)
    /// write into the final transpose pass — the copy-back and the
    /// separate read-modify-write sweep both disappear, and output rows
    /// beyond `out.len()` are never materialized. `data` is clobbered.
    ///
    /// Each output element is the fully-formed transform value multiplied
    /// by its weight, so the result is bitwise identical to
    /// [`Self::execute_with_scratch`] followed by the multiply loop.
    pub fn execute_fused_into(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        out: &mut [Complex<T>],
        weights: &[Complex<T>],
    ) {
        assert!(out.len() <= self.n, "fused output longer than transform");
        assert!(weights.len() >= out.len(), "fused weights too short");
        let in_buf = self.run_steps(data, scratch, false);
        let (buf, _) = scratch.split_at_mut(self.n);
        let src: &[Complex<T>] = if in_buf { buf } else { data };
        // Fused final step: blocked transpose of the a×b result directly
        // into the weighted output. src[k1·b + k2] = y[k1 + a·k2], so
        // output index k = k2·a + k1.
        let (a, b) = (self.a, self.b);
        let klim = out.len();
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // Safety: `simd` implies AVX2+FMA detected and `T = f64`. The
            // kernel's weighted multiply uses the exact-rounding form, so
            // the fused result stays bitwise equal to unfused+multiply.
            unsafe {
                simd::avx2::weighted_transpose(
                    simd::c64s(src),
                    simd::c64s(weights),
                    simd::c64s_mut(out),
                    a,
                    b,
                )
            };
            return;
        }
        for r0 in (0..a).step_by(BLOCK) {
            let r1 = (r0 + BLOCK).min(a);
            for c0 in (0..b).step_by(BLOCK) {
                let c1 = (c0 + BLOCK).min(b);
                for k1 in r0..r1 {
                    for k2 in c0..c1 {
                        let k = k2 * a + k1;
                        if k < klim {
                            out[k] = src[k1 * b + k2] * weights[k];
                        }
                    }
                }
            }
        }
    }

    /// Steps 1–5. Returns `true` when the `a×b` row-major result
    /// (`rows[k1][k2] = y[k1 + a·k2]`) landed in `scratch[..n]`, `false`
    /// when it is in `data`. `want_buf` asks both paths to run the F_b
    /// rows out-of-place into `scratch[..n]` (free — the engines' row
    /// transforms write dst directly), so the caller's final transpose
    /// can stream buf→data with no copy-back pass; fused callers read
    /// the result wherever it lies, so they pass `false` and F_b runs in
    /// place. The choice only moves bytes — the computed values are
    /// bitwise identical.
    fn run_steps(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>], want_buf: bool) -> bool {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert!(
            scratch.len() >= self.scratch_len(),
            "four-step scratch too short: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        let (a, b) = (self.a, self.b);
        if let Some(col) = &self.col {
            // Batched column path: steps 1–4 collapse into one in-place
            // sweep — each block of `w` columns is DFT'd through
            // cache-resident tiles and scattered back with the inter-step
            // twiddle fused into the store. No transpose materializes.
            let (buf, rest) = scratch.split_at_mut(self.n);
            let (tiles, inner) = rest.split_at_mut(2 * col.tile_len());
            {
                let d = simd::c64s_mut(data);
                let t = simd::c64s_mut(tiles);
                let twc = simd::c64s(&self.tw);
                let w = col.width();
                let mut c0 = 0;
                while c0 < b {
                    col.run_block(d, b, c0, twc, t);
                    c0 += w;
                }
            }
            // Step 5: a rows of F_b. When the caller wants the result in
            // `buf`, run each row transform out-of-place data→buf so the
            // caller's final transpose streams buf→data with no copy-back
            // and no staging copy either; otherwise transform in place.
            if want_buf {
                for k1 in 0..a {
                    self.fb.process_with_scratch(
                        &data[k1 * b..(k1 + 1) * b],
                        &mut buf[k1 * b..(k1 + 1) * b],
                        inner,
                    );
                }
                return true;
            }
            for k1 in 0..a {
                self.fb
                    .execute_with_scratch(&mut data[k1 * b..(k1 + 1) * b], inner);
            }
            return false;
        }
        let (buf, inner) = scratch.split_at_mut(self.n);
        // Step 1: transpose the a×b input to b×a so each length-a column
        // subsequence becomes a contiguous row.
        self.transpose_pass(data, buf, a, b);
        // Step 2: b rows of F_a.
        for j2 in 0..b {
            self.fa
                .execute_with_scratch(&mut buf[j2 * a..(j2 + 1) * a], inner);
        }
        // Steps 3+4 fused: twiddle by ω_n^{j2·k1} while transposing back
        // to a×b, so the scaling rides the pass that had to happen anyway.
        self.twiddle_pass(buf, data);
        // Step 5: a rows of F_b; row k1 becomes y[k1 + a·k2] over k2.
        // `buf` is dead after the twiddle pass, so when the caller wants
        // the rows there, F_b runs out-of-place data→buf and the final
        // transpose streams buf→data — the full-array copy-back this path
        // used to need is gone.
        if want_buf {
            for k1 in 0..a {
                self.fb.process_with_scratch(
                    &data[k1 * b..(k1 + 1) * b],
                    &mut buf[k1 * b..(k1 + 1) * b],
                    inner,
                );
            }
            return true;
        }
        for k1 in 0..a {
            self.fb
                .execute_with_scratch(&mut data[k1 * b..(k1 + 1) * b], inner);
        }
        false
    }

    /// Fused steps 3+4: `data[k1·b + j2] = buf[j2·a + k1] · tw[j2·a + k1]`.
    fn twiddle_pass(&self, buf: &[Complex<T>], data: &mut [Complex<T>]) {
        let (a, b) = (self.a, self.b);
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // Safety: `simd` implies AVX2+FMA detected and `T = f64`.
            unsafe {
                simd::avx2::twiddle_transpose(
                    simd::c64s(buf),
                    simd::c64s(&self.tw),
                    simd::c64s_mut(data),
                    a,
                    b,
                )
            };
            return;
        }
        for c0 in (0..a).step_by(BLOCK) {
            let c1 = (c0 + BLOCK).min(a);
            for r0 in (0..b).step_by(BLOCK) {
                let r1 = (r0 + BLOCK).min(b);
                for j2 in r0..r1 {
                    for k1 in c0..c1 {
                        data[k1 * b + j2] = buf[j2 * a + k1] * self.tw[j2 * a + k1];
                    }
                }
            }
        }
    }

    /// In-place unnormalized execute, allocating scratch internally.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let mut scratch = AlignedBuf::zeroed(self.scratch_len());
        self.execute_with_scratch(data, &mut scratch);
    }
}

/// Blocked out-of-place transpose: `src` viewed `rows×cols` row-major,
/// `dst` receives the `cols×rows` transpose. (Local copy of
/// `permute::transpose` specialized to this module so the inner loops
/// stay monomorphized next to their callers.)
fn transpose_blocked<T: Copy>(src: &[T], dst: &mut [T], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for r0 in (0..rows).step_by(BLOCK) {
        let r1 = (r0 + BLOCK).min(rows);
        for c0 in (0..cols).step_by(BLOCK) {
            let c1 = (c0 + BLOCK).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive_signed;
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.37).sin() + 0.1, (i as f64 * 1.1).cos() - 0.4))
            .collect()
    }

    #[test]
    fn split_is_largest_divisor_below_sqrt() {
        assert_eq!(split(1024), 32);
        assert_eq!(split(2048), 32); // 32·64
        assert_eq!(split(160), 10); // 10·16
        assert_eq!(split(163840), 320); // 320·512, the μ/ν = 5/4 M' shape
        assert_eq!(split(97), 1); // prime: no split
    }

    #[test]
    fn matches_naive_dft_both_directions() {
        for n in [16usize, 36, 160, 320, 1024, 2560] {
            let x = test_signal(n);
            for sign in [Sign::Forward, Sign::Inverse] {
                let want = dft_naive_signed(&x, sign);
                let plan = FourStepFft::new(n, sign);
                let mut got = x.clone();
                plan.execute(&mut got);
                let err = max_abs_diff(&got, &want);
                assert!(err < 1e-9 * n as f64, "n={n} sign={sign:?} err={err}");
            }
        }
    }

    #[test]
    fn matches_stockham_and_mixed_engines_exactly_sized_scratch() {
        for n in [4096usize, 40960] {
            let x = test_signal(n);
            let plan = FourStepFft::new(n, Sign::Forward);
            let mut got = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute_with_scratch(&mut got, &mut scratch);
            let mut want = x.clone();
            RawFft::new(n, Sign::Forward).execute(&mut want);
            assert!(
                max_abs_diff(&got, &want) < 1e-10 * n as f64,
                "n={n} vs direct engine"
            );
        }
    }

    #[test]
    fn fused_is_bitwise_equal_to_unfused_then_multiply() {
        let n = 2560; // non-pow2: mixed inner engines
        let x = test_signal(n);
        let weights: Vec<Complex64> = (0..n)
            .map(|i| c64((i as f64 * 0.13).cos(), (i as f64 * 0.17).sin()))
            .collect();
        let plan = FourStepFft::new(n, Sign::Forward);
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];

        let mut ref_data = x.clone();
        plan.execute_with_scratch(&mut ref_data, &mut scratch);
        // Project to a shorter output, as the SOI pipeline does (M < M').
        let out_len = n * 4 / 5;
        let want: Vec<Complex64> = (0..out_len).map(|k| ref_data[k] * weights[k]).collect();

        let mut data = x.clone();
        let mut out = vec![Complex64::ZERO; out_len];
        plan.execute_fused_into(&mut data, &mut scratch, &mut out, &weights);
        for k in 0..out_len {
            assert!(
                out[k].re == want[k].re && out[k].im == want[k].im,
                "bin {k} not bitwise equal"
            );
        }
    }

    #[test]
    fn codelets_report_inner_engines() {
        // 163840 = 320·512: Stockham pow2 side + mixed side with a
        // radix-5 level; the generic butterfly must not appear.
        let plan = FourStepFft::<f64>::new(163840, Sign::Forward);
        let cods = plan.codelets();
        assert!(cods.contains(&Codelet::Radix5), "{cods:?}");
        assert!(cods.iter().all(|c| !c.is_generic()), "{cods:?}");
    }

    #[test]
    #[should_panic(expected = "composite")]
    fn rejects_prime_sizes() {
        let _ = FourStepFft::<f64>::new(97, Sign::Forward);
    }
}
