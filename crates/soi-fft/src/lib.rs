//! A complete, from-scratch FFT library.
//!
//! This is the local-FFT substrate of the SOI reproduction: the paper uses
//! Intel MKL single- and multi-threaded FFTs as node-local building blocks
//! (Fig 2); we build the equivalent here so nothing is mocked.
//!
//! Contents:
//!
//! * [`plan`] — FFTW-style planner. [`Plan`] picks, per size:
//!   Stockham radix-8/4/2 for powers of two, general mixed-radix
//!   Cooley–Tukey for smooth sizes, a cache-blocked four-step (Bailey)
//!   decomposition for smooth sizes above the L2 threshold, and
//!   Bluestein's chirp-z for sizes with large prime factors. Plans are
//!   reusable and cheap to execute; [`Planner`] caches plans *and* the
//!   raw inner engines composite plans recurse into.
//! * [`codelet`] — butterfly-kernel introspection ([`codelet::Codelet`]),
//!   so tests can assert hot sizes never hit the generic `O(r²)` path.
//! * [`fourstep`] — the cache-blocked `F_n = (F_a ⊗ I_b)·T·(I_a ⊗ F_b)`
//!   engine and the [`fourstep::RawFft`] unnormalized engine wrapper.
//! * [`dft`] — naive `O(N²)` DFT with compensated accumulation (the
//!   correctness oracle for everything else).
//! * [`stockham`] — self-sorting power-of-two engine (no bit-reversal).
//! * [`mixed`] — recursive mixed-radix decimation-in-time with codelets for
//!   radices 2–5 and a generic prime fallback.
//! * [`bluestein`] — arbitrary-length transforms via chirp-z convolution.
//! * [`realfft`] — real-input FFT using the half-length complex trick.
//! * [`batch`] — batched transforms (the `I ⊗ F` Kronecker pattern of §6a),
//!   with optional multithreading via `std::thread::scope`.
//! * [`permute`] — stride permutations `P_perm^{ℓ,n}` (Definition in §5)
//!   and cache-blocked transposes.
//! * [`ddfft`] — a double-double radix-2 FFT used as the high-precision
//!   reference when certifying SNR numbers (§7.2).
//! * [`simd`] — runtime-dispatched AVX2+FMA butterfly kernels behind the
//!   same feature-detect seam as the conv kernel, with the `SOI_NO_SIMD`
//!   ablation knob and the portable fallback kept alive for non-x86.
//! * [`flops`] — the paper's operation-count conventions
//!   (GFLOPS = 5·N·log₂N / time).

pub mod batch;
pub mod bluestein;
pub mod codelet;
pub(crate) mod colfft;
pub mod ddfft;
pub mod dft;
pub mod fft2d;
pub mod flops;
pub mod fourstep;
pub mod mixed;
pub mod permute;
pub mod plan;
pub mod realfft;
pub mod signal;
pub mod simd;
pub mod splitradix;
pub mod stockham;
pub mod twiddle;

pub use plan::{CacheStats, Direction, Plan, Planner};

use soi_num::{Complex, Real};

/// One-shot forward FFT (unnormalized, DFT convention `e^{−2πi jk/N}`).
///
/// Convenience wrapper; for repeated transforms of one size build a
/// [`Plan`] once instead.
pub fn fft_forward<T: Real>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    let plan = Plan::forward(x.len());
    let mut buf = x.to_vec();
    plan.execute(&mut buf);
    buf
}

/// One-shot inverse FFT, normalized by `1/N` so that
/// `ifft(fft(x)) == x`.
pub fn fft_inverse<T: Real>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    let plan = Plan::inverse(x.len());
    let mut buf = x.to_vec();
    plan.execute(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::c64;

    #[test]
    fn one_shot_roundtrip() {
        let x: Vec<_> = (0..12)
            .map(|i| c64((i as f64).sin(), (i as f64).cos()))
            .collect();
        let y = fft_forward(&x);
        let back = fft_inverse(&y);
        assert!(soi_num::complex::max_abs_diff(&back, &x) < 1e-12);
    }
}
