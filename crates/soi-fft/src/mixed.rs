//! General mixed-radix Cooley–Tukey FFT.
//!
//! Handles any `N` whose prime factors are modest (the planner routes huge
//! prime factors to Bluestein instead). The decomposition is the classical
//! recursive decimation-in-time: split into `r` interleaved subsequences,
//! transform each, then combine with an `r`-point butterfly per output
//! group. Radices 2, 3, 4, 5 and 7 have hand-written codelets (pairs of 2s
//! in the factorization are merged into radix-4 levels, halving the pass
//! count for even sizes); any other radix uses a generic `O(r²)` butterfly
//! with precomputed small-root tables. The 5/7 codelets exploit the
//! real/imaginary symmetry of the roots (`ω^{r−q} = conj(ω^q)`) to halve
//! the multiply count versus the dense butterfly.
//!
//! The SOI pipeline needs this generality: the batched `F_P` stage of
//! Eq. (6) runs at `P` = node count, which is frequently non-power-of-two,
//! and the `F_{M'}` stage runs at `M' = M·(1+β)` which for β = 1/4 carries
//! a factor of 5.

use crate::codelet::{self, Codelet, Dispatch};
use crate::simd;
use crate::stockham::StockhamFft;
use crate::twiddle::Sign;
use soi_num::{AlignedBuf, Complex, Real};

/// Factor `n` into non-decreasing primes.
pub fn factorize(mut n: usize) -> Vec<usize> {
    assert!(n > 0, "cannot factor zero");
    let mut out = Vec::new();
    for p in [2usize, 3, 5, 7] {
        while n % p == 0 {
            out.push(p);
            n /= p;
        }
    }
    let mut p = 11;
    while p * p <= n {
        while n % p == 0 {
            out.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Largest prime factor of `n` (1 for n = 1).
pub fn largest_prime_factor(n: usize) -> usize {
    factorize(n).last().copied().unwrap_or(1)
}

/// Split/dup twiddle streams for a SIMD-combined level: `q`-major blocks
/// of `2m`, `re[(q−1)·2m + 2k]` holding `tw[k·(r−1)+(q−1)].re`
/// duplicated ×2 — so the combine's vectorized `k` loop loads its
/// twiddle operands with plain unit-stride reads.
#[derive(Debug, Clone)]
struct LevelSimd {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// Per-recursion-depth precomputed data.
#[derive(Debug, Clone)]
struct Level<T> {
    /// Radix used at this depth.
    radix: usize,
    /// Subproblem size *after* the split (`size/radix`).
    m: usize,
    /// Combination twiddles `ω_size^{q·k}` laid out as
    /// `tw[k*(r-1) + (q-1)]` for `q in 1..r`, `k in 0..m`.
    tw: Vec<Complex<T>>,
    /// Dense roots of order `radix` (for the generic butterfly):
    /// `roots[j] = ω_radix^j`.
    roots: Vec<Complex<T>>,
    /// Dup'd twiddle streams when this level has a SIMD combine
    /// (radix 4 at any `m`, radix 5 and the generic primes `8 < r < 64`
    /// at `m ≥ 2`).
    simd: Option<LevelSimd>,
}

/// A prepared mixed-radix transform of arbitrary smooth size.
#[derive(Debug, Clone)]
pub struct MixedRadixFft<T> {
    n: usize,
    sign: Sign,
    levels: Vec<Level<T>>,
    /// Upper bound on radix, sizing the per-execute butterfly scratch.
    max_radix: usize,
    /// Stockham smooth ladder for `n = 2^k·5^j` on SIMD hosts: the
    /// streaming stage structure beats the strided DIT recursion by
    /// 2–3× at the pipeline's hot `M' = 2^k·5` sizes, so execution
    /// delegates wholesale when the shape fits.
    ladder: Option<StockhamFft<T>>,
}

impl<T: Real> MixedRadixFft<T> {
    /// Plan a transform of size `n` (any positive integer; cost is
    /// `O(N·Σrᵢ)`, so route large prime factors to Bluestein instead),
    /// with SIMD dispatch decided by [`simd::enabled`].
    pub fn new(n: usize, sign: Sign) -> Self {
        Self::with_simd(n, sign, simd::enabled())
    }

    /// Plan with an explicit SIMD request; `want` is intersected with
    /// host support (AVX2+FMA, `f64` elements). Deliberately ignores
    /// `SOI_NO_SIMD` so property tests can compare both paths in one
    /// process. SIMD combines exist for the radix-4 and radix-5 levels
    /// (the hot ones at `M' = 2^k·5`); other radices stay portable.
    pub fn with_simd(n: usize, sign: Sign, want: bool) -> Self {
        assert!(n > 0);
        let simd_ok = want && simd::cpu_supported() && simd::is_c64::<T>();
        let factors = factorize(n);
        // Merge pairs of 2s into radix-4 levels: one radix-4 combine does
        // the work of two radix-2 passes in a single trip over the data.
        let twos = factors.iter().filter(|&&p| p == 2).count();
        let mut radices: Vec<usize> = factors.iter().copied().filter(|&p| p != 2).collect();
        radices.extend(std::iter::repeat(4).take(twos / 2));
        if twos % 2 == 1 {
            radices.push(2);
        }
        radices.sort_unstable();
        // Process large radices first: DIT combine cost is r per element
        // per level either way, but putting big radices at the top means
        // their twiddle tables are built once for the largest size only.
        let mut levels = Vec::with_capacity(radices.len());
        let mut size = n;
        let mut max_radix = 1;
        for &r in radices.iter().rev() {
            let m = size / r;
            let mut tw = Vec::with_capacity(m * (r - 1));
            for k in 0..m {
                for q in 1..r {
                    tw.push(sign.root(q * k, size));
                }
            }
            let roots = (0..r).map(|j| sign.root(j, r)).collect();
            let lsimd = if simd_ok && (r == 4 || (r == 5 && m >= 2) || (r > 8 && r < 64 && m >= 2)) {
                let tw64 = simd::c64s(&tw);
                let mut re = vec![0.0f64; (r - 1) * 2 * m];
                let mut im = vec![0.0f64; (r - 1) * 2 * m];
                for q in 0..r - 1 {
                    for k in 0..m {
                        let w = tw64[k * (r - 1) + q];
                        re[q * 2 * m + 2 * k] = w.re;
                        re[q * 2 * m + 2 * k + 1] = w.re;
                        im[q * 2 * m + 2 * k] = w.im;
                        im[q * 2 * m + 2 * k + 1] = w.im;
                    }
                }
                Some(LevelSimd { re, im })
            } else {
                None
            };
            levels.push(Level {
                radix: r,
                m,
                tw,
                roots,
                simd: lsimd,
            });
            max_radix = max_radix.max(r);
            size = m;
        }
        Self {
            n,
            sign,
            levels,
            max_radix,
            ladder: StockhamFft::for_smooth(n, sign, want),
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the empty (impossible) transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The butterfly codelets this plan's levels dispatch to. Must mirror
    /// the `match` in [`Self::rec`] (pinned by tests) — or, when the
    /// smooth ladder took over execution, the ladder's stage radices.
    pub fn codelets(&self) -> Vec<Codelet> {
        if let Some(l) = &self.ladder {
            return l.codelets();
        }
        codelet::dedup(
            self.levels
                .iter()
                .map(|l| Codelet::for_mixed_radix(l.radix))
                .collect(),
        )
    }

    /// Per-level codelets with the active dispatch: a level reports
    /// `Avx2Fma` exactly when its combine runs the vector kernel.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        if let Some(l) = &self.ladder {
            return l.codelet_dispatch();
        }
        codelet::dedup_dispatch(
            self.levels
                .iter()
                .map(|l| {
                    let d = if l.simd.is_some() {
                        Dispatch::Avx2Fma
                    } else {
                        Dispatch::Portable
                    };
                    (Codelet::for_mixed_radix(l.radix), d)
                })
                .collect(),
        )
    }

    /// Out-of-place execute: `dst` receives the DFT of `src`.
    pub fn process(&self, src: &[Complex<T>], dst: &mut [Complex<T>]) {
        let mut scratch = AlignedBuf::zeroed(self.scratch_len());
        self.process_with_scratch(src, dst, &mut scratch);
    }

    /// Out-of-place execute reusing caller scratch (`scratch.len()` must
    /// be at least [`Self::scratch_len`]); `src` is left untouched. The
    /// DIT recursion is naturally out-of-place, so this runs the exact
    /// same arithmetic as [`Self::execute_with_scratch`] (which stages
    /// `data` through scratch first) — results are bitwise identical.
    pub fn process_with_scratch(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        assert_eq!(src.len(), self.n);
        assert_eq!(dst.len(), self.n);
        if let Some(l) = &self.ladder {
            return l.process_with_scratch(src, dst, &mut scratch[..self.n]);
        }
        let combine = &mut scratch[..2 * self.max_radix];
        self.rec(src, 1, dst, 0, combine);
    }

    /// In-place execute (internally out-of-place into scratch).
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let mut scratch = AlignedBuf::zeroed(self.scratch_len());
        self.execute_with_scratch(data, &mut scratch);
    }

    /// Scratch elements [`Self::execute_with_scratch`] needs: a size-`n`
    /// staging copy of the input plus the per-level combine workspace.
    pub fn scratch_len(&self) -> usize {
        self.n + 2 * self.max_radix
    }

    /// In-place execute reusing caller scratch (`scratch.len()` must be at
    /// least [`Self::scratch_len`]); allocation-free. Stale scratch
    /// contents are harmless — every element read is written first.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert!(
            scratch.len() >= self.scratch_len(),
            "mixed-radix scratch too short: {} < {}",
            scratch.len(),
            self.scratch_len()
        );
        if let Some(l) = &self.ladder {
            return l.execute_with_scratch(data, &mut scratch[..self.n]);
        }
        let (src, combine) = scratch.split_at_mut(self.n);
        src.copy_from_slice(data);
        self.rec(src, 1, data, 0, &mut combine[..2 * self.max_radix]);
    }

    /// Transform `data` and write `out[k] = result[k]·weights[k]` — the
    /// projection+demodulation fusion. With the smooth ladder active this
    /// skips the copy-back entirely (the weighted write reads straight
    /// from the final ping-pong buffer); otherwise it falls back to
    /// execute-then-multiply. Both are bitwise equal to the unfused path.
    pub fn execute_fused_into(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        out: &mut [Complex<T>],
        weights: &[Complex<T>],
    ) {
        if let Some(l) = &self.ladder {
            return l.execute_fused_into(data, &mut scratch[..self.n], out, weights);
        }
        self.execute_with_scratch(data, scratch);
        simd::weighted_product(out, data, weights);
    }

    /// Recursive DIT:
    /// `input` is viewed with stride `stride`; `output[0..size]` receives
    /// the transform, where `size = n / stride`… tracked via `depth`.
    fn rec(
        &self,
        input: &[Complex<T>],
        stride: usize,
        output: &mut [Complex<T>],
        depth: usize,
        scratch: &mut [Complex<T>],
    ) {
        if depth == self.levels.len() {
            debug_assert_eq!(output.len(), 1);
            output[0] = input[0];
            return;
        }
        let level = &self.levels[depth];
        let r = level.radix;
        let m = level.m;
        // Transform the r decimated subsequences.
        for q in 0..r {
            self.rec(
                &input[q * stride..],
                stride * r,
                &mut output[q * m..(q + 1) * m],
                depth + 1,
                scratch,
            );
        }
        // Combine: for each k, an r-point DFT across the subsequence
        // outputs, twiddled by ω_size^{qk}.
        if self.combine_simd(level, &mut output[..r * m]) {
            return;
        }
        let (t, rest) = scratch.split_at_mut(self.max_radix);
        match r {
            2 => {
                for k in 0..m {
                    let w = level.tw[k];
                    let a = output[k];
                    let b = output[m + k] * w;
                    output[k] = a + b;
                    output[m + k] = a - b;
                }
            }
            3 => {
                // y0 = a+u; y1 = a − u/2 ∓ i·(√3/2)·v; y2 = a − u/2 ± i(√3/2)v
                // with u = b+c, v = b−c. Sign from direction.
                let s3 = {
                    // Imaginary part of ω_3 for this direction.
                    level.roots[1].im
                };
                for k in 0..m {
                    let a = output[k];
                    let b = output[m + k] * level.tw[2 * k];
                    let c = output[2 * m + k] * level.tw[2 * k + 1];
                    let u = b + c;
                    let v = b - c;
                    let half_u = u.scale(T::HALF);
                    let iv = v.mul_i().scale(-s3); // ∓i·(√3/2)·v folded via root sign
                    output[k] = a + u;
                    output[m + k] = a - half_u - iv;
                    output[2 * m + k] = a - half_u + iv;
                }
            }
            4 => {
                let forward = self.sign == Sign::Forward;
                for k in 0..m {
                    let a = output[k];
                    let b = output[m + k] * level.tw[3 * k];
                    let c = output[2 * m + k] * level.tw[3 * k + 1];
                    let d = output[3 * m + k] * level.tw[3 * k + 2];
                    let apc = a + c;
                    let amc = a - c;
                    let bpd = b + d;
                    let jbmd = if forward {
                        (b - d).mul_i()
                    } else {
                        (b - d).mul_neg_i()
                    };
                    output[k] = apc + bpd;
                    output[m + k] = amc - jbmd;
                    output[2 * m + k] = apc - bpd;
                    output[3 * m + k] = amc + jbmd;
                }
            }
            5 => {
                // Rader-style symmetric radix-5: fold the conjugate-pair
                // symmetry ω^4 = conj(ω), ω^3 = conj(ω²) so each output
                // pair shares one real (cos) and one imaginary (sin)
                // combination. The direction sign is already folded into
                // `roots` (sin terms flip with it), so this single code
                // path serves both forward and inverse.
                let c1 = level.roots[1].re;
                let c2 = level.roots[2].re;
                let s1 = level.roots[1].im;
                let s2 = level.roots[2].im;
                for k in 0..m {
                    let a = output[k];
                    let b = output[m + k] * level.tw[4 * k];
                    let c = output[2 * m + k] * level.tw[4 * k + 1];
                    let d = output[3 * m + k] * level.tw[4 * k + 2];
                    let e = output[4 * m + k] * level.tw[4 * k + 3];
                    let t1 = b + e;
                    let t2 = c + d;
                    let t3 = b - e;
                    let t4 = c - d;
                    let m1 = a + t1.scale(c1) + t2.scale(c2);
                    let m2 = a + t1.scale(c2) + t2.scale(c1);
                    let w1 = (t3.scale(s1) + t4.scale(s2)).mul_i();
                    let w2 = (t3.scale(s2) - t4.scale(s1)).mul_i();
                    output[k] = a + t1 + t2;
                    output[m + k] = m1 + w1;
                    output[2 * m + k] = m2 + w2;
                    output[3 * m + k] = m2 - w2;
                    output[4 * m + k] = m1 - w1;
                }
            }
            7 => {
                // Same conjugate-pair folding for radix 7: three cos/sin
                // pairs (ω^6=conj ω, ω^5=conj ω², ω^4=conj ω³).
                let c1 = level.roots[1].re;
                let c2 = level.roots[2].re;
                let c3 = level.roots[3].re;
                let s1 = level.roots[1].im;
                let s2 = level.roots[2].im;
                let s3 = level.roots[3].im;
                for k in 0..m {
                    let a = output[k];
                    let b = output[m + k] * level.tw[6 * k];
                    let c = output[2 * m + k] * level.tw[6 * k + 1];
                    let d = output[3 * m + k] * level.tw[6 * k + 2];
                    let e = output[4 * m + k] * level.tw[6 * k + 3];
                    let f = output[5 * m + k] * level.tw[6 * k + 4];
                    let g = output[6 * m + k] * level.tw[6 * k + 5];
                    let u1 = b + g;
                    let v1 = b - g;
                    let u2 = c + f;
                    let v2 = c - f;
                    let u3 = d + e;
                    let v3 = d - e;
                    let re1 = a + u1.scale(c1) + u2.scale(c2) + u3.scale(c3);
                    let im1 = (v1.scale(s1) + v2.scale(s2) + v3.scale(s3)).mul_i();
                    let re2 = a + u1.scale(c2) + u2.scale(c3) + u3.scale(c1);
                    let im2 = (v1.scale(s2) - v2.scale(s3) - v3.scale(s1)).mul_i();
                    let re3 = a + u1.scale(c3) + u2.scale(c1) + u3.scale(c2);
                    let im3 = (v1.scale(s3) - v2.scale(s1) + v3.scale(s2)).mul_i();
                    output[k] = a + u1 + u2 + u3;
                    output[m + k] = re1 + im1;
                    output[2 * m + k] = re2 + im2;
                    output[3 * m + k] = re3 + im3;
                    output[4 * m + k] = re3 - im3;
                    output[5 * m + k] = re2 - im2;
                    output[6 * m + k] = re1 - im1;
                }
            }
            _ => {
                // Generic O(r²) butterfly.
                for k in 0..m {
                    t[0] = output[k];
                    for q in 1..r {
                        t[q] = output[q * m + k] * level.tw[k * (r - 1) + (q - 1)];
                    }
                    for k2 in 0..r {
                        let mut acc = t[0];
                        for (q, &tq) in t.iter().enumerate().take(r).skip(1) {
                            acc = tq.mul_add(level.roots[(q * k2) % r], acc);
                        }
                        output[k2 * m + k] = acc;
                    }
                }
            }
        }
        let _ = rest;
    }

    /// Run a level's combine through its SIMD kernel if it has one;
    /// returns `false` (caller falls through to the scalar combine)
    /// otherwise.
    #[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
    fn combine_simd(&self, level: &Level<T>, output: &mut [Complex<T>]) -> bool {
        #[cfg(target_arch = "x86_64")]
        if let Some(ls) = &level.simd {
            let out = simd::c64s_mut(output);
            // Safety: `simd` streams are only built when AVX2+FMA was
            // detected and `T = f64`; the radix/m geometry each kernel
            // needs is enforced at construction.
            unsafe {
                match level.radix {
                    4 => simd::avx2::mixed_r4(
                        out,
                        level.m,
                        &ls.re,
                        &ls.im,
                        self.sign == Sign::Forward,
                    ),
                    5 => {
                        let roots = simd::c64s(&level.roots);
                        simd::avx2::mixed_r5(
                            out,
                            level.m,
                            &ls.re,
                            &ls.im,
                            roots[1].re,
                            roots[2].re,
                            roots[1].im,
                            roots[2].im,
                        )
                    }
                    r if r > 8 => {
                        let roots = simd::c64s(&level.roots);
                        simd::avx2::mixed_generic(out, level.m, r, &ls.re, &ls.im, roots)
                    }
                    r => unreachable!("no SIMD combine for radix {r}"),
                }
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, dft_naive_signed};
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.61).sin() - 0.3, (i as f64 * 1.9).cos() + 0.05))
            .collect()
    }

    #[test]
    fn factorization() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(121), vec![11, 11]);
        assert_eq!(largest_prime_factor(1), 1);
        assert_eq!(largest_prime_factor(2 * 3 * 49), 7);
    }

    #[test]
    fn matches_naive_dft_many_sizes() {
        for n in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 18, 20, 21, 24, 25, 27, 30, 32, 36,
            45, 49, 60, 64, 77, 81, 100, 105, 120, 128, 144, 180, 240, 343,
        ] {
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = MixedRadixFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-9 * (n.max(4) as f64), "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_direction_matches_naive() {
        for n in [6usize, 15, 20, 27, 35, 128] {
            let x = test_signal(n);
            let want = dft_naive_signed(&x, Sign::Inverse);
            let plan = MixedRadixFft::new(n, Sign::Inverse);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn handles_moderate_prime_radix() {
        // 13, 31: exercised through the generic butterfly.
        for n in [13usize, 31, 13 * 4, 31 * 3] {
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = MixedRadixFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn dedicated_codelets_for_radix_5_and_7() {
        use crate::codelet::Codelet;
        // 280 = 2³·5·7: the pair of 2s merges into a radix-4 level, the
        // 5 and 7 run their hand-written butterflies — nothing generic.
        let plan = MixedRadixFft::<f64>::new(280, Sign::Forward);
        let cs = plan.codelets();
        assert!(cs.contains(&Codelet::Radix4), "{cs:?}");
        assert!(cs.contains(&Codelet::Radix5), "{cs:?}");
        assert!(cs.contains(&Codelet::Radix7), "{cs:?}");
        assert!(cs.iter().all(|c| !c.is_generic()), "{cs:?}");
        // A leftover prime > 7 still reports the generic fallback.
        let cs = MixedRadixFft::<f64>::new(11 * 4, Sign::Forward).codelets();
        assert!(cs.contains(&Codelet::Generic(11)), "{cs:?}");
    }

    #[test]
    fn radix5_and_radix7_match_naive_both_directions() {
        // Pure and mixed powers of the hand-written odd radices.
        for n in [5usize, 7, 25, 35, 49, 175, 245, 280] {
            let x = test_signal(n);
            for sign in [Sign::Forward, Sign::Inverse] {
                let want = dft_naive_signed(&x, sign);
                let plan = MixedRadixFft::new(n, sign);
                let mut got = x.clone();
                plan.execute(&mut got);
                let err = max_abs_diff(&got, &want);
                assert!(err < 1e-9 * n.max(4) as f64, "n={n} sign={sign:?} err={err}");
            }
        }
    }

    #[test]
    fn out_of_place_process() {
        let n = 40;
        let x = test_signal(n);
        let plan = MixedRadixFft::new(n, Sign::Forward);
        let mut dst = vec![Complex64::ZERO; n];
        plan.process(&x, &mut dst);
        let want = dft_naive(&x);
        assert!(max_abs_diff(&dst, &want) < 1e-10 * n as f64);
    }

    #[test]
    fn generic_level_simd_matches_portable() {
        // Prime outer levels 11/13/31 run the vectorized dense butterfly
        // on AVX2 hosts; pit it against the forced-portable plan.
        for n in [22usize, 44, 13 * 6, 31 * 4, 11 * 25] {
            let x = test_signal(n);
            for sign in [Sign::Forward, Sign::Inverse] {
                let fast = MixedRadixFft::with_simd(n, sign, true);
                let slow = MixedRadixFft::with_simd(n, sign, false);
                let mut a = x.clone();
                let mut b = x.clone();
                fast.execute(&mut a);
                slow.execute(&mut b);
                let err = max_abs_diff(&a, &b);
                assert!(err < 1e-10 * n as f64, "n={n} sign={sign:?} err={err}");
                // And both must still match the oracle.
                let want = dft_naive_signed(&x, sign);
                assert!(max_abs_diff(&a, &want) < 1e-8 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn smooth_ladder_takes_over_pow2_times_5_sizes() {
        if !simd::cpu_supported() {
            return;
        }
        use crate::codelet::Codelet;
        // 1280 = 2^8·5: the ladder reports Stockham stage radices, all
        // vectorized, and execution matches the naive oracle.
        let plan = MixedRadixFft::<f64>::with_simd(1280, Sign::Forward, true);
        let cs = plan.codelets();
        assert!(cs.contains(&Codelet::Radix5), "{cs:?}");
        assert!(cs.contains(&Codelet::Radix8), "{cs:?}");
        assert!(
            plan.codelet_dispatch().iter().all(|&(_, d)| d == Dispatch::Avx2Fma),
            "{:?}",
            plan.codelet_dispatch()
        );
        let x = test_signal(1280);
        let want = dft_naive(&x);
        let mut got = x.clone();
        plan.execute(&mut got);
        assert!(max_abs_diff(&got, &want) < 1e-9 * 1280.0);
        // Ladder path keeps the fused == unfused bitwise contract.
        let weights: Vec<Complex64> = (0..1000)
            .map(|k| c64((k as f64 * 0.13).cos() + 1.5, (k as f64 * 0.37).sin()))
            .collect();
        let mut d1 = x.clone();
        let mut s1 = vec![Complex64::ZERO; plan.scratch_len()];
        plan.execute_with_scratch(&mut d1, &mut s1);
        let mut d2 = x.clone();
        let mut s2 = vec![Complex64::ZERO; plan.scratch_len()];
        let mut out = vec![Complex64::ZERO; 1000];
        plan.execute_fused_into(&mut d2, &mut s2, &mut out, &weights);
        for k in 0..1000 {
            let want = d1[k] * weights[k];
            assert_eq!(out[k].re.to_bits(), want.re.to_bits(), "bin {k}");
            assert_eq!(out[k].im.to_bits(), want.im.to_bits(), "bin {k}");
        }
    }

    #[test]
    fn process_with_scratch_is_bitwise_in_place_execute() {
        for n in [40usize, 44, 360, 1280] {
            let x = test_signal(n);
            let plan = MixedRadixFft::new(n, Sign::Forward);
            let mut want = x.clone();
            let mut s1 = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute_with_scratch(&mut want, &mut s1);
            let mut got = vec![Complex64::ZERO; n];
            let mut s2 = vec![Complex64::ZERO; plan.scratch_len()];
            plan.process_with_scratch(&x, &mut got, &mut s2);
            for k in 0..n {
                assert_eq!(got[k].re.to_bits(), want[k].re.to_bits(), "n={n} k={k}");
                assert_eq!(got[k].im.to_bits(), want[k].im.to_bits(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn roundtrip_smooth_size() {
        let n = 540; // 2^2·3^3·5
        let x = test_signal(n);
        let fwd = MixedRadixFft::new(n, Sign::Forward);
        let inv = MixedRadixFft::new(n, Sign::Inverse);
        let mut buf = x.clone();
        fwd.execute(&mut buf);
        inv.execute(&mut buf);
        let back: Vec<Complex64> = buf.iter().map(|&v| v / n as f64).collect();
        assert!(max_abs_diff(&back, &x) < 1e-11);
    }
}
