//! Stride permutations and blocked transposes.
//!
//! §5 of the paper defines the stride-ℓ permutation `P_perm^{ℓ,n}` (for ℓ
//! dividing n) by `w_{j+kℓ} = v_{k+j·(n/ℓ)}` for `0 ≤ j < ℓ`,
//! `0 ≤ k < n/ℓ` — i.e. reading `v` as an ℓ×(n/ℓ) row-major matrix and
//! writing its transpose. `P_perm^{P,N'}` is the factorization's single
//! global all-to-all; these same routines implement the *local* halves of
//! that exchange (Fig 3) and the transposes of the baseline algorithm.

use soi_num::{Complex, Real};
use soi_pool::{part_range, SlicePtr, ThreadPool};

/// Cache-block edge for the blocked transpose.
const BLOCK: usize = 32;

/// Out-of-place matrix transpose: `src` is `rows×cols` row-major; `dst`
/// receives the `cols×rows` transpose. Cache-blocked.
pub fn transpose<T: Copy>(src: &[T], dst: &mut [T], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "src shape mismatch");
    assert_eq!(dst.len(), rows * cols, "dst shape mismatch");
    for r0 in (0..rows).step_by(BLOCK) {
        let r1 = (r0 + BLOCK).min(rows);
        for c0 in (0..cols).step_by(BLOCK) {
            let c1 = (c0 + BLOCK).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// Parallel cache-blocked transpose on a [`ThreadPool`]: block-rows of
/// `src` are split into balanced contiguous ranges, one per worker. Each
/// source row lands in exactly one task, so writes are disjoint and the
/// output is identical for every worker count.
pub fn transpose_pooled<T: Copy + Send + Sync>(
    src: &[T],
    dst: &mut [T],
    rows: usize,
    cols: usize,
    pool: &ThreadPool,
) {
    assert_eq!(src.len(), rows * cols, "src shape mismatch");
    assert_eq!(dst.len(), rows * cols, "dst shape mismatch");
    let blocks = rows.div_ceil(BLOCK);
    let parts = pool.threads().min(blocks).max(1);
    if parts == 1 {
        return transpose(src, dst, rows, cols);
    }
    let dst_ptr = SlicePtr::new(dst);
    pool.run(parts, |t| {
        let (b0, bl) = part_range(blocks, parts, t);
        let r_lo = b0 * BLOCK;
        let r_hi = ((b0 + bl) * BLOCK).min(rows);
        for r0 in (r_lo..r_hi).step_by(BLOCK) {
            let r1 = (r0 + BLOCK).min(r_hi);
            for c0 in (0..cols).step_by(BLOCK) {
                let c1 = (c0 + BLOCK).min(cols);
                for r in r0..r1 {
                    for c in c0..c1 {
                        // SAFETY: destination index `c·rows + r` is unique
                        // to this task because each `r` belongs to exactly
                        // one block-row range.
                        unsafe { dst_ptr.write(c * rows + r, src[r * cols + c]) };
                    }
                }
            }
        }
    });
}

/// Partial out-of-place transpose: `src` is `rows×cols` row-major; `dst`
/// receives the transpose of its first `keep` columns (a `keep×rows`
/// row-major matrix). This is the real-input pack stage: only the
/// non-redundant half of the demodulation lanes survives the Hermitian
/// fold, so the transpose touches and moves only those columns.
/// Cache-blocked.
pub fn transpose_partial<T: Copy>(
    src: &[T],
    dst: &mut [T],
    rows: usize,
    cols: usize,
    keep: usize,
) {
    assert!(keep <= cols, "keep {keep} exceeds cols {cols}");
    assert_eq!(src.len(), rows * cols, "src shape mismatch");
    assert_eq!(dst.len(), rows * keep, "dst shape mismatch");
    for r0 in (0..rows).step_by(BLOCK) {
        let r1 = (r0 + BLOCK).min(rows);
        for c0 in (0..keep).step_by(BLOCK) {
            let c1 = (c0 + BLOCK).min(keep);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// [`transpose_partial`] executed block-row-parallel on a pool. Each
/// source row belongs to exactly one task, so writes are disjoint and the
/// output is identical for every worker count.
pub fn transpose_partial_pooled<T: Copy + Send + Sync>(
    src: &[T],
    dst: &mut [T],
    rows: usize,
    cols: usize,
    keep: usize,
    pool: &ThreadPool,
) {
    assert!(keep <= cols, "keep {keep} exceeds cols {cols}");
    assert_eq!(src.len(), rows * cols, "src shape mismatch");
    assert_eq!(dst.len(), rows * keep, "dst shape mismatch");
    let blocks = rows.div_ceil(BLOCK);
    let parts = pool.threads().min(blocks).max(1);
    if parts == 1 {
        return transpose_partial(src, dst, rows, cols, keep);
    }
    let dst_ptr = SlicePtr::new(dst);
    pool.run(parts, |t| {
        let (b0, bl) = part_range(blocks, parts, t);
        let r_lo = b0 * BLOCK;
        let r_hi = ((b0 + bl) * BLOCK).min(rows);
        for r0 in (r_lo..r_hi).step_by(BLOCK) {
            let r1 = (r0 + BLOCK).min(r_hi);
            for c0 in (0..keep).step_by(BLOCK) {
                let c1 = (c0 + BLOCK).min(keep);
                for r in r0..r1 {
                    for c in c0..c1 {
                        // SAFETY: destination index `c·rows + r` is unique
                        // to this task because each `r` belongs to exactly
                        // one block-row range.
                        unsafe { dst_ptr.write(c * rows + r, src[r * cols + c]) };
                    }
                }
            }
        }
    });
}

/// The paper's stride permutation `w = P_perm^{ℓ,n}·v`:
/// `w[j + k·ℓ] = v[k + j·(n/ℓ)]`.
///
/// # Panics
/// Panics if `ℓ` does not divide `v.len()`.
pub fn stride_permute<T: Copy>(v: &[T], w: &mut [T], l: usize) {
    let n = v.len();
    assert_eq!(w.len(), n);
    assert!(l > 0 && n % l == 0, "stride {l} must divide length {n}");
    // v viewed as ℓ×(n/ℓ) row-major, w as its transpose.
    transpose(v, w, l, n / l);
}

/// [`stride_permute`] executed block-row-parallel on a pool.
pub fn stride_permute_pooled<T: Copy + Send + Sync>(
    v: &[T],
    w: &mut [T],
    l: usize,
    pool: &ThreadPool,
) {
    let n = v.len();
    assert_eq!(w.len(), n);
    assert!(l > 0 && n % l == 0, "stride {l} must divide length {n}");
    transpose_pooled(v, w, l, n / l, pool);
}

/// Inverse stride permutation: `P_perm^{n/ℓ,n}` (the transpose back).
pub fn stride_unpermute<T: Copy>(v: &[T], w: &mut [T], l: usize) {
    let n = v.len();
    assert!(l > 0 && n % l == 0, "stride {l} must divide length {n}");
    stride_permute(v, w, n / l);
}

/// Gather a strided sub-vector: `dst[i] = src[offset + i·stride]`.
pub fn gather_strided<T: Copy>(src: &[T], dst: &mut [T], offset: usize, stride: usize) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = src[offset + i * stride];
    }
}

/// Scatter into a strided sub-vector: `dst[offset + i·stride] = src[i]`.
pub fn scatter_strided<T: Copy>(src: &[T], dst: &mut [T], offset: usize, stride: usize) {
    for (i, &s) in src.iter().enumerate() {
        dst[offset + i * stride] = s;
    }
}

/// Pointwise multiply `data[i] *= factors[i]` (the "twiddle scaling" step
/// between the two FFT stages of the baseline decomposition, and the
/// demodulation step of SOI).
pub fn pointwise_mul<T: Real>(data: &mut [Complex<T>], factors: &[Complex<T>]) {
    assert_eq!(data.len(), factors.len());
    for (d, &f) in data.iter_mut().zip(factors) {
        *d = *d * f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_small() {
        // 2×3 → 3×2
        let src = [1, 2, 3, 4, 5, 6];
        let mut dst = [0; 6];
        transpose(&src, &mut dst, 2, 3);
        assert_eq!(dst, [1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn transpose_involution() {
        let rows = 37;
        let cols = 53;
        let src: Vec<u32> = (0..rows * cols as u32).collect();
        let mut t = vec![0u32; src.len()];
        let mut back = vec![0u32; src.len()];
        transpose(&src, &mut t, rows as usize, cols as usize);
        transpose(&t, &mut back, cols as usize, rows as usize);
        assert_eq!(src, back);
    }

    #[test]
    fn stride_permute_matches_paper_definition() {
        // P = 2, N' = 12 — exactly the Fig 3 example scale.
        let n = 12;
        let l = 2;
        let v: Vec<usize> = (0..n).collect();
        let mut w = vec![0usize; n];
        stride_permute(&v, &mut w, l);
        for j in 0..l {
            for k in 0..n / l {
                assert_eq!(w[j + k * l], v[k + j * (n / l)]);
            }
        }
    }

    #[test]
    fn stride_unpermute_inverts() {
        let n = 60;
        for l in [2usize, 3, 4, 5, 6, 10, 12] {
            let v: Vec<usize> = (0..n).collect();
            let mut w = vec![0usize; n];
            let mut back = vec![0usize; n];
            stride_permute(&v, &mut w, l);
            stride_unpermute(&w, &mut back, l);
            assert_eq!(v, back, "l={l}");
        }
    }

    #[test]
    fn stride_permute_is_a_bijection() {
        let n = 48;
        let l = 6;
        let v: Vec<usize> = (0..n).collect();
        let mut w = vec![0usize; n];
        stride_permute(&v, &mut w, l);
        let mut seen = vec![false; n];
        for &x in &w {
            assert!(!seen[x], "duplicate {x}");
            seen[x] = true;
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let src: Vec<i64> = (0..40).collect();
        let mut sub = vec![0i64; 10];
        gather_strided(&src, &mut sub, 3, 4);
        assert_eq!(sub[0], 3);
        assert_eq!(sub[1], 7);
        let mut dst = vec![0i64; 40];
        scatter_strided(&sub, &mut dst, 3, 4);
        for i in 0..10 {
            assert_eq!(dst[3 + 4 * i], src[3 + 4 * i]);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn stride_permute_rejects_nondivisor() {
        let v = [0u8; 10];
        let mut w = [0u8; 10];
        stride_permute(&v, &mut w, 3);
    }

    #[test]
    fn pooled_transpose_matches_serial_exactly() {
        let pool = ThreadPool::new(4);
        for (rows, cols) in [(128usize, 8usize), (37, 53), (200, 3), (5, 5), (1, 64)] {
            let src: Vec<u64> = (0..(rows * cols) as u64).collect();
            let mut serial = vec![0u64; src.len()];
            let mut pooled = vec![0u64; src.len()];
            transpose(&src, &mut serial, rows, cols);
            transpose_pooled(&src, &mut pooled, rows, cols, &pool);
            assert_eq!(serial, pooled, "rows={rows} cols={cols}");
        }
    }

    #[test]
    fn pooled_stride_permute_matches_serial() {
        let pool = ThreadPool::new(3);
        let n = 4096;
        let v: Vec<u32> = (0..n as u32).collect();
        for l in [2usize, 8, 64, 1024] {
            let mut a = vec![0u32; n];
            let mut b = vec![0u32; n];
            stride_permute(&v, &mut a, l);
            stride_permute_pooled(&v, &mut b, l, &pool);
            assert_eq!(a, b, "l={l}");
        }
    }

    #[test]
    fn partial_transpose_is_the_full_transpose_restricted() {
        for (rows, cols, keep) in [(6usize, 4usize, 2usize), (37, 53, 20), (100, 8, 4), (5, 5, 5), (9, 7, 0)] {
            let src: Vec<u32> = (0..(rows * cols) as u32).collect();
            let mut full = vec![0u32; rows * cols];
            transpose(&src, &mut full, rows, cols);
            let mut part = vec![0u32; rows * keep];
            transpose_partial(&src, &mut part, rows, cols, keep);
            assert_eq!(part, full[..rows * keep], "rows={rows} cols={cols} keep={keep}");
        }
    }

    #[test]
    fn pooled_partial_transpose_matches_serial_exactly() {
        let pool = ThreadPool::new(4);
        for (rows, cols, keep) in [(128usize, 8usize, 4usize), (200, 6, 3), (37, 53, 11), (1, 64, 32)] {
            let src: Vec<u64> = (0..(rows * cols) as u64).collect();
            let mut serial = vec![0u64; rows * keep];
            let mut pooled = vec![0u64; rows * keep];
            transpose_partial(&src, &mut serial, rows, cols, keep);
            transpose_partial_pooled(&src, &mut pooled, rows, cols, keep, &pool);
            assert_eq!(serial, pooled, "rows={rows} cols={cols} keep={keep}");
        }
    }

    #[test]
    fn pointwise_mul_basic() {
        use soi_num::c64;
        let mut d = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let f = vec![c64(2.0, 0.0), c64(0.0, 1.0)];
        pointwise_mul(&mut d, &f);
        assert_eq!(d[0], c64(2.0, 0.0));
        assert_eq!(d[1], c64(-1.0, 0.0));
    }
}
