//! The planner: picks an engine per size and wraps direction /
//! normalization, FFTW-style.

use crate::bluestein::BluesteinFft;
use crate::mixed::{largest_prime_factor, MixedRadixFft};
use crate::stockham::StockhamFft;
use crate::twiddle::Sign;
use soi_num::{Complex, Real};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Transform direction with the normalization conventions of this crate:
/// forward is unnormalized, inverse is scaled by `1/N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Unnormalized forward DFT (`e^{−2πi jk/N}`).
    Forward,
    /// `1/N`-normalized inverse DFT.
    Inverse,
}

impl Direction {
    fn sign(self) -> Sign {
        match self {
            Direction::Forward => Sign::Forward,
            Direction::Inverse => Sign::Inverse,
        }
    }
}

/// Largest prime factor we still run through the mixed-radix generic
/// butterfly; anything bigger goes to Bluestein (the `O(r²)` butterfly
/// would dominate past this point).
const MAX_DIRECT_PRIME: usize = 61;

#[derive(Debug, Clone)]
enum Engine<T> {
    Stockham(StockhamFft<T>),
    Mixed(MixedRadixFft<T>),
    Bluestein(BluesteinFft<T>),
}

/// A prepared 1-D complex transform of a fixed size and direction.
///
/// Plans are immutable after construction and cheap to share (`Arc`
/// inside [`Planner`]); `execute` allocates only scratch.
///
/// ```
/// use soi_fft::Plan;
/// use soi_num::Complex64;
///
/// let plan = Plan::<f64>::forward(8);
/// let mut data = vec![Complex64::ONE; 8];
/// plan.execute(&mut data);
/// assert!((data[0].re - 8.0).abs() < 1e-12); // DC bin collects everything
/// assert!(data[1].abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Plan<T> {
    n: usize,
    direction: Direction,
    engine: Engine<T>,
}

impl<T: Real> Plan<T> {
    /// Plan a transform of size `n` in the given direction.
    pub fn new(n: usize, direction: Direction) -> Self {
        assert!(n > 0, "cannot plan a zero-length FFT");
        let sign = direction.sign();
        let engine = if n.is_power_of_two() {
            Engine::Stockham(StockhamFft::new(n, sign))
        } else if largest_prime_factor(n) <= MAX_DIRECT_PRIME {
            Engine::Mixed(MixedRadixFft::new(n, sign))
        } else {
            Engine::Bluestein(BluesteinFft::new(n, sign))
        };
        Self {
            n,
            direction,
            engine,
        }
    }

    /// Forward plan.
    pub fn forward(n: usize) -> Self {
        Self::new(n, Direction::Forward)
    }

    /// Inverse plan (`1/N`-normalized).
    pub fn inverse(n: usize) -> Self {
        Self::new(n, Direction::Inverse)
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for an (unconstructible) empty plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction of this plan.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Human-readable engine name (for logs and test assertions).
    pub fn engine_name(&self) -> &'static str {
        match &self.engine {
            Engine::Stockham(_) => "stockham",
            Engine::Mixed(_) => "mixed-radix",
            Engine::Bluestein(_) => "bluestein",
        }
    }

    /// Execute in place.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        match &self.engine {
            Engine::Stockham(e) => e.execute(data),
            Engine::Mixed(e) => e.execute(data),
            Engine::Bluestein(e) => e.execute(data),
        }
        self.normalize(data);
    }

    /// Scratch elements an allocation-free [`Self::execute_with_scratch`]
    /// call needs for this engine: `n` for Stockham, slightly more for
    /// mixed-radix (staging copy + combine workspace), `2·padded_len` for
    /// Bluestein.
    pub fn scratch_len(&self) -> usize {
        match &self.engine {
            Engine::Stockham(_) => self.n,
            Engine::Mixed(e) => e.scratch_len(),
            Engine::Bluestein(e) => e.scratch_len(),
        }
    }

    /// Execute in place reusing caller scratch. Allocation-free whenever
    /// `scratch.len() >= self.scratch_len()` (every engine has a scratch
    /// path); a shorter scratch falls back to internal allocation so
    /// legacy callers that sized scratch as `n` keep working on every
    /// engine.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        if scratch.len() < self.scratch_len() {
            return self.execute(data);
        }
        match &self.engine {
            Engine::Stockham(e) => e.execute_with_scratch(data, &mut scratch[..self.n]),
            Engine::Mixed(e) => e.execute_with_scratch(data, scratch),
            Engine::Bluestein(e) => e.execute_with_scratch(data, scratch),
        }
        self.normalize(data);
    }

    /// Apply the `1/N` inverse normalization when the plan is inverse.
    fn normalize(&self, data: &mut [Complex<T>]) {
        if self.direction == Direction::Inverse {
            let scale = T::ONE / T::from_usize(self.n);
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// Out-of-place execute.
    pub fn process(&self, src: &[Complex<T>], dst: &mut [Complex<T>]) {
        dst.copy_from_slice(src);
        self.execute(dst);
    }
}

/// A caching planner: hands out shared plans, building each
/// (size, direction) once. Thread-safe.
#[derive(Debug, Default)]
pub struct Planner<T> {
    cache: Mutex<HashMap<(usize, Direction), Arc<Plan<T>>>>,
}

impl<T: Real> Planner<T> {
    /// New empty planner.
    pub fn new() -> Self {
        Self {
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Get (or build and cache) a plan.
    pub fn plan(&self, n: usize, direction: Direction) -> Arc<Plan<T>> {
        let mut cache = self.cache.lock().expect("planner cache poisoned");
        cache
            .entry((n, direction))
            .or_insert_with(|| Arc::new(Plan::new(n, direction)))
            .clone()
    }

    /// Number of distinct plans built so far.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().expect("planner cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.41).sin(), (i as f64 * 2.3).cos() * 0.5))
            .collect()
    }

    #[test]
    fn engine_selection() {
        assert_eq!(Plan::<f64>::forward(256).engine_name(), "stockham");
        assert_eq!(Plan::<f64>::forward(360).engine_name(), "mixed-radix");
        assert_eq!(Plan::<f64>::forward(61 * 4).engine_name(), "mixed-radix");
        assert_eq!(Plan::<f64>::forward(997).engine_name(), "bluestein");
        assert_eq!(Plan::<f64>::forward(2 * 67).engine_name(), "bluestein");
    }

    #[test]
    fn all_engines_match_naive() {
        for n in [64usize, 360, 997] {
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = Plan::forward(n);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(
                max_abs_diff(&got, &want) < 1e-8 * n as f64,
                "engine {} n={n}",
                plan.engine_name()
            );
        }
    }

    #[test]
    fn inverse_roundtrip_every_engine() {
        for n in [128usize, 540, 499] {
            let x = test_signal(n);
            let mut buf = x.clone();
            Plan::forward(n).execute(&mut buf);
            Plan::inverse(n).execute(&mut buf);
            assert!(max_abs_diff(&buf, &x) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn planner_caches_and_shares() {
        let planner: Planner<f64> = Planner::new();
        let a = planner.plan(128, Direction::Forward);
        let b = planner.plan(128, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let _ = planner.plan(128, Direction::Inverse);
        let _ = planner.plan(64, Direction::Forward);
        assert_eq!(planner.cached_plans(), 3);
    }

    #[test]
    fn execute_with_scratch_matches_execute() {
        let n = 1024;
        let x = test_signal(n);
        let plan = Plan::forward(n);
        let mut a = x.clone();
        let mut b = x.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        plan.execute(&mut a);
        plan.execute_with_scratch(&mut b, &mut scratch);
        assert_eq!(
            a.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            b.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shift_theorem() {
        // DFT(x shifted by s) = DFT(x) modulated by ω^{ks}: the identity
        // underlying the paper's segment recovery (§5, Φ_s).
        let n = 96;
        let x = test_signal(n);
        let s = 17;
        let shifted: Vec<Complex64> = (0..n).map(|j| x[(j + s) % n]).collect();
        let plan = Plan::forward(n);
        let mut y = x.clone();
        plan.execute(&mut y);
        let mut ys = shifted;
        plan.execute(&mut ys);
        for k in 0..n {
            let w = Complex64::root_of_unity(k * s % n, n).conj();
            assert!((ys[k] - y[k] * w).abs() < 1e-10, "bin {k}");
        }
    }
}
