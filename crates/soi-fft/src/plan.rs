//! The planner: picks an engine per size and wraps direction /
//! normalization, FFTW-style.

use crate::bluestein::BluesteinFft;
use crate::codelet::{Codelet, Dispatch};
use crate::fourstep::{split, FourStepFft, RawFft};
use crate::mixed::{largest_prime_factor, MixedRadixFft};
use crate::simd;
use crate::stockham::StockhamFft;
use crate::twiddle::Sign;
use soi_num::{Complex, Real};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Transform direction with the normalization conventions of this crate:
/// forward is unnormalized, inverse is scaled by `1/N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Unnormalized forward DFT (`e^{−2πi jk/N}`).
    Forward,
    /// `1/N`-normalized inverse DFT.
    Inverse,
}

impl Direction {
    fn sign(self) -> Sign {
        match self {
            Direction::Forward => Sign::Forward,
            Direction::Inverse => Sign::Inverse,
        }
    }
}

/// Largest prime factor we still run through the mixed-radix generic
/// butterfly; anything bigger goes to Bluestein (the `O(r²)` butterfly
/// would dominate past this point).
const MAX_DIRECT_PRIME: usize = 61;

/// Assumed per-core L2 capacity when `SOI_FFT_L2_BYTES` is unset.
const DEFAULT_L2_BYTES: usize = 1 << 20;

/// Smallest size the planner hands to the four-step engine. Derived from
/// the L2 capacity: a monolithic transform touches ~2 buffers of 16-byte
/// elements per pass (32 B of working set per point), so beyond
/// `L2/32` points the strided butterfly passes start missing L2 and the
/// cache-blocked decomposition wins. Override the cache size with
/// `SOI_FFT_L2_BYTES` (read once per process).
pub fn four_step_min_len() -> usize {
    static MIN: OnceLock<usize> = OnceLock::new();
    *MIN.get_or_init(|| {
        let l2 = std::env::var("SOI_FFT_L2_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_L2_BYTES);
        (l2 / 32).max(64)
    })
}

/// The four-step split the planner uses, re-derived against the SIMD
/// kernel speeds (calibrated with `soi-bench`'s `fourstep_scan` example
/// on AVX2+FMA). Powers of two keep the near-square [`split`] (both
/// sides stay Stockham, and near-square minimizes the larger side's
/// working set). For mixed sizes, candidate divisors `(a, b = n/a)` are
/// scored jointly:
///
/// * When the batched column fast path covers `a` (`a = 5^j·2^k` with a
///   usable stream width for `b`), the `F_a` side runs through
///   cache-resident tiles with no transpose passes — its levels cost a
///   fraction (`COL_COST_K`) of a streamed Stockham level. Otherwise the
///   side pays the classic transpose+twiddle passes (`NO_COL_PENALTY`)
///   on top of its engine cost.
/// * The `F_b` row engine costs `log₂ b` Stockham levels when `b` is a
///   power of two, and `MIXED_COST_K` as much per level when it falls to
///   mixed-radix (measured: mixed runs ≈2× Stockham's per-level cost),
///   plus a scalar radix-2 level penalty when its pow2 part has odd
///   exponent and a per-row overhead term for short rows.
/// * Rows shorter than the ≈4096-point sweet spot trade cheap Stockham
///   levels for extra column-ladder levels and narrower column blocks;
///   `ROW_SKEW` prices that (the 163840 scan: b=4096 beats b=2048 and
///   b=1024 despite the deeper row transform).
///
/// The inner cap keeps both row engines below the four-step threshold so
/// they stay cache-resident monolithic engines.
///
/// Returns a nontrivial divisor `a ≤ √n` of `n`, or 1 when `n` is prime.
pub fn choose_split(n: usize) -> usize {
    if n.is_power_of_two() {
        return split(n);
    }
    const MIXED_COST_K: f64 = 2.2;
    const OVERHEAD: f64 = 24.0;
    const RADIX2_PENALTY: f64 = 1.3;
    const COL_COST_K: f64 = 0.55;
    const NO_COL_PENALTY: f64 = 2.0;
    const ROW_SWEET_LG: f64 = 12.0; // b ≈ 4096: 64 KiB rows, L2-hot
    const ROW_SKEW: f64 = 0.6;
    let side = |s: usize| -> f64 {
        let lg = (s as f64).log2();
        if s.is_power_of_two() {
            lg + OVERHEAD / s as f64
        } else {
            let r2 = if s.trailing_zeros() % 2 == 1 {
                RADIX2_PENALTY
            } else {
                0.0
            };
            MIXED_COST_K * lg + OVERHEAD / s as f64 + r2
        }
    };
    let cost = |a: usize, b: usize| -> f64 {
        let a_cost = if crate::colfft::ColumnFft::width_for(a, b).is_some() {
            COL_COST_K * (a as f64).log2()
        } else {
            side(a) + NO_COL_PENALTY
        };
        let b_lg = (b as f64).log2();
        a_cost + side(b) + ROW_SKEW * (ROW_SWEET_LG - b_lg).max(0.0)
    };
    let cap = four_step_min_len();
    let mut best_a = 1usize;
    let mut best_cost = f64::INFINITY;
    let mut a = 2usize;
    while a * a <= n {
        if n % a == 0 && n / a <= cap {
            let c = cost(a, n / a);
            if c < best_cost {
                best_cost = c;
                best_a = a;
            }
        }
        a += 1;
    }
    if best_a > 1 {
        best_a
    } else {
        split(n)
    }
}

#[derive(Debug, Clone)]
enum Engine<T> {
    Stockham(StockhamFft<T>),
    Mixed(MixedRadixFft<T>),
    FourStep(FourStepFft<T>),
    Bluestein(BluesteinFft<T>),
}

/// A prepared 1-D complex transform of a fixed size and direction.
///
/// Plans are immutable after construction and cheap to share (`Arc`
/// inside [`Planner`]); `execute` allocates only scratch.
///
/// ```
/// use soi_fft::Plan;
/// use soi_num::Complex64;
///
/// let plan = Plan::<f64>::forward(8);
/// let mut data = vec![Complex64::ONE; 8];
/// plan.execute(&mut data);
/// assert!((data[0].re - 8.0).abs() < 1e-12); // DC bin collects everything
/// assert!(data[1].abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Plan<T> {
    n: usize,
    direction: Direction,
    engine: Engine<T>,
}

impl<T: Real> Plan<T> {
    /// Plan a transform of size `n` in the given direction.
    pub fn new(n: usize, direction: Direction) -> Self {
        Self::new_in(n, direction, &Planner::new())
    }

    /// Plan inside a [`Planner`], so composite engines (four-step,
    /// Bluestein) pull their inner raw engines from the planner's shared
    /// cache instead of rebuilding twiddle tables per plan.
    pub fn new_in(n: usize, direction: Direction, planner: &Planner<T>) -> Self {
        assert!(n > 0, "cannot plan a zero-length FFT");
        let sign = direction.sign();
        let smooth = n.is_power_of_two() || largest_prime_factor(n) <= MAX_DIRECT_PRIME;
        let engine = if smooth && n >= four_step_min_len() && split(n) > 1 {
            // Above the L2 working set, decompose into cache-resident
            // row transforms instead of strided monolithic passes.
            let a = choose_split(n);
            Engine::FourStep(FourStepFft::with_engines(
                n,
                sign,
                planner.raw(a, sign),
                planner.raw(n / a, sign),
            ))
        } else if n.is_power_of_two() {
            Engine::Stockham(StockhamFft::new(n, sign))
        } else if smooth {
            Engine::Mixed(MixedRadixFft::new(n, sign))
        } else {
            Engine::Bluestein(BluesteinFft::new_in(n, sign, planner))
        };
        Self {
            n,
            direction,
            engine,
        }
    }

    /// Forward plan.
    pub fn forward(n: usize) -> Self {
        Self::new(n, Direction::Forward)
    }

    /// Inverse plan (`1/N`-normalized).
    pub fn inverse(n: usize) -> Self {
        Self::new(n, Direction::Inverse)
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for an (unconstructible) empty plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction of this plan.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Human-readable engine name (for logs and test assertions).
    pub fn engine_name(&self) -> &'static str {
        match &self.engine {
            Engine::Stockham(_) => "stockham",
            Engine::Mixed(_) => "mixed-radix",
            Engine::FourStep(_) => "four-step",
            Engine::Bluestein(_) => "bluestein",
        }
    }

    /// The butterfly codelets this plan's execution path dispatches to
    /// (for composite engines, the union over inner engines).
    pub fn codelets(&self) -> Vec<Codelet> {
        match &self.engine {
            Engine::Stockham(e) => e.codelets(),
            Engine::Mixed(e) => e.codelets(),
            Engine::FourStep(e) => e.codelets(),
            Engine::Bluestein(e) => e.codelets(),
        }
    }

    /// The codelets with the dispatch each actually executes under —
    /// `Avx2Fma` for stages running the vector kernels, `Portable` for
    /// scalar ones. Decided at plan construction, constant thereafter.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        match &self.engine {
            Engine::Stockham(e) => e.codelet_dispatch(),
            Engine::Mixed(e) => e.codelet_dispatch(),
            Engine::FourStep(e) => e.codelet_dispatch(),
            Engine::Bluestein(e) => e.codelet_dispatch(),
        }
    }

    /// Summary dispatch string for benches/logs: `"avx2+fma"` when every
    /// stage runs a vector kernel, `"portable"` when none does, and
    /// `"mixed"` for plans with both (e.g. a scalar radix-3 level inside
    /// an otherwise vectorized mixed-radix plan).
    pub fn dispatch_name(&self) -> &'static str {
        let v = self.codelet_dispatch();
        if v.iter().all(|(_, d)| d.is_simd()) {
            "avx2+fma"
        } else if v.iter().all(|(_, d)| !d.is_simd()) {
            "portable"
        } else {
            "mixed"
        }
    }

    /// Execute in place.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        match &self.engine {
            Engine::Stockham(e) => e.execute(data),
            Engine::Mixed(e) => e.execute(data),
            Engine::FourStep(e) => e.execute(data),
            Engine::Bluestein(e) => e.execute(data),
        }
        self.normalize(data);
    }

    /// Scratch elements an allocation-free [`Self::execute_with_scratch`]
    /// call needs for this engine: `n` for Stockham, slightly more for
    /// mixed-radix (staging copy + combine workspace) and four-step
    /// (transpose buffer + inner row scratch), `2·padded_len` for
    /// Bluestein. Exact: providing this much guarantees zero allocation,
    /// and every engine's bound is pinned by tests.
    pub fn scratch_len(&self) -> usize {
        match &self.engine {
            Engine::Stockham(_) => self.n,
            Engine::Mixed(e) => e.scratch_len(),
            Engine::FourStep(e) => e.scratch_len(),
            Engine::Bluestein(e) => e.scratch_len(),
        }
    }

    /// Execute in place reusing caller scratch. Allocation-free whenever
    /// `scratch.len() >= self.scratch_len()` (every engine has a scratch
    /// path); a shorter scratch falls back to internal allocation so
    /// legacy callers that sized scratch as `n` keep working on every
    /// engine.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        if scratch.len() < self.scratch_len() {
            return self.execute(data);
        }
        match &self.engine {
            Engine::Stockham(e) => e.execute_with_scratch(data, &mut scratch[..self.n]),
            Engine::Mixed(e) => e.execute_with_scratch(data, scratch),
            Engine::FourStep(e) => e.execute_with_scratch(data, scratch),
            Engine::Bluestein(e) => e.execute_with_scratch(data, scratch),
        }
        self.normalize(data);
    }

    /// Transform `data` and write `out[k] = result[k]·weights[k]` for
    /// `k < out.len()` — the SOI projection (`out.len() ≤ n` keeps only
    /// the leading bins) fused with the `Ŵ⁻¹` demodulation weights.
    ///
    /// On the forward Stockham and four-step engines the weighted write
    /// is folded into the engine's final output pass, eliminating one
    /// full read-modify-write sweep over the transform; other engines
    /// (and the inverse direction, whose `1/N` normalization must land
    /// before the weights per the unfused reference order) fall back to
    /// execute-then-multiply. Either way the result is **bitwise
    /// identical** to [`Self::execute_with_scratch`] followed by the
    /// multiply loop; `data` is clobbered on the fused paths.
    pub fn execute_fused_into(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        out: &mut [Complex<T>],
        weights: &[Complex<T>],
    ) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        assert!(out.len() <= self.n, "fused output longer than transform");
        assert!(weights.len() >= out.len(), "fused weights too short");
        if self.direction == Direction::Forward && scratch.len() >= self.scratch_len() {
            match &self.engine {
                Engine::Stockham(e) => {
                    return e.execute_fused_into(data, &mut scratch[..self.n], out, weights);
                }
                Engine::FourStep(e) => {
                    return e.execute_fused_into(data, scratch, out, weights);
                }
                Engine::Mixed(e) => {
                    return e.execute_fused_into(data, scratch, out, weights);
                }
                Engine::Bluestein(_) => {}
            }
        }
        self.execute_with_scratch(data, scratch);
        // Bitwise identical to the plain multiply loop on every path.
        simd::weighted_product(out, data, weights);
    }

    /// Apply the `1/N` inverse normalization when the plan is inverse.
    fn normalize(&self, data: &mut [Complex<T>]) {
        if self.direction == Direction::Inverse {
            let scale = T::ONE / T::from_usize(self.n);
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// Out-of-place execute.
    pub fn process(&self, src: &[Complex<T>], dst: &mut [Complex<T>]) {
        dst.copy_from_slice(src);
        self.execute(dst);
    }
}

/// Cumulative counters for one planner cache. A long-lived daemon polls
/// these (via `soi serve --stats`) to see whether its working set fits
/// the configured capacity: a rising eviction count means plans are
/// being rebuilt in steady state and the cap should grow.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries discarded to stay under capacity.
    pub evictions: u64,
}

/// A small LRU map: entries carry a monotonically increasing touch
/// stamp, and inserting past capacity discards the stalest entry. The
/// O(capacity) eviction scan is fine at the cap sizes used here (tens of
/// entries, each worth megabytes of twiddle tables).
#[derive(Debug)]
struct Lru<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
    stats: CacheStats,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> Lru<K, V> {
    fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up and touch; counts a hit or a miss.
    fn get(&mut self, k: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(k) {
            Some((stamp, v)) => {
                *stamp = self.tick;
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert-or-touch: a concurrent builder may have won the race, in
    /// which case the existing entry is kept (so repeat callers keep
    /// sharing one `Arc`). Evicts stalest entries past capacity.
    fn insert(&mut self, k: K, v: V) -> V {
        self.tick += 1;
        if let Some((stamp, existing)) = self.map.get_mut(&k) {
            *stamp = self.tick;
            return existing.clone();
        }
        self.map.insert(k, (self.tick, v.clone()));
        while self.map.len() > self.cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        v
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Default plan-cache capacity when `SOI_PLAN_CACHE_CAP` is unset:
/// comfortably above any single pipeline's working set (a SOI transform
/// needs ~4 plans; the whole test suite peaks well below this) while
/// still bounding a daemon that sees adversarially many distinct sizes.
const DEFAULT_PLAN_CACHE_CAP: usize = 64;

/// Plan-cache capacity: `SOI_PLAN_CACHE_CAP` (entries, > 0) or the
/// default. Read per planner construction so tests can exercise both.
fn capacity_from_env() -> usize {
    std::env::var("SOI_PLAN_CACHE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_PLAN_CACHE_CAP)
}

/// A caching planner: hands out shared plans, building each
/// (size, direction) once, plus a second cache of the raw inner engines
/// composite plans (four-step, Bluestein) recurse into — so e.g. the
/// Stockham twiddles of a Bluestein padding size, or a four-step row
/// engine shared between two composite sizes, are built once per
/// process-wide planner rather than once per plan. Thread-safe.
///
/// Both caches are bounded LRU (capacity via [`Planner::with_capacity`]
/// or the `SOI_PLAN_CACHE_CAP` environment variable, default 64 plans):
/// a long-lived daemon serving arbitrary client sizes cannot grow plan
/// or twiddle memory without limit. Eviction only drops the cache's
/// `Arc`; live transforms keep their plans alive.
#[derive(Debug)]
pub struct Planner<T> {
    cache: Mutex<Lru<(usize, Direction), Arc<Plan<T>>>>,
    raw: Mutex<Lru<(usize, Sign), Arc<RawFft<T>>>>,
}

impl<T: Real> Default for Planner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Real> Planner<T> {
    /// New empty planner with the environment-configured capacity.
    pub fn new() -> Self {
        Self::with_capacity(capacity_from_env())
    }

    /// New empty planner bounded to `cap` cached plans. The raw-engine
    /// cache gets `2·cap`: one composite plan can pull in two inner
    /// engines (four-step rows, Bluestein forward + inverse), so a plan
    /// working set that fits always keeps its raw engines resident too.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            cache: Mutex::new(Lru::new(cap)),
            raw: Mutex::new(Lru::new(cap.saturating_mul(2).max(1))),
        }
    }

    /// Get (or build and cache) a plan.
    pub fn plan(&self, n: usize, direction: Direction) -> Arc<Plan<T>> {
        if let Some(p) = self
            .cache
            .lock()
            .expect("planner cache poisoned")
            .get(&(n, direction))
        {
            return p;
        }
        // Build OUTSIDE the lock: composite engines recurse into
        // `self.raw` during construction, and holding the plan lock
        // across that would serialize all planning on one twiddle build
        // (and deadlock if construction ever needs another plan).
        let built = Arc::new(Plan::new_in(n, direction, self));
        self.cache
            .lock()
            .expect("planner cache poisoned")
            .insert((n, direction), built)
    }

    /// Get (or build and cache) a raw unnormalized inner engine.
    pub fn raw(&self, n: usize, sign: Sign) -> Arc<RawFft<T>> {
        if let Some(e) = self
            .raw
            .lock()
            .expect("planner raw cache poisoned")
            .get(&(n, sign))
        {
            return e;
        }
        let built = Arc::new(RawFft::new(n, sign));
        self.raw
            .lock()
            .expect("planner raw cache poisoned")
            .insert((n, sign), built)
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().expect("planner cache poisoned").len()
    }

    /// Plan-cache capacity (entries).
    pub fn plan_capacity(&self) -> usize {
        self.cache.lock().expect("planner cache poisoned").cap
    }

    /// Cumulative hit/miss/eviction counters of the plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("planner cache poisoned").stats
    }

    /// Cumulative hit/miss/eviction counters of the raw-engine cache.
    pub fn raw_cache_stats(&self) -> CacheStats {
        self.raw.lock().expect("planner raw cache poisoned").stats
    }

    /// Forward-plan convenience on the shared cache.
    pub fn forward(&self, n: usize) -> Arc<Plan<T>> {
        self.plan(n, Direction::Forward)
    }

    /// Inverse-plan convenience on the shared cache.
    pub fn inverse(&self, n: usize) -> Arc<Plan<T>> {
        self.plan(n, Direction::Inverse)
    }

    /// Number of distinct raw inner engines built so far.
    pub fn cached_raw_engines(&self) -> usize {
        self.raw.lock().expect("planner raw cache poisoned").len()
    }
}

impl Planner<f64> {
    /// The process-wide shared `f64` planner. Every plan-construction
    /// site in the workspace (pipeline `F_P`/`F_{M'}`, the exact
    /// reference transforms, the distributed baselines, Bluestein inner
    /// engines) routes through this cache, so twiddle tables for a given
    /// (size, direction) are built once per process no matter how many
    /// transform objects are alive.
    pub fn global() -> &'static Planner<f64> {
        static GLOBAL: OnceLock<Planner<f64>> = OnceLock::new();
        GLOBAL.get_or_init(Planner::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.41).sin(), (i as f64 * 2.3).cos() * 0.5))
            .collect()
    }

    #[test]
    fn engine_selection() {
        assert_eq!(Plan::<f64>::forward(256).engine_name(), "stockham");
        assert_eq!(Plan::<f64>::forward(360).engine_name(), "mixed-radix");
        assert_eq!(Plan::<f64>::forward(61 * 4).engine_name(), "mixed-radix");
        assert_eq!(Plan::<f64>::forward(997).engine_name(), "bluestein");
        assert_eq!(Plan::<f64>::forward(2 * 67).engine_name(), "bluestein");
    }

    #[test]
    fn all_engines_match_naive() {
        for n in [64usize, 360, 997] {
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = Plan::forward(n);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(
                max_abs_diff(&got, &want) < 1e-8 * n as f64,
                "engine {} n={n}",
                plan.engine_name()
            );
        }
    }

    #[test]
    fn inverse_roundtrip_every_engine() {
        for n in [128usize, 540, 499] {
            let x = test_signal(n);
            let mut buf = x.clone();
            Plan::forward(n).execute(&mut buf);
            Plan::inverse(n).execute(&mut buf);
            assert!(max_abs_diff(&buf, &x) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn planner_caches_and_shares() {
        let planner: Planner<f64> = Planner::new();
        let a = planner.plan(128, Direction::Forward);
        let b = planner.plan(128, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let _ = planner.plan(128, Direction::Inverse);
        let _ = planner.plan(64, Direction::Forward);
        assert_eq!(planner.cached_plans(), 3);
    }

    #[test]
    fn execute_with_scratch_matches_execute() {
        let n = 1024;
        let x = test_signal(n);
        let plan = Plan::forward(n);
        let mut a = x.clone();
        let mut b = x.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        plan.execute(&mut a);
        plan.execute_with_scratch(&mut b, &mut scratch);
        assert_eq!(
            a.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            b.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hot_sizes_dispatch_radix5_never_generic() {
        // M' = 163840 = 2^15·5: the N=2^20, P=8 production size. Above
        // the four-step threshold it decomposes as 320×512 with a
        // mixed-radix row engine carrying the factor of 5.
        let plan = Plan::<f64>::forward(163840);
        assert_eq!(plan.engine_name(), "four-step");
        let cs = plan.codelets();
        assert!(cs.contains(&Codelet::Radix5), "{cs:?}");
        assert!(cs.iter().all(|c| !c.is_generic()), "{cs:?}");
        // Below the threshold the monolithic mixed-radix engine must make
        // the same promise (M' = 1280 is the N=2^12, P=4 test size).
        let small = Plan::<f64>::forward(1280);
        assert_eq!(small.engine_name(), "mixed-radix");
        let cs = small.codelets();
        assert!(cs.contains(&Codelet::Radix5), "{cs:?}");
        assert!(cs.iter().all(|c| !c.is_generic()), "{cs:?}");
    }

    #[test]
    fn scratch_len_is_exact_for_every_engine() {
        // Providing exactly `scratch_len()` elements must take the
        // allocation-free path on every engine and produce bitwise the
        // same result as the allocating `execute`.
        for n in [1024usize, 360, 997, 65536] {
            let plan = Plan::forward(n);
            let x = test_signal(n);
            let mut a = x.clone();
            plan.execute(&mut a);
            let mut b = x.clone();
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.execute_with_scratch(&mut b, &mut scratch);
            for (k, (u, v)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    u.re.to_bits(),
                    v.re.to_bits(),
                    "engine {} n={n} bin {k}",
                    plan.engine_name()
                );
                assert_eq!(u.im.to_bits(), v.im.to_bits(), "n={n} bin {k}");
            }
        }
    }

    #[test]
    fn fused_projection_matches_unfused_on_every_engine_and_direction() {
        // Covers the genuinely fused paths (forward Stockham, four-step)
        // AND every fallback branch (mixed, Bluestein, all inverse
        // directions): bitwise identity either way.
        for n in [1024usize, 360, 997, 65536] {
            for direction in [Direction::Forward, Direction::Inverse] {
                let plan = Plan::new(n, direction);
                let m = n / 2 + 1;
                let x = test_signal(n);
                let weights: Vec<Complex64> = (0..m)
                    .map(|k| c64((k as f64 * 0.19).cos() + 1.2, (k as f64 * 0.07).sin()))
                    .collect();
                let mut d1 = x.clone();
                let mut s1 = vec![Complex64::ZERO; plan.scratch_len()];
                plan.execute_with_scratch(&mut d1, &mut s1);
                let want: Vec<Complex64> = (0..m).map(|k| d1[k] * weights[k]).collect();
                let mut d2 = x.clone();
                let mut s2 = vec![Complex64::ZERO; plan.scratch_len()];
                let mut out = vec![Complex64::ZERO; m];
                plan.execute_fused_into(&mut d2, &mut s2, &mut out, &weights);
                for (k, (a, b)) in out.iter().zip(&want).enumerate() {
                    assert_eq!(
                        a.re.to_bits(),
                        b.re.to_bits(),
                        "engine {} n={n} {direction:?} bin {k}",
                        plan.engine_name()
                    );
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} bin {k}");
                }
            }
        }
    }

    #[test]
    fn production_m_dispatches_simd_on_avx2() {
        // On AVX2+FMA hardware (without the SOI_NO_SIMD override), the
        // production M' = 163840 = 2^15·5 plan must hit *only*
        // SIMD-dispatched stages: the planner's split may not introduce a
        // side whose factorization forces a scalar level.
        if !crate::simd::enabled() {
            return; // non-x86 or ablation run: nothing to assert
        }
        let plan = Plan::<f64>::forward(163840);
        assert_eq!(plan.engine_name(), "four-step");
        let cd = plan.codelet_dispatch();
        assert!(
            cd.iter().all(|&(_, d)| d.is_simd()),
            "non-SIMD stage in production plan: {cd:?}"
        );
        assert_eq!(plan.dispatch_name(), "avx2+fma");
        // The small-M' mixed-radix plan makes the same promise.
        let small = Plan::<f64>::forward(1280);
        assert_eq!(small.dispatch_name(), "avx2+fma", "{:?}", small.codelet_dispatch());
    }

    #[test]
    fn choose_split_returns_divisors_and_keeps_pow2_near_square() {
        assert_eq!(choose_split(65536), 256);
        assert_eq!(choose_split(131072), 256);
        assert_eq!(choose_split(97), 1); // prime: no split
        for n in [40960usize, 163840, 327680, 98304] {
            let a = choose_split(n);
            assert!(a > 1 && n % a == 0 && a * a <= n, "n={n} a={a}");
            let b = n / a;
            // The a side may take the batched column path, where every
            // stage kernel (radix-2 included) is vectorized. Any other
            // side must not force a scalar radix-2 level (odd
            // power-of-two exponent) while SIMD is the point.
            if crate::colfft::ColumnFft::width_for(a, b).is_none() {
                assert!(
                    a.is_power_of_two() || a.trailing_zeros() % 2 == 0,
                    "n={n} side {a} would need a radix-2 level"
                );
            }
            assert!(
                b.is_power_of_two() || b.trailing_zeros() % 2 == 0,
                "n={n} side {b} would need a radix-2 level"
            );
        }
    }

    #[test]
    fn planner_raw_cache_shared_across_composite_plans() {
        let planner: Planner<f64> = Planner::new();
        // 65536 = 256×256: one raw engine serves both four-step rows.
        let _ = planner.plan(65536, Direction::Forward);
        assert_eq!(planner.cached_raw_engines(), 1);
        // 131072 = 256×512: reuses the 256 engine, adds only the 512.
        let _ = planner.plan(131072, Direction::Forward);
        assert_eq!(planner.cached_raw_engines(), 2);
        // 997 is prime → Bluestein at padded size 2048 (fwd + inv).
        let _ = planner.plan(997, Direction::Forward);
        assert_eq!(planner.cached_raw_engines(), 4);
        // 1019 is prime with the same padded size: both engines reused.
        let _ = planner.plan(1019, Direction::Forward);
        assert_eq!(planner.cached_raw_engines(), 4);
    }

    #[test]
    fn plan_cache_is_bounded_lru_with_counters() {
        let planner: Planner<f64> = Planner::with_capacity(2);
        assert_eq!(planner.plan_capacity(), 2);
        let first16 = planner.plan(16, Direction::Forward);
        let first32 = planner.plan(32, Direction::Forward);
        // Touch 16 so 32 becomes the least recently used entry...
        let _ = planner.plan(16, Direction::Forward);
        // ...then a third size must evict exactly it.
        let _ = planner.plan(64, Direction::Forward);
        assert_eq!(planner.cached_plans(), 2);
        let s = planner.plan_cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        // The survivor is still the same shared Arc (a hit)...
        let again16 = planner.plan(16, Direction::Forward);
        assert!(Arc::ptr_eq(&first16, &again16));
        // ...while the victim gets rebuilt from scratch (a miss).
        let again32 = planner.plan(32, Direction::Forward);
        assert!(!Arc::ptr_eq(&first32, &again32));
        let s = planner.plan_cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 4, 2));
    }

    #[test]
    fn raw_cache_eviction_does_not_break_live_composite_plans() {
        // Capacity 1 ⇒ raw cap 2: planning 65536 (one shared 256 row
        // engine) then 131072 (256 + 512) must stay within bounds and
        // keep every already-built plan executable.
        let planner: Planner<f64> = Planner::with_capacity(1);
        let a = planner.plan(65536, Direction::Forward);
        let b = planner.plan(131072, Direction::Forward);
        assert!(planner.cached_plans() <= 1);
        assert!(planner.cached_raw_engines() <= 2);
        assert!(planner.raw_cache_stats().misses >= 2);
        // Evicted plans/engines kept alive by callers still work.
        for plan in [&a, &b] {
            let n = plan.len();
            let mut data = test_signal(n);
            plan.execute(&mut data);
            assert!(data[0].abs().is_finite());
        }
    }

    #[test]
    fn global_planner_is_a_singleton() {
        let a = Planner::global().plan(64, Direction::Forward);
        let b = Planner::global().plan(64, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn shift_theorem() {
        // DFT(x shifted by s) = DFT(x) modulated by ω^{ks}: the identity
        // underlying the paper's segment recovery (§5, Φ_s).
        let n = 96;
        let x = test_signal(n);
        let s = 17;
        let shifted: Vec<Complex64> = (0..n).map(|j| x[(j + s) % n]).collect();
        let plan = Plan::forward(n);
        let mut y = x.clone();
        plan.execute(&mut y);
        let mut ys = shifted;
        plan.execute(&mut ys);
        for k in 0..n {
            let w = Complex64::root_of_unity(k * s % n, n).conj();
            assert!((ys[k] - y[k] * w).abs() < 1e-10, "bin {k}");
        }
    }
}
