//! Real-input FFT via the half-length complex transform.
//!
//! A length-`n` real signal (n even) is packed into `n/2` complex values,
//! transformed once, and unpacked with the split identity into the `n/2+1`
//! non-redundant Hermitian output bins. This halves both arithmetic and
//! memory traffic versus a complex transform of padded data — the standard
//! trick every production FFT library (and the paper's MKL building
//! blocks) provides.
//!
//! Both the forward split and the inverse merge epilogues run through the
//! [`crate::simd`] dispatch seam: on AVX2+FMA hardware the conjugate-even
//! unpack is a vectorized sweep pairing the forward bin stream with a
//! reversed-and-conjugated load of the mirror bins. The kernels use the
//! exact-rounding complex product, so SIMD and portable dispatch are
//! bitwise identical — dispatch is decided once at plan construction
//! (`SOI_NO_SIMD` ablates it) and never changes results.

use crate::codelet::{self, Codelet, Dispatch};
use crate::plan::Plan;
use crate::simd;
use soi_num::{AlignedBuf, Complex, Real};

/// A prepared real-input forward FFT of even length `n`.
#[derive(Debug, Clone)]
pub struct RealFft<T> {
    n: usize,
    half_plan: Plan<T>,
    /// Unpack twiddles `exp(−2πi k/n)`, k = 0..n/2.
    tw: AlignedBuf<Complex<T>>,
    /// Run the split epilogue through the AVX2 kernel. Decided once at
    /// plan construction; the half plan makes its own (equivalent) call.
    use_simd: bool,
}

impl<T: Real> RealFft<T> {
    /// Plan a real FFT of even size `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        Self::with_simd(n, simd::enabled())
    }

    /// Plan with an explicit SIMD choice for the split epilogue (tests
    /// compare the two dispatches bitwise). The inner half-length plan is
    /// built identically either way, so only the epilogue differs.
    pub(crate) fn with_simd(n: usize, want: bool) -> Self {
        assert!(n >= 2 && n % 2 == 0, "real FFT requires even n ≥ 2, got {n}");
        let half_plan = Plan::forward(n / 2);
        let tw: Vec<Complex<T>> = (0..=n / 2).map(|k| Complex::root_of_unity(k, n)).collect();
        let use_simd = want && simd::cpu_supported() && simd::is_c64::<T>();
        Self {
            n,
            half_plan,
            tw: AlignedBuf::from_slice(&tw),
            use_simd,
        }
    }

    /// Input length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the empty transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of output bins (`n/2 + 1`).
    pub fn output_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Butterfly kernels this plan runs: the half-length plan's plus the
    /// Hermitian split epilogue.
    pub fn codelets(&self) -> Vec<Codelet> {
        let mut v = self.half_plan.codelets();
        v.push(Codelet::Split);
        codelet::dedup(v)
    }

    /// Per-codelet dispatch report (epilogue row included).
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        let mut v = self.half_plan.codelet_dispatch();
        let d = if self.use_simd { Dispatch::Avx2Fma } else { Dispatch::Portable };
        v.push((Codelet::Split, d));
        codelet::dedup_dispatch(v)
    }

    /// Forward transform: real input → `n/2+1` Hermitian spectrum bins
    /// `X_0 … X_{n/2}` (the rest follow from `X_{n−k} = conj(X_k)`).
    pub fn forward(&self, input: &[T]) -> Vec<Complex<T>> {
        let mut out = vec![Complex::ZERO; self.output_len()];
        let mut scratch = AlignedBuf::zeroed(self.scratch_len());
        self.forward_into(input, &mut out, &mut scratch);
        out
    }

    /// Scratch elements [`Self::forward_into`] needs: the packed
    /// half-length buffer plus the half plan's own scratch.
    pub fn scratch_len(&self) -> usize {
        self.n / 2 + self.half_plan.scratch_len()
    }

    /// [`Self::forward`] into caller buffers (`out.len() == n/2+1`,
    /// `scratch.len() ≥ scratch_len()`); allocation-free, bitwise
    /// identical to the allocating wrapper.
    pub fn forward_into(
        &self,
        input: &[T],
        out: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        assert_eq!(input.len(), self.n);
        assert_eq!(out.len(), self.output_len());
        let h = self.n / 2;
        let (z, rest) = scratch.split_at_mut(h);
        // Pack even samples into re, odd into im.
        for (k, zk) in z.iter_mut().enumerate() {
            *zk = Complex::new(input[2 * k], input[2 * k + 1]);
        }
        self.half_plan.execute_with_scratch(z, rest);
        // Unpack: X_k = (Z_k + conj(Z_{h−k}))/2 − (i/2)·w^k·(Z_k − conj(Z_{h−k}))
        #[cfg(target_arch = "x86_64")]
        if self.use_simd {
            unsafe {
                simd::avx2::hermitian_split(
                    simd::c64s(z),
                    simd::c64s(&self.tw),
                    simd::c64s_mut(out),
                );
            }
            return;
        }
        simd::hermitian_split_scalar(z, &self.tw, out);
    }
}

/// A prepared inverse real FFT: Hermitian half-spectrum → real signal.
#[derive(Debug, Clone)]
pub struct RealIfft<T> {
    n: usize,
    half_plan: Plan<T>,
    tw: AlignedBuf<Complex<T>>,
    use_simd: bool,
}

impl<T: Real> RealIfft<T> {
    /// Plan an inverse real FFT producing even length `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        Self::with_simd(n, simd::enabled())
    }

    /// Plan with an explicit SIMD choice for the merge epilogue.
    pub(crate) fn with_simd(n: usize, want: bool) -> Self {
        assert!(n >= 2 && n % 2 == 0, "real IFFT requires even n ≥ 2, got {n}");
        // Inverse half-size complex plan, 1/(n/2)-normalized.
        let half_plan = Plan::inverse(n / 2);
        let tw: Vec<Complex<T>> = (0..=n / 2)
            .map(|k| Complex::root_of_unity(k, n).conj())
            .collect();
        let use_simd = want && simd::cpu_supported() && simd::is_c64::<T>();
        Self {
            n,
            half_plan,
            tw: AlignedBuf::from_slice(&tw),
            use_simd,
        }
    }

    /// Output length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the empty transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scratch elements [`Self::inverse_into`] needs: the repacked
    /// half-length buffer plus the half plan's own scratch.
    pub fn scratch_len(&self) -> usize {
        self.n / 2 + self.half_plan.scratch_len()
    }

    /// Butterfly kernels this plan runs (merge epilogue included).
    pub fn codelets(&self) -> Vec<Codelet> {
        let mut v = self.half_plan.codelets();
        v.push(Codelet::Split);
        codelet::dedup(v)
    }

    /// Per-codelet dispatch report.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        let mut v = self.half_plan.codelet_dispatch();
        let d = if self.use_simd { Dispatch::Avx2Fma } else { Dispatch::Portable };
        v.push((Codelet::Split, d));
        codelet::dedup_dispatch(v)
    }

    /// Inverse transform from `n/2+1` Hermitian bins to `n` real samples.
    pub fn inverse(&self, spectrum: &[Complex<T>]) -> Vec<T> {
        let mut out = vec![T::from_usize(0); self.n];
        let mut scratch = AlignedBuf::zeroed(self.scratch_len());
        self.inverse_into(spectrum, &mut out, &mut scratch);
        out
    }

    /// [`Self::inverse`] into caller buffers (`out.len() == n`,
    /// `scratch.len() ≥ scratch_len()`); allocation-free.
    pub fn inverse_into(
        &self,
        spectrum: &[Complex<T>],
        out: &mut [T],
        scratch: &mut [Complex<T>],
    ) {
        let h = self.n / 2;
        assert_eq!(spectrum.len(), h + 1, "expected n/2+1 spectrum bins");
        assert_eq!(out.len(), self.n);
        let (z, rest) = scratch.split_at_mut(h);
        // Repack: Z_k = E_k + i·w^{−k}·O_k with E/O the even/odd spectra.
        #[cfg(target_arch = "x86_64")]
        let merged = if self.use_simd {
            unsafe {
                simd::avx2::hermitian_merge(
                    simd::c64s(spectrum),
                    simd::c64s(&self.tw),
                    simd::c64s_mut(z),
                );
            }
            true
        } else {
            false
        };
        #[cfg(not(target_arch = "x86_64"))]
        let merged = false;
        if !merged {
            simd::hermitian_merge_scalar(spectrum, &self.tw, z);
        }
        self.half_plan.execute_with_scratch(z, rest);
        for (k, v) in z.iter().enumerate() {
            out[2 * k] = v.re;
            out[2 * k + 1] = v.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use soi_num::Complex64;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.25 * (i as f64 * 1.7).cos() + 0.1)
            .collect()
    }

    #[test]
    fn forward_into_is_bitwise_the_allocating_forward() {
        for n in [8usize, 64, 1000, 16384] {
            let x = real_signal(n);
            let plan = RealFft::new(n);
            let want = plan.forward(&x);
            let mut out = vec![Complex64::ZERO; plan.output_len()];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.forward_into(&x, &mut out, &mut scratch);
            for (k, (&g, &w)) in out.iter().zip(&want).enumerate() {
                assert_eq!(g.re.to_bits(), w.re.to_bits(), "n={n} bin={k}");
                assert_eq!(g.im.to_bits(), w.im.to_bits(), "n={n} bin={k}");
            }
        }
    }

    #[test]
    fn simd_and_portable_split_are_bitwise_identical() {
        // The split/merge kernels use the exact-rounding complex product,
        // so the two dispatches must agree to the bit (the half plan is
        // constructed identically on both sides).
        for n in [8usize, 10, 64, 126, 1000, 4096] {
            let x = real_signal(n);
            let fast = RealFft::<f64>::with_simd(n, true);
            let slow = RealFft::<f64>::with_simd(n, false);
            let a = fast.forward(&x);
            let b = slow.forward(&x);
            for k in 0..a.len() {
                assert_eq!(a[k].re.to_bits(), b[k].re.to_bits(), "n={n} bin={k}");
                assert_eq!(a[k].im.to_bits(), b[k].im.to_bits(), "n={n} bin={k}");
            }
            let fi = RealIfft::<f64>::with_simd(n, true);
            let si = RealIfft::<f64>::with_simd(n, false);
            let ra = fi.inverse(&a);
            let rb = si.inverse(&b);
            for k in 0..n {
                assert_eq!(ra[k].to_bits(), rb[k].to_bits(), "n={n} sample={k}");
            }
        }
    }

    #[test]
    fn inverse_into_matches_allocating_inverse_bitwise() {
        for n in [8usize, 64, 1000, 16384] {
            let x = real_signal(n);
            let spec = RealFft::new(n).forward(&x);
            let plan = RealIfft::new(n);
            let want = plan.inverse(&spec);
            let mut out = vec![0.0f64; n];
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            plan.inverse_into(&spec, &mut out, &mut scratch);
            for k in 0..n {
                assert_eq!(out[k].to_bits(), want[k].to_bits(), "n={n} sample={k}");
            }
        }
    }

    #[test]
    fn matches_complex_dft() {
        for n in [2usize, 4, 8, 16, 30, 64, 100, 256] {
            let x = real_signal(n);
            let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
            let want = dft_naive(&xc);
            let plan = RealFft::new(n);
            let got = plan.forward(&x);
            assert_eq!(got.len(), n / 2 + 1);
            for k in 0..=n / 2 {
                assert!(
                    (got[k] - want[k]).abs() < 1e-9 * n as f64,
                    "n={n} bin={k}: {:?} vs {:?}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 64;
        let x = real_signal(n);
        let got = RealFft::new(n).forward(&x);
        assert!(got[0].im.abs() < 1e-12);
        assert!(got[n / 2].im.abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        for n in [4usize, 16, 60, 128] {
            let x = real_signal(n);
            let spec = RealFft::new(n).forward(&x);
            let back = RealIfft::new(n).inverse(&spec);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-11, "n={n}");
            }
        }
    }

    #[test]
    fn reports_split_epilogue_codelet() {
        let plan = RealFft::<f64>::new(256);
        assert!(plan.codelets().contains(&Codelet::Split));
        let rows = plan.codelet_dispatch();
        assert!(rows.iter().any(|&(c, _)| c == Codelet::Split));
        let ip = RealIfft::<f64>::new(256);
        assert!(ip.codelets().contains(&Codelet::Split));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_length() {
        let _ = RealFft::<f64>::new(9);
    }

    #[test]
    fn single_cosine_lands_in_one_bin() {
        let n = 128;
        let f = 5;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * f as f64 * j as f64 / n as f64).cos())
            .collect();
        let spec = RealFft::new(n).forward(&x);
        assert!((spec[f].re - n as f64 / 2.0).abs() < 1e-9);
        for (k, v) in spec.iter().enumerate() {
            if k != f {
                assert!(v.abs() < 1e-9, "bin {k} leaked {v:?}");
            }
        }
    }
}
