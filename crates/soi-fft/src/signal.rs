//! FFT-based signal operations: cyclic convolution, linear convolution,
//! and cross-correlation.
//!
//! §2 of the paper notes that out-of-order FFTs suffice "when FFT is used
//! to compute a convolution" — these helpers are the workloads that
//! motivate that remark, built on the planner. They double as end-to-end
//! exercises of the convolution theorem for the test suite.

use crate::plan::Plan;
use soi_num::{Complex, Real};

/// Cyclic (circular) convolution: `out_k = Σ_j a_j·b_{(k−j) mod n}`.
///
/// Computed as `IFFT(FFT(a)·FFT(b))`; `O(n log n)`.
pub fn cyclic_convolution<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> Vec<Complex<T>> {
    assert_eq!(a.len(), b.len(), "cyclic convolution needs equal lengths");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let fwd = Plan::forward(n);
    let inv = Plan::inverse(n);
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    fwd.execute(&mut fa);
    fwd.execute(&mut fb);
    for (x, &y) in fa.iter_mut().zip(&fb) {
        *x = *x * y;
    }
    inv.execute(&mut fa);
    fa
}

/// Linear convolution of arbitrary-length inputs (`len = a+b−1`), via
/// zero-padding to the next fast size.
pub fn linear_convolution<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> Vec<Complex<T>> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();
    let mut pa = vec![Complex::ZERO; n];
    pa[..a.len()].copy_from_slice(a);
    let mut pb = vec![Complex::ZERO; n];
    pb[..b.len()].copy_from_slice(b);
    let mut full = cyclic_convolution(&pa, &pb);
    full.truncate(out_len);
    full
}

/// Cyclic cross-correlation: `out_k = Σ_j conj(a_j)·b_{(j+k) mod n}`.
///
/// `out_0` is the inner product `⟨a, b⟩`; a peak at `k` means `b` looks
/// like `a` delayed by `k`.
pub fn cyclic_correlation<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> Vec<Complex<T>> {
    assert_eq!(a.len(), b.len(), "correlation needs equal lengths");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let fwd = Plan::forward(n);
    let inv = Plan::inverse(n);
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    fwd.execute(&mut fa);
    fwd.execute(&mut fb);
    for (x, &y) in fa.iter_mut().zip(&fb) {
        *x = x.conj() * y;
    }
    inv.execute(&mut fa);
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::{c64, Complex64};

    fn naive_cyclic(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
        let n = a.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| a[j] * b[(k + n - j % n) % n])
                    .fold(Complex64::ZERO, |acc, v| acc + v)
            })
            .collect()
    }

    #[test]
    fn cyclic_matches_naive() {
        for n in [4usize, 7, 12, 32] {
            let a: Vec<Complex64> = (0..n).map(|i| c64(i as f64, -(i as f64) * 0.5)).collect();
            let b: Vec<Complex64> = (0..n).map(|i| c64((i as f64).sin(), 0.2)).collect();
            let got = cyclic_convolution(&a, &b);
            let want = naive_cyclic(&a, &b);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-9 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn convolution_with_delta_is_identity() {
        let n = 16;
        let a: Vec<Complex64> = (0..n).map(|i| c64(i as f64, 1.0)).collect();
        let mut delta = vec![Complex64::ZERO; n];
        delta[0] = Complex64::ONE;
        let got = cyclic_convolution(&a, &delta);
        for (g, w) in got.iter().zip(&a) {
            assert!((*g - *w).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_with_shifted_delta_rotates() {
        let n = 8;
        let a: Vec<Complex64> = (0..n).map(|i| c64(i as f64, 0.0)).collect();
        let mut d3 = vec![Complex64::ZERO; n];
        d3[3] = Complex64::ONE;
        let got = cyclic_convolution(&a, &d3);
        for k in 0..n {
            let want = a[(k + n - 3) % n];
            assert!((got[k] - want).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn linear_convolution_polynomial_product() {
        // (1 + 2x + 3x²)(4 + 5x) = 4 + 13x + 22x² + 15x³
        let a = [c64(1.0, 0.0), c64(2.0, 0.0), c64(3.0, 0.0)];
        let b = [c64(4.0, 0.0), c64(5.0, 0.0)];
        let got = linear_convolution(&a, &b);
        let want = [4.0, 13.0, 22.0, 15.0];
        assert_eq!(got.len(), 4);
        for (g, w) in got.iter().zip(want) {
            assert!((g.re - w).abs() < 1e-10 && g.im.abs() < 1e-10);
        }
    }

    #[test]
    fn correlation_finds_a_delay() {
        let n = 64;
        let a: Vec<Complex64> = (0..n)
            .map(|i| c64((i as f64 * 1.7).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let delay = 11;
        let b: Vec<Complex64> = (0..n).map(|i| a[(i + n - delay) % n]).collect();
        let corr = cyclic_correlation(&b, &a);
        let (peak, _) = corr
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        // b is a delayed by `delay`; correlating b against a peaks there.
        assert_eq!((n - peak) % n, delay, "corr peak at {peak}");
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Complex64> = vec![];
        assert!(cyclic_convolution(&e, &e).is_empty());
        assert!(linear_convolution(&e, &e).is_empty());
        assert!(cyclic_correlation(&e, &e).is_empty());
    }
}
