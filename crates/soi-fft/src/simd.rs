//! Runtime-dispatched SIMD butterfly kernels (AVX2 + FMA).
//!
//! This module is the single dispatch seam for every vectorized kernel in
//! the FFT engines, mirroring the convolution kernel's seam in
//! `soi-core/src/conv.rs`: engines decide **once, at plan construction**
//! whether to build SIMD twiddle streams — [`enabled`] combines
//! `is_x86_feature_detected!("avx2"/"fma")` with the `SOI_NO_SIMD`
//! ablation knob — and from then on every execute of that plan takes the
//! same code path. That is what keeps SIMD execution bitwise reproducible
//! run-to-run and bitwise identical across worker counts (the PR 2
//! determinism pins): dispatch is a function of the host CPU and process
//! environment, never of data, thread count, or timing.
//!
//! ## Operand layout (see DESIGN.md §13)
//!
//! Data stays in the interleaved `[re, im, re, im]` layout of
//! [`Complex64`] — one 256-bit register holds **2 complex doubles** — so
//! loads and stores are plain unit-stride `vmovupd`. Twiddles come in two
//! flavors:
//!
//! * **split/dup streams** (`re_dup`/`im_dup`: every factor duplicated
//!   `×2` into separate real and imaginary `f64` streams, the conv
//!   kernel's `coef_re_dup` idiom) where the twiddle *varies along* the
//!   vectorized axis — the mixed-radix `k` loops and the Stockham first
//!   stage. A 256-bit load then directly yields `[w_k.re, w_k.re,
//!   w_{k+1}.re, w_{k+1}.re]`, ready for the multiply, with no shuffle in
//!   the inner loop.
//! * **broadcast** (`_mm256_set1_pd`) where one twiddle covers the whole
//!   vectorized axis — the Stockham `q` loops, hoisted out per `p`.
//! * **in-register dup** (`movedup`/`permute_pd`) where the twiddle table
//!   is large and shared with the scalar path — the four-step twiddle
//!   pass — so the dup costs one shuffle instead of doubling the streamed
//!   bytes of an `n`-element table.
//!
//! A complex product `w·v` is two instructions after the dup:
//! `fmaddsub(w_re, v, w_im·swap(v))` — the deferred addsub reconciliation
//! trick, with the FMA giving the real part a single rounding.
//!
//! ## Determinism contract
//!
//! FMA contracts `a·b±c` into one rounding, so **SIMD butterflies cannot
//! be bitwise-equal to the portable ones** (which round the product and
//! the sum separately); property tests pin the two paths to tight ulp
//! bounds instead. The *weighted multiplies* of the fused
//! projection+demodulation epilogues are the exception: they use the
//! non-FMA form `addsub(w_re·v, w_im·swap(v))`, which performs exactly
//! the roundings of the scalar `Complex::mul` in the same order — so
//! [`weighted_product`] is bitwise identical to the scalar multiply loop
//! and the `fused == unfused` bitwise pins hold with SIMD active.

use soi_num::{Complex, Complex64, Real};
use std::any::TypeId;
use std::sync::OnceLock;

/// True when the `SOI_NO_SIMD` ablation knob disables vector dispatch
/// (any non-empty value other than `0`). Read once per process so the
/// dispatch decision cannot change mid-run.
pub fn no_simd_env() -> bool {
    static V: OnceLock<bool> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("SOI_NO_SIMD")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// True when the host CPU can run the AVX2+FMA kernels.
pub fn cpu_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The process-wide dispatch decision: CPU support minus the
/// `SOI_NO_SIMD` ablation override. Engines consult this (plus the
/// element type — only `f64` has kernels) at plan-construction time.
pub fn enabled() -> bool {
    cpu_supported() && !no_simd_env()
}

/// Report string for benches/logs, matching the conv kernel's.
pub fn kernel_name() -> &'static str {
    if enabled() {
        "avx2+fma"
    } else {
        "portable"
    }
}

/// True when `T` is `f64` — the only element type with SIMD kernels.
#[inline]
pub fn is_c64<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<f64>()
}

/// Reinterpret a generic complex slice as `Complex64`. Callers must have
/// checked [`is_c64`]; `Complex<T>` is `#[repr(C)]` so the layouts match.
#[inline]
pub(crate) fn c64s<T: 'static>(s: &[Complex<T>]) -> &[Complex64] {
    debug_assert!(is_c64::<T>());
    unsafe { core::slice::from_raw_parts(s.as_ptr() as *const Complex64, s.len()) }
}

/// Mutable variant of [`c64s`].
#[inline]
pub(crate) fn c64s_mut<T: 'static>(s: &mut [Complex<T>]) -> &mut [Complex64] {
    debug_assert!(is_c64::<T>());
    unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut Complex64, s.len()) }
}

/// `out[k] = res[k] * w[k]` for `k < out.len()` — the weighted write of
/// every fused projection+demodulation epilogue and fallback multiply.
///
/// **Bitwise identical** to the scalar loop on every path: the AVX2 body
/// uses the non-FMA `addsub(w_re·v, w_im·swap(v))` form, whose per-lane
/// roundings are exactly those of `Complex::mul` (FP addition is
/// commutative, so the imaginary lane's swapped operand order changes
/// nothing). That identity is what lets one helper serve both the fused
/// engines and the unfused reference paths that tests pin against each
/// other.
pub fn weighted_product<T: Real>(out: &mut [Complex<T>], res: &[Complex<T>], w: &[Complex<T>]) {
    let len = out.len();
    assert!(res.len() >= len && w.len() >= len, "weighted_product operands too short");
    #[cfg(target_arch = "x86_64")]
    if is_c64::<T>() && enabled() {
        unsafe {
            avx2::weighted_product(c64s_mut(out), &c64s(res)[..len], &c64s(w)[..len]);
        }
        return;
    }
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = res[k] * w[k];
    }
}

/// `data[k] = data[k] * w[k]` — the in-place weighted multiply of
/// Bluestein's pointwise filter pass and the chirp sweeps. Same exact
/// (non-FMA) rounding contract as [`weighted_product`]: bitwise
/// identical to the scalar loop on every path.
pub fn weighted_product_in<T: Real>(data: &mut [Complex<T>], w: &[Complex<T>]) {
    let len = data.len();
    assert!(w.len() >= len, "weighted_product_in weights too short");
    #[cfg(target_arch = "x86_64")]
    if is_c64::<T>() && enabled() {
        unsafe {
            avx2::weighted_product_in(c64s_mut(data), &c64s(w)[..len]);
        }
        return;
    }
    for (k, slot) in data.iter_mut().enumerate() {
        *slot = *slot * w[k];
    }
}

/// Hermitian split epilogue of the real-input FFT: unpack the
/// half-length complex spectrum `z` (length `h`) into the `h+1`
/// non-redundant bins of the length-`2h` real transform,
/// `out[k] = (z_k + conj(z_{h−k}))/2 − (i/2)·w^k·(z_k − conj(z_{h−k}))`
/// with `z_h ≡ z_0` and the unpack twiddles `w^k = exp(−2πi k/2h)` in
/// `tw[0..=h]`. The AVX2 body uses the exact (non-FMA) complex product
/// and pure sign-flip rotations, so it is **bitwise identical** to the
/// scalar loop — the property the r2c SIMD-vs-portable pins rely on.
pub fn hermitian_split<T: Real>(z: &[Complex<T>], tw: &[Complex<T>], out: &mut [Complex<T>]) {
    let h = z.len();
    assert_eq!(out.len(), h + 1, "hermitian_split output must be h+1 bins");
    assert!(tw.len() >= h + 1, "hermitian_split twiddles too short");
    #[cfg(target_arch = "x86_64")]
    if is_c64::<T>() && enabled() {
        unsafe {
            avx2::hermitian_split(c64s(z), c64s(tw), c64s_mut(out));
        }
        return;
    }
    hermitian_split_scalar(z, tw, out);
}

/// Portable body of [`hermitian_split`]; also the explicit reference
/// path for plans built with SIMD disabled.
pub fn hermitian_split_scalar<T: Real>(
    z: &[Complex<T>],
    tw: &[Complex<T>],
    out: &mut [Complex<T>],
) {
    let h = z.len();
    let half = T::HALF;
    for (k, slot) in out.iter_mut().enumerate() {
        let zk = if k == h { z[0] } else { z[k] };
        let zc = z[(h - k) % h].conj();
        let even = (zk + zc).scale(half);
        let odd = (zk - zc).scale(half);
        *slot = even + (odd * tw[k]).mul_neg_i();
    }
}

/// Hermitian merge prologue of the inverse real FFT: repack the `h+1`
/// spectrum bins into the half-length complex input
/// `z[k] = (x_k + conj(x_{h−k}))/2 + i·w̄^k·(x_k − conj(x_{h−k}))/2`
/// (`tw` holds the conjugated twiddles `w̄^k`). Bitwise identical to the
/// scalar loop on every path, mirroring [`hermitian_split`].
pub fn hermitian_merge<T: Real>(spec: &[Complex<T>], tw: &[Complex<T>], z: &mut [Complex<T>]) {
    let h = z.len();
    assert_eq!(spec.len(), h + 1, "hermitian_merge expects h+1 spectrum bins");
    assert!(tw.len() >= h, "hermitian_merge twiddles too short");
    #[cfg(target_arch = "x86_64")]
    if is_c64::<T>() && enabled() {
        unsafe {
            avx2::hermitian_merge(c64s(spec), c64s(tw), c64s_mut(z));
        }
        return;
    }
    hermitian_merge_scalar(spec, tw, z);
}

/// Portable body of [`hermitian_merge`].
pub fn hermitian_merge_scalar<T: Real>(
    spec: &[Complex<T>],
    tw: &[Complex<T>],
    z: &mut [Complex<T>],
) {
    let h = z.len();
    let half = T::HALF;
    for (k, slot) in z.iter_mut().enumerate() {
        let xk = spec[k];
        let xc = spec[h - k].conj();
        let even = (xk + xc).scale(half);
        let odd = (xk - xc).scale(half).mul_i() * tw[k];
        *slot = even + odd;
    }
}

/// The AVX2+FMA kernel bodies. Everything here is `unsafe fn` gated on
/// `#[target_feature(enable = "avx2", enable = "fma")]`; callers must
/// have checked [`cpu_supported`]. Helper intrinsic wrappers are
/// `#[inline(always)]` so they inherit the caller's feature context, the
/// same pattern as `soi-core/src/conv.rs`.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::Complex64;
    use core::arch::x86_64::*;

    /// Load 2 complex doubles.
    #[inline(always)]
    unsafe fn ld(p: *const Complex64) -> __m256d {
        _mm256_loadu_pd(p as *const f64)
    }

    /// Store 2 complex doubles.
    #[inline(always)]
    unsafe fn st(p: *mut Complex64, v: __m256d) {
        _mm256_storeu_pd(p as *mut f64, v)
    }

    /// Swap re/im within each complex lane: `[re,im,..] -> [im,re,..]`.
    #[inline(always)]
    unsafe fn swap_ri(v: __m256d) -> __m256d {
        _mm256_permute_pd(v, 0b0101)
    }

    /// Sign mask negating lanes 0 and 2 (the re slots).
    #[inline(always)]
    unsafe fn mask_neg_re() -> __m256d {
        _mm256_set_pd(0.0, -0.0, 0.0, -0.0)
    }

    /// Sign mask negating lanes 1 and 3 (the im slots).
    #[inline(always)]
    unsafe fn mask_neg_im() -> __m256d {
        _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
    }

    /// `±i · v` per complex lane: `mul_i` with [`mask_neg_re`],
    /// `mul_neg_i` with [`mask_neg_im`]. Pure permute+sign-flip — bitwise
    /// identical to the scalar rotations.
    #[inline(always)]
    unsafe fn jrot(v: __m256d, mask: __m256d) -> __m256d {
        _mm256_xor_pd(swap_ri(v), mask)
    }

    /// Complex multiply `w·v` with `w` pre-split into dup'd re/im
    /// operands: `fmaddsub(w_re, v, w_im·swap(v))`. One FMA rounding on
    /// each lane — fast, but *not* bitwise-equal to scalar.
    #[inline(always)]
    unsafe fn cmul_fma(v: __m256d, wre: __m256d, wim: __m256d) -> __m256d {
        _mm256_fmaddsub_pd(wre, v, _mm256_mul_pd(wim, swap_ri(v)))
    }

    /// Complex multiply `v·w` with the exact roundings of the scalar
    /// `Complex::mul`: both products rounded, then addsub. Used by the
    /// fused-epilogue weighted writes so fused == unfused stays bitwise.
    #[inline(always)]
    unsafe fn cmul_exact(v: __m256d, wre: __m256d, wim: __m256d) -> __m256d {
        _mm256_addsub_pd(_mm256_mul_pd(wre, v), _mm256_mul_pd(wim, swap_ri(v)))
    }

    /// Duplicate the real parts of an interleaved pair: `[a.re, a.re,
    /// b.re, b.re]`.
    #[inline(always)]
    unsafe fn dup_re(w: __m256d) -> __m256d {
        _mm256_movedup_pd(w)
    }

    /// Duplicate the imaginary parts: `[a.im, a.im, b.im, b.im]`.
    #[inline(always)]
    unsafe fn dup_im(w: __m256d) -> __m256d {
        _mm256_permute_pd(w, 0b1111)
    }

    /// Radix-4 DIF butterfly core on 2-complex vectors; mirrors the
    /// scalar `stage_radix4` arithmetic exactly (up to FP associativity
    /// that both share). `jmask` selects the direction's ω₄ rotation.
    #[inline(always)]
    unsafe fn dft4(
        a: __m256d,
        b: __m256d,
        c: __m256d,
        d: __m256d,
        jmask: __m256d,
    ) -> (__m256d, __m256d, __m256d, __m256d) {
        let apc = _mm256_add_pd(a, c);
        let amc = _mm256_sub_pd(a, c);
        let bpd = _mm256_add_pd(b, d);
        let jbmd = jrot(_mm256_sub_pd(b, d), jmask);
        (
            _mm256_add_pd(apc, bpd),
            _mm256_sub_pd(amc, jbmd),
            _mm256_sub_pd(apc, bpd),
            _mm256_add_pd(amc, jbmd),
        )
    }

    /// `out[k] = res[k]·w[k]`, exact-rounding form (see
    /// [`super::weighted_product`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn weighted_product(out: &mut [Complex64], res: &[Complex64], w: &[Complex64]) {
        let len = out.len();
        let len2 = len & !1;
        let op = out.as_mut_ptr();
        let rp = res.as_ptr();
        let wp = w.as_ptr();
        let mut k = 0;
        while k < len2 {
            let v = ld(rp.add(k));
            let wv = ld(wp.add(k));
            st(op.add(k), cmul_exact(v, dup_re(wv), dup_im(wv)));
            k += 2;
        }
        if k < len {
            out[k] = res[k] * w[k];
        }
    }

    /// `data[k] = data[k]·w[k]`, exact-rounding form (see
    /// [`super::weighted_product_in`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn weighted_product_in(data: &mut [Complex64], w: &[Complex64]) {
        let len = data.len();
        let len2 = len & !1;
        let dp = data.as_mut_ptr();
        let wp = w.as_ptr();
        let mut k = 0;
        while k < len2 {
            let v = ld(dp.add(k));
            let wv = ld(wp.add(k));
            st(dp.add(k), cmul_exact(v, dup_re(wv), dup_im(wv)));
            k += 2;
        }
        if k < len {
            data[k] = data[k] * w[k];
        }
    }

    /// Hermitian split epilogue (see [`super::hermitian_split`]). The
    /// vector loop walks `k` ascending in pairs while a reversed load +
    /// 128-bit lane swap supplies the conjugate partner `z_{h−k}`; bins
    /// 0 and `h` (which wrap to `z_0`) plus the parity leftover run the
    /// scalar formulas. Exact complex products and sign-flip rotations
    /// throughout — bitwise identical to the scalar loop.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn hermitian_split(z: &[Complex64], tw: &[Complex64], out: &mut [Complex64]) {
        let h = z.len();
        debug_assert_eq!(out.len(), h + 1);
        debug_assert!(tw.len() >= h + 1);
        let half = _mm256_set1_pd(0.5);
        let conj_mask = mask_neg_im();
        let zp = z.as_ptr();
        let wp = tw.as_ptr();
        let op = out.as_mut_ptr();
        let edge = |k: usize, zk: Complex64, zc: Complex64| -> Complex64 {
            let even = (zk + zc).scale(0.5);
            let odd = (zk - zc).scale(0.5);
            even + (odd * *wp.add(k)).mul_neg_i()
        };
        *op = edge(0, *zp, (*zp).conj());
        let mut k = 1;
        while k + 1 < h {
            let zk = ld(zp.add(k));
            // [z_{h−k−1}, z_{h−k}] → lane swap → [z_{h−k}, z_{h−k−1}].
            let zr = ld(zp.add(h - k - 1));
            let zc = _mm256_xor_pd(_mm256_permute2f128_pd(zr, zr, 0x01), conj_mask);
            let even = _mm256_mul_pd(_mm256_add_pd(zk, zc), half);
            let odd = _mm256_mul_pd(_mm256_sub_pd(zk, zc), half);
            let wv = ld(wp.add(k));
            let c = cmul_exact(odd, dup_re(wv), dup_im(wv));
            st(op.add(k), _mm256_add_pd(even, jrot(c, conj_mask)));
            k += 2;
        }
        while k < h {
            *op.add(k) = edge(k, *zp.add(k), (*zp.add(h - k)).conj());
            k += 1;
        }
        *op.add(h) = edge(h, *zp, (*zp).conj());
    }

    /// Hermitian merge prologue (see [`super::hermitian_merge`]); the
    /// inverse of [`hermitian_split`], same reversed-load pairing and
    /// the same bitwise-identical-to-scalar contract.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn hermitian_merge(spec: &[Complex64], tw: &[Complex64], z: &mut [Complex64]) {
        let h = z.len();
        debug_assert_eq!(spec.len(), h + 1);
        debug_assert!(tw.len() >= h);
        let half = _mm256_set1_pd(0.5);
        let conj_mask = mask_neg_im();
        let imask = mask_neg_re(); // mul_i
        let sp = spec.as_ptr();
        let wp = tw.as_ptr();
        let zp = z.as_mut_ptr();
        let mut k = 0;
        while k + 1 < h {
            let xk = ld(sp.add(k));
            let xr = ld(sp.add(h - k - 1));
            let xc = _mm256_xor_pd(_mm256_permute2f128_pd(xr, xr, 0x01), conj_mask);
            let even = _mm256_mul_pd(_mm256_add_pd(xk, xc), half);
            let odd = _mm256_mul_pd(_mm256_sub_pd(xk, xc), half);
            let oi = jrot(odd, imask);
            let wv = ld(wp.add(k));
            st(zp.add(k), _mm256_add_pd(even, cmul_exact(oi, dup_re(wv), dup_im(wv))));
            k += 2;
        }
        while k < h {
            let xk = *sp.add(k);
            let xc = (*sp.add(h - k)).conj();
            let even = (xk + xc).scale(0.5);
            let odd = (xk - xc).scale(0.5).mul_i() * *wp.add(k);
            *zp.add(k) = even + odd;
            k += 1;
        }
    }

    /// Batched in-place 8-point DFTs over `rows` contiguous rows of 8
    /// complex doubles — the `fft_p` stage of the SOI pipeline at
    /// `P = 8`, where per-row plan dispatch can't vectorize (each row is
    /// a single butterfly). Two rows run per iteration: column `c` of
    /// rows `(r, r+1)` forms one 256-bit vector via a split load, the
    /// radix-8 DIF butterfly runs vertically across the pair, and a
    /// single-stage size-8 transform has unit twiddles and natural-order
    /// output, so results store straight back. Each 128-bit half is
    /// independent, so a row's bits do not depend on its pairing — the
    /// across-worker-count determinism pins hold for any row split. An
    /// odd final row computes in the low half alone.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dft8_rows(data: &mut [Complex64], rows: usize, forward: bool) {
        debug_assert_eq!(data.len(), rows * 8);
        let jmask = if forward { mask_neg_re() } else { mask_neg_im() };
        let kmask = if forward { mask_neg_im() } else { mask_neg_re() };
        let rv = _mm256_set1_pd(0.5f64.sqrt());
        let base = data.as_mut_ptr() as *mut f64;
        let mut r = 0;
        while r < rows {
            let pair = r + 1 < rows;
            let lo = base.add(r * 16);
            let hi = if pair { base.add((r + 1) * 16) } else { lo };
            let a0 = _mm256_loadu2_m128d(hi, lo);
            let a1 = _mm256_loadu2_m128d(hi.add(2), lo.add(2));
            let a2 = _mm256_loadu2_m128d(hi.add(4), lo.add(4));
            let a3 = _mm256_loadu2_m128d(hi.add(6), lo.add(6));
            let a4 = _mm256_loadu2_m128d(hi.add(8), lo.add(8));
            let a5 = _mm256_loadu2_m128d(hi.add(10), lo.add(10));
            let a6 = _mm256_loadu2_m128d(hi.add(12), lo.add(12));
            let a7 = _mm256_loadu2_m128d(hi.add(14), lo.add(14));
            let s0 = _mm256_add_pd(a0, a4);
            let s1 = _mm256_add_pd(a1, a5);
            let s2 = _mm256_add_pd(a2, a6);
            let s3 = _mm256_add_pd(a3, a7);
            let d0 = _mm256_sub_pd(a0, a4);
            let d1 = _mm256_sub_pd(a1, a5);
            let d2 = _mm256_sub_pd(a2, a6);
            let d3 = _mm256_sub_pd(a3, a7);
            let (e0, e1, e2, e3) = dft4(s0, s1, s2, s3, jmask);
            let t1 = _mm256_mul_pd(_mm256_add_pd(d1, jrot(d1, kmask)), rv);
            let t2 = jrot(d2, kmask);
            let t3 = _mm256_mul_pd(_mm256_sub_pd(jrot(d3, kmask), d3), rv);
            let (o0, o1, o2, o3) = dft4(d0, t1, t2, t3, jmask);
            let v = [e0, o0, e1, o1, e2, o2, e3, o3];
            if pair {
                let mut c = 0;
                while c < 8 {
                    _mm256_storeu2_m128d(hi.add(c * 2), lo.add(c * 2), v[c]);
                    c += 1;
                }
            } else {
                let mut c = 0;
                while c < 8 {
                    _mm_storeu_pd(lo.add(c * 2), _mm256_castpd256_pd128(v[c]));
                    c += 1;
                }
            }
            r += 2;
        }
    }

    // ------------------------------------------------------------------
    // Stockham stages
    // ------------------------------------------------------------------

    /// Radix-2 Stockham stage vectorized over the stream index `q`
    /// (`s ≥ 2` and even — after the first stage `s` is always a
    /// multiple of 8). Twiddles are per-`p`, broadcast outside the `q`
    /// loop.
    ///
    /// `xld` is the distance between consecutive butterfly operands in
    /// `x`: `s` for the packed in-order layout (the plain Stockham
    /// ping-pong), or a larger row stride when the stage reads columns
    /// straight out of a row-major matrix (the four-step column pass).
    /// Writes are always packed at stride `s`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stockham_q2(
        x: &[Complex64],
        y: &mut [Complex64],
        tw: &[Complex64],
        m: usize,
        s: usize,
        xld: usize,
    ) {
        debug_assert!(s >= 2 && s % 2 == 0);
        debug_assert!(xld >= s);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for p in 0..m {
            let w = *tw.get_unchecked(p);
            let wre = _mm256_set1_pd(w.re);
            let wim = _mm256_set1_pd(w.im);
            let xa = xp.add(xld * p);
            let xb = xp.add(xld * (p + m));
            let y0 = yp.add(s * (2 * p));
            let y1 = yp.add(s * (2 * p + 1));
            let mut q = 0;
            while q < s {
                let a = ld(xa.add(q));
                let b = ld(xb.add(q));
                st(y0.add(q), _mm256_add_pd(a, b));
                st(y1.add(q), cmul_fma(_mm256_sub_pd(a, b), wre, wim));
                q += 2;
            }
        }
    }

    /// Radix-4 Stockham stage vectorized over `q` (`s` even). `xld` as
    /// in [`stockham_q2`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stockham_q4(
        x: &[Complex64],
        y: &mut [Complex64],
        tw: &[Complex64],
        m: usize,
        s: usize,
        xld: usize,
        forward: bool,
    ) {
        debug_assert!(s >= 2 && s % 2 == 0);
        debug_assert!(xld >= s);
        let jmask = if forward { mask_neg_re() } else { mask_neg_im() };
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for p in 0..m {
            let w1 = *tw.get_unchecked(p * 3);
            let w2 = *tw.get_unchecked(p * 3 + 1);
            let w3 = *tw.get_unchecked(p * 3 + 2);
            let w1re = _mm256_set1_pd(w1.re);
            let w1im = _mm256_set1_pd(w1.im);
            let w2re = _mm256_set1_pd(w2.re);
            let w2im = _mm256_set1_pd(w2.im);
            let w3re = _mm256_set1_pd(w3.re);
            let w3im = _mm256_set1_pd(w3.im);
            let xa = xp.add(xld * p);
            let xb = xp.add(xld * (p + m));
            let xc = xp.add(xld * (p + 2 * m));
            let xd = xp.add(xld * (p + 3 * m));
            let y0 = yp.add(s * (4 * p));
            let y1 = yp.add(s * (4 * p + 1));
            let y2 = yp.add(s * (4 * p + 2));
            let y3 = yp.add(s * (4 * p + 3));
            let mut q = 0;
            while q < s {
                let a = ld(xa.add(q));
                let b = ld(xb.add(q));
                let c = ld(xc.add(q));
                let d = ld(xd.add(q));
                let (e0, e1, e2, e3) = dft4(a, b, c, d, jmask);
                st(y0.add(q), e0);
                st(y1.add(q), cmul_fma(e1, w1re, w1im));
                st(y2.add(q), cmul_fma(e2, w2re, w2im));
                st(y3.add(q), cmul_fma(e3, w3re, w3im));
                q += 2;
            }
        }
    }

    /// Radix-8 Stockham stage vectorized over `q` (`s` even). The split
    /// is the same even/odd-of-4 DIF as the scalar kernel: sums feed one
    /// radix-4 butterfly, differences are rotated by ω₈ powers (two √½
    /// scalings and axis flips) and feed a second.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stockham_q8(
        x: &[Complex64],
        y: &mut [Complex64],
        tw: &[Complex64],
        m: usize,
        s: usize,
        xld: usize,
        forward: bool,
    ) {
        debug_assert!(s >= 2 && s % 2 == 0);
        debug_assert!(xld >= s);
        let jmask = if forward { mask_neg_re() } else { mask_neg_im() };
        let kmask = if forward { mask_neg_im() } else { mask_neg_re() };
        let rv = _mm256_set1_pd(0.5f64.sqrt());
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for p in 0..m {
            let t = &tw[p * 7..p * 7 + 7];
            // Broadcast the seven stage twiddles once per p; the register
            // allocator spills what it must to L1, which the `q` loop's
            // reloads hit for free.
            let tre: [__m256d; 7] = core::array::from_fn(|i| _mm256_set1_pd(t[i].re));
            let tim: [__m256d; 7] = core::array::from_fn(|i| _mm256_set1_pd(t[i].im));
            let xr: [*const Complex64; 8] = core::array::from_fn(|c| xp.add(xld * (p + c * m)));
            let yr: [*mut Complex64; 8] = core::array::from_fn(|j| yp.add(s * (8 * p + j)));
            let mut q = 0;
            while q < s {
                let a0 = ld(xr[0].add(q));
                let a1 = ld(xr[1].add(q));
                let a2 = ld(xr[2].add(q));
                let a3 = ld(xr[3].add(q));
                let a4 = ld(xr[4].add(q));
                let a5 = ld(xr[5].add(q));
                let a6 = ld(xr[6].add(q));
                let a7 = ld(xr[7].add(q));
                let s0 = _mm256_add_pd(a0, a4);
                let s1 = _mm256_add_pd(a1, a5);
                let s2 = _mm256_add_pd(a2, a6);
                let s3 = _mm256_add_pd(a3, a7);
                let d0 = _mm256_sub_pd(a0, a4);
                let d1 = _mm256_sub_pd(a1, a5);
                let d2 = _mm256_sub_pd(a2, a6);
                let d3 = _mm256_sub_pd(a3, a7);
                let (e0, e1, e2, e3) = dft4(s0, s1, s2, s3, jmask);
                let t1 = _mm256_mul_pd(_mm256_add_pd(d1, jrot(d1, kmask)), rv);
                let t2 = jrot(d2, kmask);
                let t3 = _mm256_mul_pd(_mm256_sub_pd(jrot(d3, kmask), d3), rv);
                let (o0, o1, o2, o3) = dft4(d0, t1, t2, t3, jmask);
                st(yr[0].add(q), e0);
                st(yr[1].add(q), cmul_fma(o0, tre[0], tim[0]));
                st(yr[2].add(q), cmul_fma(e1, tre[1], tim[1]));
                st(yr[3].add(q), cmul_fma(o1, tre[2], tim[2]));
                st(yr[4].add(q), cmul_fma(e2, tre[3], tim[3]));
                st(yr[5].add(q), cmul_fma(o2, tre[4], tim[4]));
                st(yr[6].add(q), cmul_fma(e3, tre[5], tim[5]));
                st(yr[7].add(q), cmul_fma(o3, tre[6], tim[6]));
                q += 2;
            }
        }
    }

    /// Radix-5 Stockham stage vectorized over `q` (`s` even), used by the
    /// four-step batched column pass for `a = 5^j·2^k` splits. Same
    /// butterfly-then-twiddle DIF shape as [`stockham_q4`]: the 5-point
    /// DFT in the conjugate-pair symmetric form of [`mixed_r5`]
    /// (`c1 = Re ω₅`, `c2 = Re ω₅²`, `s1 = Im ω₅`, `s2 = Im ω₅²`,
    /// direction-signed), then outputs 1..4 scaled by the four stage
    /// twiddles `tw[p·4 + j−1]`. `xld` as in [`stockham_q2`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stockham_q5(
        x: &[Complex64],
        y: &mut [Complex64],
        tw: &[Complex64],
        m: usize,
        s: usize,
        xld: usize,
        c1: f64,
        c2: f64,
        s1: f64,
        s2: f64,
    ) {
        debug_assert!(s >= 2 && s % 2 == 0);
        debug_assert!(xld >= s);
        let imask = mask_neg_re(); // mul_i: negate re lanes after swap
        let c1b = _mm256_set1_pd(c1);
        let c2b = _mm256_set1_pd(c2);
        let s1b = _mm256_set1_pd(s1);
        let s2b = _mm256_set1_pd(s2);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for p in 0..m {
            let t = &tw[p * 4..p * 4 + 4];
            let tre: [__m256d; 4] = core::array::from_fn(|i| _mm256_set1_pd(t[i].re));
            let tim: [__m256d; 4] = core::array::from_fn(|i| _mm256_set1_pd(t[i].im));
            let xr: [*const Complex64; 5] = core::array::from_fn(|c| xp.add(xld * (p + c * m)));
            let yr: [*mut Complex64; 5] = core::array::from_fn(|j| yp.add(s * (5 * p + j)));
            let mut q = 0;
            while q < s {
                let a = ld(xr[0].add(q));
                let b = ld(xr[1].add(q));
                let c = ld(xr[2].add(q));
                let d = ld(xr[3].add(q));
                let e = ld(xr[4].add(q));
                let t1 = _mm256_add_pd(b, e);
                let t2 = _mm256_add_pd(c, d);
                let t3 = _mm256_sub_pd(b, e);
                let t4 = _mm256_sub_pd(c, d);
                let m1 = _mm256_fmadd_pd(t2, c2b, _mm256_fmadd_pd(t1, c1b, a));
                let m2v = _mm256_fmadd_pd(t2, c1b, _mm256_fmadd_pd(t1, c2b, a));
                let w1 = jrot(_mm256_fmadd_pd(t4, s2b, _mm256_mul_pd(t3, s1b)), imask);
                let w2 = jrot(_mm256_fmsub_pd(t3, s2b, _mm256_mul_pd(t4, s1b)), imask);
                st(yr[0].add(q), _mm256_add_pd(_mm256_add_pd(a, t1), t2));
                st(yr[1].add(q), cmul_fma(_mm256_add_pd(m1, w1), tre[0], tim[0]));
                st(yr[2].add(q), cmul_fma(_mm256_add_pd(m2v, w2), tre[1], tim[1]));
                st(yr[3].add(q), cmul_fma(_mm256_sub_pd(m2v, w2), tre[2], tim[2]));
                st(yr[4].add(q), cmul_fma(_mm256_sub_pd(m1, w1), tre[3], tim[3]));
                q += 2;
            }
        }
    }

    /// The four-step column pass's fused twiddle scatter: write a
    /// finished `rows×w` tile back into `w` columns of the row-major
    /// `rows×ld` matrix `dst`, multiplying by the matching twiddle block
    /// on the way out. `dst` and `tw` are both indexed `[r·ld + q]`
    /// (caller pre-offsets both to the tile's first column), so every
    /// access is a contiguous `w`-element run — no transpose is needed
    /// because the tile already holds the batch in column order.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn twiddle_rows(
        tile: &[Complex64],
        tw: &[Complex64],
        dst: &mut [Complex64],
        rows: usize,
        w: usize,
        dld: usize,
    ) {
        debug_assert!(w >= 2 && w % 2 == 0);
        debug_assert!(tile.len() >= rows * w);
        let tp = tile.as_ptr();
        let wp = tw.as_ptr();
        let dp = dst.as_mut_ptr();
        for r in 0..rows {
            let src = tp.add(r * w);
            let twr = wp.add(r * dld);
            let out = dp.add(r * dld);
            let mut q = 0;
            while q < w {
                let v = ld(src.add(q));
                let t = ld(twr.add(q));
                st(out.add(q), cmul_fma(v, dup_re(t), dup_im(t)));
                q += 2;
            }
        }
    }

    /// First Stockham stage (`s == 1`, radix 8) vectorized over *pairs
    /// of `p`* — the stream axis has length 1, so the sub-vector index is
    /// the only axis left. Inputs `x[p + c·m]` are contiguous in `p`;
    /// twiddles come from the plan's split/dup streams (`re_dup[(c−1)·2m
    /// + 2p]`, each factor duplicated ×2) so one load yields the operand
    /// for a `[p, p+1]` pair. Outputs for one `p` land contiguously at
    /// `y[8p..8p+8]`, so the pair's 8 result vectors are re-interleaved
    /// with `permute2f128` into full-width stores. `m = n/8 ≥ 2` is a
    /// power of two, so there is no odd tail.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stockham_first8(
        x: &[Complex64],
        y: &mut [Complex64],
        re_dup: &[f64],
        im_dup: &[f64],
        m: usize,
        forward: bool,
    ) {
        debug_assert!(m >= 2 && m % 2 == 0);
        debug_assert_eq!(re_dup.len(), 7 * 2 * m);
        let jmask = if forward { mask_neg_re() } else { mask_neg_im() };
        let kmask = if forward { mask_neg_im() } else { mask_neg_re() };
        let rv = _mm256_set1_pd(0.5f64.sqrt());
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let rp = re_dup.as_ptr();
        let ip = im_dup.as_ptr();
        let mut p = 0;
        while p < m {
            let a0 = ld(xp.add(p));
            let a1 = ld(xp.add(p + m));
            let a2 = ld(xp.add(p + 2 * m));
            let a3 = ld(xp.add(p + 3 * m));
            let a4 = ld(xp.add(p + 4 * m));
            let a5 = ld(xp.add(p + 5 * m));
            let a6 = ld(xp.add(p + 6 * m));
            let a7 = ld(xp.add(p + 7 * m));
            let s0 = _mm256_add_pd(a0, a4);
            let s1 = _mm256_add_pd(a1, a5);
            let s2 = _mm256_add_pd(a2, a6);
            let s3 = _mm256_add_pd(a3, a7);
            let d0 = _mm256_sub_pd(a0, a4);
            let d1 = _mm256_sub_pd(a1, a5);
            let d2 = _mm256_sub_pd(a2, a6);
            let d3 = _mm256_sub_pd(a3, a7);
            let (e0, e1, e2, e3) = dft4(s0, s1, s2, s3, jmask);
            let t1 = _mm256_mul_pd(_mm256_add_pd(d1, jrot(d1, kmask)), rv);
            let t2 = jrot(d2, kmask);
            let t3 = _mm256_mul_pd(_mm256_sub_pd(jrot(d3, kmask), d3), rv);
            let (o0, o1, o2, o3) = dft4(d0, t1, t2, t3, jmask);
            // v[j] = [out_p(j), out_{p+1}(j)]; twiddle c = j−1 streams.
            let tw = |c: usize| -> (__m256d, __m256d) {
                (
                    _mm256_loadu_pd(rp.add(c * 2 * m + 2 * p)),
                    _mm256_loadu_pd(ip.add(c * 2 * m + 2 * p)),
                )
            };
            let (r0, i0) = tw(0);
            let (r1, i1) = tw(1);
            let (r2, i2) = tw(2);
            let (r3, i3) = tw(3);
            let (r4, i4) = tw(4);
            let (r5, i5) = tw(5);
            let (r6, i6) = tw(6);
            let v = [
                e0,
                cmul_fma(o0, r0, i0),
                cmul_fma(e1, r1, i1),
                cmul_fma(o1, r2, i2),
                cmul_fma(e2, r3, i3),
                cmul_fma(o2, r4, i4),
                cmul_fma(e3, r5, i5),
                cmul_fma(o3, r6, i6),
            ];
            let out0 = yp.add(8 * p);
            let out1 = yp.add(8 * p + 8);
            let mut t = 0;
            while t < 8 {
                let lo = _mm256_permute2f128_pd(v[t], v[t + 1], 0x20);
                let hi = _mm256_permute2f128_pd(v[t], v[t + 1], 0x31);
                st(out0.add(t), lo);
                st(out1.add(t), hi);
                t += 2;
            }
            p += 2;
        }
    }

    // ------------------------------------------------------------------
    // Mixed-radix combines
    // ------------------------------------------------------------------

    /// Radix-4 DIT combine vectorized over `k` with split/dup twiddle
    /// streams (`q`-major: block `q−1` holds `re_dup[2m]` then the
    /// matching `im_dup[2m]`). `m == 1` (the leaf level, unit twiddles)
    /// runs an in-register 4-point butterfly; odd `m` finishes with one
    /// scalar column using the same formulas as the portable path.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mixed_r4(
        out: &mut [Complex64],
        m: usize,
        re_dup: &[f64],
        im_dup: &[f64],
        forward: bool,
    ) {
        let jmask = if forward { mask_neg_re() } else { mask_neg_im() };
        let op = out.as_mut_ptr();
        if m == 1 {
            // [a, b] and [c, d]; sum/dif lanes regroup into
            // A = [a+c, a−c] and B = [b+d, b−d] across the 128-bit halves,
            // then D = [b+d, ∓i·(b−d)] makes the outputs A±D.
            let va = ld(op);
            let vc = ld(op.add(2));
            let sum = _mm256_add_pd(va, vc);
            let dif = _mm256_sub_pd(va, vc);
            let ab = _mm256_permute2f128_pd(sum, dif, 0x20); // [a+c, a−c]
            let bv = _mm256_permute2f128_pd(sum, dif, 0x31); // [b+d, b−d]
            // Lane pair 1 needs −jbmd = opposite rotation of (b−d).
            let kmask = if forward { mask_neg_im() } else { mask_neg_re() };
            let rot = jrot(bv, kmask);
            let dv = _mm256_blend_pd(bv, rot, 0b1100); // [b+d, −jbmd]
            st(op, _mm256_add_pd(ab, dv));
            st(op.add(2), _mm256_sub_pd(ab, dv));
            return;
        }
        debug_assert_eq!(re_dup.len(), 3 * 2 * m);
        let rp = re_dup.as_ptr();
        let ip = im_dup.as_ptr();
        let m2 = m & !1;
        let mut k = 0;
        while k < m2 {
            let a = ld(op.add(k));
            let b = cmul_fma(
                ld(op.add(m + k)),
                _mm256_loadu_pd(rp.add(2 * k)),
                _mm256_loadu_pd(ip.add(2 * k)),
            );
            let c = cmul_fma(
                ld(op.add(2 * m + k)),
                _mm256_loadu_pd(rp.add(2 * m + 2 * k)),
                _mm256_loadu_pd(ip.add(2 * m + 2 * k)),
            );
            let d = cmul_fma(
                ld(op.add(3 * m + k)),
                _mm256_loadu_pd(rp.add(4 * m + 2 * k)),
                _mm256_loadu_pd(ip.add(4 * m + 2 * k)),
            );
            let (y0, y1, y2, y3) = dft4(a, b, c, d, jmask);
            st(op.add(k), y0);
            st(op.add(m + k), y1);
            st(op.add(2 * m + k), y2);
            st(op.add(3 * m + k), y3);
            k += 2;
        }
        if k < m {
            // Scalar tail column, same formulas as the portable combine.
            let w = |q: usize| Complex64 {
                re: *rp.add(q * 2 * m + 2 * k),
                im: *ip.add(q * 2 * m + 2 * k),
            };
            let a = out[k];
            let b = out[m + k] * w(0);
            let c = out[2 * m + k] * w(1);
            let d = out[3 * m + k] * w(2);
            let apc = a + c;
            let amc = a - c;
            let bpd = b + d;
            let jbmd = if forward { (b - d).mul_i() } else { (b - d).mul_neg_i() };
            out[k] = apc + bpd;
            out[m + k] = amc - jbmd;
            out[2 * m + k] = apc - bpd;
            out[3 * m + k] = amc + jbmd;
        }
    }

    /// Radix-5 DIT combine vectorized over `k` (`m ≥ 2`), the
    /// conjugate-pair symmetric form of the portable codelet. The
    /// direction sign lives in `c1..s2` and the twiddle streams, so one
    /// body serves both signs; `·i` rotations are permute+sign-flip.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mixed_r5(
        out: &mut [Complex64],
        m: usize,
        re_dup: &[f64],
        im_dup: &[f64],
        c1: f64,
        c2: f64,
        s1: f64,
        s2: f64,
    ) {
        debug_assert!(m >= 2);
        debug_assert_eq!(re_dup.len(), 4 * 2 * m);
        let imask = mask_neg_re(); // mul_i: negate re lanes after swap
        let c1b = _mm256_set1_pd(c1);
        let c2b = _mm256_set1_pd(c2);
        let s1b = _mm256_set1_pd(s1);
        let s2b = _mm256_set1_pd(s2);
        let op = out.as_mut_ptr();
        let rp = re_dup.as_ptr();
        let ip = im_dup.as_ptr();
        let m2 = m & !1;
        let mut k = 0;
        while k < m2 {
            let a = ld(op.add(k));
            let b = cmul_fma(
                ld(op.add(m + k)),
                _mm256_loadu_pd(rp.add(2 * k)),
                _mm256_loadu_pd(ip.add(2 * k)),
            );
            let c = cmul_fma(
                ld(op.add(2 * m + k)),
                _mm256_loadu_pd(rp.add(2 * m + 2 * k)),
                _mm256_loadu_pd(ip.add(2 * m + 2 * k)),
            );
            let d = cmul_fma(
                ld(op.add(3 * m + k)),
                _mm256_loadu_pd(rp.add(4 * m + 2 * k)),
                _mm256_loadu_pd(ip.add(4 * m + 2 * k)),
            );
            let e = cmul_fma(
                ld(op.add(4 * m + k)),
                _mm256_loadu_pd(rp.add(6 * m + 2 * k)),
                _mm256_loadu_pd(ip.add(6 * m + 2 * k)),
            );
            let t1 = _mm256_add_pd(b, e);
            let t2 = _mm256_add_pd(c, d);
            let t3 = _mm256_sub_pd(b, e);
            let t4 = _mm256_sub_pd(c, d);
            let m1 = _mm256_fmadd_pd(t2, c2b, _mm256_fmadd_pd(t1, c1b, a));
            let m2v = _mm256_fmadd_pd(t2, c1b, _mm256_fmadd_pd(t1, c2b, a));
            let w1 = jrot(_mm256_fmadd_pd(t4, s2b, _mm256_mul_pd(t3, s1b)), imask);
            let w2 = jrot(_mm256_fmsub_pd(t3, s2b, _mm256_mul_pd(t4, s1b)), imask);
            st(op.add(k), _mm256_add_pd(_mm256_add_pd(a, t1), t2));
            st(op.add(m + k), _mm256_add_pd(m1, w1));
            st(op.add(2 * m + k), _mm256_add_pd(m2v, w2));
            st(op.add(3 * m + k), _mm256_sub_pd(m2v, w2));
            st(op.add(4 * m + k), _mm256_sub_pd(m1, w1));
            k += 2;
        }
        if k < m {
            // Scalar tail column, mirroring the portable codelet.
            let w = |q: usize| Complex64 {
                re: *rp.add(q * 2 * m + 2 * k),
                im: *ip.add(q * 2 * m + 2 * k),
            };
            let a = out[k];
            let b = out[m + k] * w(0);
            let c = out[2 * m + k] * w(1);
            let d = out[3 * m + k] * w(2);
            let e = out[4 * m + k] * w(3);
            let t1 = b + e;
            let t2 = c + d;
            let t3 = b - e;
            let t4 = c - d;
            let m1 = a + t1.scale(c1) + t2.scale(c2);
            let m2s = a + t1.scale(c2) + t2.scale(c1);
            let w1 = (t3.scale(s1) + t4.scale(s2)).mul_i();
            let w2 = (t3.scale(s2) - t4.scale(s1)).mul_i();
            out[k] = a + t1 + t2;
            out[m + k] = m1 + w1;
            out[2 * m + k] = m2s + w2;
            out[3 * m + k] = m2s - w2;
            out[4 * m + k] = m1 - w1;
        }
    }

    /// Generic-radix DIT combine vectorized over `k` (`m ≥ 2`,
    /// `8 < r < 64`) — the outer prime levels (11, 13, …) of the
    /// mixed-radix engine. The `r` twiddled inputs for a `k`-pair are
    /// staged in registers, then each of the `r` outputs accumulates the
    /// dense `O(r²)` butterfly with broadcast roots and one FMA complex
    /// product per term. Same structure as the portable fallback, just
    /// two columns at a time.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mixed_generic(
        out: &mut [Complex64],
        m: usize,
        r: usize,
        re_dup: &[f64],
        im_dup: &[f64],
        roots: &[Complex64],
    ) {
        debug_assert!(m >= 2 && r > 8 && r < 64);
        debug_assert_eq!(re_dup.len(), (r - 1) * 2 * m);
        debug_assert_eq!(roots.len(), r);
        let op = out.as_mut_ptr();
        let rp = re_dup.as_ptr();
        let ip = im_dup.as_ptr();
        let mut t = [_mm256_setzero_pd(); 64];
        let m2 = m & !1;
        let mut k = 0;
        while k < m2 {
            t[0] = ld(op.add(k));
            for q in 1..r {
                t[q] = cmul_fma(
                    ld(op.add(q * m + k)),
                    _mm256_loadu_pd(rp.add((q - 1) * 2 * m + 2 * k)),
                    _mm256_loadu_pd(ip.add((q - 1) * 2 * m + 2 * k)),
                );
            }
            for k2 in 0..r {
                let mut acc = t[0];
                for (q, &tq) in t.iter().enumerate().take(r).skip(1) {
                    let w = *roots.get_unchecked((q * k2) % r);
                    acc = _mm256_add_pd(
                        acc,
                        cmul_fma(tq, _mm256_set1_pd(w.re), _mm256_set1_pd(w.im)),
                    );
                }
                st(op.add(k2 * m + k), acc);
            }
            k += 2;
        }
        if k < m {
            // Scalar tail column, mirroring the portable butterfly.
            let mut ts = [Complex64::ZERO; 64];
            ts[0] = out[k];
            for q in 1..r {
                let w = Complex64 {
                    re: *rp.add((q - 1) * 2 * m + 2 * k),
                    im: *ip.add((q - 1) * 2 * m + 2 * k),
                };
                ts[q] = out[q * m + k] * w;
            }
            for k2 in 0..r {
                let mut acc = ts[0];
                for (q, &tq) in ts.iter().enumerate().take(r).skip(1) {
                    acc = tq.mul_add(roots[(q * k2) % r], acc);
                }
                out[k2 * m + k] = acc;
            }
        }
    }

    // ------------------------------------------------------------------
    // Four-step passes
    // ------------------------------------------------------------------

    /// Transpose block edge, matching `fourstep::BLOCK`.
    const BLOCK: usize = 32;

    /// Blocked complex transpose `dst[c·rows + r] = src[r·cols + c]`
    /// via 2×2 complex micro-tiles (`permute2f128` re-pairings), scalar
    /// odd edges.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn transpose(src: &[Complex64], dst: &mut [Complex64], rows: usize, cols: usize) {
        debug_assert_eq!(src.len(), rows * cols);
        debug_assert_eq!(dst.len(), rows * cols);
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + BLOCK).min(rows);
            let mut c0 = 0;
            while c0 < cols {
                let c1 = (c0 + BLOCK).min(cols);
                let re = r0 + ((r1 - r0) & !1);
                let ce = c0 + ((c1 - c0) & !1);
                let mut r = r0;
                while r < re {
                    let row0 = sp.add(r * cols);
                    let row1 = sp.add((r + 1) * cols);
                    let mut c = c0;
                    while c < ce {
                        let va = ld(row0.add(c));
                        let vb = ld(row1.add(c));
                        st(dp.add(c * rows + r), _mm256_permute2f128_pd(va, vb, 0x20));
                        st(dp.add((c + 1) * rows + r), _mm256_permute2f128_pd(va, vb, 0x31));
                        c += 2;
                    }
                    while c < c1 {
                        *dp.add(c * rows + r) = *row0.add(c);
                        *dp.add(c * rows + r + 1) = *row1.add(c);
                        c += 1;
                    }
                    r += 2;
                }
                while r < r1 {
                    let row = sp.add(r * cols);
                    for c in c0..c1 {
                        *dp.add(c * rows + r) = *row.add(c);
                    }
                    r += 1;
                }
                c0 = c1;
            }
            r0 = r1;
        }
    }

    /// The four-step fused steps 3+4: `data[k1·b + j2] = buf[j2·a + k1] ·
    /// tw[j2·a + k1]` — twiddle multiplication riding the blocked
    /// transpose-back. The twiddle table stays in its interleaved shared
    /// layout; dup happens in-register (one shuffle per operand) so the
    /// streamed bytes of the size-`n` table don't double.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn twiddle_transpose(
        buf: &[Complex64],
        tw: &[Complex64],
        data: &mut [Complex64],
        a: usize,
        b: usize,
    ) {
        debug_assert_eq!(buf.len(), a * b);
        debug_assert_eq!(tw.len(), a * b);
        debug_assert_eq!(data.len(), a * b);
        let bp = buf.as_ptr();
        let tp = tw.as_ptr();
        let dp = data.as_mut_ptr();
        let mut c0 = 0;
        while c0 < a {
            let c1 = (c0 + BLOCK).min(a);
            let mut r0 = 0;
            while r0 < b {
                let r1 = (r0 + BLOCK).min(b);
                let re = r0 + ((r1 - r0) & !1);
                let ce = c0 + ((c1 - c0) & !1);
                let mut j2 = r0;
                while j2 < re {
                    let mut k1 = c0;
                    while k1 < ce {
                        let i0 = j2 * a + k1;
                        let va = ld(bp.add(i0));
                        let wa = ld(tp.add(i0));
                        let pa = cmul_fma(va, dup_re(wa), dup_im(wa));
                        let vb = ld(bp.add(i0 + a));
                        let wb = ld(tp.add(i0 + a));
                        let pb = cmul_fma(vb, dup_re(wb), dup_im(wb));
                        st(dp.add(k1 * b + j2), _mm256_permute2f128_pd(pa, pb, 0x20));
                        st(dp.add((k1 + 1) * b + j2), _mm256_permute2f128_pd(pa, pb, 0x31));
                        k1 += 2;
                    }
                    while k1 < c1 {
                        *dp.add(k1 * b + j2) = *bp.add(j2 * a + k1) * *tp.add(j2 * a + k1);
                        *dp.add(k1 * b + j2 + 1) = *bp.add((j2 + 1) * a + k1) * *tp.add((j2 + 1) * a + k1);
                        k1 += 1;
                    }
                    j2 += 2;
                }
                while j2 < r1 {
                    for k1 in c0..c1 {
                        *dp.add(k1 * b + j2) = *bp.add(j2 * a + k1) * *tp.add(j2 * a + k1);
                    }
                    j2 += 1;
                }
                r0 = r1;
            }
            c0 = c1;
        }
    }

    /// The four-step fused epilogue: blocked weighted transpose
    /// `out[k2·a + k1] = data[k1·b + k2] · w[k2·a + k1]` for output
    /// indices `< out.len()`. Uses the **exact** (non-FMA) complex
    /// multiply so the fused result stays bitwise equal to
    /// execute-then-multiply; the boundary region falls back to the
    /// scalar multiply, which is the same arithmetic.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn weighted_transpose(
        data: &[Complex64],
        w: &[Complex64],
        out: &mut [Complex64],
        a: usize,
        b: usize,
    ) {
        debug_assert_eq!(data.len(), a * b);
        let klim = out.len();
        debug_assert!(w.len() >= klim);
        let dp = data.as_ptr();
        let wp = w.as_ptr();
        let op = out.as_mut_ptr();
        let mut r0 = 0;
        while r0 < a {
            let r1 = (r0 + BLOCK).min(a);
            let mut c0 = 0;
            while c0 < b {
                let c1 = (c0 + BLOCK).min(b);
                let re = r0 + ((r1 - r0) & !1);
                let ce = c0 + ((c1 - c0) & !1);
                let mut k1 = r0;
                while k1 < re {
                    let row0 = dp.add(k1 * b);
                    let row1 = dp.add((k1 + 1) * b);
                    let mut k2 = c0;
                    // Vector tile valid while its largest output index
                    // (k2+1)·a + k1 + 1 is inside the projection.
                    while k2 < ce && (k2 + 1) * a + k1 + 1 < klim {
                        let va = ld(row0.add(k2));
                        let vb = ld(row1.add(k2));
                        let t0 = _mm256_permute2f128_pd(va, vb, 0x20);
                        let t1 = _mm256_permute2f128_pd(va, vb, 0x31);
                        let w0 = ld(wp.add(k2 * a + k1));
                        let w1 = ld(wp.add((k2 + 1) * a + k1));
                        st(op.add(k2 * a + k1), cmul_exact(t0, dup_re(w0), dup_im(w0)));
                        st(op.add((k2 + 1) * a + k1), cmul_exact(t1, dup_re(w1), dup_im(w1)));
                        k2 += 2;
                    }
                    while k2 < c1 {
                        let k = k2 * a + k1;
                        if k < klim {
                            *op.add(k) = *row0.add(k2) * *wp.add(k);
                        }
                        if k + 1 < klim {
                            *op.add(k + 1) = *row1.add(k2) * *wp.add(k + 1);
                        }
                        k2 += 1;
                    }
                    k1 += 2;
                }
                while k1 < r1 {
                    let row = dp.add(k1 * b);
                    for k2 in c0..c1 {
                        let k = k2 * a + k1;
                        if k < klim {
                            *op.add(k) = *row.add(k2) * *wp.add(k);
                        }
                    }
                    k1 += 1;
                }
                c0 = c1;
            }
            r0 = r1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::c64;

    #[test]
    fn kernel_name_is_consistent_with_enabled() {
        assert_eq!(kernel_name(), if enabled() { "avx2+fma" } else { "portable" });
        // enabled() can only be a restriction of cpu_supported().
        assert!(!enabled() || cpu_supported());
    }

    #[test]
    fn is_c64_discriminates() {
        assert!(is_c64::<f64>());
        assert!(!is_c64::<f32>());
    }

    #[test]
    fn weighted_product_matches_scalar_bitwise() {
        // Covers the dispatched path on AVX2 hosts and the scalar path
        // elsewhere — both must equal the plain multiply loop bitwise,
        // including the odd-length tail.
        for n in [1usize, 2, 7, 64, 129] {
            let res: Vec<Complex64> = (0..n)
                .map(|i| c64((i as f64 * 0.7).sin() + 0.2, (i as f64 * 1.1).cos()))
                .collect();
            let w: Vec<Complex64> = (0..n)
                .map(|i| c64((i as f64 * 0.3).cos() - 1.1, (i as f64 * 0.9).sin()))
                .collect();
            let mut got = vec![Complex64::ZERO; n];
            weighted_product(&mut got, &res, &w);
            for k in 0..n {
                let want = res[k] * w[k];
                assert_eq!(got[k].re.to_bits(), want.re.to_bits(), "n={n} k={k}");
                assert_eq!(got[k].im.to_bits(), want.im.to_bits(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn weighted_product_in_matches_scalar_bitwise() {
        for n in [1usize, 2, 7, 64, 129] {
            let src: Vec<Complex64> = (0..n)
                .map(|i| c64((i as f64 * 0.7).sin() + 0.2, (i as f64 * 1.1).cos()))
                .collect();
            let w: Vec<Complex64> = (0..n)
                .map(|i| c64((i as f64 * 0.3).cos() - 1.1, (i as f64 * 0.9).sin()))
                .collect();
            let mut got = src.clone();
            weighted_product_in(&mut got, &w);
            for k in 0..n {
                let want = src[k] * w[k];
                assert_eq!(got[k].re.to_bits(), want.re.to_bits(), "n={n} k={k}");
                assert_eq!(got[k].im.to_bits(), want.im.to_bits(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn hermitian_split_and_merge_match_scalar_bitwise() {
        // The dispatched wrappers (AVX2 on capable hosts) must agree with
        // the scalar formulas to the bit: the kernels use the
        // exact-rounding complex product and pure sign-flip rotations.
        for h in [1usize, 2, 3, 8, 33, 500] {
            let n = 2 * h;
            let z: Vec<Complex64> = (0..h)
                .map(|i| c64((i as f64 * 0.61).sin() - 0.3, (i as f64 * 0.83).cos()))
                .collect();
            let tw: Vec<Complex64> = (0..=h)
                .map(|k| Complex64::root_of_unity(k, n))
                .collect();
            let mut fast = vec![Complex64::ZERO; h + 1];
            let mut slow = vec![Complex64::ZERO; h + 1];
            hermitian_split(&z, &tw, &mut fast);
            hermitian_split_scalar(&z, &tw, &mut slow);
            for k in 0..=h {
                assert_eq!(fast[k].re.to_bits(), slow[k].re.to_bits(), "h={h} k={k}");
                assert_eq!(fast[k].im.to_bits(), slow[k].im.to_bits(), "h={h} k={k}");
            }
            // Merge: feed the split output back through both dispatches.
            let twc: Vec<Complex64> = tw.iter().map(|w| w.conj()).collect();
            let mut mf = vec![Complex64::ZERO; h];
            let mut ms = vec![Complex64::ZERO; h];
            hermitian_merge(&fast, &twc, &mut mf);
            hermitian_merge_scalar(&slow, &twc, &mut ms);
            for k in 0..h {
                assert_eq!(mf[k].re.to_bits(), ms[k].re.to_bits(), "h={h} k={k}");
                assert_eq!(mf[k].im.to_bits(), ms[k].im.to_bits(), "h={h} k={k}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn dft8_rows_matches_naive_dft() {
        if !cpu_supported() {
            return;
        }
        for rows in [1usize, 2, 3, 8, 17] {
            for forward in [true, false] {
                let src: Vec<Complex64> = (0..rows * 8)
                    .map(|i| c64((i as f64 * 0.47).sin() + 0.1, (i as f64 * 0.73).cos()))
                    .collect();
                let mut got = src.clone();
                unsafe { avx2::dft8_rows(&mut got, rows, forward) };
                for r in 0..rows {
                    let row = &src[r * 8..r * 8 + 8];
                    for k in 0..8 {
                        let mut want = Complex64::ZERO;
                        for j in 0..8 {
                            let ang = 2.0 * std::f64::consts::PI * (j * k % 8) as f64 / 8.0;
                            let (s, c) = if forward {
                                ((-ang).sin(), (-ang).cos())
                            } else {
                                (ang.sin(), ang.cos())
                            };
                            want = want + row[j] * c64(c, s);
                        }
                        let err = (got[r * 8 + k] - want).abs();
                        assert!(err < 1e-12, "rows={rows} fwd={forward} r={r} k={k} err={err}");
                    }
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn transpose_kernel_matches_scalar() {
        if !cpu_supported() {
            return;
        }
        for (rows, cols) in [(4usize, 6usize), (5, 7), (32, 32), (33, 65), (1, 9), (64, 10)] {
            let src: Vec<Complex64> = (0..rows * cols)
                .map(|i| c64(i as f64, -(i as f64) * 0.5))
                .collect();
            let mut got = vec![Complex64::ZERO; rows * cols];
            unsafe { avx2::transpose(&src, &mut got, rows, cols) };
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(got[c * rows + r], src[r * cols + c], "{rows}x{cols} ({r},{c})");
                }
            }
        }
    }
}
