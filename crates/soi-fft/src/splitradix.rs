//! Split-radix FFT for power-of-two sizes.
//!
//! The split-radix decomposition (Yavne 1968; Duhamel–Hollmann 1984)
//! halves the even samples but quarters the odd ones:
//!
//! ```text
//! X_k        = U_k + (ω^k Z_k + ω^{3k} Z'_k)
//! X_{k+N/4}  = U_{k+N/4} − i(ω^k Z_k − ω^{3k} Z'_k)
//! X_{k+N/2}  = U_k − (ω^k Z_k + ω^{3k} Z'_k)
//! X_{k+3N/4} = U_{k+N/4} + i(ω^k Z_k − ω^{3k} Z'_k)
//! ```
//!
//! with `U = F_{N/2}(x_even)`, `Z = F_{N/4}(x_{4m+1})`,
//! `Z' = F_{N/4}(x_{4m+3})`, achieving the lowest exact flop count of the
//! classical power-of-two algorithms (~4·N·log₂N vs radix-2's 5·N·log₂N).
//! Kept alongside the Stockham engine as an alternative power-of-two path
//! and as a cross-check: two independently-derived engines agreeing to
//! rounding level is strong evidence against twiddle-convention bugs.

use crate::twiddle::Sign;
use soi_num::{Complex, Real};

/// A prepared split-radix transform of power-of-two size.
#[derive(Debug, Clone)]
pub struct SplitRadixFft<T> {
    n: usize,
    sign: Sign,
    /// `tables[d]` serves sub-size `n >> d`: pairs `(ω_size^k, ω_size^{3k})`
    /// for `k < size/4`.
    tables: Vec<Vec<(Complex<T>, Complex<T>)>>,
}

impl<T: Real> SplitRadixFft<T> {
    /// Plan a transform of power-of-two size `n ≥ 1`.
    pub fn new(n: usize, sign: Sign) -> Self {
        assert!(n.is_power_of_two() && n > 0, "split-radix requires a power of two");
        let mut tables = Vec::new();
        let mut size = n;
        while size >= 4 {
            let quarter = size / 4;
            let t: Vec<(Complex<T>, Complex<T>)> = (0..quarter)
                .map(|k| (sign.root(k, size), sign.root(3 * k, size)))
                .collect();
            tables.push(t);
            size /= 2;
        }
        Self { n, sign, tables }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the empty transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Out-of-place execute.
    pub fn process(&self, src: &[Complex<T>], dst: &mut [Complex<T>]) {
        assert_eq!(src.len(), self.n);
        assert_eq!(dst.len(), self.n);
        self.rec(src, 1, dst, 0);
    }

    /// In-place execute (via an internal copy of the input).
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let src = data.to_vec();
        self.process(&src, data);
    }

    fn rec(&self, input: &[Complex<T>], stride: usize, output: &mut [Complex<T>], depth: usize) {
        let n = output.len();
        match n {
            1 => {
                output[0] = input[0];
                return;
            }
            2 => {
                let a = input[0];
                let b = input[stride];
                output[0] = a + b;
                output[1] = a - b;
                return;
            }
            _ => {}
        }
        let quarter = n / 4;
        let half = n / 2;
        // U over evens, Z over 1 mod 4, Z' over 3 mod 4.
        {
            let (u, rest) = output.split_at_mut(half);
            let (z, zp) = rest.split_at_mut(quarter);
            self.rec(input, 2 * stride, u, depth + 1);
            self.rec(&input[stride..], 4 * stride, z, depth + 2);
            self.rec(&input[3 * stride..], 4 * stride, zp, depth + 2);
        }
        let forward = self.sign == Sign::Forward;
        let table = &self.tables[depth];
        for k in 0..quarter {
            let (w1, w3) = table[k];
            let z = output[half + k] * w1;
            let zp = output[half + quarter + k] * w3;
            let sum = z + zp;
            // ∓i·(z − z′): −i forward, +i inverse.
            let rot = if forward {
                (z - zp).mul_neg_i()
            } else {
                (z - zp).mul_i()
            };
            let u0 = output[k];
            let u1 = output[k + quarter];
            output[k] = u0 + sum;
            output[k + quarter] = u1 + rot;
            output[k + half] = u0 - sum;
            output[k + 3 * quarter] = u1 - rot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, dft_naive_signed};
    use crate::stockham::StockhamFft;
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.53).sin() - 0.1, (i as f64 * 1.21).cos() + 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_dft_all_pow2_sizes() {
        for lg in 0..=11 {
            let n = 1usize << lg;
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = SplitRadixFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-9 * (n.max(4) as f64), "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_direction_matches_naive() {
        for lg in [2usize, 5, 8] {
            let n = 1 << lg;
            let x = test_signal(n);
            let want = dft_naive_signed(&x, Sign::Inverse);
            let plan = SplitRadixFft::new(n, Sign::Inverse);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn agrees_with_stockham_to_rounding_level() {
        // Two independently derived engines; agreement to ~1e-13 relative
        // rules out any systematic twiddle-convention error.
        let n = 4096;
        let x = test_signal(n);
        let mut a = x.clone();
        SplitRadixFft::new(n, Sign::Forward).execute(&mut a);
        let mut b = x;
        StockhamFft::new(n, Sign::Forward).execute(&mut b);
        let scale: f64 = a.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(max_abs_diff(&a, &b) < 1e-12 * scale);
    }

    #[test]
    fn roundtrip() {
        let n = 512;
        let x = test_signal(n);
        let mut buf = x.clone();
        SplitRadixFft::new(n, Sign::Forward).execute(&mut buf);
        SplitRadixFft::new(n, Sign::Inverse).execute(&mut buf);
        let back: Vec<Complex64> = buf.iter().map(|&v| v / n as f64).collect();
        assert!(max_abs_diff(&back, &x) < 1e-12);
    }

    #[test]
    fn out_of_place_matches_in_place() {
        let n = 256;
        let x = test_signal(n);
        let plan = SplitRadixFft::new(n, Sign::Forward);
        let mut a = x.clone();
        plan.execute(&mut a);
        let mut b = vec![Complex64::ZERO; n];
        plan.process(&x, &mut b);
        assert_eq!(
            a.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            b.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = SplitRadixFft::<f64>::new(24, Sign::Forward);
    }
}
