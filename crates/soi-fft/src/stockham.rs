//! Self-sorting Stockham FFT for power-of-two sizes.
//!
//! Decimation-in-frequency with radix-8 stages where the exponent allows
//! (radix-4/radix-2 cleanup for the remainder), so large sizes run fewer,
//! wider passes — each stage is a full streaming pass over the array, and
//! a radix-8 stage does the work of three radix-2 passes in one trip
//! through memory. Stockham's autosort formulation needs no bit-reversal
//! pass: each stage reads one buffer with stride `s` and writes the other
//! with the outputs of a butterfly adjacent, so every pass is a unit-stride
//! streaming pass — the property that makes it the engine of choice for the
//! node-local FFTs in Fig 2 of the paper.

use crate::codelet::{self, Codelet, Dispatch};
use crate::simd;
use crate::twiddle::{Sign, StageTwiddles};
use soi_num::{AlignedBuf, Complex, Real};

/// Split/dup twiddle streams for the SIMD first stage (`s == 1`,
/// radix 8), where the twiddle varies along the vectorized `p` axis:
/// `re[(c−1)·2m + 2p]` holds `tw[p·7 + (c−1)].re` duplicated ×2, so one
/// 256-bit load yields the operand for a `[p, p+1]` pair.
#[derive(Debug, Clone)]
struct StockhamSimd {
    first_re: AlignedBuf<f64>,
    first_im: AlignedBuf<f64>,
}

/// A prepared power-of-two Stockham transform.
#[derive(Debug, Clone)]
pub struct StockhamFft<T> {
    n: usize,
    sign: Sign,
    stages: Vec<StageTwiddles<T>>,
    simd: Option<StockhamSimd>,
}

impl<T: Real> StockhamFft<T> {
    /// Plan a transform of power-of-two size `n`, with SIMD dispatch
    /// decided by [`simd::enabled`] (CPU features minus `SOI_NO_SIMD`).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize, sign: Sign) -> Self {
        Self::with_simd(n, sign, simd::enabled())
    }

    /// Plan with an explicit SIMD request. `want` is intersected with
    /// what the host supports (AVX2+FMA, `f64` elements, `n ≥ 16` so the
    /// first stage is a full radix-8 pass); it deliberately ignores the
    /// `SOI_NO_SIMD` env so property tests can pit both paths against
    /// each other in one process.
    pub fn with_simd(n: usize, sign: Sign, want: bool) -> Self {
        assert!(n.is_power_of_two() && n > 0, "Stockham requires a power of two, got {n}");
        let mut stages = Vec::new();
        let mut cur = n;
        while cur > 1 {
            let r = if cur % 8 == 0 {
                8
            } else if cur % 4 == 0 {
                4
            } else {
                2
            };
            stages.push(StageTwiddles::new(cur, r, sign));
            cur /= r;
        }
        // n ≥ 16 guarantees stage 0 is radix 8 with even m = n/8 ≥ 2 and
        // every later stage streams s ∈ {8, 64, ...} — all even, so the
        // vector kernels cover every stage with no tails.
        let simd = if want && simd::cpu_supported() && simd::is_c64::<T>() && n >= 16 {
            let st0 = &stages[0];
            debug_assert_eq!(st0.radix, 8);
            let m = st0.m;
            let tw = simd::c64s(&st0.tw);
            // Aligned streams: the kernel reads these 4 f64 (32 bytes)
            // at a time, and a mmap-served Vec would straddle lines.
            let mut first_re = AlignedBuf::<f64>::zeroed(7 * 2 * m);
            let mut first_im = AlignedBuf::<f64>::zeroed(7 * 2 * m);
            for c in 0..7 {
                for p in 0..m {
                    let w = tw[p * 7 + c];
                    first_re[c * 2 * m + 2 * p] = w.re;
                    first_re[c * 2 * m + 2 * p + 1] = w.re;
                    first_im[c * 2 * m + 2 * p] = w.im;
                    first_im[c * 2 * m + 2 * p + 1] = w.im;
                }
            }
            Some(StockhamSimd { first_re, first_im })
        } else {
            None
        };
        Self { n, sign, stages, simd }
    }

    /// The butterfly codelets this plan's stages dispatch to.
    pub fn codelets(&self) -> Vec<Codelet> {
        codelet::dedup(self.stage_codelets())
    }

    /// Per-stage codelets with the active dispatch. Every stage shares
    /// one dispatch: when the SIMD streams were built, every stage runs
    /// a vector kernel; otherwise all are portable.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        let d = self.dispatch();
        codelet::dedup_dispatch(self.stage_codelets().into_iter().map(|c| (c, d)).collect())
    }

    /// The dispatch this plan executes with.
    pub fn dispatch(&self) -> Dispatch {
        if self.simd.is_some() {
            Dispatch::Avx2Fma
        } else {
            Dispatch::Portable
        }
    }

    fn stage_codelets(&self) -> Vec<Codelet> {
        self.stages
            .iter()
            .map(|st| match st.radix {
                2 => Codelet::Radix2,
                4 => Codelet::Radix4,
                8 => Codelet::Radix8,
                r => Codelet::Generic(r),
            })
            .collect()
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Execute on `data` using caller-provided scratch of the same length.
    ///
    /// The result always ends up back in `data`; `scratch` contents are
    /// clobbered.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        if self.run_stages(data, scratch) {
            return;
        }
        data.copy_from_slice(scratch);
    }

    /// Run every stage; returns `true` when the live result ended up in
    /// `data`, `false` when it is in `scratch` (odd stage count).
    fn run_stages(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) -> bool {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert_eq!(scratch.len(), self.n, "scratch length mismatch");
        if self.n == 1 {
            return true;
        }
        #[cfg(target_arch = "x86_64")]
        if self.simd.is_some() {
            return self.run_stages_simd(data, scratch);
        }
        let mut s = 1usize; // stream count (number of interleaved sub-vectors)
        let mut in_data = true; // which buffer currently holds the live values
        for st in &self.stages {
            let (src, dst): (&mut [Complex<T>], &mut [Complex<T>]) = if in_data {
                (data, &mut *scratch)
            } else {
                (scratch, &mut *data)
            };
            match st.radix {
                2 => stage_radix2(src, dst, st, s),
                4 => stage_radix4(src, dst, st, s, self.sign),
                8 => stage_radix8(src, dst, st, s, self.sign),
                r => unreachable!("unsupported Stockham radix {r}"),
            }
            s *= st.radix;
            in_data = !in_data;
        }
        in_data
    }

    /// SIMD stage driver: same ping-pong as the portable path, with
    /// every stage routed to an AVX2+FMA kernel. Only reachable when the
    /// constructor built the streams (so `T = f64`, AVX2+FMA present,
    /// `n ≥ 16`).
    #[cfg(target_arch = "x86_64")]
    fn run_stages_simd(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) -> bool {
        let sd = self.simd.as_ref().unwrap();
        let data = simd::c64s_mut(data);
        let scratch = simd::c64s_mut(scratch);
        let forward = self.sign == Sign::Forward;
        let mut s = 1usize;
        let mut in_data = true;
        for (i, st) in self.stages.iter().enumerate() {
            let (src, dst): (&mut [soi_num::Complex64], &mut [soi_num::Complex64]) = if in_data {
                (&mut *data, &mut *scratch)
            } else {
                (&mut *scratch, &mut *data)
            };
            let tw = simd::c64s(&st.tw);
            // Safety: constructor checked AVX2+FMA; stage geometry
            // (even m for stage 0, even s ≥ 8 afterwards) is guaranteed
            // by the n ≥ 16 power-of-two schedule.
            unsafe {
                if i == 0 {
                    simd::avx2::stockham_first8(src, dst, &sd.first_re, &sd.first_im, st.m, forward);
                } else {
                    match st.radix {
                        2 => simd::avx2::stockham_q2(src, dst, tw, st.m, s, s),
                        4 => simd::avx2::stockham_q4(src, dst, tw, st.m, s, s, forward),
                        8 => simd::avx2::stockham_q8(src, dst, tw, st.m, s, s, forward),
                        r => unreachable!("unsupported Stockham radix {r}"),
                    }
                }
            }
            s *= st.radix;
            in_data = !in_data;
        }
        in_data
    }

    /// Transform `data` and write `out[k] = result[k]·weights[k]` for
    /// `k < out.len()` — the projection + demodulation fusion of the SOI
    /// pipeline. The weighted write reads the result straight out of
    /// whichever ping-pong buffer the last stage produced, so the final
    /// copy-back pass of [`Self::execute_with_scratch`] is skipped
    /// entirely. `data` is clobbered (its contents after the call are one
    /// of the intermediate stages).
    ///
    /// Per-element arithmetic is identical to `execute_with_scratch`
    /// followed by the multiply, so the fused result is bitwise equal to
    /// the unfused one.
    pub fn execute_fused_into(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        out: &mut [Complex<T>],
        weights: &[Complex<T>],
    ) {
        assert!(out.len() <= self.n, "fused output longer than transform");
        assert!(weights.len() >= out.len(), "fused weights too short");
        let res_in_data = self.run_stages(data, scratch);
        let res: &[Complex<T>] = if res_in_data { data } else { scratch };
        // Bitwise identical to the scalar multiply loop on every path
        // (see `simd::weighted_product`), preserving the fused==unfused
        // bitwise contract with SIMD active.
        simd::weighted_product(out, res, weights);
    }

    /// Execute in place, allocating scratch internally.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let mut scratch = AlignedBuf::zeroed(self.n);
        self.execute_with_scratch(data, &mut scratch);
    }
}

/// One radix-2 DIF Stockham stage: `n_cur = 2m` logical points in `s`
/// interleaved streams.
fn stage_radix2<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
) {
    let m = st.m;
    for p in 0..m {
        let wp = st.tw[p];
        let xa = &x[s * p..s * p + s];
        let xb = &x[s * (p + m)..s * (p + m) + s];
        // Split dst into the two output runs for this p.
        for q in 0..s {
            let a = xa[q];
            let b = xb[q];
            y[q + s * (2 * p)] = a + b;
            y[q + s * (2 * p + 1)] = (a - b) * wp;
        }
    }
}

/// One radix-4 DIF Stockham stage.
fn stage_radix4<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
    sign: Sign,
) {
    let m = st.m;
    let forward = sign == Sign::Forward;
    for p in 0..m {
        let w1 = st.tw[p * 3];
        let w2 = st.tw[p * 3 + 1];
        let w3 = st.tw[p * 3 + 2];
        for q in 0..s {
            let a = x[q + s * p];
            let b = x[q + s * (p + m)];
            let c = x[q + s * (p + 2 * m)];
            let d = x[q + s * (p + 3 * m)];
            let apc = a + c;
            let amc = a - c;
            let bpd = b + d;
            // ω_4 = −i forward, +i inverse; jbmd = ω_4·(b−d) up to sign
            // convention folded into the +/− below (OTFFT layout).
            let jbmd = if forward {
                (b - d).mul_i()
            } else {
                (b - d).mul_neg_i()
            };
            y[q + s * (4 * p)] = apc + bpd;
            y[q + s * (4 * p + 1)] = (amc - jbmd) * w1;
            y[q + s * (4 * p + 2)] = (apc - bpd) * w2;
            y[q + s * (4 * p + 3)] = (amc + jbmd) * w3;
        }
    }
}

/// One radix-8 DIF Stockham stage: three radix-2 passes' worth of work in
/// a single trip through memory. The split is the classical
/// even/odd-of-4 DIF: sums `s_t = a_t + a_{t+4}` feed a radix-4 butterfly
/// producing the even outputs, differences `d_t = a_t − a_{t+4}` are
/// rotated by the fixed eighth roots `ω_8^t` (costing only two √2/2
/// scalings and two axis flips) and feed a second radix-4 butterfly for
/// the odd outputs.
fn stage_radix8<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
    sign: Sign,
) {
    let m = st.m;
    let forward = sign == Sign::Forward;
    // 1/√2 = cos(π/4): the real (and |imag|) part of ω_8.
    let r = T::HALF.sqrt();
    // Four-point DIF butterfly shared by the even and odd halves;
    // mirrors stage_radix4's arithmetic exactly.
    let dft4 = |a: Complex<T>, b: Complex<T>, c: Complex<T>, d: Complex<T>| {
        let apc = a + c;
        let amc = a - c;
        let bpd = b + d;
        let jbmd = if forward {
            (b - d).mul_i()
        } else {
            (b - d).mul_neg_i()
        };
        (apc + bpd, amc - jbmd, apc - bpd, amc + jbmd)
    };
    for p in 0..m {
        let tw = &st.tw[p * 7..p * 7 + 7];
        for q in 0..s {
            let a0 = x[q + s * p];
            let a1 = x[q + s * (p + m)];
            let a2 = x[q + s * (p + 2 * m)];
            let a3 = x[q + s * (p + 3 * m)];
            let a4 = x[q + s * (p + 4 * m)];
            let a5 = x[q + s * (p + 5 * m)];
            let a6 = x[q + s * (p + 6 * m)];
            let a7 = x[q + s * (p + 7 * m)];
            let s0 = a0 + a4;
            let s1 = a1 + a5;
            let s2 = a2 + a6;
            let s3 = a3 + a7;
            let d0 = a0 - a4;
            let d1 = a1 - a5;
            let d2 = a2 - a6;
            let d3 = a3 - a7;
            let (e0, e1, e2, e3) = dft4(s0, s1, s2, s3);
            // Rotate the difference half by ω_8^t before its radix-4
            // combine; forward ω_8 = (1−i)/√2, inverse conjugated.
            let (t1, t2, t3) = if forward {
                (
                    (d1 + d1.mul_neg_i()).scale(r),
                    d2.mul_neg_i(),
                    (d3.mul_neg_i() - d3).scale(r),
                )
            } else {
                (
                    (d1 + d1.mul_i()).scale(r),
                    d2.mul_i(),
                    (d3.mul_i() - d3).scale(r),
                )
            };
            let (o0, o1, o2, o3) = dft4(d0, t1, t2, t3);
            y[q + s * (8 * p)] = e0;
            y[q + s * (8 * p + 1)] = o0 * tw[0];
            y[q + s * (8 * p + 2)] = e1 * tw[1];
            y[q + s * (8 * p + 3)] = o1 * tw[2];
            y[q + s * (8 * p + 4)] = e2 * tw[3];
            y[q + s * (8 * p + 5)] = o2 * tw[4];
            y[q + s * (8 * p + 6)] = e3 * tw[5];
            y[q + s * (8 * p + 7)] = o3 * tw[6];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, dft_naive_signed};
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.7).sin() + 0.1, (i as f64 * 1.3).cos() - 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_dft_all_pow2_sizes() {
        for lg in 0..=10 {
            let n = 1usize << lg;
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = StockhamFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-9 * (n as f64), "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_matches_naive() {
        for lg in [1, 3, 5, 8] {
            let n = 1usize << lg;
            let x = test_signal(n);
            let want = dft_naive_signed(&x, Sign::Inverse);
            let plan = StockhamFft::new(n, Sign::Inverse);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn forward_then_inverse_is_identity_scaled() {
        let n = 256;
        let x = test_signal(n);
        let fwd = StockhamFft::new(n, Sign::Forward);
        let inv = StockhamFft::new(n, Sign::Inverse);
        let mut buf = x.clone();
        fwd.execute(&mut buf);
        inv.execute(&mut buf);
        let scaled: Vec<Complex64> = buf.iter().map(|&v| v / n as f64).collect();
        assert!(max_abs_diff(&scaled, &x) < 1e-12);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = StockhamFft::new(1, Sign::Forward);
        let mut data = vec![c64(2.5, -1.5)];
        plan.execute(&mut data);
        assert_eq!(data[0], c64(2.5, -1.5));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = StockhamFft::<f64>::new(12, Sign::Forward);
    }

    #[test]
    fn f32_transform_works() {
        let n = 64;
        let x: Vec<Complex<f32>> = (0..n)
            .map(|i| Complex::new((i as f32 * 0.7).sin(), (i as f32 * 1.3).cos()))
            .collect();
        let x64: Vec<Complex64> = x.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&x64);
        let plan = StockhamFft::<f32>::new(n, Sign::Forward);
        let mut got = x;
        plan.execute(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.to_c64() - *w).abs() < 1e-3);
        }
    }

    #[test]
    fn stage_selection_prefers_radix8() {
        use crate::codelet::Codelet;
        // 512 = 8³: pure radix-8 ladder.
        assert_eq!(
            StockhamFft::<f64>::new(512, Sign::Forward).codelets(),
            vec![Codelet::Radix8]
        );
        // 256 = 8·8·4 and 1024 = 8·8·8·2: radix-8 stages plus one closer.
        assert_eq!(
            StockhamFft::<f64>::new(256, Sign::Forward).codelets(),
            vec![Codelet::Radix4, Codelet::Radix8]
        );
        assert_eq!(
            StockhamFft::<f64>::new(1024, Sign::Forward).codelets(),
            vec![Codelet::Radix2, Codelet::Radix8]
        );
        // Tiny sizes that never fit a radix-8 stage.
        assert_eq!(
            StockhamFft::<f64>::new(4, Sign::Forward).codelets(),
            vec![Codelet::Radix4]
        );
        assert_eq!(
            StockhamFft::<f64>::new(2, Sign::Forward).codelets(),
            vec![Codelet::Radix2]
        );
    }

    #[test]
    fn radix8_sizes_match_naive_both_directions() {
        // Sizes whose first stage is the radix-8 kernel, both signs
        // (the all-pow2 sweep above covers forward only up to 1024).
        for n in [8usize, 64, 512, 2048] {
            let x = test_signal(n);
            for sign in [Sign::Forward, Sign::Inverse] {
                let want = dft_naive_signed(&x, sign);
                let plan = StockhamFft::new(n, sign);
                let mut got = x.clone();
                plan.execute(&mut got);
                let err = max_abs_diff(&got, &want);
                assert!(err < 1e-9 * n as f64, "n={n} sign={sign:?} err={err}");
            }
        }
    }

    #[test]
    fn fused_output_is_bitwise_equal_to_unfused_then_multiply() {
        let n = 1024;
        let m = 600; // projection keeps fewer bins than the transform
        let x = test_signal(n);
        let weights: Vec<Complex64> = (0..m)
            .map(|k| c64((k as f64 * 0.13).cos() + 1.5, (k as f64 * 0.37).sin()))
            .collect();
        let plan = StockhamFft::new(n, Sign::Forward);
        let mut d1 = x.clone();
        let mut s1 = vec![Complex64::ZERO; n];
        plan.execute_with_scratch(&mut d1, &mut s1);
        let want: Vec<Complex64> = (0..m).map(|k| d1[k] * weights[k]).collect();
        let mut d2 = x.clone();
        let mut s2 = vec![Complex64::ZERO; n];
        let mut out = vec![Complex64::ZERO; m];
        plan.execute_fused_into(&mut d2, &mut s2, &mut out, &weights);
        for (k, (a, b)) in out.iter().zip(&want).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "bin {k}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "bin {k}");
        }
    }

    #[test]
    fn parseval_large() {
        let n = 4096;
        let x = test_signal(n);
        let plan = StockhamFft::new(n, Sign::Forward);
        let mut y = x.clone();
        plan.execute(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - n as f64 * ex).abs() < 1e-9 * ey);
    }
}
