//! Self-sorting Stockham FFT for power-of-two sizes.
//!
//! Decimation-in-frequency with radix-8 stages where the exponent allows
//! (radix-4/radix-2 cleanup for the remainder), so large sizes run fewer,
//! wider passes — each stage is a full streaming pass over the array, and
//! a radix-8 stage does the work of three radix-2 passes in one trip
//! through memory. Stockham's autosort formulation needs no bit-reversal
//! pass: each stage reads one buffer with stride `s` and writes the other
//! with the outputs of a butterfly adjacent, so every pass is a unit-stride
//! streaming pass — the property that makes it the engine of choice for the
//! node-local FFTs in Fig 2 of the paper.

use crate::codelet::{self, Codelet, Dispatch};
use crate::simd;
use crate::twiddle::{Sign, StageTwiddles};
use soi_num::{AlignedBuf, Complex, Real};

/// Split/dup twiddle streams for the SIMD first stage (`s == 1`,
/// radix 8), where the twiddle varies along the vectorized `p` axis:
/// `re[(c−1)·2m + 2p]` holds `tw[p·7 + (c−1)].re` duplicated ×2, so one
/// 256-bit load yields the operand for a `[p, p+1]` pair.
#[derive(Debug, Clone)]
struct StockhamSimd {
    first_re: AlignedBuf<f64>,
    first_im: AlignedBuf<f64>,
    /// Radix-5 butterfly constants `(Re ω₅, Re ω₅², Im ω₅, Im ω₅²)`,
    /// direction-signed — used by the smooth-ladder stages (see
    /// [`StockhamFft::for_smooth`]); zero-cost to carry for pure pow2.
    r5: (f64, f64, f64, f64),
}

/// A prepared power-of-two Stockham transform.
#[derive(Debug, Clone)]
pub struct StockhamFft<T> {
    n: usize,
    sign: Sign,
    stages: Vec<StageTwiddles<T>>,
    simd: Option<StockhamSimd>,
}

impl<T: Real> StockhamFft<T> {
    /// Plan a transform of power-of-two size `n`, with SIMD dispatch
    /// decided by [`simd::enabled`] (CPU features minus `SOI_NO_SIMD`).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize, sign: Sign) -> Self {
        Self::with_simd(n, sign, simd::enabled())
    }

    /// Plan with an explicit SIMD request. `want` is intersected with
    /// what the host supports (AVX2+FMA, `f64` elements, `n ≥ 16` so the
    /// first stage is a full radix-8 pass); it deliberately ignores the
    /// `SOI_NO_SIMD` env so property tests can pit both paths against
    /// each other in one process.
    pub fn with_simd(n: usize, sign: Sign, want: bool) -> Self {
        assert!(n.is_power_of_two() && n > 0, "Stockham requires a power of two, got {n}");
        let mut radices = Vec::new();
        let mut cur = n;
        while cur > 1 {
            let r = if cur % 8 == 0 {
                8
            } else if cur % 4 == 0 {
                4
            } else {
                2
            };
            radices.push(r);
            cur /= r;
        }
        Self::from_radices(n, sign, &radices, want)
    }

    /// Plan a SIMD smooth ladder for `n = 2^k · 5^j` (`j ≥ 1`,
    /// `n % 16 == 0`): the pow2 stages run first (radix 8 leading, so the
    /// vectorized first-stage kernel applies and every later stage
    /// streams an even `s`), the radix-5 stages close. Returns `None`
    /// when the shape doesn't fit or the host can't run the vector
    /// kernels — callers (the mixed-radix engine) fall back to their own
    /// path. Stockham's streaming structure beats the mixed-radix
    /// recursion by ~2–3× at these sizes, which is the whole point.
    pub(crate) fn for_smooth(n: usize, sign: Sign, want: bool) -> Option<Self> {
        if !(want && simd::cpu_supported() && simd::is_c64::<T>()) {
            return None;
        }
        let mut pow2 = n;
        let mut fives = 0usize;
        while pow2 % 5 == 0 {
            pow2 /= 5;
            fives += 1;
        }
        // n % 16 == 0 makes the leading radix-8 stage's m = n/8 even (the
        // vectorized first-stage kernel pairs p's), and pow2 ≥ 16 keeps
        // the greedy pow2 schedule non-empty after the leading 8.
        if fives == 0 || !pow2.is_power_of_two() || n % 16 != 0 {
            return None;
        }
        let mut radices = vec![8usize];
        let mut rest = pow2 / 8;
        while rest > 1 {
            let r = if rest % 8 == 0 {
                8
            } else if rest % 4 == 0 {
                4
            } else {
                2
            };
            radices.push(r);
            rest /= r;
        }
        radices.extend(std::iter::repeat(5).take(fives));
        Some(Self::from_radices(n, sign, &radices, true))
    }

    /// Shared constructor: build the stage tables for an explicit radix
    /// schedule and decide SIMD dispatch. `want` is intersected with what
    /// the host supports (AVX2+FMA, `f64` elements, a leading radix-8
    /// stage with even `m` so the vector kernels cover every stage with
    /// no tails); it deliberately ignores the `SOI_NO_SIMD` env so
    /// property tests can pit both paths against each other in one
    /// process.
    fn from_radices(n: usize, sign: Sign, radices: &[usize], want: bool) -> Self {
        let mut stages = Vec::new();
        let mut cur = n;
        for &r in radices {
            stages.push(StageTwiddles::new(cur, r, sign));
            cur /= r;
        }
        debug_assert_eq!(cur, 1, "radix schedule must exhaust n");
        let simd_ok = want
            && simd::cpu_supported()
            && simd::is_c64::<T>()
            && stages.first().map_or(false, |st| st.radix == 8 && st.m % 2 == 0);
        let simd = if simd_ok {
            let st0 = &stages[0];
            let m = st0.m;
            let tw = simd::c64s(&st0.tw);
            // Aligned streams: the kernel reads these 4 f64 (32 bytes)
            // at a time, and a mmap-served Vec would straddle lines.
            let mut first_re = AlignedBuf::<f64>::zeroed(7 * 2 * m);
            let mut first_im = AlignedBuf::<f64>::zeroed(7 * 2 * m);
            for c in 0..7 {
                for p in 0..m {
                    let w = tw[p * 7 + c];
                    first_re[c * 2 * m + 2 * p] = w.re;
                    first_re[c * 2 * m + 2 * p + 1] = w.re;
                    first_im[c * 2 * m + 2 * p] = w.im;
                    first_im[c * 2 * m + 2 * p + 1] = w.im;
                }
            }
            let w1 = sign.root(1, 5);
            let w2 = sign.root(2, 5);
            Some(StockhamSimd {
                first_re,
                first_im,
                r5: (w1.re, w2.re, w1.im, w2.im),
            })
        } else {
            None
        };
        Self { n, sign, stages, simd }
    }

    /// The butterfly codelets this plan's stages dispatch to.
    pub fn codelets(&self) -> Vec<Codelet> {
        codelet::dedup(self.stage_codelets())
    }

    /// Per-stage codelets with the active dispatch. Every stage shares
    /// one dispatch: when the SIMD streams were built, every stage runs
    /// a vector kernel; otherwise all are portable.
    pub fn codelet_dispatch(&self) -> Vec<(Codelet, Dispatch)> {
        let d = self.dispatch();
        codelet::dedup_dispatch(self.stage_codelets().into_iter().map(|c| (c, d)).collect())
    }

    /// The dispatch this plan executes with.
    pub fn dispatch(&self) -> Dispatch {
        if self.simd.is_some() {
            Dispatch::Avx2Fma
        } else {
            Dispatch::Portable
        }
    }

    fn stage_codelets(&self) -> Vec<Codelet> {
        self.stages
            .iter()
            .map(|st| match st.radix {
                2 => Codelet::Radix2,
                4 => Codelet::Radix4,
                5 => Codelet::Radix5,
                8 => Codelet::Radix8,
                r => Codelet::Generic(r),
            })
            .collect()
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Execute on `data` using caller-provided scratch of the same length.
    ///
    /// The result always ends up back in `data`; `scratch` contents are
    /// clobbered.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        if self.run_stages(data, scratch) {
            return;
        }
        data.copy_from_slice(scratch);
    }

    /// Run every stage; returns `true` when the live result ended up in
    /// `data`, `false` when it is in `scratch` (odd stage count).
    fn run_stages(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) -> bool {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert_eq!(scratch.len(), self.n, "scratch length mismatch");
        if self.n == 1 {
            return true;
        }
        let mut s = 1usize; // stream count (number of interleaved sub-vectors)
        let mut in_data = true; // which buffer currently holds the live values
        for i in 0..self.stages.len() {
            if in_data {
                self.stage_into(i, s, data, scratch);
            } else {
                self.stage_into(i, s, scratch, data);
            }
            s *= self.stages[i].radix;
            in_data = !in_data;
        }
        in_data
    }

    /// Run stage `i` (stream count `s`) from `src` into `dst`, routed to
    /// the AVX2+FMA kernel when the constructor built the streams (so
    /// `T = f64`, AVX2+FMA present, leading radix-8 stage with even `m`).
    fn stage_into(&self, i: usize, s: usize, src: &[Complex<T>], dst: &mut [Complex<T>]) {
        let st = &self.stages[i];
        #[cfg(target_arch = "x86_64")]
        if let Some(sd) = &self.simd {
            let src = simd::c64s(src);
            let dst = simd::c64s_mut(dst);
            let tw = simd::c64s(&st.tw);
            let forward = self.sign == Sign::Forward;
            let (c1, c2, s1, s2) = sd.r5;
            // Safety: constructor checked AVX2+FMA; stage geometry (even
            // m for stage 0, even s ≥ 8 afterwards) is guaranteed by both
            // the pow2 and the smooth-ladder schedules.
            unsafe {
                if i == 0 {
                    simd::avx2::stockham_first8(src, dst, &sd.first_re, &sd.first_im, st.m, forward);
                } else {
                    match st.radix {
                        2 => simd::avx2::stockham_q2(src, dst, tw, st.m, s, s),
                        4 => simd::avx2::stockham_q4(src, dst, tw, st.m, s, s, forward),
                        5 => simd::avx2::stockham_q5(src, dst, tw, st.m, s, s, c1, c2, s1, s2),
                        8 => simd::avx2::stockham_q8(src, dst, tw, st.m, s, s, forward),
                        r => unreachable!("unsupported Stockham radix {r}"),
                    }
                }
            }
            return;
        }
        match st.radix {
            2 => stage_radix2(src, dst, st, s),
            4 => stage_radix4(src, dst, st, s, self.sign),
            5 => stage_radix5(src, dst, st, s, self.sign),
            8 => stage_radix8(src, dst, st, s, self.sign),
            r => unreachable!("unsupported Stockham radix {r}"),
        }
    }

    /// Out-of-place execute: transform `src` into `dst` without touching
    /// `src` (`scratch.len() ≥ n`). Runs the exact same stage kernels in
    /// the same order as [`Self::execute_with_scratch`] — only the buffer
    /// schedule differs (the first stage targets whichever of `dst`/
    /// `scratch` makes the remaining ping-pong land in `dst`) — so the
    /// result is bitwise identical to the in-place path. This is the seam
    /// the four-step uses to land `F_b` rows directly in the transpose
    /// buffer instead of copying them there afterwards.
    pub fn process_with_scratch(
        &self,
        src: &[Complex<T>],
        dst: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        assert_eq!(src.len(), self.n, "src length mismatch");
        assert_eq!(dst.len(), self.n, "dst length mismatch");
        assert!(scratch.len() >= self.n, "scratch too short");
        let nst = self.stages.len();
        if nst == 0 {
            dst.copy_from_slice(src);
            return;
        }
        let scratch = &mut scratch[..self.n];
        let mut s = 1usize;
        for i in 0..nst {
            // Stage i writes dst when the remaining stage count is odd,
            // so stage nst−1 always writes dst.
            let to_dst = (nst - i) % 2 == 1;
            match (i == 0, to_dst) {
                (true, true) => self.stage_into(0, s, src, dst),
                (true, false) => self.stage_into(0, s, src, scratch),
                (false, true) => self.stage_into(i, s, scratch, dst),
                (false, false) => self.stage_into(i, s, dst, scratch),
            }
            s *= self.stages[i].radix;
        }
    }

    /// Transform `data` and write `out[k] = result[k]·weights[k]` for
    /// `k < out.len()` — the projection + demodulation fusion of the SOI
    /// pipeline. The weighted write reads the result straight out of
    /// whichever ping-pong buffer the last stage produced, so the final
    /// copy-back pass of [`Self::execute_with_scratch`] is skipped
    /// entirely. `data` is clobbered (its contents after the call are one
    /// of the intermediate stages).
    ///
    /// Per-element arithmetic is identical to `execute_with_scratch`
    /// followed by the multiply, so the fused result is bitwise equal to
    /// the unfused one.
    pub fn execute_fused_into(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        out: &mut [Complex<T>],
        weights: &[Complex<T>],
    ) {
        assert!(out.len() <= self.n, "fused output longer than transform");
        assert!(weights.len() >= out.len(), "fused weights too short");
        let res_in_data = self.run_stages(data, scratch);
        let res: &[Complex<T>] = if res_in_data { data } else { scratch };
        // Bitwise identical to the scalar multiply loop on every path
        // (see `simd::weighted_product`), preserving the fused==unfused
        // bitwise contract with SIMD active.
        simd::weighted_product(out, res, weights);
    }

    /// Execute in place, allocating scratch internally.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let mut scratch = AlignedBuf::zeroed(self.n);
        self.execute_with_scratch(data, &mut scratch);
    }
}

/// One radix-2 DIF Stockham stage: `n_cur = 2m` logical points in `s`
/// interleaved streams.
fn stage_radix2<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
) {
    let m = st.m;
    for p in 0..m {
        let wp = st.tw[p];
        let xa = &x[s * p..s * p + s];
        let xb = &x[s * (p + m)..s * (p + m) + s];
        // Split dst into the two output runs for this p.
        for q in 0..s {
            let a = xa[q];
            let b = xb[q];
            y[q + s * (2 * p)] = a + b;
            y[q + s * (2 * p + 1)] = (a - b) * wp;
        }
    }
}

/// One radix-4 DIF Stockham stage.
fn stage_radix4<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
    sign: Sign,
) {
    let m = st.m;
    let forward = sign == Sign::Forward;
    for p in 0..m {
        let w1 = st.tw[p * 3];
        let w2 = st.tw[p * 3 + 1];
        let w3 = st.tw[p * 3 + 2];
        for q in 0..s {
            let a = x[q + s * p];
            let b = x[q + s * (p + m)];
            let c = x[q + s * (p + 2 * m)];
            let d = x[q + s * (p + 3 * m)];
            let apc = a + c;
            let amc = a - c;
            let bpd = b + d;
            // ω_4 = −i forward, +i inverse; jbmd = ω_4·(b−d) up to sign
            // convention folded into the +/− below (OTFFT layout).
            let jbmd = if forward {
                (b - d).mul_i()
            } else {
                (b - d).mul_neg_i()
            };
            y[q + s * (4 * p)] = apc + bpd;
            y[q + s * (4 * p + 1)] = (amc - jbmd) * w1;
            y[q + s * (4 * p + 2)] = (apc - bpd) * w2;
            y[q + s * (4 * p + 3)] = (amc + jbmd) * w3;
        }
    }
}

/// One radix-5 DIF Stockham stage (smooth-ladder closer; mirrors the
/// real-symmetric half-complexity factorization of `stockham_q5`).
fn stage_radix5<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
    sign: Sign,
) {
    let m = st.m;
    let w1 = sign.root(1, 5);
    let w2 = sign.root(2, 5);
    let (c1, c2, s1, s2) = (w1.re, w2.re, w1.im, w2.im);
    for p in 0..m {
        let tw = &st.tw[p * 4..p * 4 + 4];
        for q in 0..s {
            let a = x[q + s * p];
            let b = x[q + s * (p + m)];
            let c = x[q + s * (p + 2 * m)];
            let d = x[q + s * (p + 3 * m)];
            let e = x[q + s * (p + 4 * m)];
            let t1 = b + e;
            let t2 = c + d;
            let t3 = b - e;
            let t4 = c - d;
            let m1 = a + t1.scale(c1) + t2.scale(c2);
            let m2 = a + t1.scale(c2) + t2.scale(c1);
            let v1 = (t3.scale(s1) + t4.scale(s2)).mul_i();
            let v2 = (t3.scale(s2) - t4.scale(s1)).mul_i();
            y[q + s * (5 * p)] = a + t1 + t2;
            y[q + s * (5 * p + 1)] = (m1 + v1) * tw[0];
            y[q + s * (5 * p + 2)] = (m2 + v2) * tw[1];
            y[q + s * (5 * p + 3)] = (m2 - v2) * tw[2];
            y[q + s * (5 * p + 4)] = (m1 - v1) * tw[3];
        }
    }
}

/// One radix-8 DIF Stockham stage: three radix-2 passes' worth of work in
/// a single trip through memory. The split is the classical
/// even/odd-of-4 DIF: sums `s_t = a_t + a_{t+4}` feed a radix-4 butterfly
/// producing the even outputs, differences `d_t = a_t − a_{t+4}` are
/// rotated by the fixed eighth roots `ω_8^t` (costing only two √2/2
/// scalings and two axis flips) and feed a second radix-4 butterfly for
/// the odd outputs.
fn stage_radix8<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
    sign: Sign,
) {
    let m = st.m;
    let forward = sign == Sign::Forward;
    // 1/√2 = cos(π/4): the real (and |imag|) part of ω_8.
    let r = T::HALF.sqrt();
    // Four-point DIF butterfly shared by the even and odd halves;
    // mirrors stage_radix4's arithmetic exactly.
    let dft4 = |a: Complex<T>, b: Complex<T>, c: Complex<T>, d: Complex<T>| {
        let apc = a + c;
        let amc = a - c;
        let bpd = b + d;
        let jbmd = if forward {
            (b - d).mul_i()
        } else {
            (b - d).mul_neg_i()
        };
        (apc + bpd, amc - jbmd, apc - bpd, amc + jbmd)
    };
    for p in 0..m {
        let tw = &st.tw[p * 7..p * 7 + 7];
        for q in 0..s {
            let a0 = x[q + s * p];
            let a1 = x[q + s * (p + m)];
            let a2 = x[q + s * (p + 2 * m)];
            let a3 = x[q + s * (p + 3 * m)];
            let a4 = x[q + s * (p + 4 * m)];
            let a5 = x[q + s * (p + 5 * m)];
            let a6 = x[q + s * (p + 6 * m)];
            let a7 = x[q + s * (p + 7 * m)];
            let s0 = a0 + a4;
            let s1 = a1 + a5;
            let s2 = a2 + a6;
            let s3 = a3 + a7;
            let d0 = a0 - a4;
            let d1 = a1 - a5;
            let d2 = a2 - a6;
            let d3 = a3 - a7;
            let (e0, e1, e2, e3) = dft4(s0, s1, s2, s3);
            // Rotate the difference half by ω_8^t before its radix-4
            // combine; forward ω_8 = (1−i)/√2, inverse conjugated.
            let (t1, t2, t3) = if forward {
                (
                    (d1 + d1.mul_neg_i()).scale(r),
                    d2.mul_neg_i(),
                    (d3.mul_neg_i() - d3).scale(r),
                )
            } else {
                (
                    (d1 + d1.mul_i()).scale(r),
                    d2.mul_i(),
                    (d3.mul_i() - d3).scale(r),
                )
            };
            let (o0, o1, o2, o3) = dft4(d0, t1, t2, t3);
            y[q + s * (8 * p)] = e0;
            y[q + s * (8 * p + 1)] = o0 * tw[0];
            y[q + s * (8 * p + 2)] = e1 * tw[1];
            y[q + s * (8 * p + 3)] = o1 * tw[2];
            y[q + s * (8 * p + 4)] = e2 * tw[3];
            y[q + s * (8 * p + 5)] = o2 * tw[4];
            y[q + s * (8 * p + 6)] = e3 * tw[5];
            y[q + s * (8 * p + 7)] = o3 * tw[6];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, dft_naive_signed};
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.7).sin() + 0.1, (i as f64 * 1.3).cos() - 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_dft_all_pow2_sizes() {
        for lg in 0..=10 {
            let n = 1usize << lg;
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = StockhamFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-9 * (n as f64), "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_matches_naive() {
        for lg in [1, 3, 5, 8] {
            let n = 1usize << lg;
            let x = test_signal(n);
            let want = dft_naive_signed(&x, Sign::Inverse);
            let plan = StockhamFft::new(n, Sign::Inverse);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn forward_then_inverse_is_identity_scaled() {
        let n = 256;
        let x = test_signal(n);
        let fwd = StockhamFft::new(n, Sign::Forward);
        let inv = StockhamFft::new(n, Sign::Inverse);
        let mut buf = x.clone();
        fwd.execute(&mut buf);
        inv.execute(&mut buf);
        let scaled: Vec<Complex64> = buf.iter().map(|&v| v / n as f64).collect();
        assert!(max_abs_diff(&scaled, &x) < 1e-12);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = StockhamFft::new(1, Sign::Forward);
        let mut data = vec![c64(2.5, -1.5)];
        plan.execute(&mut data);
        assert_eq!(data[0], c64(2.5, -1.5));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = StockhamFft::<f64>::new(12, Sign::Forward);
    }

    #[test]
    fn f32_transform_works() {
        let n = 64;
        let x: Vec<Complex<f32>> = (0..n)
            .map(|i| Complex::new((i as f32 * 0.7).sin(), (i as f32 * 1.3).cos()))
            .collect();
        let x64: Vec<Complex64> = x.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&x64);
        let plan = StockhamFft::<f32>::new(n, Sign::Forward);
        let mut got = x;
        plan.execute(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.to_c64() - *w).abs() < 1e-3);
        }
    }

    #[test]
    fn stage_selection_prefers_radix8() {
        use crate::codelet::Codelet;
        // 512 = 8³: pure radix-8 ladder.
        assert_eq!(
            StockhamFft::<f64>::new(512, Sign::Forward).codelets(),
            vec![Codelet::Radix8]
        );
        // 256 = 8·8·4 and 1024 = 8·8·8·2: radix-8 stages plus one closer.
        assert_eq!(
            StockhamFft::<f64>::new(256, Sign::Forward).codelets(),
            vec![Codelet::Radix4, Codelet::Radix8]
        );
        assert_eq!(
            StockhamFft::<f64>::new(1024, Sign::Forward).codelets(),
            vec![Codelet::Radix2, Codelet::Radix8]
        );
        // Tiny sizes that never fit a radix-8 stage.
        assert_eq!(
            StockhamFft::<f64>::new(4, Sign::Forward).codelets(),
            vec![Codelet::Radix4]
        );
        assert_eq!(
            StockhamFft::<f64>::new(2, Sign::Forward).codelets(),
            vec![Codelet::Radix2]
        );
    }

    #[test]
    fn radix8_sizes_match_naive_both_directions() {
        // Sizes whose first stage is the radix-8 kernel, both signs
        // (the all-pow2 sweep above covers forward only up to 1024).
        for n in [8usize, 64, 512, 2048] {
            let x = test_signal(n);
            for sign in [Sign::Forward, Sign::Inverse] {
                let want = dft_naive_signed(&x, sign);
                let plan = StockhamFft::new(n, sign);
                let mut got = x.clone();
                plan.execute(&mut got);
                let err = max_abs_diff(&got, &want);
                assert!(err < 1e-9 * n as f64, "n={n} sign={sign:?} err={err}");
            }
        }
    }

    #[test]
    fn fused_output_is_bitwise_equal_to_unfused_then_multiply() {
        let n = 1024;
        let m = 600; // projection keeps fewer bins than the transform
        let x = test_signal(n);
        let weights: Vec<Complex64> = (0..m)
            .map(|k| c64((k as f64 * 0.13).cos() + 1.5, (k as f64 * 0.37).sin()))
            .collect();
        let plan = StockhamFft::new(n, Sign::Forward);
        let mut d1 = x.clone();
        let mut s1 = vec![Complex64::ZERO; n];
        plan.execute_with_scratch(&mut d1, &mut s1);
        let want: Vec<Complex64> = (0..m).map(|k| d1[k] * weights[k]).collect();
        let mut d2 = x.clone();
        let mut s2 = vec![Complex64::ZERO; n];
        let mut out = vec![Complex64::ZERO; m];
        plan.execute_fused_into(&mut d2, &mut s2, &mut out, &weights);
        for (k, (a, b)) in out.iter().zip(&want).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "bin {k}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "bin {k}");
        }
    }

    #[test]
    fn process_with_scratch_is_bitwise_the_in_place_execute() {
        for n in [1usize, 2, 8, 16, 256, 2048] {
            let x = test_signal(n);
            for sign in [Sign::Forward, Sign::Inverse] {
                let plan = StockhamFft::new(n, sign);
                let mut want = x.clone();
                let mut s1 = vec![Complex64::ZERO; n];
                plan.execute_with_scratch(&mut want, &mut s1);
                let mut got = vec![Complex64::ZERO; n];
                let mut s2 = vec![Complex64::ZERO; n];
                plan.process_with_scratch(&x, &mut got, &mut s2);
                for k in 0..n {
                    assert_eq!(got[k].re.to_bits(), want[k].re.to_bits(), "n={n} k={k}");
                    assert_eq!(got[k].im.to_bits(), want[k].im.to_bits(), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn smooth_ladder_matches_naive_dft() {
        if !simd::cpu_supported() {
            assert!(StockhamFft::<f64>::for_smooth(80, Sign::Forward, true).is_none());
            return;
        }
        for n in [80usize, 400, 640, 1280, 2560] {
            for sign in [Sign::Forward, Sign::Inverse] {
                let plan = StockhamFft::<f64>::for_smooth(n, sign, true)
                    .unwrap_or_else(|| panic!("no ladder for {n}"));
                let x = test_signal(n);
                let want = dft_naive_signed(&x, sign);
                let mut got = x.clone();
                plan.execute(&mut got);
                let err = max_abs_diff(&got, &want);
                assert!(err < 1e-9 * n as f64, "n={n} sign={sign:?} err={err}");
                // Out-of-place path agrees bitwise with in-place.
                let mut oop = vec![Complex64::ZERO; n];
                let mut sc = vec![Complex64::ZERO; n];
                plan.process_with_scratch(&x, &mut oop, &mut sc);
                for k in 0..n {
                    assert_eq!(oop[k].re.to_bits(), got[k].re.to_bits(), "n={n} k={k}");
                    assert_eq!(oop[k].im.to_bits(), got[k].im.to_bits(), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn smooth_ladder_rejects_unsupported_shapes() {
        // No factor of 5, not 16-divisible, or a non-5-smooth cofactor.
        for n in [64usize, 20, 40, 280, 48] {
            assert!(
                StockhamFft::<f64>::for_smooth(n, Sign::Forward, true).is_none(),
                "n={n} should have no ladder"
            );
        }
    }

    #[test]
    fn smooth_ladder_reports_radix5_codelet() {
        if !simd::cpu_supported() {
            return;
        }
        let plan = StockhamFft::<f64>::for_smooth(1280, Sign::Forward, true).unwrap();
        let cs = plan.codelets();
        assert!(cs.contains(&Codelet::Radix5), "{cs:?}");
        assert!(cs.iter().all(|c| !c.is_generic()), "{cs:?}");
        assert_eq!(plan.dispatch(), Dispatch::Avx2Fma);
    }

    #[test]
    fn parseval_large() {
        let n = 4096;
        let x = test_signal(n);
        let plan = StockhamFft::new(n, Sign::Forward);
        let mut y = x.clone();
        plan.execute(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - n as f64 * ex).abs() < 1e-9 * ey);
    }
}
