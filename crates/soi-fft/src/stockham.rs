//! Self-sorting Stockham FFT for power-of-two sizes.
//!
//! Decimation-in-frequency with radix-4 stages (radix-2 cleanup when the
//! exponent is odd). Stockham's autosort formulation needs no bit-reversal
//! pass: each stage reads one buffer with stride `s` and writes the other
//! with the outputs of a butterfly adjacent, so every pass is a unit-stride
//! streaming pass — the property that makes it the engine of choice for the
//! node-local FFTs in Fig 2 of the paper.

use crate::twiddle::{Sign, StageTwiddles};
use soi_num::{Complex, Real};

/// A prepared power-of-two Stockham transform.
#[derive(Debug, Clone)]
pub struct StockhamFft<T> {
    n: usize,
    sign: Sign,
    stages: Vec<StageTwiddles<T>>,
}

impl<T: Real> StockhamFft<T> {
    /// Plan a transform of power-of-two size `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize, sign: Sign) -> Self {
        assert!(n.is_power_of_two() && n > 0, "Stockham requires a power of two, got {n}");
        let mut stages = Vec::new();
        let mut cur = n;
        while cur > 1 {
            let r = if cur % 4 == 0 { 4 } else { 2 };
            stages.push(StageTwiddles::new(cur, r, sign));
            cur /= r;
        }
        Self { n, sign, stages }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direction.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Execute on `data` using caller-provided scratch of the same length.
    ///
    /// The result always ends up back in `data`; `scratch` contents are
    /// clobbered.
    pub fn execute_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert_eq!(scratch.len(), self.n, "scratch length mismatch");
        if self.n == 1 {
            return;
        }
        let mut s = 1usize; // stream count (number of interleaved sub-vectors)
        let mut in_data = true; // which buffer currently holds the live values
        for st in &self.stages {
            let (src, dst): (&mut [Complex<T>], &mut [Complex<T>]) = if in_data {
                (data, &mut *scratch)
            } else {
                (scratch, &mut *data)
            };
            match st.radix {
                2 => stage_radix2(src, dst, st, s),
                4 => stage_radix4(src, dst, st, s, self.sign),
                r => unreachable!("unsupported Stockham radix {r}"),
            }
            s *= st.radix;
            in_data = !in_data;
        }
        if !in_data {
            data.copy_from_slice(scratch);
        }
    }

    /// Execute in place, allocating scratch internally.
    pub fn execute(&self, data: &mut [Complex<T>]) {
        let mut scratch = vec![Complex::ZERO; self.n];
        self.execute_with_scratch(data, &mut scratch);
    }
}

/// One radix-2 DIF Stockham stage: `n_cur = 2m` logical points in `s`
/// interleaved streams.
fn stage_radix2<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
) {
    let m = st.m;
    for p in 0..m {
        let wp = st.tw[p];
        let xa = &x[s * p..s * p + s];
        let xb = &x[s * (p + m)..s * (p + m) + s];
        // Split dst into the two output runs for this p.
        for q in 0..s {
            let a = xa[q];
            let b = xb[q];
            y[q + s * (2 * p)] = a + b;
            y[q + s * (2 * p + 1)] = (a - b) * wp;
        }
    }
}

/// One radix-4 DIF Stockham stage.
fn stage_radix4<T: Real>(
    x: &[Complex<T>],
    y: &mut [Complex<T>],
    st: &StageTwiddles<T>,
    s: usize,
    sign: Sign,
) {
    let m = st.m;
    let forward = sign == Sign::Forward;
    for p in 0..m {
        let w1 = st.tw[p * 3];
        let w2 = st.tw[p * 3 + 1];
        let w3 = st.tw[p * 3 + 2];
        for q in 0..s {
            let a = x[q + s * p];
            let b = x[q + s * (p + m)];
            let c = x[q + s * (p + 2 * m)];
            let d = x[q + s * (p + 3 * m)];
            let apc = a + c;
            let amc = a - c;
            let bpd = b + d;
            // ω_4 = −i forward, +i inverse; jbmd = ω_4·(b−d) up to sign
            // convention folded into the +/− below (OTFFT layout).
            let jbmd = if forward {
                (b - d).mul_i()
            } else {
                (b - d).mul_neg_i()
            };
            y[q + s * (4 * p)] = apc + bpd;
            y[q + s * (4 * p + 1)] = (amc - jbmd) * w1;
            y[q + s * (4 * p + 2)] = (apc - bpd) * w2;
            y[q + s * (4 * p + 3)] = (amc + jbmd) * w3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, dft_naive_signed};
    use soi_num::{c64, complex::max_abs_diff, Complex64};

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| c64((i as f64 * 0.7).sin() + 0.1, (i as f64 * 1.3).cos() - 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_dft_all_pow2_sizes() {
        for lg in 0..=10 {
            let n = 1usize << lg;
            let x = test_signal(n);
            let want = dft_naive(&x);
            let plan = StockhamFft::new(n, Sign::Forward);
            let mut got = x.clone();
            plan.execute(&mut got);
            let err = max_abs_diff(&got, &want);
            assert!(err < 1e-9 * (n as f64), "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_matches_naive() {
        for lg in [1, 3, 5, 8] {
            let n = 1usize << lg;
            let x = test_signal(n);
            let want = dft_naive_signed(&x, Sign::Inverse);
            let plan = StockhamFft::new(n, Sign::Inverse);
            let mut got = x.clone();
            plan.execute(&mut got);
            assert!(max_abs_diff(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn forward_then_inverse_is_identity_scaled() {
        let n = 256;
        let x = test_signal(n);
        let fwd = StockhamFft::new(n, Sign::Forward);
        let inv = StockhamFft::new(n, Sign::Inverse);
        let mut buf = x.clone();
        fwd.execute(&mut buf);
        inv.execute(&mut buf);
        let scaled: Vec<Complex64> = buf.iter().map(|&v| v / n as f64).collect();
        assert!(max_abs_diff(&scaled, &x) < 1e-12);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = StockhamFft::new(1, Sign::Forward);
        let mut data = vec![c64(2.5, -1.5)];
        plan.execute(&mut data);
        assert_eq!(data[0], c64(2.5, -1.5));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = StockhamFft::<f64>::new(12, Sign::Forward);
    }

    #[test]
    fn f32_transform_works() {
        let n = 64;
        let x: Vec<Complex<f32>> = (0..n)
            .map(|i| Complex::new((i as f32 * 0.7).sin(), (i as f32 * 1.3).cos()))
            .collect();
        let x64: Vec<Complex64> = x.iter().map(|c| c.to_c64()).collect();
        let want = dft_naive(&x64);
        let plan = StockhamFft::<f32>::new(n, Sign::Forward);
        let mut got = x;
        plan.execute(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.to_c64() - *w).abs() < 1e-3);
        }
    }

    #[test]
    fn parseval_large() {
        let n = 4096;
        let x = test_signal(n);
        let plan = StockhamFft::new(n, Sign::Forward);
        let mut y = x.clone();
        plan.execute(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - n as f64 * ex).abs() < 1e-9 * ey);
    }
}
