//! Twiddle-factor tables.
//!
//! All engines in this crate share the convention that the *forward*
//! transform uses `ω_N = exp(−2πi/N)` (the paper's convention in §3) and
//! the inverse uses the conjugate. Tables are computed once per plan with
//! per-element `sin_cos` so no error accumulates across the table (no
//! repeated multiplication recurrences).

use soi_num::{Complex, Real};

/// Transform direction. Determines the sign of the twiddle exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// `exp(−2πi/N)` — the forward DFT.
    Forward,
    /// `exp(+2πi/N)` — the inverse DFT (unnormalized).
    Inverse,
}

impl Sign {
    /// The twiddle `exp(∓2πi·k/n)` for this direction.
    #[inline]
    pub fn root<T: Real>(self, k: usize, n: usize) -> Complex<T> {
        let w = Complex::root_of_unity(k, n);
        match self {
            Sign::Forward => w,
            Sign::Inverse => w.conj(),
        }
    }

    /// Flip direction.
    #[inline]
    pub fn opposite(self) -> Sign {
        match self {
            Sign::Forward => Sign::Inverse,
            Sign::Inverse => Sign::Forward,
        }
    }
}

/// A dense table of the first `len` powers of `exp(∓2πi/n)`.
#[derive(Debug, Clone)]
pub struct TwiddleTable<T> {
    /// `w[k] = exp(∓2πi·k/n)` for `k < len`.
    pub w: Vec<Complex<T>>,
    /// The order `n` of the root.
    pub n: usize,
    /// Direction the table was built for.
    pub sign: Sign,
}

impl<T: Real> TwiddleTable<T> {
    /// Build a table of `len` twiddles of order `n`.
    pub fn new(n: usize, len: usize, sign: Sign) -> Self {
        assert!(n > 0, "twiddle order must be positive");
        let w = (0..len).map(|k| sign.root(k, n)).collect();
        Self { w, n, sign }
    }

    /// `exp(∓2πi·k/n)` for arbitrary `k` (reduced modulo `n`, falling back
    /// to direct evaluation if the reduced index is outside the table).
    #[inline]
    pub fn get(&self, k: usize) -> Complex<T> {
        let k = k % self.n;
        if k < self.w.len() {
            self.w[k]
        } else {
            self.sign.root(k, self.n)
        }
    }
}

/// Per-stage twiddles for the Stockham engines: stage `s` of a radix-`r`
/// decimation-in-frequency pass over size `n` needs `ω_n^{p·c}` for
/// `p < n/r`, `c < r`.
#[derive(Debug, Clone)]
pub struct StageTwiddles<T> {
    /// `tw[p*(r-1) + (c-1)] = ω_n^{p·c}` for `c in 1..r`.
    pub tw: Vec<Complex<T>>,
    /// Sub-transform count for this stage (`n/r`).
    pub m: usize,
    /// Radix of the stage.
    pub radix: usize,
}

impl<T: Real> StageTwiddles<T> {
    /// Build the twiddles for one DIF stage of size `n`, radix `r`.
    pub fn new(n: usize, r: usize, sign: Sign) -> Self {
        assert!(n % r == 0, "stage size {n} not divisible by radix {r}");
        let m = n / r;
        let mut tw = Vec::with_capacity(m * (r - 1));
        for p in 0..m {
            for c in 1..r {
                tw.push(sign.root(p * c, n));
            }
        }
        Self { tw, m, radix: r }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::Complex64;

    #[test]
    fn forward_table_matches_direct_roots() {
        let t: TwiddleTable<f64> = TwiddleTable::new(16, 16, Sign::Forward);
        for k in 0..16 {
            let want = Complex64::root_of_unity(k, 16);
            assert!((t.get(k) - want).abs() < 1e-15);
        }
    }

    #[test]
    fn inverse_is_conjugate_of_forward() {
        let f: TwiddleTable<f64> = TwiddleTable::new(12, 12, Sign::Forward);
        let i: TwiddleTable<f64> = TwiddleTable::new(12, 12, Sign::Inverse);
        for k in 0..12 {
            assert!((f.get(k).conj() - i.get(k)).abs() < 1e-15);
        }
    }

    #[test]
    fn get_reduces_modulo_n() {
        let t: TwiddleTable<f64> = TwiddleTable::new(8, 8, Sign::Forward);
        assert!((t.get(3) - t.get(3 + 8 * 5)).abs() < 1e-15);
    }

    #[test]
    fn get_beyond_table_length_falls_back() {
        let t: TwiddleTable<f64> = TwiddleTable::new(64, 4, Sign::Forward);
        let want = Complex64::root_of_unity(17, 64);
        assert!((t.get(17) - want).abs() < 1e-15);
    }

    #[test]
    fn stage_twiddles_layout() {
        let s: StageTwiddles<f64> = StageTwiddles::new(8, 2, Sign::Forward);
        assert_eq!(s.m, 4);
        assert_eq!(s.tw.len(), 4);
        for p in 0..4 {
            let want = Complex64::root_of_unity(p, 8);
            assert!((s.tw[p] - want).abs() < 1e-15);
        }
        let s4: StageTwiddles<f64> = StageTwiddles::new(16, 4, Sign::Forward);
        assert_eq!(s4.m, 4);
        assert_eq!(s4.tw.len(), 12);
        // Entry (p=2, c=3) sits at 2*3 + 2 and equals ω_16^6.
        let want = Complex64::root_of_unity(6, 16);
        assert!((s4.tw[2 * 3 + 2] - want).abs() < 1e-15);
    }

    #[test]
    fn sign_opposite() {
        assert_eq!(Sign::Forward.opposite(), Sign::Inverse);
        assert_eq!(Sign::Inverse.opposite(), Sign::Forward);
    }
}
