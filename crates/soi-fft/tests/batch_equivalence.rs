//! Thread-count equivalence of the batched executor.
//!
//! The `I ⊗ F_P` stage of the SOI factorization (Eq. 6) is data-parallel
//! over rows: the thread split is pure scheduling and must not change a
//! single bit of the output. Each plan is executed per-row with its own
//! scratch, so `threads = 1, 2, 4` (and an oversubscribed count) are
//! required to agree **bitwise**, not just within tolerance.

use soi_fft::batch::BatchFft;
use soi_fft::Direction;
use soi_num::{Complex64, Real};
use soi_testkit::TestRng;

fn bits(v: &[Complex64]) -> Vec<(u64, u64)> {
    v.iter()
        .map(|c| (c.re.to_bits(), c.im.to_bits()))
        .collect()
}

#[test]
fn thread_split_is_bitwise_invisible() {
    // Rows/lengths chosen to exercise uneven chunking (rows not a
    // multiple of the worker count) and both engine sizes.
    for (rows, m) in [(64usize, 128usize), (33, 64), (7, 256)] {
        let data = TestRng::seed_from_u64(0xBA7C4).complex_vec(rows * m);
        let mut reference = data.clone();
        BatchFft::new(m, Direction::Forward, 1).execute(&mut reference);
        let want = bits(&reference);
        for threads in [2usize, 4, 16] {
            let mut buf = data.clone();
            BatchFft::new(m, Direction::Forward, threads).execute(&mut buf);
            assert_eq!(
                bits(&buf),
                want,
                "threads={threads} rows={rows} m={m} drifted from serial"
            );
        }
    }
}

#[test]
fn thread_split_is_bitwise_invisible_inverse() {
    let (rows, m) = (24usize, 96usize);
    let data = TestRng::seed_from_u64(0x1A7E).complex_vec(rows * m);
    let mut reference = data.clone();
    BatchFft::new(m, Direction::Inverse, 1).execute(&mut reference);
    for threads in [2usize, 4] {
        let mut buf = data.clone();
        BatchFft::new(m, Direction::Inverse, threads).execute(&mut buf);
        assert_eq!(bits(&buf), bits(&reference), "threads={threads}");
    }
}

#[test]
fn f32_batch_is_also_scheduling_independent() {
    // The executor is generic over the real type; check the f32 path too.
    let (rows, m) = (16usize, 32usize);
    let mut rng = TestRng::seed_from_u64(99);
    let data: Vec<soi_num::Complex<f32>> = (0..rows * m)
        .map(|_| {
            soi_num::Complex::new(
                rng.f64_in(-1.0..1.0) as f32,
                rng.f64_in(-1.0..1.0) as f32,
            )
        })
        .collect();
    let mut serial = data.clone();
    BatchFft::<f32>::new(m, Direction::Forward, 1).execute(&mut serial);
    let mut threaded = data;
    BatchFft::<f32>::new(m, Direction::Forward, 4).execute(&mut threaded);
    let as_bits = |v: &[soi_num::Complex<f32>]| {
        v.iter()
            .map(|c| (c.re.to_f64().to_bits(), c.im.to_f64().to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(as_bits(&serial), as_bits(&threaded));
}
