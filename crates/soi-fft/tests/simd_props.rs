//! Property tests for the SIMD butterfly kernels.
//!
//! Two contracts, per DESIGN.md §13:
//!
//! 1. **SIMD-vs-portable agreement within ulp bounds.** FMA contracts
//!    `a·b±c` into one rounding, so the vector butterflies cannot be
//!    bitwise-equal to the portable ones; they must instead agree to a
//!    tolerance that scales like the FFT's own rounding growth,
//!    `O(ε·‖x‖·log₂ n)`. Sizes cover radix-5 tails, odd-`m` levels
//!    (non-multiple-of-lane remainders), the radix-8 first stage, and
//!    both directions.
//! 2. **Bitwise run-to-run reproducibility.** Every dispatched engine,
//!    executed twice on the same input (and via independently constructed
//!    plans), must produce bit-identical output — dispatch is decided at
//!    construction from CPU features alone, never per-run.
//!
//! The `with_simd` constructors deliberately ignore `SOI_NO_SIMD`, so
//! both paths can be pitted against each other in one process; on
//! non-AVX2 hosts the "SIMD" plan silently is the portable one and the
//! comparisons become trivial identities (still a valid run).

use soi_fft::fourstep::{FourStepFft, RawFft};
use soi_fft::mixed::MixedRadixFft;
use soi_fft::stockham::StockhamFft;
use soi_fft::twiddle::Sign;
use soi_fft::{Plan, Planner};
use soi_num::Complex64;
use soi_testkit::TestRng;

/// Max |simd − portable| normalized by ε·‖x‖₂·(log₂ n + 1): both paths
/// accumulate rounding like the FFT itself, so their difference does too.
fn ulp_gap(simd: &[Complex64], portable: &[Complex64], input: &[Complex64]) -> f64 {
    let norm: f64 = input.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
    let lg = (input.len().max(2) as f64).log2() + 1.0;
    let scale = f64::EPSILON * norm.max(1.0) * lg;
    simd.iter()
        .zip(portable)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max)
        / scale
}

/// Generous multiple of the normalized gap; observed gaps sit well below
/// 1, so 8 catches real divergence (wrong twiddle, lane swap) while
/// tolerating FMA rounding differences.
const TOL: f64 = 8.0;

fn signal(rng: &mut TestRng, n: usize) -> Vec<Complex64> {
    rng.complex_vec(n)
}

#[test]
fn stockham_simd_matches_portable_within_ulps() {
    let mut rng = TestRng::seed_from_u64(0x5705);
    for &n in &[16usize, 64, 256, 1024, 4096, 16384] {
        for sign in [Sign::Forward, Sign::Inverse] {
            let x = signal(&mut rng, n);
            let simd = StockhamFft::with_simd(n, sign, true);
            let portable = StockhamFft::with_simd(n, sign, false);
            let mut a = x.clone();
            simd.execute(&mut a);
            let mut b = x.clone();
            portable.execute(&mut b);
            let gap = ulp_gap(&a, &b, &x);
            assert!(gap < TOL, "stockham n={n} {sign:?}: gap {gap}");
        }
    }
}

#[test]
fn mixed_radix_simd_matches_portable_within_ulps() {
    let mut rng = TestRng::seed_from_u64(0x3141);
    // Covers: radix-5 with odd m (5·5=25, 175=5²·7), the m==1 radix-4
    // leaf (pure 4^k and 2^k·5 shapes), odd-m radix-4 levels (e.g. 20 =
    // 4·5 → r5 level m=4, r4 level m=... and 12 = 4·3), scalar radix-3/7
    // levels mixed in with vector levels, and both directions.
    for &n in &[5usize, 10, 12, 20, 25, 40, 80, 160, 175, 320, 1280, 2560] {
        for sign in [Sign::Forward, Sign::Inverse] {
            let x = signal(&mut rng, n);
            let simd = MixedRadixFft::with_simd(n, sign, true);
            let portable = MixedRadixFft::with_simd(n, sign, false);
            let mut a = x.clone();
            simd.execute(&mut a);
            let mut b = x.clone();
            portable.execute(&mut b);
            let gap = ulp_gap(&a, &b, &x);
            assert!(gap < TOL, "mixed n={n} {sign:?}: gap {gap}");
        }
    }
}

#[test]
fn four_step_simd_matches_portable_within_ulps() {
    let mut rng = TestRng::seed_from_u64(0xF0F0);
    for &n in &[1024usize, 2560, 40960, 163840] {
        for sign in [Sign::Forward, Sign::Inverse] {
            let x = signal(&mut rng, n);
            let simd = FourStepFft::with_simd(n, sign, true);
            let portable = FourStepFft::with_simd(n, sign, false);
            let mut a = x.clone();
            simd.execute(&mut a);
            let mut b = x.clone();
            portable.execute(&mut b);
            let gap = ulp_gap(&a, &b, &x);
            assert!(gap < TOL, "four-step n={n} {sign:?}: gap {gap}");
        }
    }
}

#[test]
fn simd_weighted_epilogue_stays_bitwise_on_random_shapes() {
    // The fused weighted write must be bitwise-identical to the scalar
    // multiply loop for arbitrary (including odd) projection lengths —
    // this is the exact-rounding cmul contract, not an ulp bound.
    let mut rng = TestRng::seed_from_u64(0xBEEF);
    for &n in &[64usize, 160, 1024, 2560] {
        let x = signal(&mut rng, n);
        for &frac in &[1usize, 3, 5] {
            let m = (n * frac / 5).max(1) - (frac % 2); // odd-ish lengths
            let weights = signal(&mut rng, m);
            let plan = StockhamFft::with_simd(n.next_power_of_two(), Sign::Forward, true);
            let n2 = plan.len();
            let mut data: Vec<Complex64> = x.iter().cloned().cycle().take(n2).collect();
            let mut scratch = vec![Complex64::ZERO; n2];
            let mut data2 = data.clone();
            let mut scratch2 = vec![Complex64::ZERO; n2];
            plan.execute_with_scratch(&mut data2, &mut scratch2);
            let m = m.min(n2);
            let want: Vec<Complex64> = (0..m).map(|k| data2[k] * weights[k]).collect();
            let mut out = vec![Complex64::ZERO; m];
            plan.execute_fused_into(&mut data, &mut scratch, &mut out, &weights);
            for k in 0..m {
                assert_eq!(out[k].re.to_bits(), want[k].re.to_bits(), "n={n2} m={m} k={k}");
                assert_eq!(out[k].im.to_bits(), want[k].im.to_bits(), "n={n2} m={m} k={k}");
            }
        }
    }
}

#[test]
fn every_dispatched_engine_is_bitwise_reproducible_run_to_run() {
    // Two executes of one plan AND two independently constructed plans
    // must agree bit-for-bit: dispatch is a pure function of the host,
    // so rebuilding a plan cannot change the arithmetic.
    let mut rng = TestRng::seed_from_u64(0xD15C);
    let sizes: &[usize] = &[256, 320, 1280, 40960, 65536, 163840, 997];
    for &n in sizes {
        let x = signal(&mut rng, n);
        let planner: Planner<f64> = Planner::new();
        let plan = planner.forward(n);
        let again = Plan::<f64>::forward(n);
        let mut runs: Vec<Vec<Complex64>> = Vec::new();
        for p in [&*plan, &again, &*plan] {
            let mut d = x.clone();
            p.execute(&mut d);
            runs.push(d);
        }
        for r in &runs[1..] {
            for (k, (a, b)) in runs[0].iter().zip(r).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{} n={n} bin {k}", plan.engine_name());
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{} n={n} bin {k}", plan.engine_name());
            }
        }
    }
}

#[test]
fn raw_engines_bitwise_reproducible_including_simd_streams() {
    let mut rng = TestRng::seed_from_u64(0xAB1E);
    for &n in &[64usize, 320, 2048, 40960] {
        for sign in [Sign::Forward, Sign::Inverse] {
            let x = signal(&mut rng, n);
            let e1 = RawFft::<f64>::new(n, sign);
            let e2 = RawFft::<f64>::new(n, sign);
            let mut a = x.clone();
            e1.execute(&mut a);
            let mut b = x.clone();
            e2.execute(&mut b);
            let mut c = x.clone();
            e1.execute(&mut c);
            for k in 0..n {
                assert_eq!(a[k].re.to_bits(), b[k].re.to_bits(), "n={n} bin {k}");
                assert_eq!(a[k].re.to_bits(), c[k].re.to_bits(), "n={n} bin {k}");
                assert_eq!(a[k].im.to_bits(), b[k].im.to_bits(), "n={n} bin {k}");
                assert_eq!(a[k].im.to_bits(), c[k].im.to_bits(), "n={n} bin {k}");
            }
        }
    }
}

#[test]
fn dispatch_report_matches_simd_request() {
    // with_simd(true) on capable hardware reports Avx2Fma stages;
    // with_simd(false) always reports all-Portable.
    use soi_fft::codelet::Dispatch;
    let portable = StockhamFft::<f64>::with_simd(1024, Sign::Forward, false);
    assert!(portable
        .codelet_dispatch()
        .iter()
        .all(|&(_, d)| d == Dispatch::Portable));
    let maybe_simd = StockhamFft::<f64>::with_simd(1024, Sign::Forward, true);
    let expect_simd = soi_fft::simd::cpu_supported();
    assert!(maybe_simd
        .codelet_dispatch()
        .iter()
        .all(|&(_, d)| d.is_simd() == expect_simd));
    // Mixed: a radix-7 level stays portable even under SIMD dispatch.
    let m = MixedRadixFft::<f64>::with_simd(280, Sign::Forward, true);
    let cd = m.codelet_dispatch();
    assert!(
        cd.iter()
            .any(|&(c, d)| c == soi_fft::codelet::Codelet::Radix7 && d == Dispatch::Portable),
        "{cd:?}"
    );
}
