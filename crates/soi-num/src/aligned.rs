//! Cache-line-aligned owned buffers for SIMD-heavy hot paths.
//!
//! `Vec<Complex64>` gives no alignment beyond 16 bytes, and glibc serves
//! every large (mmap-threshold) allocation at exactly 16 bytes past a
//! page boundary — so big transform buffers systematically land at
//! `addr % 32 == 16`, where **half of all 32-byte AVX2 loads straddle a
//! cache line**. Measured on the kernel bench this costs ~25% on the
//! memory-bound engines (Bluestein at n=4093: 25.2 ns/pt with a
//! 32-byte-aligned scratch vs 31.5–33.4 at a 16-byte offset), and it
//! made committed baselines depend on allocator luck.
//!
//! [`AlignedBuf`] is a plain owned `[T]` whose storage is 64-byte
//! aligned (cache line, and enough for AVX-512 later). It derefs to a
//! slice, so call sites that previously held a `Vec` keep compiling:
//! indexing, `split_at_mut`, `copy_from_slice`, and `&mut buf → &mut
//! [T]` coercions all go through `Deref`/`DerefMut`. The SIMD kernels
//! keep using unaligned loads (`loadu`) — alignment here is a
//! performance contract, never a safety requirement, so arbitrary
//! caller slices remain valid inputs everywhere.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// One cache line of raw storage; the `align(64)` is the entire point.
#[derive(Clone, Copy)]
#[repr(C, align(64))]
struct Line([u8; 64]);

/// An owned, 64-byte-aligned `[T]` for `Copy` element types.
///
/// Construction fills every element (no uninitialized reads), and the
/// `T: Copy` constructor bound means dropping the raw storage never
/// skips a destructor. (The bound sits on the constructors, not the
/// struct, so generic holders like `FourStepFft<T>` need no extra
/// bounds on their own definitions.)
pub struct AlignedBuf<T> {
    storage: Vec<Line>,
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: Copy> AlignedBuf<T> {
    /// A buffer of `len` copies of `value`.
    pub fn filled(len: usize, value: T) -> Self {
        assert!(
            std::mem::align_of::<T>() <= 64,
            "element alignment exceeds the 64-byte line"
        );
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("aligned buffer size overflows usize");
        let mut storage = vec![Line([0u8; 64]); bytes.div_ceil(64)];
        let base = storage.as_mut_ptr() as *mut T;
        for i in 0..len {
            // SAFETY: `storage` owns `len * size_of::<T>()` bytes starting
            // at `base`, `base` is 64-byte (≥ align_of::<T>()) aligned, and
            // `T: Copy` so overwriting the zeroed bytes needs no drop.
            unsafe { base.add(i).write(value) };
        }
        Self {
            storage,
            len,
            _elem: PhantomData,
        }
    }

    /// A buffer of `len` default elements (`Complex::ZERO` for complex).
    pub fn zeroed(len: usize) -> Self
    where
        T: Default,
    {
        Self::filled(len, T::default())
    }

    /// An aligned copy of `src`.
    pub fn from_slice(src: &[T]) -> Self
    where
        T: Default,
    {
        let mut buf = Self::zeroed(src.len());
        buf.copy_from_slice(src);
        buf
    }
}

impl<T> Deref for AlignedBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: construction initialized `len` elements at the start of
        // `storage`, which outlives the borrow.
        unsafe { std::slice::from_raw_parts(self.storage.as_ptr() as *const T, self.len) }
    }
}

impl<T> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as `deref`, and the `&mut self` borrow is exclusive.
        unsafe { std::slice::from_raw_parts_mut(self.storage.as_mut_ptr() as *mut T, self.len) }
    }
}

impl<T: fmt::Debug> fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("data", &&self[..self.len.min(4)])
            .finish()
    }
}

impl<T> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        Self {
            storage: self.storage.clone(),
            len: self.len,
            _elem: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, Complex64};

    #[test]
    fn storage_is_cache_line_aligned() {
        // Cover sizes on both sides of the glibc mmap threshold — the
        // small ones exercise the arena allocator, the large ones the
        // mmap path that hands plain Vec a misaligned 16-byte offset.
        for len in [1usize, 7, 100, 4096, 163840] {
            let buf = AlignedBuf::<Complex64>::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % 64, 0, "len={len}");
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|c| c.re == 0.0 && c.im == 0.0));
        }
    }

    #[test]
    fn behaves_like_a_slice() {
        let mut buf = AlignedBuf::<f64>::filled(8, 1.5);
        assert_eq!(buf[3], 1.5);
        buf[3] = 2.5;
        assert_eq!(buf[3], 2.5);
        let (a, b) = buf.split_at_mut(4);
        a.copy_from_slice(&[0.0; 4]);
        b[0] = 9.0;
        assert_eq!(&buf[2..6], &[0.0, 0.0, 9.0, 1.5]);
    }

    #[test]
    fn from_slice_round_trips() {
        let src: Vec<Complex64> = (0..33).map(|i| c64(i as f64, -(i as f64))).collect();
        let buf = AlignedBuf::from_slice(&src);
        assert_eq!(&buf[..], &src[..]);
        let cloned = buf.clone();
        assert_eq!(cloned.as_ptr() as usize % 64, 0);
        assert_eq!(&cloned[..], &src[..]);
    }
}
