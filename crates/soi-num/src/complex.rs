//! Minimal complex arithmetic.
//!
//! `Complex<T>` is `#[repr(C)]` with interleaved `(re, im)` layout — the
//! layout every FFT kernel in this workspace assumes, and the same layout
//! as C99 `complex`, FFTW, and MKL, so buffers could be shared with foreign
//! code.

use crate::real::Real;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with interleaved real/imaginary parts.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex.
pub type Complex32 = Complex<f32>;
/// Double-precision complex.
pub type Complex64 = Complex<f64>;

/// Shorthand constructor for [`Complex64`].
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex { re, im }
}

/// Shorthand constructor for [`Complex32`].
#[inline(always)]
pub const fn c32(re: f32, im: f32) -> Complex32 {
    Complex { re, im }
}

impl<T: Real> Complex<T> {
    /// Zero.
    pub const ZERO: Self = Self {
        re: T::ZERO,
        im: T::ZERO,
    };
    /// One.
    pub const ONE: Self = Self {
        re: T::ONE,
        im: T::ZERO,
    };
    /// The imaginary unit.
    pub const I: Self = Self {
        re: T::ZERO,
        im: T::ONE,
    };

    /// Construct from parts.
    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// `exp(i·theta) = cos(theta) + i·sin(theta)`.
    #[inline]
    pub fn cis(theta: T) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// The DFT root `exp(-2πi·k/n)` computed with a single `sin_cos`.
    ///
    /// This is the twiddle-factor convention used throughout the workspace
    /// (forward DFT has a negative exponent, matching the paper).
    #[inline]
    pub fn root_of_unity(k: usize, n: usize) -> Self {
        // Reduce k mod n first so the angle stays small and accurate.
        let k = k % n;
        let theta = -T::TWO * T::PI * T::from_usize(k) / T::from_usize(n);
        Self::cis(theta)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiply by the imaginary unit (a rotation by +90°, no multiplies).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiply by −i (a rotation by −90°, no multiplies).
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Self {
            re: self.im,
            im: -self.re,
        }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, k: T) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Reciprocal.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Multiply-accumulate `self * b + acc`.
    ///
    /// Deliberately written with plain mul/add rather than `f64::mul_add`:
    /// on targets without the FMA feature enabled (the x86-64 default),
    /// `mul_add` lowers to a *software* fma call that is orders of
    /// magnitude slower — with `-C target-cpu=native` LLVM still contracts
    /// these into hardware FMAs where profitable.
    #[inline(always)]
    pub fn mul_add(self, b: Self, acc: Self) -> Self {
        Self {
            re: acc.re + self.re * b.re - self.im * b.im,
            im: acc.im + self.re * b.im + self.im * b.re,
        }
    }

    /// Lossless widening of both parts to `f64`.
    #[inline]
    pub fn to_c64(self) -> Complex64 {
        Complex {
            re: self.re.to_f64(),
            im: self.im.to_f64(),
        }
    }

    /// Narrowing from `f64` parts.
    #[inline]
    pub fn from_c64(v: Complex64) -> Self {
        Complex {
            re: T::from_f64(v.re),
            im: T::from_f64(v.im),
        }
    }

    /// True if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Real> Div<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: T) -> Self {
        Self {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> DivAssign for Complex<T> {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<T: Real> From<T> for Complex<T> {
    #[inline]
    fn from(re: T) -> Self {
        Self { re, im: T::ZERO }
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display + Real> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im.to_f64())
    }
}

/// Maximum elementwise absolute difference between two complex slices.
pub fn max_abs_diff<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs().to_f64())
        .fold(0.0, f64::max)
}

/// Relative L2 error `‖a − b‖₂ / ‖b‖₂` (b is the reference).
pub fn rel_l2_error<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - y).norm_sqr().to_f64();
        den += y.norm_sqr().to_f64();
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -4.0);
        assert_eq!(a + b, c64(4.0, -2.0));
        assert_eq!(a - b, c64(-2.0, 6.0));
        assert_eq!(a * b, c64(11.0, 2.0));
        let q = (a / b) * b;
        assert!((q - a).abs() < 1e-14);
    }

    #[test]
    fn conj_and_norm() {
        let a = c64(3.0, 4.0);
        assert_eq!(a.conj(), c64(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn mul_i_is_rotation() {
        let a = c64(1.0, 0.0);
        assert_eq!(a.mul_i(), c64(0.0, 1.0));
        assert_eq!(a.mul_i().mul_i(), c64(-1.0, 0.0));
        assert_eq!(a.mul_neg_i(), c64(0.0, -1.0));
        let b = c64(2.5, -7.0);
        assert_eq!(b.mul_i(), b * Complex64::I);
    }

    #[test]
    fn roots_of_unity_cycle() {
        let n = 16;
        let w = Complex64::root_of_unity(1, n);
        let mut p = Complex64::ONE;
        for _ in 0..n {
            p = p * w;
        }
        assert!((p - Complex64::ONE).abs() < 1e-14);
    }

    #[test]
    fn root_of_unity_reduces_modulo_n() {
        let a = Complex64::root_of_unity(3, 8);
        let b = Complex64::root_of_unity(3 + 8 * 1000, 8);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let a = c64(1.25, -0.5);
        let b = c64(-2.0, 3.5);
        let acc = c64(0.1, 0.2);
        let got = a.mul_add(b, acc);
        let want = a * b + acc;
        assert!((got - want).abs() < 1e-14);
    }

    #[test]
    fn error_metrics() {
        let a = [c64(1.0, 0.0), c64(0.0, 1.0)];
        let b = [c64(1.0, 0.0), c64(0.0, 1.0)];
        assert_eq!(max_abs_diff(&a, &b), 0.0);
        assert_eq!(rel_l2_error(&a, &b), 0.0);
        let c = [c64(1.0, 0.0), c64(0.0, 2.0)];
        assert!(max_abs_diff(&a, &c) == 1.0);
        assert!(rel_l2_error(&c, &a) > 0.0);
    }

    #[test]
    fn f32_roundtrip() {
        let a = c32(1.5, -2.5);
        let w = a.to_c64();
        assert_eq!(w, c64(1.5, -2.5));
        assert_eq!(Complex32::from_c64(w), a);
    }
}
