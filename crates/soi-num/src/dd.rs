//! Double-double ("dd") arithmetic: an unevaluated sum of two `f64`s giving
//! roughly 31 significant decimal digits.
//!
//! Why it exists here: the paper reports SOI's signal-to-noise ratio as
//! ≈290 dB versus ≈310 dB for standard double-precision FFTs (§7.2).
//! Certifying numbers that close to the f64 noise floor requires a
//! reference transform computed with substantially more precision than f64;
//! `soi-fft` builds a radix-2 reference FFT on top of this type.
//!
//! The algorithms are the classical error-free transformations (Dekker,
//! Knuth, Bailey/Hida/Li QD library): `two_sum`, `quick_two_sum`, and an
//! FMA-based `two_prod`.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Error-free sum: returns `(s, e)` with `s = fl(a+b)` and `a+b = s+e` exactly.
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free sum assuming `|a| >= |b|` (cheaper than [`two_sum`]).
#[inline(always)]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Error-free product via FMA: `a*b = p + e` exactly.
#[inline(always)]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

/// A double-double number `hi + lo` with `|lo| <= ulp(hi)/2`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing correction.
    pub lo: f64,
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };
    /// π to ~32 digits.
    pub const PI: Dd = Dd {
        hi: 3.141592653589793116e0,
        lo: 1.224646799147353207e-16,
    };
    /// 2π to ~32 digits.
    pub const TWO_PI: Dd = Dd {
        hi: 6.283185307179586232e0,
        lo: 2.449293598294706414e-16,
    };
    /// π/2 to ~32 digits.
    pub const FRAC_PI_2: Dd = Dd {
        hi: 1.570796326794896558e0,
        lo: 6.123233995736766036e-17,
    };

    /// Construct from an exact `f64`.
    #[inline(always)]
    pub fn from_f64(v: f64) -> Dd {
        Dd { hi: v, lo: 0.0 }
    }

    /// Construct from (already normalized) parts.
    #[inline(always)]
    pub fn new(hi: f64, lo: f64) -> Dd {
        let (s, e) = quick_two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    /// Round to nearest `f64`.
    #[inline(always)]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Exact ratio of two integers (each exactly representable in f64).
    pub fn from_ratio(num: i64, den: i64) -> Dd {
        Dd::from_f64(num as f64) / Dd::from_f64(den as f64)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }

    /// Multiply by an exact power of two (error-free).
    #[inline]
    pub fn mul_pow2(self, k: f64) -> Dd {
        debug_assert!(k.abs().log2().fract() == 0.0, "k must be a power of two");
        Dd {
            hi: self.hi * k,
            lo: self.lo * k,
        }
    }

    /// Square root via one Newton step on the f64 estimate (Karp's trick).
    pub fn sqrt(self) -> Dd {
        if self.hi == 0.0 && self.lo == 0.0 {
            return Dd::ZERO;
        }
        assert!(self.hi > 0.0, "sqrt of negative dd");
        let x = 1.0 / self.hi.sqrt();
        let ax = self.hi * x;
        let ax_dd = Dd::from_f64(ax);
        let err = (self - ax_dd * ax_dd).hi;
        ax_dd + Dd::from_f64(err * (x * 0.5))
    }

    /// Nearest integer (as Dd); exact for values below 2^52.
    pub fn round(self) -> Dd {
        let r = self.hi.round();
        if (self.hi - r).abs() == 0.5 {
            // The low word decides which side of the tie we are on.
            if self.lo > 0.0 && r < self.hi {
                return Dd::from_f64(r + 1.0);
            }
            if self.lo < 0.0 && r > self.hi {
                return Dd::from_f64(r - 1.0);
            }
        }
        Dd::from_f64(r)
    }

    /// Sine, full dd accuracy for |self| ≲ a few thousand.
    pub fn sin(self) -> Dd {
        let (s, _) = self.sin_cos();
        s
    }

    /// Cosine, full dd accuracy for |self| ≲ a few thousand.
    pub fn cos(self) -> Dd {
        let (_, c) = self.sin_cos();
        c
    }

    /// Simultaneous sine and cosine with π/2 range reduction.
    pub fn sin_cos(self) -> (Dd, Dd) {
        // q = round(x / (π/2)); r = x − q·π/2 ∈ [−π/4, π/4].
        let q = (self / Dd::FRAC_PI_2).round();
        let r = self - q * Dd::FRAC_PI_2;
        let (sr, cr) = sin_cos_taylor(r);
        // Map the quadrant back.
        let qm = ((q.to_f64() as i64) % 4 + 4) % 4;
        match qm {
            0 => (sr, cr),
            1 => (cr, -sr),
            2 => (-sr, -cr),
            _ => (-cr, sr),
        }
    }
}

/// Taylor-series sin and cos for |x| ≤ π/4 (terms to ~1e-35).
fn sin_cos_taylor(x: Dd) -> (Dd, Dd) {
    let x2 = x * x;
    // sin
    let mut term = x;
    let mut sin = x;
    let mut k = 1i64;
    loop {
        term = term * x2 / Dd::from_f64(((2 * k) * (2 * k + 1)) as f64);
        term = -term;
        sin += term;
        if term.hi.abs() < 1e-36 || k > 30 {
            break;
        }
        k += 1;
    }
    // cos
    let mut term = Dd::ONE;
    let mut cos = Dd::ONE;
    let mut k = 1i64;
    loop {
        term = term * x2 / Dd::from_f64(((2 * k - 1) * (2 * k)) as f64);
        term = -term;
        cos += term;
        if term.hi.abs() < 1e-36 || k > 30 {
            break;
        }
        k += 1;
    }
    (sin, cos)
}

impl Add for Dd {
    type Output = Dd;
    #[inline]
    fn add(self, rhs: Dd) -> Dd {
        let (s1, s2) = two_sum(self.hi, rhs.hi);
        let (t1, t2) = two_sum(self.lo, rhs.lo);
        let (s1, s2b) = quick_two_sum(s1, s2 + t1);
        let (hi, lo) = quick_two_sum(s1, s2b + t2);
        Dd { hi, lo }
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, rhs: Dd) -> Dd {
        self + (-rhs)
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline(always)]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

impl Mul for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, rhs: Dd) -> Dd {
        let (p1, p2) = two_prod(self.hi, rhs.hi);
        let p2 = p2 + self.hi * rhs.lo + self.lo * rhs.hi;
        let (hi, lo) = quick_two_sum(p1, p2);
        Dd { hi, lo }
    }
}

impl Div for Dd {
    type Output = Dd;
    #[inline]
    fn div(self, rhs: Dd) -> Dd {
        // Long division with two correction steps.
        let q1 = self.hi / rhs.hi;
        let r = self - rhs * Dd::from_f64(q1);
        let q2 = r.hi / rhs.hi;
        let r = r - rhs * Dd::from_f64(q2);
        let q3 = r.hi / rhs.hi;
        let (hi, lo) = quick_two_sum(q1, q2);
        Dd { hi, lo } + Dd::from_f64(q3)
    }
}

impl AddAssign for Dd {
    #[inline]
    fn add_assign(&mut self, rhs: Dd) {
        *self = *self + rhs;
    }
}
impl SubAssign for Dd {
    #[inline]
    fn sub_assign(&mut self, rhs: Dd) {
        *self = *self - rhs;
    }
}
impl MulAssign for Dd {
    #[inline]
    fn mul_assign(&mut self, rhs: Dd) {
        *self = *self * rhs;
    }
}
impl DivAssign for Dd {
    #[inline]
    fn div_assign(&mut self, rhs: Dd) {
        *self = *self / rhs;
    }
}

impl PartialEq for Dd {
    fn eq(&self, other: &Dd) -> bool {
        self.hi == other.hi && self.lo == other.lo
    }
}

impl PartialOrd for Dd {
    fn partial_cmp(&self, other: &Dd) -> Option<Ordering> {
        match self.hi.partial_cmp(&other.hi) {
            Some(Ordering::Equal) => self.lo.partial_cmp(&other.lo),
            ord => ord,
        }
    }
}

impl fmt::Display for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:e}{:+e}", self.hi, self.lo)
    }
}

/// A complex number with double-double components.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DdComplex {
    /// Real part.
    pub re: Dd,
    /// Imaginary part.
    pub im: Dd,
}

impl DdComplex {
    /// Zero.
    pub const ZERO: DdComplex = DdComplex {
        re: Dd::ZERO,
        im: Dd::ZERO,
    };

    /// Construct from parts.
    #[inline]
    pub fn new(re: Dd, im: Dd) -> DdComplex {
        DdComplex { re, im }
    }

    /// Widen an f64 complex pair.
    #[inline]
    pub fn from_f64(re: f64, im: f64) -> DdComplex {
        DdComplex {
            re: Dd::from_f64(re),
            im: Dd::from_f64(im),
        }
    }

    /// Round both parts to f64.
    #[inline]
    pub fn to_f64(self) -> (f64, f64) {
        (self.re.to_f64(), self.im.to_f64())
    }

    /// `exp(iθ)` at dd accuracy.
    pub fn cis(theta: Dd) -> DdComplex {
        let (s, c) = theta.sin_cos();
        DdComplex { re: c, im: s }
    }

    /// The DFT root `exp(−2πi k/n)` at dd accuracy.
    pub fn root_of_unity(k: usize, n: usize) -> DdComplex {
        let k = (k % n) as i64;
        let theta = -(Dd::TWO_PI * Dd::from_f64(k as f64) / Dd::from_f64(n as f64));
        DdComplex::cis(theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> DdComplex {
        DdComplex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for DdComplex {
    type Output = DdComplex;
    #[inline]
    fn add(self, rhs: DdComplex) -> DdComplex {
        DdComplex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for DdComplex {
    type Output = DdComplex;
    #[inline]
    fn sub(self, rhs: DdComplex) -> DdComplex {
        DdComplex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for DdComplex {
    type Output = DdComplex;
    #[inline]
    fn mul(self, rhs: DdComplex) -> DdComplex {
        DdComplex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl AddAssign for DdComplex {
    #[inline]
    fn add_assign(&mut self, rhs: DdComplex) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_error_free() {
        let (s, e) = two_sum(1e16, 1.0);
        assert_eq!(s, 1e16); // 1.0 is absorbed...
        assert_eq!(e, 1.0); // ...but recovered exactly in e.
    }

    #[test]
    fn two_prod_is_error_free() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 + 2.0 * f64::EPSILON;
        let (p, e) = two_prod(a, b);
        // a*b = 1 + 3eps + 2eps^2; p misses the 2eps^2 term.
        assert_eq!(p, 1.0 + 3.0 * f64::EPSILON);
        assert_eq!(e, 2.0 * f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn dd_add_keeps_tiny_contributions() {
        let a = Dd::from_f64(1.0);
        let b = Dd::from_f64(1e-25);
        let c = a + b - a;
        assert!((c.to_f64() - 1e-25).abs() < 1e-40);
    }

    #[test]
    fn dd_mul_div_roundtrip() {
        let a = Dd::from_ratio(1, 3);
        let b = a * Dd::from_f64(3.0);
        assert!((b - Dd::ONE).abs().hi < 1e-31);
        let c = Dd::ONE / a;
        assert!((c - Dd::from_f64(3.0)).abs().hi < 1e-30);
    }

    #[test]
    fn dd_pi_identity() {
        // sin(π) should be ~1e-32, not ~1e-16.
        let s = Dd::PI.sin();
        assert!(s.hi.abs() < 1e-31, "sin(pi) = {}", s);
        let c = Dd::PI.cos();
        assert!((c + Dd::ONE).abs().hi < 1e-31, "cos(pi) = {}", c);
    }

    #[test]
    fn dd_sin_cos_pythagorean() {
        for i in 0..100 {
            let x = Dd::from_f64(i as f64 * 0.37 - 18.0);
            let (s, c) = x.sin_cos();
            let one = s * s + c * c;
            assert!(
                (one - Dd::ONE).abs().hi < 1e-30,
                "s²+c² != 1 at i={i}: {}",
                one
            );
        }
    }

    #[test]
    fn dd_sin_matches_f64_to_f64_accuracy() {
        for i in 1..50 {
            let x = i as f64 * 0.13;
            let got = Dd::from_f64(x).sin().to_f64();
            assert!(
                (got - x.sin()).abs() <= 4.0 * f64::EPSILON,
                "sin({x}): dd {got} vs f64 {}",
                x.sin()
            );
        }
    }

    #[test]
    fn dd_sqrt() {
        let two = Dd::from_f64(2.0);
        let r = two.sqrt();
        let back = r * r;
        assert!((back - two).abs().hi < 1e-31);
        assert_eq!(Dd::ZERO.sqrt(), Dd::ZERO);
    }

    #[test]
    fn dd_round() {
        assert_eq!(Dd::from_f64(2.4).round().to_f64(), 2.0);
        assert_eq!(Dd::from_f64(-2.6).round().to_f64(), -3.0);
        // Tie broken by the low word.
        let just_above_half = Dd::new(0.5, 1e-20);
        assert_eq!(just_above_half.round().to_f64(), 1.0);
    }

    #[test]
    fn ddcomplex_roots_of_unity_better_than_f64() {
        // The n-th power of the primitive root must return to 1 with dd
        // accuracy.
        let n = 1024;
        let w = DdComplex::root_of_unity(1, n);
        let mut p = DdComplex::new(Dd::ONE, Dd::ZERO);
        for _ in 0..n {
            p = p * w;
        }
        assert!((p.re - Dd::ONE).abs().hi < 1e-27);
        assert!(p.im.abs().hi < 1e-27);
    }

    #[test]
    fn dd_ordering() {
        assert!(Dd::from_f64(1.0) < Dd::from_f64(2.0));
        assert!(Dd::new(1.0, 1e-20) > Dd::from_f64(1.0));
        assert_eq!(Dd::from_f64(1.5), Dd::from_f64(1.5));
    }
}
