//! Compensated summation.
//!
//! The SOI error analysis (§4) bounds the total error by
//! `O(κ(ε_fft + ε_alias + ε_trunc))`; sloppy reductions in the harness
//! would mask exactly the effects we are trying to measure, so all
//! accuracy-critical accumulations (naive DFTs, SNR computations,
//! quadrature) use Neumaier's improved Kahan summation.

use crate::complex::Complex;
use crate::real::Real;

/// A Neumaier (improved Kahan) compensated accumulator for real values.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.compensation += (self.sum - t) + v;
        } else {
            self.compensation += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for KahanSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Compensated sum of an iterator of `f64`.
pub fn kahan_sum<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    iter.into_iter().collect::<KahanSum>().value()
}

/// A compensated accumulator for complex values (component-wise Neumaier).
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanComplexSum {
    re: KahanSum,
    im: KahanSum,
}

impl KahanComplexSum {
    /// New empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a complex value (any [`Real`] component type; accumulates in f64).
    #[inline]
    pub fn add<T: Real>(&mut self, v: Complex<T>) {
        self.re.add(v.re.to_f64());
        self.im.add(v.im.to_f64());
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> Complex<f64> {
        Complex {
            re: self.re.value(),
            im: self.im.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn kahan_beats_naive_on_ill_conditioned_sum() {
        // 1 + 1e16 - 1e16 repeated: naive summation loses the ones.
        let mut k = KahanSum::new();
        let mut naive = 0.0f64;
        for _ in 0..1000 {
            for v in [1.0, 1e16, -1e16] {
                k.add(v);
                naive += v;
            }
        }
        assert_eq!(k.value(), 1000.0);
        // The naive sum genuinely fails here, which is why we need Kahan.
        assert_ne!(naive, 1000.0);
    }

    #[test]
    fn kahan_matches_exact_on_small_ints() {
        let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(kahan_sum(vals), 5050.0);
    }

    #[test]
    fn complex_accumulator() {
        let mut k = KahanComplexSum::new();
        for i in 0..10 {
            k.add(c64(i as f64, -(i as f64)));
        }
        assert_eq!(k.value(), c64(45.0, -45.0));
    }

    #[test]
    fn from_iterator() {
        let s: KahanSum = [0.1f64; 10].into_iter().collect();
        assert!((s.value() - 1.0).abs() < 1e-16);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
        assert_eq!(kahan_sum(std::iter::empty()), 0.0);
    }
}
