//! Numeric substrate for the SOI FFT reproduction.
//!
//! This crate provides everything numerical the rest of the workspace needs
//! without pulling in external math crates:
//!
//! * [`Complex`] — a minimal, `#[repr(C)]`, cache-friendly complex type
//!   generic over [`Real`] (`f32`/`f64`).
//! * [`AlignedBuf`] — a 64-byte-aligned owned `[T]` for transform
//!   buffers; plain `Vec` lands at a 16-byte offset for large
//!   allocations, which makes half of all 32-byte SIMD loads straddle
//!   cache lines (~25% on memory-bound kernels).
//! * [`special`] — `erf`/`erfc`, `sinc`, and the Gaussian, used by the
//!   window-function machinery of the paper's §4.
//! * [`kahan`] — compensated (Neumaier) summation for accurate reductions.
//! * [`quad`] — adaptive Simpson quadrature, used to evaluate the paper's
//!   aliasing/truncation error integrals (ε^(alias), ε^(trunc)).
//! * [`dd`] — double-double (~106-bit mantissa) arithmetic, used to build a
//!   reference FFT accurate enough to certify the paper's 290 dB SNR claim.
//! * [`stats`] — mean / standard deviation / normal-theory confidence
//!   intervals (Fig 6 uses a 90% CI) and the dB / SNR helpers of §7.2.

pub mod aligned;
pub mod complex;
pub mod dd;
pub mod kahan;
pub mod quad;
pub mod real;
pub mod special;
pub mod stats;

pub use aligned::AlignedBuf;
pub use complex::{c32, c64, Complex, Complex32, Complex64};
pub use dd::Dd;
pub use kahan::KahanSum;
pub use real::Real;
