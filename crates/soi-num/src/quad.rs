//! Adaptive Simpson quadrature.
//!
//! Used to evaluate the paper's window-quality integrals:
//!
//! * `ε^(alias) = ∫_{|u|≥1/2+β} |Ĥ(u)| du / ∫_{−1/2}^{1/2} |Ĥ(u)| du` (§4),
//! * the truncation criterion `∫_{|t|≥B/2} |H(t)| dt ≤ ε^(trunc) ∫ |H(t)| dt`,
//! * window normalizations.
//!
//! All integrands involved are smooth with Gaussian-dominated tails, so
//! adaptive Simpson with a recursion-depth cap is plenty; a
//! [`integrate_decaying_tail`] helper handles the semi-infinite tails by
//! marching in geometrically growing panels until the contribution is
//! negligible.

/// Result of a quadrature: value plus an error estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quadrature {
    /// Estimated value of the integral.
    pub value: f64,
    /// Rough absolute error estimate.
    pub error: f64,
    /// Number of function evaluations performed.
    pub evals: usize,
}

/// Adaptive Simpson integration of `f` over `[a, b]` to absolute tolerance
/// `tol`.
///
/// # Panics
/// Panics if `a > b` or `tol <= 0`.
pub fn integrate<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Quadrature {
    assert!(a <= b, "integrate: a ({a}) must be <= b ({b})");
    assert!(tol > 0.0, "integrate: tol must be positive");
    if a == b {
        return Quadrature {
            value: 0.0,
            error: 0.0,
            evals: 0,
        };
    }
    let mut evals = 0usize;
    let mut eval = |x: f64, evals: &mut usize| {
        *evals += 1;
        f(x)
    };
    let m = 0.5 * (a + b);
    let fa = eval(a, &mut evals);
    let fm = eval(m, &mut evals);
    let fb = eval(b, &mut evals);
    let whole = simpson(a, b, fa, fm, fb);
    let mut err_total = 0.0;
    let value = adaptive(
        &mut |x| eval(x, &mut evals),
        a,
        b,
        fa,
        fm,
        fb,
        whole,
        tol,
        50,
        &mut err_total,
    );
    Quadrature {
        value,
        error: err_total,
        evals,
    }
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
    err_total: &mut f64,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    // Classic Richardson criterion: Simpson error shrinks 16x per halving.
    if depth == 0 || delta.abs() <= 15.0 * tol {
        *err_total += delta.abs() / 15.0;
        return left + right + delta / 15.0;
    }
    let half_tol = 0.5 * tol;
    adaptive(f, a, m, fa, flm, fm, left, half_tol, depth - 1, err_total)
        + adaptive(f, m, b, fm, frm, fb, right, half_tol, depth - 1, err_total)
}

/// Fixed-order composite Simpson over `[a, b]` with `n` subintervals
/// (`n` rounded up to even). No adaptivity: for the smooth, analytic
/// integrands of the window machinery this converges spectrally fast and
/// costs exactly `n+1` evaluations — which keeps the design search's
/// inner bisection loops cheap and predictable.
pub fn composite_simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(a <= b, "composite_simpson: a must be <= b");
    if a == b {
        return 0.0;
    }
    let n = (n.max(2) + 1) & !1; // even, ≥ 2
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(a + i as f64 * h);
    }
    sum * h / 3.0
}

/// Filon–Simpson quadrature for the oscillatory integral
/// `∫_a^b f(x)·cos(k·x) dx` with smooth `f`.
///
/// Unlike plain Simpson, the trigonometric factor is integrated
/// *exactly* against a piecewise-quadratic interpolant of `f`, so the
/// error is `O(h⁴·f⁗)` regardless of how fast the cosine oscillates —
/// the right tool for the compact window's Fourier dual, where `k = 2πt`
/// can be large while `f = Ĥ` stays tame.
pub fn filon_cos<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, k: f64, panels: usize) -> f64 {
    assert!(a <= b, "filon_cos: a must be <= b");
    if a == b {
        return 0.0;
    }
    if k == 0.0 {
        return composite_simpson(f, a, b, 2 * panels);
    }
    let n = panels.max(2); // number of double-intervals
    let h = (b - a) / (2 * n) as f64;
    let theta = k * h;
    // Filon coefficients (Abramowitz & Stegun 25.4.47ff), with the θ→0
    // Taylor forms to avoid cancellation.
    let (alpha, beta, gamma) = if theta.abs() < 1e-2 {
        let t2 = theta * theta;
        (
            theta * t2 * (2.0 / 45.0 - t2 * (2.0 / 315.0 - t2 * 2.0 / 4725.0)),
            2.0 / 3.0 + t2 * (2.0 / 15.0 - t2 * 4.0 / 105.0),
            4.0 / 3.0 - t2 * (2.0 / 15.0 - t2 / 210.0),
        )
    } else {
        let (s, c) = theta.sin_cos();
        let t3 = theta * theta * theta;
        (
            (theta * theta + theta * s * c - 2.0 * s * s) / t3,
            (2.0 * (theta * (1.0 + c * c) - 2.0 * s * c)) / t3,
            (4.0 * (s - theta * c)) / t3,
        )
    };
    let x = |j: usize| a + j as f64 * h;
    // Even-index cosine sum (endpoints half-weighted), odd-index sum.
    let mut c_even = 0.5 * (f(a) * (k * a).cos() + f(b) * (k * b).cos());
    for j in (2..2 * n).step_by(2) {
        c_even += f(x(j)) * (k * x(j)).cos();
    }
    let mut c_odd = 0.0;
    for j in (1..2 * n).step_by(2) {
        c_odd += f(x(j)) * (k * x(j)).cos();
    }
    let boundary = f(b) * (k * b).sin() - f(a) * (k * a).sin();
    h * (alpha * boundary + beta * c_even + gamma * c_odd)
}

/// Integrate `f` from `a` to +∞ assuming `f` decays (at least) exponentially.
///
/// Marches over geometrically growing panels, each integrated with a
/// fixed 64-interval composite Simpson rule, until a panel contributes
/// less than `tol` twice in a row.
pub fn integrate_decaying_tail<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    initial_width: f64,
    tol: f64,
) -> Quadrature {
    assert!(initial_width > 0.0, "initial panel width must be positive");
    let mut lo = a;
    let mut width = initial_width;
    let mut total = 0.0;
    let mut evals = 0;
    let mut quiet_panels = 0;
    for _ in 0..64 {
        let v = composite_simpson(&mut f, lo, lo + width, 64);
        evals += 65;
        total += v;
        if v.abs() < tol {
            quiet_panels += 1;
            if quiet_panels >= 2 {
                break;
            }
        } else {
            quiet_panels = 0;
        }
        lo += width;
        width *= 2.0;
    }
    Quadrature {
        value: total,
        error: total.abs() * 1e-12,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::SQRT_PI;

    #[test]
    fn polynomial_is_exact() {
        // Simpson is exact for cubics.
        let q = integrate(|x| 3.0 * x * x, 0.0, 2.0, 1e-12);
        assert!((q.value - 8.0).abs() < 1e-12, "got {}", q.value);
        let q = integrate(|x| x * x * x - x, -1.0, 3.0, 1e-12);
        assert!((q.value - 16.0).abs() < 1e-10, "got {}", q.value);
    }

    #[test]
    fn sine_over_period() {
        let q = integrate(|x| x.sin(), 0.0, core::f64::consts::PI, 1e-12);
        assert!((q.value - 2.0).abs() < 1e-10, "got {}", q.value);
    }

    #[test]
    fn gaussian_full_mass() {
        // ∫ e^{-x²} over a wide finite interval ≈ sqrt(pi).
        let q = integrate(|x| (-x * x).exp(), -12.0, 12.0, 1e-13);
        assert!((q.value - SQRT_PI).abs() < 1e-10, "got {}", q.value);
    }

    #[test]
    fn degenerate_interval() {
        let q = integrate(|x| x.exp(), 1.5, 1.5, 1e-10);
        assert_eq!(q.value, 0.0);
    }

    #[test]
    fn tail_integration_of_gaussian() {
        // ∫_2^∞ e^{-x²} dx = sqrt(pi)/2 * erfc(2). The tail integrator is
        // a fixed-order rule tuned for the window metrics' few-digit
        // needs; expect ~7 correct digits, not machine precision.
        let want = SQRT_PI / 2.0 * crate::special::erfc(2.0);
        let q = integrate_decaying_tail(|x| (-x * x).exp(), 2.0, 1.0, 1e-14);
        assert!(
            (q.value - want).abs() < 1e-6 * want.max(1e-30),
            "got {}, want {}",
            q.value,
            want
        );
    }

    #[test]
    fn filon_matches_analytic_antiderivative() {
        // ∫₀^1 cos(kx) dx = sin(k)/k — exact for constant f at any k.
        for k in [0.0f64, 0.5, 7.0, 300.0, 5000.0] {
            let got = filon_cos(|_| 1.0, 0.0, 1.0, k, 64);
            let want = if k == 0.0 { 1.0 } else { k.sin() / k };
            assert!((got - want).abs() < 1e-12, "k={k}: {got} vs {want}");
        }
    }

    #[test]
    fn filon_quadratic_integrand_high_frequency() {
        // ∫₀^1 x²cos(kx)dx = ((k²−2)sin k + 2k cos k)/k³.
        for k in [3.0f64, 50.0, 1000.0] {
            let got = filon_cos(|x| x * x, 0.0, 1.0, k, 128);
            let want = ((k * k - 2.0) * k.sin() + 2.0 * k * k.cos()) / (k * k * k);
            assert!((got - want).abs() < 1e-10, "k={k}: {got} vs {want}");
        }
    }

    #[test]
    fn filon_smooth_integrand_beats_simpson_at_high_k() {
        // Gaussian × fast cosine: Filon with 128 panels should agree with
        // a brutally dense Simpson reference; plain 256-point Simpson
        // cannot.
        let k = 400.0;
        let f = |x: f64| (-3.0 * x * x).exp();
        let reference = composite_simpson(|x| f(x) * (k * x).cos(), 0.0, 1.0, 1 << 17);
        let filon = filon_cos(f, 0.0, 1.0, k, 128);
        assert!((filon - reference).abs() < 1e-10, "{filon} vs {reference}");
        let sloppy = composite_simpson(|x| f(x) * (k * x).cos(), 0.0, 1.0, 256);
        assert!((sloppy - reference).abs() > (filon - reference).abs());
    }

    #[test]
    fn filon_near_zero_theta_branch_is_continuous() {
        // Same integral, panel counts straddling the θ = 1e-2 Taylor
        // switch: results must agree to quadrature accuracy.
        let f = |x: f64| 1.0 / (1.0 + x);
        let k = 1.0;
        let a = filon_cos(f, 0.0, 1.0, k, 49); // θ ≈ 0.0102 (exact branch)
        let b = filon_cos(f, 0.0, 1.0, k, 51); // θ ≈ 0.0098 (Taylor branch)
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn error_estimate_is_sane() {
        let q = integrate(|x| (10.0 * x).sin().abs(), 0.0, 1.0, 1e-9);
        // |sin| has kinks; the adaptive scheme must still converge.
        // Three full humps on [0, 3π/10] contribute 2/10 each; the partial
        // hump gives (1 + cos 10)/10. Exact: (7 + cos 10)/10.
        let exact = (7.0 + (10.0f64).cos()) / 10.0;
        assert!((q.value - exact).abs() < 1e-7, "got {}, want {exact}", q.value);
        assert!(q.evals > 10);
    }
}
