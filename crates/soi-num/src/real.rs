//! A small floating-point abstraction so the FFT library can be generic
//! over `f32` and `f64` without an external num-traits dependency.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar usable as the real/imaginary component of a
/// [`crate::Complex`] number.
///
/// Implemented for `f32` and `f64`. The trait exposes only what the
/// workspace actually uses; it is not a general-purpose numeric tower.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Two.
    const TWO: Self;
    /// The circle constant π.
    const PI: Self;
    /// Machine epsilon (distance from 1.0 to the next representable value).
    const EPSILON: Self;

    /// Lossless widening to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// Possibly-lossy narrowing from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Conversion from a `usize` (used for twiddle angles; exact for the
    /// index ranges that occur in practice).
    fn from_usize(v: usize) -> Self;

    fn sin(self) -> Self;
    fn cos(self) -> Self;
    /// Simultaneous sine and cosine.
    fn sin_cos(self) -> (Self, Self);
    fn exp(self) -> Self;
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn ln(self) -> Self;
    fn log2(self) -> Self;
    fn log10(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn floor(self) -> Self;
    fn ceil(self) -> Self;
    fn round(self) -> Self;
    fn is_finite(self) -> bool;
    fn max_val(self, other: Self) -> Self;
    fn min_val(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b` (hardware FMA where available).
    fn mul_add(self, a: Self, b: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty, $pi:expr, $eps:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const TWO: Self = 2.0;
            const PI: Self = $pi;
            const EPSILON: Self = $eps;

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as Self
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as Self
            }
            #[inline(always)]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn sin_cos(self) -> (Self, Self) {
                self.sin_cos()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn log2(self) -> Self {
                self.log2()
            }
            #[inline(always)]
            fn log10(self) -> Self {
                self.log10()
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline(always)]
            fn ceil(self) -> Self {
                self.ceil()
            }
            #[inline(always)]
            fn round(self) -> Self {
                self.round()
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max_val(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min_val(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
        }
    };
}

impl_real!(f32, core::f32::consts::PI, f32::EPSILON);
impl_real!(f64, core::f64::consts::PI, f64::EPSILON);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_smoke<T: Real>() {
        let x = T::from_f64(0.5);
        let (s, c) = x.sin_cos();
        assert!((s.to_f64() - 0.5f64.sin()).abs() < 1e-6);
        assert!((c.to_f64() - 0.5f64.cos()).abs() < 1e-6);
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::HALF + T::HALF, T::ONE);
        assert_eq!(T::TWO, T::ONE + T::ONE);
        assert!((T::PI.to_f64() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn smoke_f32() {
        generic_smoke::<f32>();
    }

    #[test]
    fn smoke_f64() {
        generic_smoke::<f64>();
    }

    #[test]
    fn from_usize_exact_for_small_indices() {
        for v in [0usize, 1, 2, 1024, 1 << 20] {
            assert_eq!(<f64 as Real>::from_usize(v), v as f64);
        }
    }

    #[test]
    fn mul_add_matches_separate_ops_roughly() {
        let r = <f64 as Real>::mul_add(3.0, 4.0, 5.0);
        assert_eq!(r, 17.0);
    }
}
