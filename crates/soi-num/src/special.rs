//! Special functions needed by the window-function machinery (§4 of the
//! paper): the error function pair `erf`/`erfc`, the normalized `sinc`, and
//! the Gaussian.
//!
//! The paper's two-parameter reference window has the closed forms
//! (footnote 5):
//!
//! * `Ĥ(u)` — a difference/sum of two `erf` terms (the Gaussian-smoothed
//!   rectangle, Eq. 2),
//! * `H(t)` — a `sinc` times a Gaussian.
//!
//! Accuracy matters here: window coefficients feed a 14.5-digit algorithm,
//! so `erf` is implemented to near machine precision (Taylor series for
//! small arguments, Lentz continued fraction for the tail), not with a
//! 7-digit textbook polynomial.

/// `2/sqrt(pi)`.
pub const FRAC_2_SQRT_PI: f64 = 1.128_379_167_095_512_57;
/// `sqrt(pi)`.
pub const SQRT_PI: f64 = 1.772_453_850_905_516_03;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to a few ulps over the whole real line.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    let ax = x.abs();
    if ax < 1.0 {
        erf_series(x)
    } else {
        let e = erfc_cf(ax);
        let v = 1.0 - e;
        if x >= 0.0 {
            v
        } else {
            -v
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed directly in the tail so that `erfc(10) ≈ 2.1e-45` retains full
/// relative accuracy (essential for evaluating window tails / ε^(trunc)).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x < -1.0 {
        2.0 - erfc_cf(-x)
    } else if x < 1.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Taylor series for `erf`, converges rapidly for |x| < 1.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^(2n+1) / (n! (2n+1))
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 1u32;
    loop {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() <= sum.abs() * f64::EPSILON * 0.25 || n > 80 {
            break;
        }
        n += 1;
    }
    FRAC_2_SQRT_PI * sum
}

/// Modified Lentz continued fraction for `erfc(x)`, valid for `x ≥ 1`:
/// `erfc(x) = e^(−x²)/√π · 1/(x + (1/2)/(x + (2/2)/(x + (3/2)/(x + …))))`.
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x >= 1.0);
    if x > 27.0 {
        // e^{-x^2} underflows past ~27.2; the function is zero in f64.
        return 0.0;
    }
    const TINY: f64 = 1e-300;
    let mut f = x;
    let mut c = x;
    let mut d = 0.0f64;
    let mut k = 1u32;
    loop {
        let a = k as f64 / 2.0;
        // b = x for every level of this CF.
        d = x + a * d;
        if d == 0.0 {
            d = TINY;
        }
        c = x + a / c;
        if c == 0.0 {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < f64::EPSILON {
            break;
        }
        k += 1;
        if k > 300 {
            break;
        }
    }
    (-x * x).exp() / (SQRT_PI * f)
}

/// Normalized sinc: `sinc(x) = sin(πx)/(πx)`, `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    let px = core::f64::consts::PI * x;
    if px.abs() < 1e-8 {
        // Two-term Taylor keeps full accuracy through the removable zero.
        1.0 - px * px / 6.0
    } else {
        px.sin() / px
    }
}

/// The Gaussian `exp(−σ t²)`.
#[inline]
pub fn gaussian(t: f64, sigma: f64) -> f64 {
    (-sigma * t * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from standard 30+ digit tables.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112462916018284892),
        (0.5, 0.520499877813046538),
        (1.0, 0.842700792949714869),
        (1.5, 0.966105146475310727),
        (2.0, 0.995322265018952734),
        (3.0, 0.999977909503001415),
        (4.0, 0.999999984582742100),
    ];

    const ERFC_TABLE: &[(f64, f64)] = &[
        (1.0, 0.157299207050285131),
        (2.0, 4.67773498104726584e-3),
        (3.0, 2.20904969985854414e-5),
        (5.0, 1.53745979442803485e-12),
        (8.0, 1.12242971729829270e-29),
        (10.0, 2.08848758376254492e-45),
    ];

    #[test]
    fn erf_matches_table() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - want).abs() <= 4.0 * f64::EPSILON * want.abs().max(1e-300),
                "erf({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_matches_table_with_relative_accuracy() {
        for &(x, want) in ERFC_TABLE {
            let got = erfc(x);
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-13, "erfc({x}) = {got:e}, want {want:e}, rel {rel:e}");
        }
    }

    #[test]
    fn erf_is_odd_and_erfc_complements() {
        for i in 0..200 {
            let x = -5.0 + 0.05 * i as f64;
            assert!(
                (erf(x) + erf(-x)).abs() < 1e-15,
                "erf not odd at {x}"
            );
            assert!(
                (erf(x) + erfc(x) - 1.0).abs() < 4e-15,
                "erf+erfc != 1 at {x}: {}",
                erf(x) + erfc(x)
            );
        }
    }

    #[test]
    fn erf_limits() {
        assert!((erf(6.0) - 1.0).abs() < 1e-15);
        assert!((erf(-6.0) + 1.0).abs() < 1e-15);
        assert_eq!(erfc(30.0), 0.0);
        assert!((erfc(-30.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn erf_monotone_increasing() {
        let mut prev = erf(-8.0);
        for i in 1..=320 {
            let x = -8.0 + i as f64 * 0.05;
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at {x}");
            prev = v;
        }
    }

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        for k in 1..10 {
            assert!(sinc(k as f64).abs() < 1e-15, "sinc({k}) should vanish");
        }
        assert!((sinc(0.5) - 2.0 / core::f64::consts::PI).abs() < 1e-15);
        // Continuity through the removable singularity.
        assert!((sinc(1e-9) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn gaussian_values() {
        assert_eq!(gaussian(0.0, 3.0), 1.0);
        assert!((gaussian(1.0, 2.0) - (-2.0f64).exp()).abs() < 1e-16);
        assert!(gaussian(10.0, 5.0) < 1e-200);
    }
}
