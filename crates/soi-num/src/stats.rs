//! Statistics and signal-quality helpers for the evaluation harness.
//!
//! * Welford online mean/variance and normal-theory confidence intervals —
//!   Fig 6 of the paper plots a 90% CI over repeated runs.
//! * SNR in dB against a reference signal — §7.2 characterizes accuracy as
//!   SNR (SOI ≈ 290 dB, MKL ≈ 310 dB in double precision) and Fig 7 sweeps
//!   it; we also convert dB ↔ significant digits the way the paper does
//!   (20 dB ≈ one digit).

use crate::complex::Complex;
use crate::kahan::KahanSum;
use crate::real::Real;

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-theory confidence interval around the mean.
    ///
    /// `level` ∈ {0.90, 0.95, 0.99}; Fig 6 uses 0.90 ("90% confidence
    /// interval based on normal distribution").
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        let z = z_for_level(level);
        let half = if self.n == 0 {
            0.0
        } else {
            z * self.stddev() / (self.n as f64).sqrt()
        };
        ConfidenceInterval {
            mean: self.mean(),
            lower: self.mean() - half,
            upper: self.mean() + half,
            level,
        }
    }
}

/// A symmetric normal-theory confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level used, e.g. 0.90.
    pub level: f64,
}

/// Two-sided standard-normal quantile for the common confidence levels.
fn z_for_level(level: f64) -> f64 {
    // Hard-coded standard values; the harness only ever asks for these.
    if (level - 0.90).abs() < 1e-9 {
        1.6448536269514722
    } else if (level - 0.95).abs() < 1e-9 {
        1.959963984540054
    } else if (level - 0.99).abs() < 1e-9 {
        2.5758293035489004
    } else {
        panic!("unsupported confidence level {level}; use 0.90/0.95/0.99")
    }
}

/// Signal-to-noise ratio in dB of `signal` against reference `reference`:
/// `10·log10(‖reference‖² / ‖signal − reference‖²)`.
///
/// Returns +∞ for an exact match.
pub fn snr_db<T: Real>(signal: &[Complex<T>], reference: &[Complex<T>]) -> f64 {
    assert_eq!(signal.len(), reference.len(), "length mismatch");
    let mut sig = KahanSum::new();
    let mut noise = KahanSum::new();
    for (&s, &r) in signal.iter().zip(reference) {
        sig.add(r.norm_sqr().to_f64());
        noise.add((s - r).norm_sqr().to_f64());
    }
    if noise.value() == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig.value() / noise.value()).log10()
    }
}

/// SNR in dB given reference stored as interleaved `(re, im)` f64 pairs
/// already widened from a higher-precision computation.
pub fn snr_db_vs_pairs<T: Real>(signal: &[Complex<T>], reference: &[(f64, f64)]) -> f64 {
    assert_eq!(signal.len(), reference.len(), "length mismatch");
    let mut sig = KahanSum::new();
    let mut noise = KahanSum::new();
    for (&s, &(rr, ri)) in signal.iter().zip(reference) {
        sig.add(rr * rr + ri * ri);
        let dr = s.re.to_f64() - rr;
        let di = s.im.to_f64() - ri;
        noise.add(dr * dr + di * di);
    }
    if noise.value() == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig.value() / noise.value()).log10()
    }
}

/// dB → significant decimal digits (paper: "20 dB (one digit)").
pub fn db_to_digits(db: f64) -> f64 {
    db / 20.0
}

/// Significant decimal digits → dB.
pub fn digits_to_db(digits: f64) -> f64 {
    digits * 20.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single_observation() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        let ci = s.confidence_interval(0.90);
        assert_eq!(ci.lower, 42.0);
        assert_eq!(ci.upper, 42.0);
    }

    #[test]
    fn confidence_interval_narrows_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        // Same deterministic alternating data, different sample counts.
        for i in 0..10 {
            small.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        for i in 0..1000 {
            large.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let ci_s = small.confidence_interval(0.90);
        let ci_l = large.confidence_interval(0.90);
        assert!(ci_l.upper - ci_l.lower < ci_s.upper - ci_s.lower);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence level")]
    fn unsupported_level_panics() {
        let s = RunningStats::new();
        let _ = s.confidence_interval(0.5);
    }

    #[test]
    fn snr_of_exact_match_is_infinite() {
        let a = [c64(1.0, 2.0), c64(-3.0, 0.5)];
        assert_eq!(snr_db(&a, &a), f64::INFINITY);
    }

    #[test]
    fn snr_known_value() {
        // signal = ref + noise with |noise|²/|ref|² = 1e-4 → 40 dB.
        let reference = [c64(1.0, 0.0)];
        let signal = [c64(1.01, 0.0)];
        let snr = snr_db(&signal, &reference);
        assert!((snr - 40.0).abs() < 1e-9, "snr = {snr}");
    }

    #[test]
    fn db_digit_conversions() {
        assert_eq!(db_to_digits(290.0), 14.5);
        assert_eq!(digits_to_db(10.0), 200.0);
        assert!((db_to_digits(digits_to_db(7.3)) - 7.3).abs() < 1e-12);
    }

    #[test]
    fn snr_pairs_matches_complex_version() {
        let signal = [c64(1.0, 1.0), c64(2.0, -1.0)];
        let reference = [c64(1.0, 1.001), c64(2.002, -1.0)];
        let pairs: Vec<(f64, f64)> = reference.iter().map(|c| (c.re, c.im)).collect();
        let a = snr_db(&signal, &reference);
        let b = snr_db_vs_pairs(&signal, &pairs);
        assert!((a - b).abs() < 1e-12);
    }
}
