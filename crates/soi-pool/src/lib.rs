//! A persistent worker pool for the SOI execution layer.
//!
//! The paper's node-level parallelism (its OpenMP tier) maps here to a
//! std-only pool: `T − 1` worker threads spawned once and parked on a
//! `Condvar`, plus the calling thread, which participates as worker 0.
//! Each [`ThreadPool::run`] publishes one parallel-for job, wakes the
//! workers, executes the caller's share inline, and blocks until every
//! worker has retired its share — so a job never outlives the borrows its
//! closure captures.
//!
//! **Determinism contract.** Task `i` of a `run(tasks, f)` call is
//! executed by worker `i % threads`, and the partition helpers
//! ([`part_range`]) are pure functions of `(units, parts, part)`. Nothing
//! is work-stolen or rebalanced at run time, so for the data-parallel
//! kernels built on top (each output element computed by exactly one pure
//! task) the results are **bitwise identical** for every worker count,
//! including fully serial execution. This is the invariant the
//! `batch_equivalence` and `parallel_determinism` suites pin.
//!
//! A pool of `threads = 1` spawns nothing and runs every job inline; it
//! costs one enum discriminant, so serial call sites can use the same
//! code path as threaded ones.

use soi_trace::Trace;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One published parallel-for: the erased closure plus its task count.
///
/// The `'static` lifetime is a lie told under control: `run` erases the
/// real lifetime and then blocks until every worker has finished with the
/// reference, so it never dangles.
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    tasks: usize,
}

struct State {
    job: Option<Job>,
    /// Bumped once per published job; workers run each epoch exactly once.
    epoch: u64,
    /// Spawned workers that have not yet retired the current epoch.
    outstanding: usize,
    /// First panic payload captured from a worker this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

/// A persistent pool of `threads` workers (the caller counts as one).
pub struct ThreadPool {
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    trace: Trace,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Build a pool of `threads` total workers. `threads − 1` OS threads
    /// are spawned immediately and parked; `new(1)` spawns nothing.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        if threads == 1 {
            return Self {
                shared: None,
                handles: Vec::new(),
                threads: 1,
                trace: Trace::disabled(),
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                outstanding: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("soi-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w, threads))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared: Some(shared),
            handles,
            threads,
            trace: Trace::disabled(),
        }
    }

    /// A serial pool (no spawned threads); every `run` executes inline.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Total worker count, caller included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attach a trace handle: every task of every subsequent [`run`]
    /// (`ThreadPool::run`) is recorded as a per-task timing event tagged
    /// with its (deterministic) worker id `i % threads` — the raw material
    /// for load-imbalance analysis. Pass [`Trace::disabled`] to detach.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The currently attached trace handle.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Execute `f(0), f(1), …, f(tasks − 1)` across the pool and block
    /// until all calls return. Task `i` runs on worker `i % threads`
    /// (static assignment — see the module docs for the determinism
    /// contract). The caller executes worker 0's share inline.
    ///
    /// A panic in any task is re-raised here after every worker has
    /// retired; the pool stays usable afterwards.
    ///
    /// # Panics
    /// Panics on nested use (calling `run` from inside a task of the same
    /// pool), besides propagating task panics.
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.trace.is_enabled() {
            // Timing wrapper only on the traced path: the untraced hot
            // path dispatches the caller's closure untouched.
            let threads = self.threads;
            let trace = &self.trace;
            self.dispatch(tasks, &|t: usize| {
                let t0 = std::time::Instant::now();
                f(t);
                trace.task(t % threads, t, t0.elapsed().as_nanos() as u64);
            });
        } else {
            self.dispatch(tasks, &f);
        }
    }

    fn dispatch(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        let threads = self.threads;
        let shared = match &self.shared {
            None => {
                for t in 0..tasks {
                    f(t);
                }
                return;
            }
            Some(s) => s,
        };
        if tasks <= 1 {
            for t in 0..tasks {
                f(t);
            }
            return;
        }
        {
            let mut st = shared.state.lock().expect("pool state poisoned");
            assert!(st.job.is_none(), "nested ThreadPool::run on the same pool");
            // SAFETY: the reference is only reachable through `st.job`,
            // which this call clears again before returning, and `dispatch`
            // blocks until `outstanding == 0`, i.e. until no worker can
            // still dereference it. `f` therefore strictly outlives every
            // use despite the erased lifetime.
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
            };
            st.job = Some(Job { f: erased, tasks });
            st.epoch = st.epoch.wrapping_add(1);
            st.outstanding = threads - 1;
            shared.work_ready.notify_all();
        }
        // Worker 0 (the caller) takes tasks 0, T, 2T, …
        let caller = catch_unwind(AssertUnwindSafe(|| {
            let mut t = 0;
            while t < tasks {
                f(t);
                t += threads;
            }
        }));
        let worker_panic = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            while st.outstanding > 0 {
                st = shared.work_done.wait(st).expect("pool state poisoned");
            }
            st.job = None;
            st.panic.take()
        };
        if let Err(p) = caller {
            resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.state.lock().expect("pool state poisoned").shutdown = true;
            shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, w: usize, threads: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch bumped without a job");
                }
                st = shared.work_ready.wait(st).expect("pool state poisoned");
            }
        };
        let res = catch_unwind(AssertUnwindSafe(|| {
            let mut t = w;
            while t < job.tasks {
                (job.f)(t);
                t += threads;
            }
        }));
        let mut st = shared.state.lock().expect("pool state poisoned");
        if let Err(p) = res {
            st.panic.get_or_insert(p);
        }
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// Balanced contiguous partition: the `(start, len)` unit-range of part
/// `part` out of `parts` over `units` total units. The first
/// `units % parts` parts receive one extra unit. Pure arithmetic — the
/// same inputs always give the same split, which is what keeps pooled
/// kernels bitwise identical to serial.
pub fn part_range(units: usize, parts: usize, part: usize) -> (usize, usize) {
    assert!(parts > 0 && part < parts, "part {part} of {parts}");
    let base = units / parts;
    let extra = units % parts;
    let start = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    (start, len)
}

/// A `Send + Sync` wrapper around a mutable slice, for handing disjoint
/// sub-ranges of one buffer to the tasks of a [`ThreadPool::run`] call.
///
/// Every accessor is `unsafe`: the caller asserts that concurrently
/// outstanding ranges are disjoint and that the original borrow outlives
/// all of them (which `run`'s barrier guarantees when the pointer is not
/// smuggled out of the job closure).
pub struct SlicePtr<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for SlicePtr<T> {}
unsafe impl<T: Send> Sync for SlicePtr<T> {}

impl<T> SlicePtr<T> {
    /// Capture `slice` for disjoint concurrent mutation.
    pub fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Length of the captured slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the captured slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrow `[start, start + len)` mutably.
    ///
    /// # Safety
    /// The range must be in bounds, must not overlap any other range
    /// handed out while this one is alive, and must not outlive the
    /// borrow given to [`SlicePtr::new`].
    pub unsafe fn slice<'a>(&self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(start + len <= self.len, "SlicePtr range out of bounds");
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// Write one element.
    ///
    /// # Safety
    /// `idx` must be in bounds and no other thread may concurrently read
    /// or write element `idx`.
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len, "SlicePtr write out of bounds");
        self.ptr.add(idx).write(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ThreadPool::serial();
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(7, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicUsize> = (0..129).map(|_| AtomicUsize::new(0)).collect();
        pool.run(counts.len(), |t| {
            counts[t].fetch_add(1, Ordering::Relaxed);
        });
        for (t, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {t}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(10, |t| {
                total.fetch_add(t + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 55);
    }

    #[test]
    fn tasks_mutate_disjoint_output_ranges() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1000];
        let parts = 7;
        let ptr = SlicePtr::new(&mut data);
        pool.run(parts, |t| {
            let (start, len) = part_range(1000, parts, t);
            let chunk = unsafe { ptr.slice(start, len) };
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = start + i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, |t| {
                if t == 5 {
                    panic!("boom in task 5");
                }
            });
        }));
        assert!(res.is_err(), "panic must propagate to the caller");
        // The pool must still work after a propagated panic.
        let hits = AtomicUsize::new(0);
        pool.run(16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn part_range_partitions_exactly() {
        for units in [0usize, 1, 5, 64, 1000, 1001] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                let mut next = 0;
                for p in 0..parts {
                    let (start, len) = part_range(units, parts, p);
                    assert_eq!(start, next, "contiguity units={units} parts={parts}");
                    next = start + len;
                    covered += len;
                }
                assert_eq!(covered, units, "coverage units={units} parts={parts}");
                // Balance: no part more than one unit larger than another.
                let lens: Vec<usize> =
                    (0..parts).map(|p| part_range(units, parts, p).1).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "balance units={units} parts={parts}");
            }
        }
    }

    #[test]
    fn traced_pool_records_one_event_per_task_with_static_worker_ids() {
        use soi_trace::EventKind;
        let mut pool = ThreadPool::new(3);
        pool.set_trace(Trace::recording(0));
        pool.run(10, |_| {});
        let events = pool.trace().drain();
        assert_eq!(events.len(), 10);
        let mut seen = vec![false; 10];
        for ev in &events {
            match ev.kind {
                EventKind::Task { index, .. } => {
                    // Determinism contract: task i runs on worker i % threads.
                    assert_eq!(ev.worker, index % 3, "task {index}");
                    seen[index as usize] = true;
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "every task must be recorded");
        // Detaching returns the pool to the null-check path.
        pool.set_trace(Trace::disabled());
        pool.run(4, |_| {});
        assert!(pool.trace().is_empty());
    }

    #[test]
    fn zero_and_fewer_tasks_than_workers() {
        let pool = ThreadPool::new(8);
        let hits = AtomicUsize::new(0);
        pool.run(0, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        pool.run(3, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
