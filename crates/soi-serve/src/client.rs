//! Client side of the serve protocol: a blocking request/reply handle
//! plus a split mode for pipelined (open-loop) traffic.

use crate::proto::{
    Reject, Request, Response, StatsSnapshot, TAG_BYE, TAG_REJECT, TAG_REQUEST, TAG_RESPONSE,
    TAG_SHUTDOWN, TAG_STATS, TAG_STATS_REQUEST,
};
use soi_wire::frame::{read_frame_into, write_frame};
use soi_wire::WireError;
use std::net::TcpStream;
use std::time::Duration;

/// One frame from the server, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The requested bins.
    Ok(Response),
    /// A typed rejection.
    Rejected(Reject),
    /// A stats snapshot.
    Stats(StatsSnapshot),
    /// The server's goodbye (shutdown ack).
    Bye,
}

fn decode_reply(tag: u8, payload: &[u8]) -> Result<Reply, WireError> {
    match tag {
        TAG_RESPONSE => Ok(Reply::Ok(Response::decode(payload)?)),
        TAG_REJECT => Ok(Reply::Rejected(Reject::decode(payload)?)),
        TAG_STATS => Ok(Reply::Stats(StatsSnapshot::decode(payload)?)),
        TAG_BYE => Ok(Reply::Bye),
        other => Err(WireError::Protocol(format!(
            "unexpected reply tag {other:#04x}"
        ))),
    }
}

/// A blocking connection to a serve daemon.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    buf: Vec<u8>,
    timeout: Duration,
}

impl ServeClient {
    /// Connect to `addr`; `timeout` bounds every send and receive.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| WireError::Bootstrap(format!("serve connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| WireError::Io(format!("serve client nodelay: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| WireError::Io(format!("serve client read timeout: {e}")))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| WireError::Io(format!("serve client write timeout: {e}")))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            timeout,
        })
    }

    /// Fire a request without waiting for the reply (pipelining).
    pub fn send_request(&mut self, req: &Request) -> Result<(), WireError> {
        write_frame(&mut self.stream, TAG_REQUEST, &req.encode(), None, self.timeout)
    }

    /// Receive the next reply frame (responses may arrive out of request
    /// order when the server batches; correlate by id).
    pub fn recv(&mut self) -> Result<Reply, WireError> {
        let tag = read_frame_into(&mut self.stream, &mut self.buf, None, self.timeout)?;
        decode_reply(tag, &self.buf)
    }

    /// Send one request and wait for one reply.
    pub fn call(&mut self, req: &Request) -> Result<Reply, WireError> {
        self.send_request(req)?;
        self.recv()
    }

    /// Fetch a stats snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        write_frame(&mut self.stream, TAG_STATS_REQUEST, &[], None, self.timeout)?;
        match self.recv()? {
            Reply::Stats(s) => Ok(s),
            other => Err(WireError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain and exit; waits for the BYE ack.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        write_frame(&mut self.stream, TAG_SHUTDOWN, &[], None, self.timeout)?;
        loop {
            // Drain any still-in-flight replies until the ack.
            match self.recv()? {
                Reply::Bye => return Ok(()),
                _ => continue,
            }
        }
    }

    /// Clean goodbye: the server releases the connection without
    /// counting a lost peer.
    pub fn bye(&mut self) -> Result<(), WireError> {
        write_frame(&mut self.stream, TAG_BYE, &[], None, self.timeout)
    }

    /// Split into independently owned send and receive halves so one
    /// thread can keep offering load while another drains replies — the
    /// open-loop shape the latency bench needs.
    pub fn split(self) -> Result<(RequestSink, ReplyStream), WireError> {
        let write = self
            .stream
            .try_clone()
            .map_err(|e| WireError::Io(format!("serve client clone stream: {e}")))?;
        Ok((
            RequestSink {
                stream: write,
                timeout: self.timeout,
            },
            ReplyStream {
                stream: self.stream,
                buf: self.buf,
                timeout: self.timeout,
            },
        ))
    }
}

/// The send half of a split client.
#[derive(Debug)]
pub struct RequestSink {
    stream: TcpStream,
    timeout: Duration,
}

impl RequestSink {
    /// Fire a request.
    pub fn send_request(&mut self, req: &Request) -> Result<(), WireError> {
        write_frame(&mut self.stream, TAG_REQUEST, &req.encode(), None, self.timeout)
    }

    /// Clean goodbye (after the receive half has drained).
    pub fn bye(&mut self) -> Result<(), WireError> {
        write_frame(&mut self.stream, TAG_BYE, &[], None, self.timeout)
    }
}

/// The receive half of a split client.
#[derive(Debug)]
pub struct ReplyStream {
    stream: TcpStream,
    buf: Vec<u8>,
    timeout: Duration,
}

impl ReplyStream {
    /// Receive the next reply frame.
    pub fn recv(&mut self) -> Result<Reply, WireError> {
        let tag = read_frame_into(&mut self.stream, &mut self.buf, None, self.timeout)?;
        decode_reply(tag, &self.buf)
    }
}
