//! Executor-side transform engines: a prepared SOI pipeline plus its
//! reusable workspace arenas, cached per `(N, P, digits)` so a batch of
//! compatible requests pays planning and allocation once.
//!
//! An [`Engine`] owns everything the hot path needs — the `SoiFft`
//! (window coefficients, FFT plans via the process-global `Planner`),
//! lazily built `SoiWorkspace`/`SoiRealWorkspace` arenas, and a reused
//! output buffer — so in steady state a request allocates nothing on the
//! compute side. [`EngineCache`] is a small LRU keyed by geometry; its
//! capacity bounds resident arena memory, not correctness (an evicted
//! geometry is simply rebuilt on next use).

use crate::proto::{Request, RequestKind, Samples};
use soi_core::{SoiError, SoiFft, SoiParams, SoiRealWorkspace, SoiWorkspace, ThreadPool};
use soi_num::Complex64;
use soi_window::AccuracyPreset;
use std::collections::HashMap;
use std::sync::Arc;

/// The digits → window-preset mapping shared by the CLI and the service
/// (a `request --check` client must rebuild the *same* pipeline).
pub fn preset_for_digits(digits: u32) -> AccuracyPreset {
    match digits {
        0..=10 => AccuracyPreset::Digits10,
        11 => AccuracyPreset::Digits11,
        12 => AccuracyPreset::Digits12,
        13 => AccuracyPreset::Digits13,
        _ => AccuracyPreset::Full,
    }
}

/// One prepared geometry: pipeline + lazily built arenas + output
/// buffer. Workspaces are built on first use of their input domain, so a
/// geometry serving only r2c traffic never allocates the complex arena.
#[derive(Debug)]
pub struct Engine {
    soi: SoiFft,
    pool: Arc<ThreadPool>,
    ws: Option<SoiWorkspace>,
    real_ws: Option<SoiRealWorkspace>,
    out: Vec<Complex64>,
}

impl Engine {
    /// Plan the pipeline for `(n, p, digits)` on `pool`.
    pub fn build(
        n: usize,
        p: usize,
        digits: u32,
        pool: Arc<ThreadPool>,
    ) -> Result<Self, SoiError> {
        let params = SoiParams::with_preset(n, p, preset_for_digits(digits))?;
        let soi = SoiFft::new(&params)?;
        Ok(Self {
            soi,
            pool,
            ws: None,
            real_ws: None,
            out: Vec::new(),
        })
    }

    /// Execute one request, returning the requested bins as a borrow of
    /// the engine's reused output buffer (valid until the next call).
    ///
    /// Range validation (`arg < P` for segments, `arg < N` for bands)
    /// must happen *before* this is called — the underlying pooled
    /// entry points assert on out-of-range args rather than returning an
    /// error.
    pub fn execute(&mut self, req: &Request) -> Result<&[Complex64], SoiError> {
        match (&req.kind, &req.samples) {
            (RequestKind::Full, Samples::Complex(x)) => {
                let ws = self
                    .ws
                    .get_or_insert_with(|| SoiWorkspace::with_pool(&self.soi, Arc::clone(&self.pool)));
                self.out.resize(req.n, Complex64::ZERO);
                self.soi.transform_into(x, &mut self.out, ws)?;
            }
            (RequestKind::RealFull, Samples::Real(x)) => {
                let ws = self.real_ws.get_or_insert_with(|| {
                    SoiRealWorkspace::with_pool(&self.soi, Arc::clone(&self.pool))
                });
                self.out.resize(req.n / 2 + 1, Complex64::ZERO);
                self.soi.transform_real_into(x, &mut self.out, ws)?;
            }
            (RequestKind::Segment, Samples::Complex(x)) => {
                self.out = self.soi.transform_segment_pooled(x, req.arg, &self.pool)?;
            }
            (RequestKind::Band, Samples::Complex(x)) => {
                self.out = self.soi.transform_band_pooled(x, req.arg, &self.pool)?;
            }
            (RequestKind::RealSegment, Samples::Real(x)) => {
                self.out = self
                    .soi
                    .transform_real_segment_pooled(x, req.arg, &self.pool)?;
            }
            (RequestKind::RealBand, Samples::Real(x)) => {
                self.out = self.soi.transform_real_band_pooled(x, req.arg, &self.pool)?;
            }
            // Decode pairs samples with kind, so this is unreachable for
            // wire-decoded requests; guard anyway for direct construction.
            (kind, _) => {
                return Err(SoiError::BadSize(format!(
                    "request kind {} paired with wrong sample domain",
                    kind.name()
                )))
            }
        }
        Ok(&self.out)
    }
}

/// Executor-local LRU of prepared engines, keyed by `(N, P, digits)`.
/// Capacity comes from `SOI_SERVE_ENGINES` (default 8).
#[derive(Debug)]
pub struct EngineCache {
    cap: usize,
    tick: u64,
    map: HashMap<(usize, usize, u32), (u64, Engine)>,
    pool: Arc<ThreadPool>,
    builds: u64,
    evictions: u64,
}

impl EngineCache {
    /// Cache holding at most `cap` engines, building on `pool`.
    pub fn new(cap: usize, pool: Arc<ThreadPool>) -> Self {
        Self {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
            pool,
            builds: 0,
            evictions: 0,
        }
    }

    /// Borrow the engine for `(n, p, digits)`, building (and possibly
    /// evicting the least-recently-used geometry) as needed.
    pub fn get(
        &mut self,
        n: usize,
        p: usize,
        digits: u32,
    ) -> Result<&mut Engine, SoiError> {
        self.tick += 1;
        let key = (n, p, digits);
        if !self.map.contains_key(&key) {
            let engine = Engine::build(n, p, digits, Arc::clone(&self.pool))?;
            self.builds += 1;
            while self.map.len() >= self.cap {
                let oldest = self
                    .map
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(k, _)| *k)
                    .expect("non-empty map has a minimum");
                self.map.remove(&oldest);
                self.evictions += 1;
            }
            self.map.insert(key, (self.tick, engine));
        }
        let slot = self.map.get_mut(&key).expect("just inserted");
        slot.0 = self.tick;
        Ok(&mut slot.1)
    }

    /// Engines built since construction.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Engines evicted since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::c64;

    fn pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::serial())
    }

    #[test]
    fn engine_matches_direct_pipeline_bitwise() {
        let n = 4096;
        let p = 4;
        let x: Vec<Complex64> = (0..n)
            .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut engine = Engine::build(n, p, 10, pool()).unwrap();
        let req = Request {
            id: 1,
            tenant: String::new(),
            n,
            p,
            digits: 10,
            kind: RequestKind::Full,
            arg: 0,
            deadline_ms: 0,
            samples: Samples::Complex(x.clone()),
        };
        let got = engine.execute(&req).unwrap().to_vec();

        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let mut ws = SoiWorkspace::new(&soi, 1);
        let mut want = vec![Complex64::ZERO; n];
        soi.transform_into(&x, &mut want, &mut ws).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn engine_cache_is_a_bounded_lru() {
        let mut cache = EngineCache::new(2, pool());
        cache.get(1024, 4, 10).unwrap();
        cache.get(2048, 4, 10).unwrap();
        cache.get(1024, 4, 10).unwrap(); // touch 1024 so 2048 is LRU
        cache.get(4096, 4, 10).unwrap(); // evicts 2048
        assert_eq!(cache.builds(), 3);
        assert_eq!(cache.evictions(), 1);
        cache.get(1024, 4, 10).unwrap(); // still resident: no new build
        assert_eq!(cache.builds(), 3);
        cache.get(2048, 4, 10).unwrap(); // rebuild after eviction
        assert_eq!(cache.builds(), 4);
        assert_eq!(cache.evictions(), 2);
    }
}
