//! `soi-serve`: a long-lived spectral-transform service.
//!
//! Everything before this crate computes one transform per process
//! launch, paying window design, FFT planning, and workspace allocation
//! every time. This crate keeps those artifacts *resident*: a daemon
//! (`soi serve`) accepts transform requests — full spectra, single
//! segments, zoom bands; complex and real input — from many concurrent
//! clients over `soi-wire` framing, and answers them from cached
//! engines, so in steady state a request costs its transform and
//! nothing else.
//!
//! The moving parts:
//!
//! * [`proto`] — the request/response/reject/stats payloads, explicit
//!   little-endian via `soi-wire`'s pod codecs, so response spectra are
//!   **bitwise identical** to a locally computed
//!   `transform_into`/`transform_real_into` on the same input (the
//!   integration tests and `soi request --check` assert exactly that).
//! * [`server`] — accept/reader threads feeding a bounded admission
//!   queue; one executor draining it in geometry-coalesced batches
//!   through an LRU of prepared [`engine::Engine`]s. Backpressure is a
//!   typed `Overloaded` reject, deadline expiry a typed `Expired` —
//!   never a partial result, never an unbounded queue.
//! * [`engine`] — prepared pipeline + workspace arenas per
//!   `(N, P, digits)` geometry; the digits → window-preset mapping
//!   shared with the CLI.
//! * [`stats`] — per-tenant accounting (requests, bytes, compute time,
//!   shed/expired counts) plus global connection/batch/plan-cache
//!   counters, snapshotted into one STATS frame.
//! * [`client`] — the blocking client handle, with a split mode for the
//!   open-loop latency bench.
//!
//! Like the rest of the workspace, std-only.

pub mod client;
pub mod engine;
pub mod proto;
pub mod server;
pub mod stats;

pub use client::{Reply, ReplyStream, RequestSink, ServeClient};
pub use engine::{preset_for_digits, Engine, EngineCache};
pub use proto::{
    Reject, RejectCode, Request, RequestKind, Response, Samples, StatsSnapshot, TenantStats,
};
pub use server::{ServeConfig, Server};
pub use stats::Registry;
