//! The serve protocol: request/response/reject/stats payloads on the
//! soi-wire framing.
//!
//! Frame tags live above the rank-transport range (0x01–0x06) so a
//! misdirected worker connection fails loudly as a protocol error
//! instead of being half-understood. Every payload rides
//! `PayloadWriter`/`PayloadReader` (explicit little-endian, bit-exact
//! `f64`), so response spectra compare bitwise against locally computed
//! references on any architecture.
//!
//! One request carries its whole input signal plus the transform
//! geometry; one response carries the requested bins. Correlation is by
//! client-chosen `id` (the server may reorder responses across requests
//! on one connection when batching groups them).

use soi_num::Complex64;
use soi_wire::pod::{PayloadReader, PayloadWriter};
use soi_wire::{decode_slice, encode_slice, WireError};

/// Protocol revision; bumped on any layout change.
pub const PROTO_VERSION: u32 = 1;

/// Client → server: one transform request.
pub const TAG_REQUEST: u8 = 0x20;
/// Server → client: the requested bins.
pub const TAG_RESPONSE: u8 = 0x21;
/// Server → client: typed rejection (overload, expired deadline, bad
/// request) — never a partial result.
pub const TAG_REJECT: u8 = 0x22;
/// Client → server: ask for a stats snapshot.
pub const TAG_STATS_REQUEST: u8 = 0x23;
/// Server → client: the stats snapshot.
pub const TAG_STATS: u8 = 0x24;
/// Client → server: stop accepting, drain, exit.
pub const TAG_SHUTDOWN: u8 = 0x25;
/// Either direction: clean goodbye (client done; server acking a
/// shutdown).
pub const TAG_BYE: u8 = 0x26;

/// What slice of the spectrum a request wants, and from which input
/// domain. Part of the batching key: only requests of the same kind
/// coalesce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// All `N` bins from complex samples.
    Full,
    /// Segment `arg` (`M = N/P` bins starting at `arg·M`).
    Segment,
    /// `M` bins starting at arbitrary bin `arg` (zoom band).
    Band,
    /// Packed half spectrum (`N/2 + 1` bins) from real samples.
    RealFull,
    /// Segment `arg` from real samples.
    RealSegment,
    /// Band at `arg` from real samples.
    RealBand,
}

impl RequestKind {
    /// True for the r2c kinds (input is `f64` samples).
    pub fn is_real(self) -> bool {
        matches!(
            self,
            RequestKind::RealFull | RequestKind::RealSegment | RequestKind::RealBand
        )
    }

    fn code(self) -> u32 {
        match self {
            RequestKind::Full => 0,
            RequestKind::Segment => 1,
            RequestKind::Band => 2,
            RequestKind::RealFull => 3,
            RequestKind::RealSegment => 4,
            RequestKind::RealBand => 5,
        }
    }

    fn from_code(c: u32) -> Result<Self, WireError> {
        Ok(match c {
            0 => RequestKind::Full,
            1 => RequestKind::Segment,
            2 => RequestKind::Band,
            3 => RequestKind::RealFull,
            4 => RequestKind::RealSegment,
            5 => RequestKind::RealBand,
            other => {
                return Err(WireError::Protocol(format!(
                    "unknown request kind {other}"
                )))
            }
        })
    }

    /// Parse a CLI-facing name.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "full" => RequestKind::Full,
            "segment" => RequestKind::Segment,
            "band" => RequestKind::Band,
            "real" | "real-full" => RequestKind::RealFull,
            "real-segment" => RequestKind::RealSegment,
            "real-band" => RequestKind::RealBand,
            _ => return None,
        })
    }

    /// CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Full => "full",
            RequestKind::Segment => "segment",
            RequestKind::Band => "band",
            RequestKind::RealFull => "real",
            RequestKind::RealSegment => "real-segment",
            RequestKind::RealBand => "real-band",
        }
    }
}

/// The input signal, in the domain the kind demands.
#[derive(Debug, Clone, PartialEq)]
pub enum Samples {
    /// `N` complex samples.
    Complex(Vec<Complex64>),
    /// `N` real samples.
    Real(Vec<f64>),
}

impl Samples {
    /// Sample count.
    pub fn len(&self) -> usize {
        match self {
            Samples::Complex(v) => v.len(),
            Samples::Real(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded byte size.
    pub fn encoded_len(&self) -> usize {
        match self {
            Samples::Complex(v) => v.len() * 16,
            Samples::Real(v) => v.len() * 8,
        }
    }
}

/// One transform request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
    /// Accounting bucket for per-tenant stats.
    pub tenant: String,
    /// Transform size `N`.
    pub n: usize,
    /// SOI segment count `P` (must divide `N`).
    pub p: usize,
    /// Requested decimal digits of accuracy (picks the window preset).
    pub digits: u32,
    /// Which bins, from which domain.
    pub kind: RequestKind,
    /// Segment index (`Segment`/`RealSegment`) or band start bin
    /// (`Band`/`RealBand`); ignored for full transforms.
    pub arg: usize,
    /// Latency budget in ms, measured from server arrival; `0` = none.
    /// A request still queued past its budget is rejected
    /// ([`RejectCode::Expired`]), never partially computed. Relative, so
    /// client/server clock skew is irrelevant.
    pub deadline_ms: u64,
    /// The input signal.
    pub samples: Samples,
}

impl Request {
    /// Serialize to a REQUEST payload.
    pub fn encode(&self) -> Vec<u8> {
        let w = PayloadWriter::new()
            .u32(PROTO_VERSION)
            .u64(self.id)
            .str(&self.tenant)
            .u64(self.n as u64)
            .u64(self.p as u64)
            .u32(self.digits)
            .u32(self.kind.code())
            .u64(self.arg as u64)
            .u64(self.deadline_ms);
        match &self.samples {
            Samples::Complex(v) => w.bytes(&encode_slice(v)),
            Samples::Real(v) => w.bytes(&encode_slice(v)),
        }
        .finish()
    }

    /// Parse a REQUEST payload. Structural validation only (version,
    /// kind, sample-count/size agreement); semantic validation
    /// (divisibility, ranges) happens server-side with a typed reject.
    pub fn decode(b: &[u8]) -> Result<Request, WireError> {
        let mut r = PayloadReader::new(b);
        let version = r.u32()?;
        if version != PROTO_VERSION {
            return Err(WireError::Protocol(format!(
                "serve protocol version {version}, expected {PROTO_VERSION}"
            )));
        }
        let id = r.u64()?;
        let tenant = r.str()?;
        let n = r.u64()? as usize;
        let p = r.u64()? as usize;
        let digits = r.u32()?;
        let kind = RequestKind::from_code(r.u32()?)?;
        let arg = r.u64()? as usize;
        let deadline_ms = r.u64()?;
        let raw = r.bytes()?;
        let samples = if kind.is_real() {
            Samples::Real(decode_slice::<f64>(&raw)?)
        } else {
            Samples::Complex(decode_slice::<Complex64>(&raw)?)
        };
        if samples.len() != n {
            return Err(WireError::Protocol(format!(
                "request id {id}: {} samples for N = {n}",
                samples.len()
            )));
        }
        Ok(Request {
            id,
            tenant,
            n,
            p,
            digits,
            kind,
            arg,
            deadline_ms,
            samples,
        })
    }
}

/// A successful reply: the requested bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Server-side compute time for this request (transform only, queue
    /// wait excluded).
    pub compute_ns: u64,
    /// The requested bins, bit-exact.
    pub bins: Vec<Complex64>,
}

/// Serialize a RESPONSE payload into a reusable buffer (cleared first) —
/// the executor's steady-state path allocates nothing once the buffer
/// has grown to the largest response.
pub fn encode_response_into(id: u64, compute_ns: u64, bins: &[Complex64], out: &mut Vec<u8>) {
    use soi_wire::Pod;
    out.clear();
    out.reserve(24 + bins.len() * 16);
    id.write_le(out);
    compute_ns.write_le(out);
    (bins.len() as u64 * 16).write_le(out);
    for &b in bins {
        b.write_le(out);
    }
}

impl Response {
    /// Serialize to a RESPONSE payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_response_into(self.id, self.compute_ns, &self.bins, &mut out);
        out
    }

    /// Parse a RESPONSE payload.
    pub fn decode(b: &[u8]) -> Result<Response, WireError> {
        let mut r = PayloadReader::new(b);
        let id = r.u64()?;
        let compute_ns = r.u64()?;
        let bins = decode_slice::<Complex64>(&r.bytes()?)?;
        Ok(Response { id, compute_ns, bins })
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The admission queue is full: shed, retry later.
    Overloaded,
    /// The deadline budget elapsed before compute started.
    Expired,
    /// The request is malformed or semantically invalid.
    BadRequest,
}

impl RejectCode {
    fn code(self) -> u32 {
        match self {
            RejectCode::Overloaded => 1,
            RejectCode::Expired => 2,
            RejectCode::BadRequest => 3,
        }
    }

    fn from_code(c: u32) -> Result<Self, WireError> {
        Ok(match c {
            1 => RejectCode::Overloaded,
            2 => RejectCode::Expired,
            3 => RejectCode::BadRequest,
            other => {
                return Err(WireError::Protocol(format!(
                    "unknown reject code {other}"
                )))
            }
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::Overloaded => "overloaded",
            RejectCode::Expired => "expired",
            RejectCode::BadRequest => "bad-request",
        }
    }
}

/// A typed rejection reply.
#[derive(Debug, Clone, PartialEq)]
pub struct Reject {
    /// Echo of the request id (`0` when the request was undecodable).
    pub id: u64,
    /// Why.
    pub code: RejectCode,
    /// Diagnostic detail.
    pub message: String,
}

impl Reject {
    /// Serialize to a REJECT payload.
    pub fn encode(&self) -> Vec<u8> {
        PayloadWriter::new()
            .u64(self.id)
            .u32(self.code.code())
            .str(&self.message)
            .finish()
    }

    /// Parse a REJECT payload.
    pub fn decode(b: &[u8]) -> Result<Reject, WireError> {
        let mut r = PayloadReader::new(b);
        let id = r.u64()?;
        let code = RejectCode::from_code(r.u32()?)?;
        let message = r.str()?;
        Ok(Reject { id, code, message })
    }
}

/// Per-tenant accounting counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Accounting bucket name.
    pub tenant: String,
    /// Requests received (before admission).
    pub requests: u64,
    /// Requests answered with a RESPONSE.
    pub ok: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests whose deadline expired in queue.
    pub expired: u64,
    /// Requests rejected as invalid.
    pub rejected: u64,
    /// Request payload bytes in.
    pub bytes_in: u64,
    /// Response payload bytes out.
    pub bytes_out: u64,
    /// Transform compute time attributed to this tenant.
    pub compute_ns: u64,
}

/// One point-in-time server snapshot (the `soi serve --stats` frame).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Connections closed for idling past the timeout.
    pub idle_closed: u64,
    /// Connections that vanished (EOF/reset) without a BYE.
    pub peer_lost: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests that rode those batches.
    pub batched_requests: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Process-global planner plan-cache hits.
    pub plan_hits: u64,
    /// Process-global planner plan-cache misses.
    pub plan_misses: u64,
    /// Process-global planner plan-cache evictions.
    pub plan_evictions: u64,
    /// Serve-engine (pipeline + workspace) builds.
    pub engine_builds: u64,
    /// Serve-engine evictions.
    pub engine_evictions: u64,
    /// Per-tenant counters, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

impl StatsSnapshot {
    /// Serialize to a STATS payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new()
            .u32(PROTO_VERSION)
            .u64(self.connections)
            .u64(self.active_connections)
            .u64(self.idle_closed)
            .u64(self.peer_lost)
            .u64(self.batches)
            .u64(self.batched_requests)
            .u64(self.max_batch)
            .u64(self.queue_depth)
            .u64(self.plan_hits)
            .u64(self.plan_misses)
            .u64(self.plan_evictions)
            .u64(self.engine_builds)
            .u64(self.engine_evictions)
            .u32(self.tenants.len() as u32);
        for t in &self.tenants {
            w = w
                .str(&t.tenant)
                .u64(t.requests)
                .u64(t.ok)
                .u64(t.shed)
                .u64(t.expired)
                .u64(t.rejected)
                .u64(t.bytes_in)
                .u64(t.bytes_out)
                .u64(t.compute_ns);
        }
        w.finish()
    }

    /// Parse a STATS payload.
    pub fn decode(b: &[u8]) -> Result<StatsSnapshot, WireError> {
        let mut r = PayloadReader::new(b);
        let version = r.u32()?;
        if version != PROTO_VERSION {
            return Err(WireError::Protocol(format!(
                "stats snapshot version {version}, expected {PROTO_VERSION}"
            )));
        }
        let mut s = StatsSnapshot {
            connections: r.u64()?,
            active_connections: r.u64()?,
            idle_closed: r.u64()?,
            peer_lost: r.u64()?,
            batches: r.u64()?,
            batched_requests: r.u64()?,
            max_batch: r.u64()?,
            queue_depth: r.u64()?,
            plan_hits: r.u64()?,
            plan_misses: r.u64()?,
            plan_evictions: r.u64()?,
            engine_builds: r.u64()?,
            engine_evictions: r.u64()?,
            tenants: Vec::new(),
        };
        let count = r.u32()?;
        for _ in 0..count {
            s.tenants.push(TenantStats {
                tenant: r.str()?,
                requests: r.u64()?,
                ok: r.u64()?,
                shed: r.u64()?,
                expired: r.u64()?,
                rejected: r.u64()?,
                bytes_in: r.u64()?,
                bytes_out: r.u64()?,
                compute_ns: r.u64()?,
            });
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::c64;

    #[test]
    fn request_roundtrips_bitwise_for_both_domains() {
        let creq = Request {
            id: 42,
            tenant: "alice".into(),
            n: 8,
            p: 4,
            digits: 12,
            kind: RequestKind::Segment,
            arg: 3,
            deadline_ms: 250,
            samples: Samples::Complex(
                (0..8).map(|i| c64(0.1 * i as f64, -1.0 / (i + 1) as f64)).collect(),
            ),
        };
        assert_eq!(Request::decode(&creq.encode()).unwrap(), creq);

        let rreq = Request {
            id: 7,
            tenant: "bob".into(),
            n: 8,
            p: 2,
            digits: 10,
            kind: RequestKind::RealBand,
            arg: 5,
            deadline_ms: 0,
            samples: Samples::Real((0..8).map(|i| (i as f64 * 0.3).sin()).collect()),
        };
        assert_eq!(Request::decode(&rreq.encode()).unwrap(), rreq);
    }

    #[test]
    fn request_decode_rejects_inconsistencies() {
        let good = Request {
            id: 1,
            tenant: String::new(),
            n: 4,
            p: 2,
            digits: 10,
            kind: RequestKind::Full,
            arg: 0,
            deadline_ms: 0,
            samples: Samples::Complex(vec![Complex64::ZERO; 4]),
        };
        // Wrong version.
        let mut bad = good.encode();
        bad[0] = 99;
        assert!(matches!(Request::decode(&bad), Err(WireError::Protocol(_))));
        // Sample count disagrees with N.
        let short = Request {
            samples: Samples::Complex(vec![Complex64::ZERO; 3]),
            ..good.clone()
        };
        assert!(matches!(
            Request::decode(&short.encode()),
            Err(WireError::Protocol(_))
        ));
        // Truncated payload.
        let enc = good.encode();
        assert!(Request::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn response_and_reject_roundtrip() {
        let resp = Response {
            id: 9,
            compute_ns: 12345,
            bins: (0..5).map(|i| c64(i as f64, -0.5 * i as f64)).collect(),
        };
        let got = Response::decode(&resp.encode()).unwrap();
        assert_eq!(got, resp);
        for (a, b) in got.bins.iter().zip(&resp.bins) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }

        for code in [RejectCode::Overloaded, RejectCode::Expired, RejectCode::BadRequest] {
            let rej = Reject { id: 3, code, message: "queue full".into() };
            assert_eq!(Reject::decode(&rej.encode()).unwrap(), rej);
        }
    }

    #[test]
    fn stats_snapshot_roundtrips() {
        let snap = StatsSnapshot {
            connections: 10,
            active_connections: 2,
            idle_closed: 1,
            peer_lost: 3,
            batches: 40,
            batched_requests: 160,
            max_batch: 8,
            queue_depth: 5,
            plan_hits: 100,
            plan_misses: 4,
            plan_evictions: 1,
            engine_builds: 2,
            engine_evictions: 0,
            tenants: vec![
                TenantStats { tenant: "a".into(), requests: 5, ok: 4, shed: 1, ..Default::default() },
                TenantStats { tenant: "b".into(), ok: 7, compute_ns: 999, ..Default::default() },
            ],
        };
        assert_eq!(StatsSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            RequestKind::Full,
            RequestKind::Segment,
            RequestKind::Band,
            RequestKind::RealFull,
            RequestKind::RealSegment,
            RequestKind::RealBand,
        ] {
            assert_eq!(RequestKind::parse(kind.name()), Some(kind));
            assert_eq!(RequestKind::from_code(kind.code()).unwrap(), kind);
        }
        assert!(RequestKind::parse("bogus").is_none());
        assert!(RequestKind::from_code(17).is_err());
    }
}
